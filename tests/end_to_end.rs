//! Full client/server sessions across server kinds and fabrics.

use parquake::bsp::mapgen::MapGenConfig;
use parquake::harness::experiment::{Experiment, ExperimentConfig};
use parquake::metrics::Bucket;
use parquake::server::{LockPolicy, ServerKind};

fn base(players: u32, server: ServerKind) -> ExperimentConfig {
    ExperimentConfig {
        players,
        server,
        map: MapGenConfig::small_arena(11),
        duration_ns: 2_500_000_000,
        bot_drivers: 4,
        checking: true, // run the full lock/claim protocol checkers
        ..ExperimentConfig::default()
    }
}

#[test]
fn sequential_session_completes_with_protocol_checks() {
    let out = Experiment::new(base(16, ServerKind::Sequential)).run();
    assert_eq!(out.connected, 16);
    assert!(
        out.response.received > 500,
        "{} replies",
        out.response.received
    );
    // Every reply echoes a real request.
    assert!(out.response.received <= out.response.sent);
}

#[test]
fn parallel_baseline_session_checks_clean() {
    let out = Experiment::new(base(
        24,
        ServerKind::Parallel {
            threads: 4,
            locking: LockPolicy::Baseline,
        },
    ))
    .run();
    assert_eq!(out.connected, 24);
    assert!(out.response.received > 800);
    // The spatial index must audit clean after the run.
    out.world.audit_links().expect("link audit");
    // All four threads did work.
    assert_eq!(out.server.threads.len(), 4);
    for (i, t) in out.server.threads.iter().enumerate() {
        assert!(t.requests > 0, "thread {i} processed nothing");
        assert!(t.replies > 0, "thread {i} replied to nothing");
    }
    // Region locks were actually exercised.
    let m = out.server.merged();
    assert!(m.lock.leaf_ops > 1000, "leaf ops: {}", m.lock.leaf_ops);
    assert!(m.lock.parent_ops > 0);
}

#[test]
fn parallel_optimized_session_checks_clean() {
    let out = Experiment::new(base(
        24,
        ServerKind::Parallel {
            threads: 2,
            locking: LockPolicy::Optimized,
        },
    ))
    .run();
    assert_eq!(out.connected, 24);
    assert!(out.response.received > 800);
    out.world.audit_links().expect("link audit");
}

#[test]
fn runs_are_deterministic_per_seed() {
    let run = |seed: u64| {
        let mut cfg = base(
            12,
            ServerKind::Parallel {
                threads: 2,
                locking: LockPolicy::Baseline,
            },
        );
        cfg.seed = seed;
        let out = Experiment::new(cfg).run();
        (
            out.response.sent,
            out.response.received,
            out.response.latency_sum_ns,
            out.world_hash,
            out.server.frame_count,
        )
    };
    assert_eq!(run(1), run(1), "same seed must reproduce bit-for-bit");
    assert_ne!(run(1).3, run(2).3, "different seeds must diverge");
}

#[test]
fn frame_phases_follow_the_paper_invariants() {
    let out = Experiment::new(base(
        24,
        ServerKind::Parallel {
            threads: 4,
            locking: LockPolicy::Baseline,
        },
    ))
    .run();
    let m = out.server.merged();
    // Exactly one master per frame: the sum of mastered frames equals
    // the frame count.
    let mastered: u64 = out.server.threads.iter().map(|t| t.mastered).sum();
    assert_eq!(mastered, out.server.frame_count);
    // Every bucket the paper defines shows up under load except none.
    for b in [Bucket::Exec, Bucket::Reply, Bucket::World, Bucket::Receive] {
        assert!(m.breakdown.get(b) > 0, "{b:?} never recorded");
    }
    // Participants never exceed thread count.
    let fs = &out.server.frames;
    assert!(fs.participants_sum <= fs.frames * 4);
    assert!(fs.frames > 0);
}

#[test]
fn world_state_advances_and_scores_accumulate() {
    use parquake::sim::entity::EntityClass;
    let mut cfg = base(
        16,
        ServerKind::Parallel {
            threads: 2,
            locking: LockPolicy::Optimized,
        },
    );
    cfg.duration_ns = 4_000_000_000;
    let out = Experiment::new(cfg).run();
    // Bots shoot each other: someone must have scored or picked
    // something up after 4 virtual seconds of deathmatch.
    let mut total_score = 0i64;
    for i in 0..16u16 {
        if let EntityClass::Player { score, .. } = out.world.store.snapshot(i).class {
            total_score += score as i64;
        }
    }
    assert!(total_score > 0, "no interactions happened at all");
}
