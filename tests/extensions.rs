//! Tests for the implemented future-work extensions (paper §5.1/§5.2):
//! request batching, one-pass locking, dynamic region-affine assignment.

use parquake::bsp::mapgen::MapGenConfig;
use parquake::harness::experiment::{Experiment, ExperimentConfig};
use parquake::server::{Assignment, LockPolicy, ServerKind};

fn cfg(players: u32, threads: u32, locking: LockPolicy) -> ExperimentConfig {
    ExperimentConfig {
        players,
        server: ServerKind::Parallel { threads, locking },
        map: MapGenConfig::small_arena(17),
        duration_ns: 2_500_000_000,
        bot_drivers: 4,
        checking: true,
        ..ExperimentConfig::default()
    }
}

#[test]
fn one_pass_locking_never_relocks() {
    let out = Experiment::new(cfg(32, 4, LockPolicy::OnePass)).run();
    assert_eq!(out.connected, 32);
    let m = out.server.merged();
    assert!(m.lock.requests > 500);
    assert_eq!(
        m.lock.leaf_lock_events, m.lock.distinct_leaves,
        "one-pass must lock each leaf at most once per request"
    );
    assert_eq!(m.lock.relock_fraction(), 0.0);
    out.world.audit_links().expect("link audit");
}

#[test]
fn batching_raises_frame_participation() {
    let run = |batch_ms: u64| {
        let mut c = cfg(32, 4, LockPolicy::Optimized);
        c.frame_batch_ns = batch_ms * 1_000_000;
        let out = Experiment::new(c).run();
        let fs = &out.server.frames;
        (
            out.connected,
            fs.participants_sum as f64 / fs.frames.max(1) as f64,
            out.avg_response_ms(),
        )
    };
    let (c0, parts0, lat0) = run(0);
    let (c8, parts8, lat8) = run(8);
    assert_eq!(c0, 32);
    assert_eq!(c8, 32);
    assert!(
        parts8 > parts0,
        "batching did not raise participation: {parts0:.2} -> {parts8:.2}"
    );
    assert!(
        lat8 > lat0,
        "batching should cost latency: {lat0:.2} -> {lat8:.2} ms"
    );
}

#[test]
fn region_affine_assignment_moves_ownership_and_reduces_sharing() {
    let run = |assignment: Assignment| {
        let mut c = cfg(48, 4, LockPolicy::Optimized);
        c.assignment = assignment;
        c.duration_ns = 3_000_000_000;
        Experiment::new(c).run()
    };
    let stat = run(Assignment::Static);
    let dynamic = run(Assignment::RegionAffine { period_frames: 16 });
    assert_eq!(stat.connected, 48);
    assert_eq!(dynamic.connected, 48);
    // Bots still get served at the same rate under steering.
    let r_static = stat.response.received as f64;
    let r_dyn = dynamic.response.received as f64;
    assert!(
        ((r_dyn - r_static).abs() / r_static) < 0.05,
        "reply counts diverged: {r_static} vs {r_dyn}"
    );
    // Contention drops (or at worst matches): compare per-request leaf
    // lock wait.
    let wait = |o: &parquake::harness::experiment::Outcome| {
        let m = o.server.merged();
        m.lock.leaf_ns as f64 / m.requests.max(1) as f64
    };
    assert!(
        wait(&dynamic) <= wait(&stat) * 1.10,
        "dynamic assignment increased contention: {:.0} vs {:.0} ns/req",
        wait(&dynamic),
        wait(&stat)
    );
    dynamic.world.audit_links().expect("link audit");
}

#[test]
fn static_assignment_keeps_block_ownership() {
    // Under the paper's scheme nothing ever moves: every reply steers
    // the client to its connect-time thread.
    let out = Experiment::new(cfg(16, 4, LockPolicy::Baseline)).run();
    assert_eq!(out.connected, 16);
    // All bots were served through their home threads: per-thread reply
    // counts follow the block partition (4 threads × 4 slots each).
    for (i, t) in out.server.threads.iter().enumerate() {
        assert!(t.replies > 0, "thread {i} sent no replies");
    }
}

#[test]
fn delta_compression_preserves_gameplay_and_shrinks_replies() {
    let run = |delta: bool| {
        let mut c = cfg(32, 2, LockPolicy::Optimized);
        c.delta_compression = delta;
        c.duration_ns = 3_000_000_000;
        Experiment::new(c).run()
    };
    let full = run(false);
    let compressed = run(true);
    assert_eq!(full.connected, 32);
    assert_eq!(compressed.connected, 32);
    // Clients are served equally well (same cadence, same replies).
    let diff = (full.response.received as f64 - compressed.response.received as f64).abs();
    assert!(
        diff / (full.response.received as f64) < 0.05,
        "reply counts diverged: {} vs {}",
        full.response.received,
        compressed.response.received
    );
    // The reply phase gets cheaper.
    use parquake::metrics::Bucket;
    let reply_full = full.server.merged().breakdown.get(Bucket::Reply);
    let reply_delta = compressed.server.merged().breakdown.get(Bucket::Reply);
    assert!(
        reply_delta < reply_full,
        "delta did not shrink reply time: {reply_full} -> {reply_delta}"
    );
    // Gameplay still happens: bots aim from their entity caches.
    use parquake::sim::entity::EntityClass;
    let mut total_score = 0i64;
    for i in 0..32u16 {
        if let EntityClass::Player { score, .. } = compressed.world.store.snapshot(i).class {
            total_score += score as i64;
        }
    }
    assert!(total_score > 0, "no interactions under delta compression");
    compressed.world.audit_links().expect("link audit");
}
