//! The same experiment must complete on both execution fabrics: the
//! deterministic virtual SMP and real OS threads. (Numbers differ —
//! one is modelled time, the other wall clock — but the protocol, the
//! connection flow and the game must work identically.)

use parquake::bsp::mapgen::MapGenConfig;
use parquake::fabric::FabricKind;
use parquake::harness::experiment::{Experiment, ExperimentConfig};
use parquake::server::{LockPolicy, ServerKind};

fn cfg(fabric: FabricKind, duration_ns: u64) -> ExperimentConfig {
    ExperimentConfig {
        players: 8,
        server: ServerKind::Parallel {
            threads: 2,
            locking: LockPolicy::Optimized,
        },
        map: MapGenConfig::small_arena(77),
        duration_ns,
        fabric,
        bot_drivers: 2,
        checking: true,
        ..ExperimentConfig::default()
    }
}

#[test]
fn virtual_fabric_session() {
    let out = Experiment::new(cfg(
        FabricKind::VirtualSmp(Default::default()),
        2_000_000_000,
    ))
    .run();
    assert_eq!(out.connected, 8);
    assert!(out.response.received > 300);
}

#[test]
fn real_fabric_session_with_checkers() {
    // Short wall-clock run under true preemption with the lock/claim
    // protocol checkers enabled: catches real data races.
    let out = Experiment::new(cfg(FabricKind::Real, 700_000_000)).run();
    assert_eq!(out.connected, 8);
    assert!(out.response.received > 50, "{}", out.response.received);
}
