//! Coarse assertions that the paper's qualitative findings hold on
//! scaled-down configurations (full-size sweeps live in the `repro`
//! binary; these run in CI-sized debug builds).

use parquake::bsp::mapgen::MapGenConfig;
use parquake::harness::experiment::{Experiment, ExperimentConfig};
use parquake::metrics::Bucket;
use parquake::server::{LockPolicy, ServerKind};

fn run(players: u32, server: ServerKind) -> parquake::harness::experiment::Outcome {
    Experiment::new(ExperimentConfig {
        players,
        server,
        map: MapGenConfig::small_arena(31),
        duration_ns: 3_000_000_000,
        bot_drivers: 4,
        checking: false,
        ..ExperimentConfig::default()
    })
    .run()
}

#[test]
fn lock_time_grows_with_player_count() {
    // Paper §4.2: lock time grows from ~2% to ~35% as players increase.
    let kind = ServerKind::Parallel {
        threads: 2,
        locking: LockPolicy::Baseline,
    };
    let lo = run(16, kind);
    let hi = run(48, kind);
    // Contention (time blocked on leaf locks) must grow super-linearly
    // with the player count; compare per-request blocked time.
    let per_req = |o: &parquake::harness::experiment::Outcome| {
        let m = o.server.merged();
        m.lock.leaf_ns as f64 / m.requests.max(1) as f64
    };
    let (wait_lo, wait_hi) = (per_req(&lo), per_req(&hi));
    assert!(
        wait_hi > wait_lo * 1.5,
        "leaf lock wait per request did not grow: {wait_lo:.0} -> {wait_hi:.0} ns"
    );
}

#[test]
fn optimized_locking_reduces_lock_time() {
    // Paper §4.3: optimized locking cuts lock time by more than half.
    let base = run(
        48,
        ServerKind::Parallel {
            threads: 2,
            locking: LockPolicy::Baseline,
        },
    );
    let opt = run(
        48,
        ServerKind::Parallel {
            threads: 2,
            locking: LockPolicy::Optimized,
        },
    );
    let lb = base.server.merged().breakdown.get(Bucket::Lock);
    let lo = opt.server.merged().breakdown.get(Bucket::Lock);
    // At full scale the reduction is >2x (see EXPERIMENTS.md); on this
    // scaled-down CI configuration we require at least 25%.
    assert!(
        (lo as f64) < lb as f64 * 0.75,
        "optimized lock time {lo} not well below baseline {lb}"
    );
}

#[test]
fn reply_phase_dominates_request_phase_sequentially() {
    // Paper §4.1: reply processing is over twice the request phase.
    let out = run(48, ServerKind::Sequential);
    let bd = out.server.merged().breakdown;
    let reply = bd.get(Bucket::Reply);
    let request = bd.request_phase();
    assert!(
        reply > request,
        "reply {reply} did not dominate request {request}"
    );
}

#[test]
fn world_update_is_a_small_fraction_at_saturation() {
    // Paper §3.1: world processing is <5% of sequential execution. The
    // share is only meaningful at saturation and on the paper-scale
    // evaluation map (the cramped small arena triggers far more
    // teleports/respawns per player than the paper's regime).
    let out = Experiment::new(ExperimentConfig {
        players: 128,
        server: ServerKind::Sequential,
        map: MapGenConfig::eval_arena(31),
        duration_ns: 2_000_000_000,
        checking: false,
        ..ExperimentConfig::default()
    })
    .run();
    let bd = out.server.merged().breakdown;
    let share = bd.fraction_non_idle(Bucket::World);
    assert!(share < 0.10, "world share {share:.3}");
}

#[test]
fn parallel_waits_exist_and_interframe_dominates_intraframe() {
    // Paper §4.2: high inter- and intra-frame waits; inter-frame is the
    // more significant component.
    let out = run(
        48,
        ServerKind::Parallel {
            threads: 4,
            locking: LockPolicy::Baseline,
        },
    );
    let bd = out.server.merged().breakdown;
    assert!(bd.get(Bucket::InterWait) > 0);
    assert!(
        bd.get(Bucket::InterWait) > bd.get(Bucket::IntraWait),
        "inter {} <= intra {}",
        bd.get(Bucket::InterWait),
        bd.get(Bucket::IntraWait)
    );
}

#[test]
fn leaf_locking_dominates_parent_locking() {
    // Paper §5.1 / Fig 7a: leaf locks account for most lock time.
    let out = run(
        48,
        ServerKind::Parallel {
            threads: 4,
            locking: LockPolicy::Baseline,
        },
    );
    let m = out.server.merged();
    assert!(
        m.lock.leaf_share() > 0.5,
        "leaf share {:.2}",
        m.lock.leaf_share()
    );
}

#[test]
fn deeper_areanode_trees_lock_smaller_world_fractions() {
    // Paper Fig 7b: % of world locked per request drops as the tree
    // grows.
    let kind = ServerKind::Parallel {
        threads: 2,
        locking: LockPolicy::Baseline,
    };
    let mut prev = f64::INFINITY;
    for depth in [1u32, 3, 5] {
        let out = Experiment::new(ExperimentConfig {
            players: 24,
            server: kind,
            map: MapGenConfig::small_arena(31),
            areanode_depth: depth,
            duration_ns: 2_000_000_000,
            bot_drivers: 4,
            checking: false,
            ..ExperimentConfig::default()
        })
        .run();
        let frac = out.server.merged().lock.avg_distinct_leaf_percent();
        assert!(
            frac < prev,
            "depth {depth}: locked fraction {frac:.1}% did not drop (prev {prev:.1}%)"
        );
        prev = frac;
    }
}

#[test]
fn response_time_rises_under_overload() {
    // Paper Fig 4c/5c: response time climbs sharply at saturation.
    let kind = ServerKind::Sequential;
    let light = run(16, kind);
    let heavy = run(96, kind);
    assert!(
        heavy.avg_response_ms() > light.avg_response_ms() * 2.0,
        "latency {:.2}ms -> {:.2}ms",
        light.avg_response_ms(),
        heavy.avg_response_ms()
    );
}
