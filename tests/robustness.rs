//! Failure injection: the server must shrug off hostile or broken
//! clients the way the original dropped malformed datagrams.

use std::sync::atomic::Ordering;
use std::sync::Arc;

use parquake::bots::{spawn_swarm, BotSwarmConfig};
use parquake::bsp::mapgen::MapGenConfig;
use parquake::fabric::{Fabric, FabricKind};
use parquake::math::Pcg32;
use parquake::protocol::{ClientMessage, Encode};
use parquake::server::{spawn_server, LockPolicy, ServerConfig, ServerKind};
use parquake::sim::GameWorld;

fn setup(
    players: u16,
    threads: u32,
) -> (
    Arc<dyn Fabric>,
    parquake::server::ServerHandle,
    Arc<GameWorld>,
) {
    let fabric = FabricKind::VirtualSmp(Default::default()).build();
    let map = Arc::new(MapGenConfig::small_arena(5).generate());
    let world = Arc::new(GameWorld::new(map, 4, players));
    let cfg = ServerConfig {
        checking: true,
        ..ServerConfig::new(
            ServerKind::Parallel {
                threads,
                locking: LockPolicy::Baseline,
            },
            2_000_000_000,
        )
    };
    let handle = spawn_server(&fabric, cfg, world.clone());
    (fabric, handle, world)
}

#[test]
fn garbage_datagrams_are_dropped_not_fatal() {
    // 16 slots for 8 honest bots: short random datagrams occasionally
    // decode as valid Connects (tag 1 + 4 id bytes) and claim a slot —
    // exactly what an unauthenticated 2004 game server would allow —
    // so the server needs headroom for the honest players.
    let (fabric, server, _world) = setup(24, 2);
    // Real bots plus an attacker spraying junk at both server ports.
    let swarm_cfg = BotSwarmConfig::new(8, 1_800_000_000);
    let ports = server.ports.clone();
    let spt = server.slots_per_thread;
    let swarm = spawn_swarm(&fabric, &swarm_cfg, &ports, move |c| (c / spt) as usize);
    let attacker_port = fabric.alloc_port();
    fabric.spawn(
        "attacker",
        None,
        Box::new(move |ctx| {
            let mut rng = Pcg32::seeded(666);
            for i in 0..400u64 {
                ctx.sleep_until(i * 4_000_000);
                let n = rng.below(64) as usize;
                let junk: Vec<u8> = (0..n).map(|_| rng.next_u32() as u8).collect();
                ctx.send(
                    attacker_port,
                    ports[(i % ports.len() as u64) as usize],
                    junk,
                );
            }
        }),
    );
    fabric.run();
    // Every honest bot still connected and got replies.
    assert_eq!(swarm.connected.load(Ordering::Relaxed), 8);
    assert!(swarm.stats.lock().unwrap().received > 200);
}

#[test]
fn truncated_and_mutated_real_messages_are_survivable() {
    let (fabric, server, _world) = setup(4, 2);
    let swarm_cfg = BotSwarmConfig::new(4, 1_800_000_000);
    let ports = server.ports.clone();
    let spt = server.slots_per_thread;
    let swarm = spawn_swarm(&fabric, &swarm_cfg, &ports, move |c| (c / spt) as usize);
    // An attacker sending structurally valid prefixes of real messages.
    let attacker_port = fabric.alloc_port();
    fabric.spawn(
        "mutator",
        None,
        Box::new(move |ctx| {
            let real = ClientMessage::Move {
                client_id: 2,
                cmd: parquake::protocol::MoveCmd::idle(1, 30),
            }
            .to_bytes();
            for i in 0..real.len() as u64 {
                ctx.sleep_until(i * 10_000_000);
                ctx.send(attacker_port, ports[0], real[..i as usize].to_vec());
            }
        }),
    );
    fabric.run();
    assert_eq!(swarm.connected.load(Ordering::Relaxed), 4);
}

#[test]
fn disconnects_free_slots_for_new_players() {
    let (fabric, server, world) = setup(4, 1);
    let port = server.ports[0];
    let client = fabric.alloc_port();
    fabric.spawn(
        "churner",
        None,
        Box::new(move |ctx| {
            // Connect, play a little, disconnect, reconnect.
            for round in 0..3u64 {
                let cid = 100 + round as u32;
                let mut acked = false;
                for attempt in 0..20u64 {
                    ctx.send(
                        client,
                        port,
                        ClientMessage::Connect {
                            client_id: cid,
                            arena: 0,
                        }
                        .to_bytes(),
                    );
                    let deadline = ctx.now() + 50_000_000;
                    while ctx.wait_readable(client, Some(deadline)) {
                        let m = ctx.try_recv(client).unwrap();
                        if let Ok(parquake::protocol::ServerMessage::ConnectAck {
                            client_id, ..
                        }) = parquake::protocol::Decode::from_bytes(&m.payload)
                        {
                            let _: u32 = client_id;
                            acked = true;
                        }
                    }
                    if acked {
                        break;
                    }
                    let _ = attempt;
                }
                assert!(acked, "round {round}: never acked");
                ctx.send(
                    client,
                    port,
                    ClientMessage::Disconnect { client_id: cid }.to_bytes(),
                );
                // Nudge the server so the disconnect frame runs.
                ctx.sleep_until(ctx.now() + 60_000_000);
                ctx.send(
                    client,
                    port,
                    ClientMessage::Move {
                        client_id: cid,
                        cmd: parquake::protocol::MoveCmd::idle(9, 30),
                    }
                    .to_bytes(),
                );
                ctx.sleep_until(ctx.now() + 60_000_000);
            }
        }),
    );
    fabric.run();
    // After three connect/disconnect rounds only one slot may remain
    // in use (the final churner connection at most).
    let active = (0..4u16)
        .filter(|&i| world.store.snapshot(i).active)
        .count();
    assert!(active <= 1, "{active} slots still active");
}

#[test]
fn server_idles_gracefully_with_no_clients_at_all() {
    let (fabric, _server, _world) = setup(4, 2);
    fabric.run(); // nothing to do; must terminate at end_time
}
