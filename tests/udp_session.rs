//! Real-socket end-to-end session: udpd gateway + UDP clients over
//! loopback. Skips silently when the environment forbids binding.

use std::time::Duration;

use parquake_bsp::mapgen::MapGenConfig;
use parquake_fabric::fault::FaultConfig;
use parquake_harness::udp::{run_udp_clients, run_udp_server, UdpServerOpts};
use parquake_server::LockPolicy;

#[test]
fn udp_gateway_serves_real_sockets() {
    // Probe whether loopback UDP is permitted at all.
    if std::net::UdpSocket::bind("127.0.0.1:0").is_err() {
        eprintln!("skipping: loopback UDP not permitted in this environment");
        return;
    }
    let opts = UdpServerOpts {
        base_port: 28710,
        threads: 2,
        max_players: 16,
        map: MapGenConfig::small_arena(3),
        duration: Duration::from_secs(4),
        locking: LockPolicy::Optimized,
        ..UdpServerOpts::default()
    };
    let server = std::thread::spawn(move || run_udp_server(&opts));
    std::thread::sleep(Duration::from_millis(300));
    let (sent, received, avg_ms) = run_udp_clients(
        "127.0.0.1:28710".parse().unwrap(),
        2,
        6,
        Duration::from_secs(3),
    )
    .expect("client run");
    let report = server.join().unwrap().expect("server run");

    assert!(sent > 100, "sent only {sent}");
    assert!(
        received as f64 > sent as f64 * 0.5,
        "too few replies: {received}/{sent}"
    );
    assert!(avg_ms < 500.0, "avg response {avg_ms} ms");
    assert!(report.replies > 0);
    assert!(report.frames > 0);
    assert_eq!(report.datagrams_in, sent);
    assert!(
        report.accounting_closed(),
        "datagram accounting does not close: {report:?}"
    );
}

#[test]
fn udp_gateway_accounts_for_faulted_datagrams() {
    if std::net::UdpSocket::bind("127.0.0.1:0").is_err() {
        eprintln!("skipping: loopback UDP not permitted in this environment");
        return;
    }
    let opts = UdpServerOpts {
        base_port: 28640,
        threads: 2,
        max_players: 16,
        map: MapGenConfig::small_arena(3),
        duration: Duration::from_secs(4),
        locking: LockPolicy::Optimized,
        fault: FaultConfig {
            drop: 0.10,
            duplicate: 0.05,
            delay: 0.05,
            max_delay_ns: 20_000_000,
            seed: 0xFA_17,
            ..FaultConfig::none()
        },
        ..UdpServerOpts::default()
    };
    let server = std::thread::spawn(move || run_udp_server(&opts));
    std::thread::sleep(Duration::from_millis(300));
    let (sent, received, _avg_ms) = run_udp_clients(
        "127.0.0.1:28640".parse().unwrap(),
        2,
        6,
        Duration::from_secs(3),
    )
    .expect("client run");
    let report = server.join().unwrap().expect("server run");

    // The fault stage visibly dropped and duplicated traffic…
    assert!(report.fault_dropped > 0, "no drops injected: {report:?}");
    assert!(report.fault_duplicated > 0, "no dups injected: {report:?}");
    // …the clients still played through it…
    assert!(sent > 100, "sent only {sent}");
    assert!(received > 0, "no replies under fault injection");
    assert!(report.replies > 0);
    // …and every inbound datagram has exactly one fate.
    assert_eq!(report.datagrams_in, sent);
    assert!(
        report.accounting_closed(),
        "datagram accounting does not close: {report:?}"
    );
}
