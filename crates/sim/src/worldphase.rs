//! The world-physics phase (the `P` stage of the frame, paper §2.1).
//!
//! Run single-threaded by the frame's master thread before request
//! processing; by the phase invariants it has exclusive access to all
//! global state, so it uses no locks. It completes everything that was
//! deferred from request processing:
//!
//! * projectile flight, impact and expiry,
//! * item respawns,
//! * deferred far relocations (teleports) and player respawns.
//!
//! Every externally visible effect is emitted as a [`GameEvent`] into
//! the caller's buffer — the global state buffer that reply processing
//! broadcasts to all clients.

use parquake_math::{Pcg32, Vec3};
use parquake_protocol::{GameEvent, GameEventKind};

use crate::entity::{EntityClass, EntityId};
use crate::interact::PROJECTILE_DAMAGE;
use crate::world::GameWorld;
use crate::WorkCounters;

/// Run one world-physics update covering `dt_ns` of game time.
/// `events` receives broadcastable effects; `work` the modelled cost.
pub fn run_world_phase(
    world: &GameWorld,
    now: u64,
    dt_ns: u64,
    rng: &mut Pcg32,
    events: &mut Vec<GameEvent>,
    work: &mut WorkCounters,
) {
    let dt = dt_ns as f32 / 1e9;
    let capacity = world.store.capacity() as EntityId;

    // Projectiles in flight.
    for id in 0..capacity {
        let e = world.store.snapshot(id);
        let EntityClass::Projectile {
            owner,
            expire_at,
            live: true,
        } = e.class
        else {
            continue;
        };
        if !e.active {
            continue;
        }
        if now >= expire_at {
            retire_projectile(world, id);
            continue;
        }
        // Integrate with gravity-lite and trace against the world.
        let vel = e.vel + Vec3::new(0.0, 0.0, -200.0 * dt);
        let delta = vel * dt;
        let tr = world
            .map
            .trace(parquake_bsp::Hull::Projectile, e.pos, e.pos + delta);
        work.trace_steps += tr.steps as u64;
        let new_pos = tr.end;

        // Check players along the path (gather from the areanode tree).
        let sweep = e.abs_box().swept(new_pos - e.pos);
        let mut nodes = Vec::new();
        work.areanode_visits += world.tree.nodes_overlapping(&sweep, &mut nodes) as u64;
        let mut hit_player: Option<EntityId> = None;
        'outer: for node in nodes {
            let mut cands: Vec<u32> = Vec::new();
            world.links.extend_into(node, 0, &mut cands);
            for cand in cands {
                let cand = cand as EntityId;
                if cand == owner {
                    continue;
                }
                let other = world.store.snapshot(cand);
                if !other.is_live_player() {
                    continue;
                }
                work.object_tests += 1;
                if e.abs_box()
                    .sweep_hit(new_pos - e.pos, &other.abs_box())
                    .is_some()
                {
                    hit_player = Some(cand);
                    break 'outer;
                }
            }
        }

        if let Some(victim) = hit_player {
            work.interactions += 1;
            let mut killed = false;
            world.store.with_mut(victim, 0, |v| {
                if let EntityClass::Player { health, dead, .. } = &mut v.class {
                    *health -= PROJECTILE_DAMAGE;
                    if *health <= 0 && !*dead {
                        *dead = true;
                        killed = true;
                    }
                }
            });
            if killed {
                world.store.with_mut(owner, 0, |s| {
                    if let EntityClass::Player { score, .. } = &mut s.class {
                        *score += 5;
                    }
                });
            }
            events.push(GameEvent {
                kind: GameEventKind::Hit,
                a: owner,
                b: victim,
                pos: new_pos,
            });
            retire_projectile(world, id);
        } else if tr.hit() {
            events.push(GameEvent {
                kind: GameEventKind::Sound,
                a: owner,
                b: id,
                pos: new_pos,
            });
            retire_projectile(world, id);
        } else {
            world.store.with_mut(id, 0, |p| {
                p.pos = new_pos;
                p.vel = vel;
            });
            world.relink_unlocked(id);
        }
    }

    // Item respawns.
    for id in world.item_ids() {
        let e = world.store.snapshot(id);
        if let EntityClass::Item {
            respawn_at,
            taken: true,
            ..
        } = e.class
        {
            if now >= respawn_at {
                work.interactions += 1;
                world.store.with_mut(id, 0, |it| {
                    if let EntityClass::Item { taken, .. } = &mut it.class {
                        *taken = false;
                    }
                });
                events.push(GameEvent {
                    kind: GameEventKind::Spawn,
                    a: id,
                    b: 0,
                    pos: e.pos,
                });
            }
        }
    }

    // Deferred relocations and player respawns.
    for idx in 0..world.max_players() {
        let id = world.player_slot(idx);
        let e = world.store.snapshot(id);
        if !e.active {
            continue;
        }
        let EntityClass::Player {
            dead,
            pending_relocation,
            client_id,
            ..
        } = e.class
        else {
            continue;
        };
        if let Some(dest) = pending_relocation {
            work.interactions += 1;
            world.store.with_mut(id, 0, |p| {
                p.pos = dest;
                p.vel = Vec3::ZERO;
                p.on_ground = false;
                if let EntityClass::Player {
                    pending_relocation, ..
                } = &mut p.class
                {
                    *pending_relocation = None;
                }
            });
            world.relink_unlocked(id);
            events.push(GameEvent {
                kind: GameEventKind::Teleport,
                a: id,
                b: 0,
                pos: dest,
            });
        } else if dead {
            work.interactions += 1;
            world.spawn_player(idx, client_id, rng);
            events.push(GameEvent {
                kind: GameEventKind::Spawn,
                a: id,
                b: 0,
                pos: world.store.snapshot(id).pos,
            });
        }
    }
}

fn retire_projectile(world: &GameWorld, id: EntityId) {
    let e = world.store.snapshot(id);
    if e.linked {
        world.links.remove(e.linked_node, 0, id as u32);
    }
    world.store.with_mut(id, 0, |p| {
        p.active = false;
        p.linked = false;
        if let EntityClass::Projectile { live, .. } = &mut p.class {
            *live = false;
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interact::launch_projectile;
    use parquake_bsp::mapgen::MapGenConfig;
    use parquake_math::angles::Angles;
    use parquake_math::vec3::vec3;
    use std::sync::Arc;

    fn world() -> GameWorld {
        let map = Arc::new(MapGenConfig::open_hall(31).generate());
        GameWorld::new(map, 4, 8)
    }

    fn settle(w: &GameWorld, id: EntityId) {
        // Put the player firmly on the ground at its spawn.
        let p = w.store.snapshot(id).pos;
        w.store.with_mut(id, 0, |e| {
            e.pos = vec3(p.x, p.y, 25.0);
            e.on_ground = true;
        });
        w.relink_unlocked(id);
    }

    #[test]
    fn projectile_flies_and_expires() {
        let w = world();
        let mut rng = Pcg32::seeded(1);
        w.spawn_player(0, 0, &mut rng);
        settle(&w, 0);
        let mut work = WorkCounters::new();
        let slot = launch_projectile(&w, 0, 0, 0, &mut work).unwrap();
        w.relink_unlocked(slot);
        let start = w.store.snapshot(slot).pos;

        let mut events = Vec::new();
        run_world_phase(&w, 50_000_000, 50_000_000, &mut rng, &mut events, &mut work);
        let p = w.store.snapshot(slot);
        assert!(p.active, "still flying");
        assert!(p.pos.distance(start) > 10.0, "moved");

        // Jump past the lifetime: the projectile retires.
        let mut events = Vec::new();
        run_world_phase(
            &w,
            10_000_000_000,
            50_000_000,
            &mut rng,
            &mut events,
            &mut work,
        );
        assert!(!w.store.snapshot(slot).active);
    }

    #[test]
    fn projectile_hits_wall_and_emits_sound() {
        let w = world();
        let mut rng = Pcg32::seeded(2);
        w.spawn_player(0, 0, &mut rng);
        settle(&w, 0);
        // Aim at the nearest wall.
        w.store.with_mut(0, 0, |e| e.yaw = 180.0);
        let mut work = WorkCounters::new();
        let slot = launch_projectile(&w, 0, 0, 0, &mut work).unwrap();
        w.relink_unlocked(slot);
        let mut events = Vec::new();
        // Enough frames to cross the hall.
        for f in 1..200u64 {
            run_world_phase(
                &w,
                f * 30_000_000,
                30_000_000,
                &mut rng,
                &mut events,
                &mut work,
            );
            if !w.store.snapshot(slot).active {
                break;
            }
        }
        assert!(!w.store.snapshot(slot).active, "projectile never landed");
        assert!(events.iter().any(|e| e.kind == GameEventKind::Sound));
    }

    #[test]
    fn projectile_hits_player_and_damages() {
        let w = world();
        let mut rng = Pcg32::seeded(3);
        w.spawn_player(0, 0, &mut rng);
        w.spawn_player(1, 1, &mut rng);
        settle(&w, 0);
        let me = w.store.snapshot(0);
        w.store.with_mut(1, 0, |e| {
            e.pos = me.pos + vec3(200.0, 0.0, 0.0);
        });
        w.relink_unlocked(1);
        let ang = Angles::looking_at(me.eye(), w.store.snapshot(1).pos);
        w.store.with_mut(0, 0, |e| {
            e.yaw = ang.yaw;
            e.pitch = ang.pitch;
        });
        let mut work = WorkCounters::new();
        let slot = launch_projectile(&w, 0, 0, 0, &mut work).unwrap();
        w.relink_unlocked(slot);
        let mut events = Vec::new();
        for f in 1..40u64 {
            run_world_phase(
                &w,
                f * 30_000_000,
                30_000_000,
                &mut rng,
                &mut events,
                &mut work,
            );
            if !w.store.snapshot(slot).active {
                break;
            }
        }
        let hit = events.iter().find(|e| e.kind == GameEventKind::Hit);
        assert!(hit.is_some(), "no hit event; events: {events:?}");
        match w.store.snapshot(1).class {
            EntityClass::Player { health, .. } => {
                assert_eq!(health, 100 - PROJECTILE_DAMAGE)
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn taken_items_respawn_on_schedule() {
        let w = world();
        let mut rng = Pcg32::seeded(4);
        let item = w.item_ids().next().unwrap();
        w.store.with_mut(item, 0, |e| {
            if let EntityClass::Item {
                taken, respawn_at, ..
            } = &mut e.class
            {
                *taken = true;
                *respawn_at = 5_000_000_000;
            }
        });
        let mut events = Vec::new();
        let mut work = WorkCounters::new();
        run_world_phase(
            &w,
            1_000_000_000,
            30_000_000,
            &mut rng,
            &mut events,
            &mut work,
        );
        assert!(matches!(
            w.store.snapshot(item).class,
            EntityClass::Item { taken: true, .. }
        ));
        run_world_phase(
            &w,
            6_000_000_000,
            30_000_000,
            &mut rng,
            &mut events,
            &mut work,
        );
        assert!(matches!(
            w.store.snapshot(item).class,
            EntityClass::Item { taken: false, .. }
        ));
        assert!(events.iter().any(|e| e.kind == GameEventKind::Spawn));
    }

    #[test]
    fn pending_relocation_is_applied_and_relinked() {
        let w = world();
        let mut rng = Pcg32::seeded(5);
        w.spawn_player(0, 0, &mut rng);
        settle(&w, 0);
        let dest = w.map.spawn_points[0] + vec3(400.0, 400.0, 0.0);
        w.store.with_mut(0, 0, |e| {
            if let EntityClass::Player {
                pending_relocation, ..
            } = &mut e.class
            {
                *pending_relocation = Some(dest);
            }
        });
        let mut events = Vec::new();
        let mut work = WorkCounters::new();
        run_world_phase(&w, 0, 30_000_000, &mut rng, &mut events, &mut work);
        let e = w.store.snapshot(0);
        assert_eq!(e.pos, dest);
        assert!(w.tree.node(e.linked_node).bounds.contains(&e.abs_box()));
        assert!(events.iter().any(|ev| ev.kind == GameEventKind::Teleport));
    }

    #[test]
    fn dead_players_respawn_with_full_health() {
        let w = world();
        let mut rng = Pcg32::seeded(6);
        w.spawn_player(0, 77, &mut rng);
        w.store.with_mut(0, 0, |e| {
            if let EntityClass::Player { dead, health, .. } = &mut e.class {
                *dead = true;
                *health = -10;
            }
        });
        let mut events = Vec::new();
        let mut work = WorkCounters::new();
        run_world_phase(&w, 0, 30_000_000, &mut rng, &mut events, &mut work);
        let e = w.store.snapshot(0);
        match e.class {
            EntityClass::Player {
                dead,
                health,
                client_id,
                ..
            } => {
                assert!(!dead);
                assert_eq!(health, 100);
                assert_eq!(client_id, 77);
            }
            _ => unreachable!(),
        }
        assert!(events.iter().any(|ev| ev.kind == GameEventKind::Spawn));
    }
}
