//! Player motion: the short-range component of move execution
//! (paper §2.3).
//!
//! A Quake-style ground mover: wish velocity from the command's motion
//! impulses and view yaw, ground friction and acceleration, gravity,
//! jumping, and a slide-move integrator that sweeps the player hull
//! against world BSP geometry *and* the candidate objects gathered from
//! the areanode tree, clipping velocity at each impact. After motion,
//! overlap touches trigger interactions (item pickup, teleporter pads).

use parquake_math::angles::Angles;
use parquake_math::{clampf, Aabb, Plane, Vec3};
use parquake_protocol::{Buttons, MoveCmd};

use crate::entity::{EntityClass, EntityId};
use crate::world::GameWorld;
use crate::WorkCounters;

/// Maximum horizontal ground speed (units/second).
pub const MAX_GROUND_SPEED: f32 = 320.0;
/// Ground acceleration factor.
pub const ACCELERATION: f32 = 10.0;
/// Ground friction factor.
pub const FRICTION: f32 = 4.0;
/// Speed below which friction brings players to a stop quickly.
pub const STOP_SPEED: f32 = 100.0;
/// Downward acceleration (units/second²).
pub const GRAVITY: f32 = 800.0;
/// Jump impulse.
pub const JUMP_VELOCITY: f32 = 270.0;
/// Maximum slide-move iterations per command.
pub const MAX_BUMPS: usize = 4;
/// Terminal falling speed.
pub const MAX_FALL_SPEED: f32 = 2000.0;
/// Swim speed as a fraction of ground speed (Quake's water factor).
pub const WATER_SPEED_FACTOR: f32 = 0.7;
/// Water drag.
pub const WATER_FRICTION: f32 = 4.0;
/// Passive sink rate when not swimming.
pub const WATER_SINK_SPEED: f32 = 60.0;
/// Upward impulse when swim-jumping.
pub const WATER_JUMP_VELOCITY: f32 = 100.0;
/// The player collision hull (matches the BSP `Hull::Player`
/// inflation); exported so client-side predictors use the exact box the
/// server spawns players with.
pub const PLAYER_MINS: Vec3 = Vec3::new(-16.0, -16.0, -24.0);
pub const PLAYER_MAXS: Vec3 = Vec3::new(16.0, 16.0, 32.0);

/// A world interaction triggered by motion.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum TouchEvent {
    /// The mover picked up an item.
    Pickup { item: EntityId },
    /// The mover stepped on a teleporter pad; relocation to `dest` is
    /// deferred to the world phase (see DESIGN.md §4.4).
    Teleport { dest: Vec3 },
    /// The mover bumped into another player.
    PlayerContact { other: EntityId },
}

/// The player-visible motion state the pure kernel advances: exactly
/// the fields a client can predict and the server can authoritatively
/// correct. Everything else a move touches (view angles, scores,
/// pickups) is either derived from the command or server-only.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PredictState {
    pub pos: Vec3,
    pub vel: Vec3,
    pub on_ground: bool,
}

/// What one kernel step did, besides producing the next state. The
/// counters are returned (not accumulated in-place) so the kernel has
/// no side channels — callers that meter work fold them in, callers
/// that don't (the client predictor) ignore them.
#[derive(Clone, Copy, Debug)]
pub struct KernelOutcome {
    pub state: PredictState,
    /// Slide-move iterations executed.
    pub substeps: u64,
    /// BSP trace steps spent by the kernel's own ground probe (the
    /// collide callback accounts for its own).
    pub trace_steps: u64,
}

/// The command's view pitch as committed to entity state (clamped like
/// the original client).
#[inline]
pub fn view_pitch(cmd: &MoveCmd) -> f32 {
    clampf(cmd.pitch, -89.0, 89.0)
}

/// The worst-case distance a single move command can carry a player,
/// used for the *bounding box of the move* (paper §2.3 step 1).
pub fn max_move_distance(msec: u8) -> f32 {
    let dt = msec.min(parquake_protocol::MAX_MOVE_MSEC) as f32 / 1000.0;
    // Horizontal sprint plus slack for collision epsilons.
    MAX_GROUND_SPEED * dt + 33.0
}

/// Bounding box of a move: the mover's current box expanded by the
/// maximum travel distance in every direction (vertical fall included).
pub fn move_bounding_box(ent_box: &Aabb, vel: Vec3, msec: u8) -> Aabb {
    let dt = msec.min(parquake_protocol::MAX_MOVE_MSEC) as f32 / 1000.0;
    let d = max_move_distance(msec);
    let fall = (vel.z.abs().min(MAX_FALL_SPEED) + GRAVITY * dt) * dt + 8.0;
    ent_box.inflated(Vec3::new(d, d, d.max(fall)))
}

/// Execute one move command for `mover`. `candidates` are the entity
/// ids gathered from the areanode traversal (claimed by the caller);
/// touch events are appended to `touched`, work to `work`. Entity state
/// for the mover and touched items is mutated through the store under
/// `task`'s claims. The mover is *not* relinked — the caller owns that.
#[allow(clippy::too_many_arguments)]
pub fn run_move(
    world: &GameWorld,
    task: u32,
    mover: EntityId,
    cmd: &MoveCmd,
    candidates: &[EntityId],
    now: u64,
    touched: &mut Vec<TouchEvent>,
    work: &mut WorkCounters,
) {
    let dt = cmd.duration_secs();
    if dt <= 0.0 {
        return;
    }
    let me = world.store.snapshot(mover);
    if !me.is_live_player() {
        return;
    }

    // Advance the shared kernel, clipping against world geometry plus
    // the gathered candidates. The kernel itself is candidate-agnostic:
    // a client predictor drives the very same float ops with a
    // world-only collide callback and lands bit-identically whenever no
    // object impact wins.
    let out = step_kernel(
        &world.map,
        PredictState {
            pos: me.pos,
            vel: me.vel,
            on_ground: me.on_ground,
        },
        cmd,
        &mut |pos, delta| nearest_hit(world, mover, pos, me.mins, me.maxs, delta, candidates, work),
    );
    work.substeps += out.substeps;
    work.trace_steps += out.trace_steps;
    let PredictState {
        pos,
        vel,
        on_ground,
    } = out.state;
    let yaw = cmd.yaw;
    let pitch = view_pitch(cmd);

    // Commit motion.
    world.store.with_mut(mover, task, |e| {
        e.pos = pos;
        e.vel = vel;
        e.yaw = yaw;
        e.pitch = pitch;
        e.on_ground = on_ground;
    });

    // Touch interactions at the final position. The probe box is
    // slightly inflated because slide-move backs impacts off by the
    // collision epsilon — a player pressed against another should
    // still register contact.
    let my_box = Aabb::new(pos + me.mins, pos + me.maxs).inflated(Vec3::splat(2.0));
    for &cand in candidates {
        if cand == mover {
            continue;
        }
        let other = world.store.snapshot(cand);
        if !other.active {
            continue;
        }
        work.object_tests += 1;
        if !my_box.intersects(&other.abs_box()) {
            continue;
        }
        match other.class {
            EntityClass::Item {
                class,
                taken: false,
                ..
            } => {
                work.interactions += 1;
                world.store.with_mut(cand, task, |e| {
                    if let EntityClass::Item {
                        taken, respawn_at, ..
                    } = &mut e.class
                    {
                        *taken = true;
                        *respawn_at = now + class.respawn_ns();
                    }
                });
                world.store.with_mut(mover, task, |e| {
                    if let EntityClass::Player { health, score, .. } = &mut e.class {
                        *score += 1;
                        if class == crate::entity::ItemClass::Health {
                            *health = (*health + 25).min(200);
                        }
                    }
                });
                touched.push(TouchEvent::Pickup { item: cand });
            }
            EntityClass::Teleporter { dest } => {
                work.interactions += 1;
                world.store.with_mut(mover, task, |e| {
                    if let EntityClass::Player {
                        pending_relocation, ..
                    } = &mut e.class
                    {
                        *pending_relocation = Some(dest);
                    }
                });
                touched.push(TouchEvent::Teleport { dest });
            }
            EntityClass::Player { .. } if other.is_live_player() => {
                touched.push(TouchEvent::PlayerContact { other: cand });
            }
            _ => {}
        }
    }
}

/// Advance one move command through the pure movement physics: wish
/// velocity, friction/acceleration (ground, air, water), jumping,
/// gravity, the slide-move integrator, the downward ground probe and
/// the NaN guard. `collide` resolves the earliest impact along a swept
/// segment — the server passes world + claimed candidates
/// ([`nearest_hit`] semantics), while the client predictor and the
/// server's reconciliation shadow pass [`world_only_hit`]. Both paths
/// execute the *same* float operations in the same order, so their
/// results are bit-identical whenever no object impact wins.
pub fn step_kernel(
    map: &parquake_bsp::BspWorld,
    state: PredictState,
    cmd: &MoveCmd,
    collide: &mut dyn FnMut(Vec3, Vec3) -> (f32, Vec3),
) -> KernelOutcome {
    let mut out = KernelOutcome {
        state,
        substeps: 0,
        trace_steps: 0,
    };
    let dt = cmd.duration_secs();
    if dt <= 0.0 {
        return out;
    }
    let mut pos = state.pos;
    let mut vel = state.vel;
    let mut on_ground = state.on_ground;
    let yaw = cmd.yaw;
    let pitch = view_pitch(cmd);

    let submerged = map.in_water(pos);

    // Wish velocity: horizontal on land, full 3D while swimming (the
    // view pitch steers vertical motion in water, as in the original).
    let (f, r, _) = if submerged {
        Angles::new(pitch, yaw, 0.0).basis()
    } else {
        Angles::yawed(yaw).basis()
    };
    let mut wish = f * cmd.forward + r * cmd.side;
    if !submerged {
        wish.z = 0.0;
    }
    let wish_speed = wish
        .length()
        .min(MAX_GROUND_SPEED * if submerged { WATER_SPEED_FACTOR } else { 1.0 });
    let wish_dir = wish.normalized();

    if submerged {
        // Water movement: drag in all axes, no gravity, slow sink.
        let speed = vel.length();
        if speed > 0.0 {
            let drop = speed.max(STOP_SPEED * 0.5) * WATER_FRICTION * dt;
            let scale = ((speed - drop).max(0.0)) / speed;
            vel = vel * scale;
        }
        let current = vel.dot(wish_dir);
        let add = (wish_speed - current)
            .max(0.0)
            .min(ACCELERATION * wish_speed * dt);
        vel = vel.mul_add(wish_dir, add);
        if Buttons(cmd.buttons.0).has(Buttons::JUMP) {
            vel.z = WATER_JUMP_VELOCITY;
        } else if wish_speed < 1.0 {
            vel.z -= WATER_SINK_SPEED * dt;
        }
        on_ground = false;
    } else if on_ground {
        // Ground friction.
        let speed = vel.length_xy();
        if speed > 0.0 {
            let control = speed.max(STOP_SPEED);
            let drop = control * FRICTION * dt;
            let scale = ((speed - drop).max(0.0)) / speed;
            vel.x *= scale;
            vel.y *= scale;
        }
        // Ground acceleration towards the wish direction.
        let current = vel.dot(wish_dir);
        let add = (wish_speed - current)
            .max(0.0)
            .min(ACCELERATION * wish_speed * dt);
        vel = vel.mul_add(wish_dir, add);
        // Jump.
        if Buttons(cmd.buttons.0).has(Buttons::JUMP) {
            vel.z = JUMP_VELOCITY;
            on_ground = false;
        }
    } else {
        // Weak air control, full gravity.
        let current = vel.dot(wish_dir);
        let add = (wish_speed - current)
            .max(0.0)
            .min(ACCELERATION * 0.1 * wish_speed * dt);
        vel = vel.mul_add(wish_dir, add);
    }
    if !on_ground && !submerged {
        vel.z = (vel.z - GRAVITY * dt).max(-MAX_FALL_SPEED);
    }

    // Slide move: clip against whatever `collide` reports.
    let mut time_left = dt;
    for _bump in 0..MAX_BUMPS {
        if time_left <= 0.0 || vel.length_sq() < 1e-6 {
            break;
        }
        out.substeps += 1;
        let delta = vel * time_left;
        let (frac, normal) = collide(pos, delta);
        pos = pos.mul_add(delta, frac);
        if frac >= 1.0 {
            break;
        }
        // Clip velocity and spend the consumed time.
        time_left *= 1.0 - frac;
        let plane = Plane::new(normal, 0.0);
        vel = plane.clip_velocity(vel, 1.0);
        // (grounding is decided by the probe below, not the bump plane)
    }

    // Ground re-check: a short downward probe. World-only on purpose —
    // standing on another player's head does not count as grounded —
    // which is also what keeps this probe predictable client-side.
    {
        let probe = Vec3::new(0.0, 0.0, -2.0);
        let tr = map.trace(parquake_bsp::Hull::Player, pos, pos + probe);
        out.trace_steps += tr.steps as u64;
        on_ground = tr.hit() && tr.plane.normal.z > 0.7;
        if on_ground && vel.z < 0.0 {
            vel.z = 0.0;
        }
    }

    if !pos.is_finite() || !vel.is_finite() {
        // Defensive: never let NaNs escape into shared state.
        pos = state.pos;
        vel = Vec3::ZERO;
    }

    out.state = PredictState {
        pos,
        vel,
        on_ground,
    };
    out
}

/// [`step_kernel`] against world geometry only — the collide path of
/// the client predictor and the server's reconciliation shadow.
pub fn step_world_only(
    map: &parquake_bsp::BspWorld,
    state: PredictState,
    cmd: &MoveCmd,
) -> PredictState {
    let mut scratch = 0u64;
    step_kernel(map, state, cmd, &mut |pos, delta| {
        world_only_hit(map, pos, delta, &mut scratch)
    })
    .state
}

/// Back the raw best-impact fraction off by the collision epsilon, or
/// report a clear path. Shared by every collide implementation so the
/// server and the predictor stay bit-identical.
#[inline]
fn finish_hit(best: f32, normal: Vec3, delta: Vec3) -> (f32, Vec3) {
    if best >= 1.0 {
        return (1.0, Vec3::ZERO); // clear path: no clipping plane
    }
    let len = delta.length();
    (Aabb::backed_off(best, len).min(1.0), normal)
}

/// Earliest impact along `delta` against world geometry alone. Same
/// back-off contract as [`nearest_hit`]; trace steps are accumulated
/// into `trace_steps`.
pub fn world_only_hit(
    map: &parquake_bsp::BspWorld,
    pos: Vec3,
    delta: Vec3,
    trace_steps: &mut u64,
) -> (f32, Vec3) {
    let tr = map.trace(parquake_bsp::Hull::Player, pos, pos + delta);
    *trace_steps += tr.steps as u64;
    finish_hit(tr.fraction, tr.plane.normal, delta)
}

/// Earliest impact along `delta`: world geometry vs candidate objects.
/// Returns `(fraction, hit normal)`; fraction 1.0 = clear path.
#[allow(clippy::too_many_arguments)]
fn nearest_hit(
    world: &GameWorld,
    mover: EntityId,
    pos: Vec3,
    mins: Vec3,
    maxs: Vec3,
    delta: Vec3,
    candidates: &[EntityId],
    work: &mut WorkCounters,
) -> (f32, Vec3) {
    // World: swept player hull via the pre-inflated clip hull.
    let tr = world
        .map
        .trace(parquake_bsp::Hull::Player, pos, pos + delta);
    work.trace_steps += tr.steps as u64;
    let mut best = tr.fraction;
    let mut normal = tr.plane.normal;

    // Objects: swept AABB tests against solid candidates (players).
    let my_box = Aabb::new(pos + mins, pos + maxs);
    for &cand in candidates {
        if cand == mover {
            continue;
        }
        let other = world.store.snapshot(cand);
        if !other.active || !matches!(other.class, EntityClass::Player { dead: false, .. }) {
            continue; // items/pads are triggers, not solids
        }
        work.object_tests += 1;
        if let Some((t, n)) = my_box.sweep_hit_with_normal(delta, &other.abs_box()) {
            if t < best {
                best = t;
                normal = n;
            }
        }
    }
    finish_hit(best, normal, delta)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entity::Entity;
    use parquake_bsp::mapgen::MapGenConfig;
    use parquake_math::vec3::vec3;
    use parquake_math::Pcg32;
    use std::sync::Arc;

    fn world() -> GameWorld {
        let map = Arc::new(MapGenConfig::open_hall(7).generate());
        GameWorld::new(map, 4, 8)
    }

    fn spawn(w: &GameWorld, idx: u16) -> EntityId {
        let mut rng = Pcg32::seeded(idx as u64 + 1);
        w.spawn_player(idx, idx as u32, &mut rng)
    }

    fn walk(w: &GameWorld, id: EntityId, yaw: f32, frames: usize) -> Entity {
        let mut touched = Vec::new();
        let mut work = WorkCounters::new();
        for i in 0..frames {
            let cmd = MoveCmd {
                seq: i as u32,
                sent_at: 0,
                pitch: 0.0,
                yaw,
                forward: MAX_GROUND_SPEED,
                side: 0.0,
                up: 0.0,
                buttons: Buttons::NONE,
                msec: 30,
                predict_ack: None,
            };
            run_move(w, 0, id, &cmd, &[], 0, &mut touched, &mut work);
            w.relink_unlocked(id);
        }
        w.store.snapshot(id)
    }

    #[test]
    fn player_settles_onto_floor() {
        let w = world();
        let id = spawn(&w, 0);
        let e = walk(&w, id, 0.0, 30);
        assert!(e.on_ground, "not grounded after 30 frames: {:?}", e.pos);
        // Feet (origin - 24) just above the floor plane z = 0.
        assert!(e.pos.z > 23.0 && e.pos.z < 26.0, "z = {}", e.pos.z);
    }

    #[test]
    fn walking_moves_in_yaw_direction() {
        let w = world();
        let id = spawn(&w, 0);
        let before = walk(&w, id, 0.0, 20); // settle + accelerate east
        let after = walk(&w, id, 0.0, 20);
        assert!(after.pos.x > before.pos.x + 50.0, "no eastward progress");
        assert!((after.pos.y - before.pos.y).abs() < 30.0);
    }

    #[test]
    fn speed_is_capped() {
        let w = world();
        let id = spawn(&w, 0);
        let e = walk(&w, id, 90.0, 60);
        assert!(
            e.vel.length_xy() <= MAX_GROUND_SPEED + 1.0,
            "speed {} over cap",
            e.vel.length_xy()
        );
    }

    #[test]
    fn walls_stop_motion() {
        let w = world();
        let id = spawn(&w, 0);
        // Walk east for many frames: must stop at the arena wall, inside
        // bounds, not tunnel through.
        let e = walk(&w, id, 0.0, 400);
        assert!(w.map.bounds.contains_point(e.pos), "escaped: {:?}", e.pos);
        assert!(w.map.player_fits(e.pos), "embedded in wall: {:?}", e.pos);
    }

    #[test]
    fn jump_leaves_ground() {
        let w = world();
        let id = spawn(&w, 0);
        walk(&w, id, 0.0, 30); // settle
        let mut touched = Vec::new();
        let mut work = WorkCounters::new();
        let cmd = MoveCmd {
            buttons: Buttons(Buttons::JUMP),
            ..MoveCmd::idle(0, 30)
        };
        run_move(&w, 0, id, &cmd, &[], 0, &mut touched, &mut work);
        let e = w.store.snapshot(id);
        assert!(!e.on_ground);
        assert!(e.vel.z > 200.0);
    }

    #[test]
    fn friction_stops_player() {
        let w = world();
        let id = spawn(&w, 0);
        walk(&w, id, 0.0, 30); // get moving
                               // Now coast with no input.
        let mut touched = Vec::new();
        let mut work = WorkCounters::new();
        for i in 0..60 {
            run_move(
                &w,
                0,
                id,
                &MoveCmd::idle(i, 30),
                &[],
                0,
                &mut touched,
                &mut work,
            );
        }
        let e = w.store.snapshot(id);
        assert!(e.vel.length_xy() < 5.0, "still moving at {:?}", e.vel);
    }

    #[test]
    fn players_collide_with_candidates() {
        let w = world();
        let a = spawn(&w, 0);
        let b = spawn(&w, 1);
        walk(&w, a, 0.0, 30);
        // Park B right in front of A.
        let pa = w.store.snapshot(a);
        w.store.with_mut(b, 0, |e| {
            e.pos = pa.pos + vec3(64.0, 0.0, 0.0);
            e.on_ground = true;
        });
        w.relink_unlocked(b);
        let mut touched = Vec::new();
        let mut work = WorkCounters::new();
        let cmd = MoveCmd {
            yaw: 0.0,
            forward: MAX_GROUND_SPEED,
            ..MoveCmd::idle(0, 100)
        };
        for _ in 0..5 {
            run_move(&w, 0, a, &cmd, &[b], 0, &mut touched, &mut work);
        }
        let pa2 = w.store.snapshot(a);
        let pb = w.store.snapshot(b);
        // A cannot pass through B: it stops short (boxes are 32 wide).
        assert!(
            pa2.pos.x <= pb.pos.x - 30.0,
            "A at {:?} overran B at {:?}",
            pa2.pos,
            pb.pos
        );
        assert!(touched.contains(&TouchEvent::PlayerContact { other: b }));
        assert!(work.object_tests > 0);
    }

    #[test]
    fn pickup_marks_item_taken_and_scores() {
        let w = world();
        let id = spawn(&w, 0);
        walk(&w, id, 0.0, 30);
        let item = w.item_ids().next().unwrap();
        let me = w.store.snapshot(id);
        // Drop the item onto the player.
        w.store
            .with_mut(item, 0, |e| e.pos = me.pos + vec3(0.0, 0.0, -20.0));
        let mut touched = Vec::new();
        let mut work = WorkCounters::new();
        run_move(
            &w,
            0,
            id,
            &MoveCmd::idle(0, 30),
            &[item],
            1000,
            &mut touched,
            &mut work,
        );
        assert!(touched.contains(&TouchEvent::Pickup { item }));
        let it = w.store.snapshot(item);
        match it.class {
            EntityClass::Item {
                taken, respawn_at, ..
            } => {
                assert!(taken);
                assert!(respawn_at > 1000);
            }
            _ => unreachable!(),
        }
        if let EntityClass::Player { score, .. } = w.store.snapshot(id).class {
            assert_eq!(score, 1);
        }
        // A second pass must not pick it up again.
        touched.clear();
        run_move(
            &w,
            0,
            id,
            &MoveCmd::idle(1, 30),
            &[item],
            2000,
            &mut touched,
            &mut work,
        );
        assert!(!touched.contains(&TouchEvent::Pickup { item }));
    }

    #[test]
    fn teleporter_touch_defers_relocation() {
        // open_hall has a single room and therefore no teleporters;
        // use the maze arena.
        let map = Arc::new(MapGenConfig::small_arena(13).generate());
        let w = GameWorld::new(map, 4, 8);
        let id = spawn(&w, 0);
        walk(&w, id, 0.0, 30);
        let tele = (w.item_ids().end..w.store.capacity() as u16)
            .find(|&i| matches!(w.store.snapshot(i).class, EntityClass::Teleporter { .. }))
            .expect("open_hall has teleporters");
        // Stop the player dead on the pad so the idle move stays put.
        w.store.with_mut(id, 0, |e| e.vel = Vec3::ZERO);
        let me = w.store.snapshot(id);
        w.store
            .with_mut(tele, 0, |e| e.pos = me.pos + vec3(0.0, 0.0, -24.0));
        let mut touched = Vec::new();
        let mut work = WorkCounters::new();
        run_move(
            &w,
            0,
            id,
            &MoveCmd::idle(0, 30),
            &[tele],
            0,
            &mut touched,
            &mut work,
        );
        assert!(touched
            .iter()
            .any(|t| matches!(t, TouchEvent::Teleport { .. })));
        match w.store.snapshot(id).class {
            EntityClass::Player {
                pending_relocation, ..
            } => {
                assert!(pending_relocation.is_some())
            }
            _ => unreachable!(),
        }
        // Position unchanged until the world phase applies it.
        assert_eq!(w.store.snapshot(id).pos, me.pos);
    }

    #[test]
    fn move_bounding_box_covers_actual_motion() {
        let w = world();
        let id = spawn(&w, 0);
        walk(&w, id, 45.0, 30);
        let before = w.store.snapshot(id);
        let bbox = move_bounding_box(&before.abs_box(), before.vel, 30);
        let mut touched = Vec::new();
        let mut work = WorkCounters::new();
        let cmd = MoveCmd {
            yaw: 45.0,
            forward: MAX_GROUND_SPEED,
            side: 0.0,
            ..MoveCmd::idle(0, 30)
        };
        run_move(&w, 0, id, &cmd, &[], 0, &mut touched, &mut work);
        let after = w.store.snapshot(id);
        assert!(
            bbox.contains(&after.abs_box()),
            "motion escaped its bounding box: {:?} not in {:?}",
            after.abs_box(),
            bbox
        );
    }

    #[test]
    fn kernel_matches_run_move_bit_for_bit_without_candidates() {
        // The client predictor replays inputs through step_world_only;
        // reconciliation only converges if that path produces *exactly*
        // the floats run_move commits when no object impact interferes.
        // Drive a varied command stream (walk, turn, jump, coast, fall)
        // through both and require bit equality at every step.
        let w = world();
        let id = spawn(&w, 0);
        let me = w.store.snapshot(id);
        let mut shadow = PredictState {
            pos: me.pos,
            vel: me.vel,
            on_ground: me.on_ground,
        };
        let mut touched = Vec::new();
        let mut work = WorkCounters::new();
        let mut rng = Pcg32::seeded(0xBEEF);
        for i in 0..400u32 {
            let cmd = MoveCmd {
                seq: i,
                sent_at: 0,
                pitch: rng.range_f32(-30.0, 30.0),
                yaw: rng.range_f32(-180.0, 180.0),
                forward: if i % 7 == 3 { 0.0 } else { MAX_GROUND_SPEED },
                side: if i % 5 == 0 { -MAX_GROUND_SPEED } else { 0.0 },
                up: 0.0,
                buttons: if i % 11 == 4 {
                    Buttons(Buttons::JUMP)
                } else {
                    Buttons::NONE
                },
                msec: 15 + (i % 3) as u8 * 15,
                predict_ack: None,
            };
            run_move(&w, 0, id, &cmd, &[], 0, &mut touched, &mut work);
            w.relink_unlocked(id);
            shadow = step_world_only(&w.map, shadow, &cmd);
            let e = w.store.snapshot(id);
            assert_eq!(
                (e.pos, e.vel, e.on_ground),
                (shadow.pos, shadow.vel, shadow.on_ground),
                "kernel diverged from run_move at step {i}"
            );
        }
    }

    #[test]
    fn dead_players_do_not_move() {
        let w = world();
        let id = spawn(&w, 0);
        w.store.with_mut(id, 0, |e| {
            if let EntityClass::Player { dead, .. } = &mut e.class {
                *dead = true;
            }
        });
        let before = w.store.snapshot(id).pos;
        let mut touched = Vec::new();
        let mut work = WorkCounters::new();
        let cmd = MoveCmd {
            forward: MAX_GROUND_SPEED,
            ..MoveCmd::idle(0, 50)
        };
        run_move(&w, 0, id, &cmd, &[], 0, &mut touched, &mut work);
        assert_eq!(w.store.snapshot(id).pos, before);
    }
}
