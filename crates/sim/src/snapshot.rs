//! World checkpointing: serialize and restore the full mutable entity
//! state of a [`GameWorld`].
//!
//! The arena supervisor (crates/arena) periodically snapshots each
//! world so a panicked or wedged arena can be respawned from its last
//! good frame. The codec is deliberately dumb: a fixed header and then
//! every entity slot in index order, little-endian, no compression.
//! Static state (the compiled map, the areanode tree geometry) is NOT
//! serialized — a restore target must be a world built over the same
//! map with the same capacity, which the header verifies.
//!
//! The contract that matters is **world-hash identity**: for any world
//! `w`, `w.restore_bytes(&w.snapshot_bytes())` leaves `world_hash()`
//! unchanged, and restoring an older snapshot onto a diverged world
//! yields exactly the snapshot-time hash. Links are rebuilt from the
//! serialized `linked`/`linked_node` flags, so `audit_links()` holds
//! after a restore whenever it held at snapshot time.

use parquake_math::vec3::vec3;
use parquake_math::Vec3;

use crate::entity::{Entity, EntityClass, EntityId, ItemClass};
use crate::world::GameWorld;

/// Codec magic ("PQW" + version). Bump the last byte on layout change.
const MAGIC: u32 = 0x50_51_57_01;

/// Magic for a single-player transfer capsule ("PQP" + version) —
/// deliberately distinct from [`MAGIC`] so a whole-world checkpoint can
/// never be mistaken for one migrating player or vice versa.
const PLAYER_MAGIC: u32 = 0x50_51_50_01;

/// Append-only little-endian writer.
struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn i32(&mut self, v: i32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn f32(&mut self, v: f32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn vec3(&mut self, v: Vec3) {
        self.f32(v.x);
        self.f32(v.y);
        self.f32(v.z);
    }
    fn bool(&mut self, v: bool) {
        self.u8(u8::from(v));
    }
}

/// Checked little-endian reader over a snapshot buffer.
struct Dec<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Dec<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        let end = self
            .at
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| format!("snapshot truncated at byte {}", self.at))?;
        let s = &self.buf[self.at..end];
        self.at = end;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }
    fn u16(&mut self) -> Result<u16, String> {
        // lockcheck: panic-site(take(N) returned exactly N bytes, so the array conversion cannot fail)
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }
    fn u32(&mut self) -> Result<u32, String> {
        // lockcheck: panic-site(take(N) returned exactly N bytes, so the array conversion cannot fail)
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> Result<u64, String> {
        // lockcheck: panic-site(take(N) returned exactly N bytes, so the array conversion cannot fail)
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn i32(&mut self) -> Result<i32, String> {
        // lockcheck: panic-site(take(N) returned exactly N bytes, so the array conversion cannot fail)
        Ok(i32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn f32(&mut self) -> Result<f32, String> {
        // lockcheck: panic-site(take(N) returned exactly N bytes, so the array conversion cannot fail)
        Ok(f32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn vec3(&mut self) -> Result<Vec3, String> {
        Ok(vec3(self.f32()?, self.f32()?, self.f32()?))
    }
    fn bool(&mut self) -> Result<bool, String> {
        Ok(self.u8()? != 0)
    }
}

fn item_class_byte(c: ItemClass) -> u8 {
    // Inverse of ItemClass::from_class_byte's `b % 5` mapping.
    match c {
        ItemClass::Health => 0,
        ItemClass::Armor => 1,
        ItemClass::Ammo => 2,
        ItemClass::Weapon => 3,
        ItemClass::Powerup => 4,
    }
}

fn encode_entity(e: &Entity, enc: &mut Enc) {
    enc.u16(e.id);
    match e.class {
        EntityClass::Player {
            client_id,
            health,
            score,
            dead,
            pending_relocation,
        } => {
            enc.u8(0);
            enc.u32(client_id);
            enc.i32(health);
            enc.i32(score);
            enc.bool(dead);
            match pending_relocation {
                Some(p) => {
                    enc.u8(1);
                    enc.vec3(p);
                }
                None => enc.u8(0),
            }
        }
        EntityClass::Item {
            class,
            respawn_at,
            taken,
        } => {
            enc.u8(1);
            enc.u8(item_class_byte(class));
            enc.u64(respawn_at);
            enc.bool(taken);
        }
        EntityClass::Projectile {
            owner,
            expire_at,
            live,
        } => {
            enc.u8(2);
            enc.u16(owner);
            enc.u64(expire_at);
            enc.bool(live);
        }
        EntityClass::Teleporter { dest } => {
            enc.u8(3);
            enc.vec3(dest);
        }
    }
    enc.vec3(e.pos);
    enc.vec3(e.vel);
    enc.f32(e.yaw);
    enc.f32(e.pitch);
    enc.bool(e.on_ground);
    enc.vec3(e.mins);
    enc.vec3(e.maxs);
    enc.u32(e.linked_node);
    enc.bool(e.linked);
    enc.bool(e.active);
}

fn decode_entity(dec: &mut Dec) -> Result<Entity, String> {
    let id = dec.u16()?;
    let class = match dec.u8()? {
        0 => EntityClass::Player {
            client_id: dec.u32()?,
            health: dec.i32()?,
            score: dec.i32()?,
            dead: dec.bool()?,
            pending_relocation: if dec.u8()? != 0 {
                Some(dec.vec3()?)
            } else {
                None
            },
        },
        1 => EntityClass::Item {
            class: ItemClass::from_class_byte(dec.u8()?),
            respawn_at: dec.u64()?,
            taken: dec.bool()?,
        },
        2 => EntityClass::Projectile {
            owner: dec.u16()?,
            expire_at: dec.u64()?,
            live: dec.bool()?,
        },
        3 => EntityClass::Teleporter { dest: dec.vec3()? },
        t => return Err(format!("unknown entity class tag {t}")),
    };
    Ok(Entity {
        id,
        class,
        pos: dec.vec3()?,
        vel: dec.vec3()?,
        yaw: dec.f32()?,
        pitch: dec.f32()?,
        on_ground: dec.bool()?,
        mins: dec.vec3()?,
        maxs: dec.vec3()?,
        linked_node: dec.u32()?,
        linked: dec.bool()?,
        active: dec.bool()?,
    })
}

impl GameWorld {
    /// Serialize every entity slot (active or not) into a checkpoint
    /// buffer. Single-threaded contexts only — the caller must hold the
    /// world quiescent (the arena supervisor snapshots between frames,
    /// under the pool claim).
    pub fn snapshot_bytes(&self) -> Vec<u8> {
        let cap = self.store.capacity();
        let mut enc = Enc {
            // Header + a generous per-entity estimate; avoids regrowth.
            buf: Vec::with_capacity(8 + cap * 96),
        };
        enc.u32(MAGIC);
        enc.u32(cap as u32);
        for id in 0..cap as EntityId {
            encode_entity(&self.store.snapshot(id), &mut enc);
        }
        enc.buf
    }

    /// Overwrite this world's entity state from a snapshot taken on a
    /// world of identical capacity, rebuilding the link table to match.
    /// Single-threaded contexts only. On error the world is left
    /// unchanged (all validation happens before any mutation).
    pub fn restore_bytes(&self, bytes: &[u8]) -> Result<(), String> {
        let mut dec = Dec { buf: bytes, at: 0 };
        let magic = dec.u32()?;
        if magic != MAGIC {
            return Err(format!("bad snapshot magic {magic:#010x}"));
        }
        let cap = dec.u32()? as usize;
        if cap != self.store.capacity() {
            return Err(format!(
                "snapshot capacity {cap} != world capacity {}",
                self.store.capacity()
            ));
        }
        // Decode everything first so a truncated buffer cannot leave
        // the world half-restored.
        let mut ents = Vec::with_capacity(cap);
        for id in 0..cap as EntityId {
            let e = decode_entity(&mut dec)?;
            if e.id != id {
                return Err(format!("snapshot slot {id} holds entity {}", e.id));
            }
            ents.push(e);
        }
        // Unlink the present, install the snapshot, relink its links.
        for id in 0..cap as EntityId {
            let cur = self.store.snapshot(id);
            if cur.linked {
                self.links.remove(cur.linked_node, 0, id as u32);
            }
        }
        for e in ents {
            let id = e.id;
            let linked = e.linked;
            let node = e.linked_node;
            self.store.init(id, e);
            if linked {
                self.links.push(node, 0, id as u32);
            }
        }
        Ok(())
    }

    /// Serialize the single player entity in slot `idx` into a transfer
    /// capsule for cross-arena migration. Single-threaded contexts only
    /// (the migration path holds both arenas' pool claims). The slot
    /// must hold an active player.
    pub fn snapshot_player_bytes(&self, idx: u16) -> Result<Vec<u8>, String> {
        if idx >= self.max_players() {
            return Err(format!("slot {idx} is not a player slot"));
        }
        let e = self.store.snapshot(self.player_slot(idx));
        if !e.active {
            return Err(format!("player slot {idx} is inactive"));
        }
        if !matches!(e.class, EntityClass::Player { .. }) {
            return Err(format!("slot {idx} does not hold a player entity"));
        }
        let mut enc = Enc {
            buf: Vec::with_capacity(4 + 96),
        };
        enc.u32(PLAYER_MAGIC);
        encode_entity(&e, &mut enc);
        Ok(enc.buf)
    }

    /// Install a migrated player capsule into slot `idx` of this world.
    /// The capsule's entity id is rewritten to the target slot — a
    /// migration may land in a different slot index than it left — and
    /// the entity is linked at its serialized areanode (worlds in one
    /// directory share map and tree shape, exactly the cross-world
    /// restore contract of [`GameWorld::restore_bytes`]). On error the
    /// world is left unchanged (all validation happens before any
    /// mutation, including rejecting an occupied target slot).
    pub fn restore_player_bytes(&self, idx: u16, bytes: &[u8]) -> Result<(), String> {
        let mut dec = Dec { buf: bytes, at: 0 };
        let magic = dec.u32()?;
        if magic != PLAYER_MAGIC {
            return Err(format!("bad player capsule magic {magic:#010x}"));
        }
        let e = decode_entity(&mut dec)?;
        if dec.at != bytes.len() {
            return Err(format!(
                "player capsule has {} trailing bytes",
                bytes.len() - dec.at
            ));
        }
        if !matches!(e.class, EntityClass::Player { .. }) {
            return Err("player capsule does not hold a player entity".into());
        }
        if !e.active {
            return Err("player capsule holds an inactive entity".into());
        }
        if idx >= self.max_players() {
            return Err(format!("slot {idx} is not a player slot"));
        }
        let id = self.player_slot(idx);
        let cur = self.store.snapshot(id);
        if cur.active {
            return Err(format!("target player slot {idx} is occupied"));
        }
        if e.linked && e.linked_node >= self.tree.node_count() as u32 {
            return Err(format!(
                "player capsule links node {} beyond this world's tree",
                e.linked_node
            ));
        }
        // Validation done — mutate. The target slot is inactive, and
        // despawn always unlinks, but unlink defensively anyway so a
        // stale link can never be duplicated.
        if cur.linked {
            self.links.remove(cur.linked_node, 0, id as u32);
        }
        let linked = e.linked;
        let node = e.linked_node;
        self.store.init(id, Entity { id, ..e });
        if linked {
            self.links.push(node, 0, id as u32);
        }
        Ok(())
    }

    /// Slot-index-independent hash of one player entity: the FNV mix of
    /// its encoded bytes with the id field zeroed, so a capsule that
    /// lands in a different slot of the target world still proves
    /// byte-identical transfer. Inactive slots hash to 0.
    pub fn player_hash(&self, idx: u16) -> u64 {
        let e = self.store.snapshot(self.player_slot(idx));
        if !e.active {
            return 0;
        }
        let mut enc = Enc {
            buf: Vec::with_capacity(96),
        };
        encode_entity(&e, &mut enc);
        enc.buf[0] = 0;
        enc.buf[1] = 0;
        let mut h: u64 = 0xcbf29ce484222325;
        for b in enc.buf {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use parquake_bsp::mapgen::MapGenConfig;
    use parquake_math::Pcg32;

    use super::*;

    fn world(players: u16) -> GameWorld {
        let map = Arc::new(MapGenConfig::small_arena(11).generate());
        GameWorld::new(map, 4, players)
    }

    /// Drive the world through `steps` cheap deterministic mutations so
    /// snapshots cover moved, despawned and respawned entities. Moves
    /// draw from `rng`, so two churn segments over the same ops still
    /// diverge (the stream position differs).
    fn churn(w: &GameWorld, steps: u32, rng: &mut Pcg32) {
        let n = w.max_players() as u32;
        for s in 0..steps {
            // Multiplier coprime to any power-of-two player count, so
            // every op kind reaches every slot as `s` advances.
            let idx = (s.wrapping_mul(7).wrapping_add(s / 4) % n) as u16;
            match s % 4 {
                0 => {
                    w.spawn_player(idx, 100 + idx as u32, rng);
                }
                1 => {
                    for p in 0..n as u16 {
                        if w.store.snapshot(p).active {
                            w.store.with_mut(p, 0, |e| {
                                e.pos.x += rng.range_f32(-40.0, 40.0);
                                e.pos.y += rng.range_f32(-40.0, 40.0);
                            });
                            w.relink_unlocked(p);
                        }
                    }
                }
                2 => {
                    if let Some(item) = w.item_ids().next() {
                        w.store.with_mut(item, 0, |e| {
                            if let EntityClass::Item { taken, .. } = &mut e.class {
                                *taken = !*taken;
                            }
                        });
                    }
                }
                _ => w.despawn_player(idx),
            }
        }
    }

    #[test]
    fn snapshot_restore_is_world_hash_identical() {
        let w = world(8);
        let mut rng = Pcg32::seeded(42);
        churn(&w, 37, &mut rng);
        let hash = w.world_hash();
        let bytes = w.snapshot_bytes();
        w.restore_bytes(&bytes).unwrap();
        assert_eq!(w.world_hash(), hash);
        w.audit_links().unwrap();
    }

    #[test]
    fn restore_rolls_back_a_diverged_world() {
        let w = world(8);
        let mut rng = Pcg32::seeded(43);
        churn(&w, 20, &mut rng);
        let hash_at_f = w.world_hash();
        let bytes = w.snapshot_bytes();
        // Diverge well past the checkpoint.
        churn(&w, 55, &mut rng);
        assert_ne!(w.world_hash(), hash_at_f);
        w.restore_bytes(&bytes).unwrap();
        assert_eq!(w.world_hash(), hash_at_f);
        w.audit_links().unwrap();
    }

    #[test]
    fn restore_rejects_garbage_without_mutating() {
        let w = world(4);
        let mut rng = Pcg32::seeded(44);
        churn(&w, 9, &mut rng);
        let hash = w.world_hash();

        assert!(w.restore_bytes(&[1, 2, 3]).is_err());
        let mut bad_magic = w.snapshot_bytes();
        bad_magic[0] ^= 0xFF;
        assert!(w.restore_bytes(&bad_magic).is_err());
        let mut truncated = w.snapshot_bytes();
        truncated.truncate(truncated.len() - 5);
        assert!(w.restore_bytes(&truncated).is_err());
        let other = world(6); // different capacity
        assert!(w.restore_bytes(&other.snapshot_bytes()).is_err());

        assert_eq!(w.world_hash(), hash, "failed restore mutated the world");
        w.audit_links().unwrap();
    }

    #[test]
    fn restore_crosses_worlds_of_equal_shape() {
        let a = world(8);
        let b = world(8);
        let mut rng = Pcg32::seeded(45);
        churn(&a, 31, &mut rng);
        b.restore_bytes(&a.snapshot_bytes()).unwrap();
        assert_eq!(b.world_hash(), a.world_hash());
        b.audit_links().unwrap();
    }

    #[test]
    fn player_capsule_crosses_worlds_hash_identical() {
        let a = world(8);
        let b = world(8);
        let mut rng = Pcg32::seeded(46);
        churn(&a, 23, &mut rng);
        // Find an active player to migrate.
        let src = (0..8u16)
            .find(|&i| a.store.snapshot(i).active)
            .expect("churn left an active player");
        let pre = a.player_hash(src);
        let capsule = a.snapshot_player_bytes(src).unwrap();
        // Land it in a *different* slot index of the target world.
        let dst = if src == 5 { 6 } else { 5 };
        b.restore_player_bytes(dst, &capsule).unwrap();
        assert_eq!(b.player_hash(dst), pre, "capsule transfer not identical");
        // The source is untouched; despawning it afterwards mirrors the
        // migration handoff order (restore target, then clear source).
        assert_eq!(a.player_hash(src), pre);
        a.despawn_player(src);
        assert_eq!(a.player_hash(src), 0);
        a.audit_links().unwrap();
        b.audit_links().unwrap();
    }

    #[test]
    fn player_capsule_rejects_garbage_without_mutating() {
        let w = world(4);
        let mut rng = Pcg32::seeded(47);
        churn(&w, 9, &mut rng);
        let src = (0..4u16)
            .find(|&i| w.store.snapshot(i).active)
            .expect("active player");
        let dst = (0..4u16)
            .find(|&i| !w.store.snapshot(i).active)
            .expect("empty slot");
        let hash = w.world_hash();
        let capsule = w.snapshot_player_bytes(src).unwrap();

        assert!(w.restore_player_bytes(dst, &[9, 9, 9]).is_err());
        let mut bad_magic = capsule.clone();
        bad_magic[0] ^= 0xFF;
        assert!(w.restore_player_bytes(dst, &bad_magic).is_err());
        let mut truncated = capsule.clone();
        truncated.truncate(truncated.len() - 3);
        assert!(w.restore_player_bytes(dst, &truncated).is_err());
        let mut trailing = capsule.clone();
        trailing.push(0);
        assert!(w.restore_player_bytes(dst, &trailing).is_err());
        // A whole-world checkpoint is not a player capsule.
        assert!(w.restore_player_bytes(dst, &w.snapshot_bytes()).is_err());
        // An occupied target slot refuses the landing.
        assert!(w.restore_player_bytes(src, &capsule).is_err());
        // Snapshotting a non-player or empty slot refuses too.
        assert!(w.snapshot_player_bytes(dst).is_err());
        assert!(w.snapshot_player_bytes(4_000).is_err());

        assert_eq!(w.world_hash(), hash, "failed restore mutated the world");
        w.audit_links().unwrap();
    }

    #[test]
    fn player_hash_ignores_the_slot_index() {
        let w = world(8);
        let mut rng = Pcg32::seeded(48);
        // Two players spawned with the same client id and forced to the
        // same state hash identically despite different slot indices.
        w.spawn_player(1, 500, &mut rng);
        w.spawn_player(6, 500, &mut rng);
        for idx in [1u16, 6] {
            w.store.with_mut(idx, 0, |e| {
                e.pos = vec3(10.0, 20.0, 30.0);
                e.yaw = 90.0;
            });
            w.relink_unlocked(idx);
        }
        assert_eq!(w.player_hash(1), w.player_hash(6));
        assert_ne!(w.player_hash(1), 0);
        // Inactive slots hash to the sentinel.
        assert_eq!(w.player_hash(3), 0);
    }

    #[test]
    fn item_class_byte_roundtrips() {
        for c in [
            ItemClass::Health,
            ItemClass::Armor,
            ItemClass::Ammo,
            ItemClass::Weapon,
            ItemClass::Powerup,
        ] {
            assert_eq!(ItemClass::from_class_byte(item_class_byte(c)), c);
        }
    }
}
