//! World checkpointing: serialize and restore the full mutable entity
//! state of a [`GameWorld`].
//!
//! The arena supervisor (crates/arena) periodically snapshots each
//! world so a panicked or wedged arena can be respawned from its last
//! good frame. The codec is deliberately dumb: a fixed header and then
//! every entity slot in index order, little-endian, no compression.
//! Static state (the compiled map, the areanode tree geometry) is NOT
//! serialized — a restore target must be a world built over the same
//! map with the same capacity, which the header verifies.
//!
//! The contract that matters is **world-hash identity**: for any world
//! `w`, `w.restore_bytes(&w.snapshot_bytes())` leaves `world_hash()`
//! unchanged, and restoring an older snapshot onto a diverged world
//! yields exactly the snapshot-time hash. Links are rebuilt from the
//! serialized `linked`/`linked_node` flags, so `audit_links()` holds
//! after a restore whenever it held at snapshot time.

use parquake_math::vec3::vec3;
use parquake_math::Vec3;

use crate::entity::{Entity, EntityClass, EntityId, ItemClass};
use crate::world::GameWorld;

/// Codec magic ("PQW" + version). Bump the last byte on layout change.
const MAGIC: u32 = 0x50_51_57_01;

/// Append-only little-endian writer.
struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn i32(&mut self, v: i32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn f32(&mut self, v: f32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn vec3(&mut self, v: Vec3) {
        self.f32(v.x);
        self.f32(v.y);
        self.f32(v.z);
    }
    fn bool(&mut self, v: bool) {
        self.u8(u8::from(v));
    }
}

/// Checked little-endian reader over a snapshot buffer.
struct Dec<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Dec<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        let end = self
            .at
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| format!("snapshot truncated at byte {}", self.at))?;
        let s = &self.buf[self.at..end];
        self.at = end;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }
    fn u16(&mut self) -> Result<u16, String> {
        // lockcheck: panic-site(take(N) returned exactly N bytes, so the array conversion cannot fail)
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }
    fn u32(&mut self) -> Result<u32, String> {
        // lockcheck: panic-site(take(N) returned exactly N bytes, so the array conversion cannot fail)
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> Result<u64, String> {
        // lockcheck: panic-site(take(N) returned exactly N bytes, so the array conversion cannot fail)
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn i32(&mut self) -> Result<i32, String> {
        // lockcheck: panic-site(take(N) returned exactly N bytes, so the array conversion cannot fail)
        Ok(i32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn f32(&mut self) -> Result<f32, String> {
        // lockcheck: panic-site(take(N) returned exactly N bytes, so the array conversion cannot fail)
        Ok(f32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn vec3(&mut self) -> Result<Vec3, String> {
        Ok(vec3(self.f32()?, self.f32()?, self.f32()?))
    }
    fn bool(&mut self) -> Result<bool, String> {
        Ok(self.u8()? != 0)
    }
}

fn item_class_byte(c: ItemClass) -> u8 {
    // Inverse of ItemClass::from_class_byte's `b % 5` mapping.
    match c {
        ItemClass::Health => 0,
        ItemClass::Armor => 1,
        ItemClass::Ammo => 2,
        ItemClass::Weapon => 3,
        ItemClass::Powerup => 4,
    }
}

fn encode_entity(e: &Entity, enc: &mut Enc) {
    enc.u16(e.id);
    match e.class {
        EntityClass::Player {
            client_id,
            health,
            score,
            dead,
            pending_relocation,
        } => {
            enc.u8(0);
            enc.u32(client_id);
            enc.i32(health);
            enc.i32(score);
            enc.bool(dead);
            match pending_relocation {
                Some(p) => {
                    enc.u8(1);
                    enc.vec3(p);
                }
                None => enc.u8(0),
            }
        }
        EntityClass::Item {
            class,
            respawn_at,
            taken,
        } => {
            enc.u8(1);
            enc.u8(item_class_byte(class));
            enc.u64(respawn_at);
            enc.bool(taken);
        }
        EntityClass::Projectile {
            owner,
            expire_at,
            live,
        } => {
            enc.u8(2);
            enc.u16(owner);
            enc.u64(expire_at);
            enc.bool(live);
        }
        EntityClass::Teleporter { dest } => {
            enc.u8(3);
            enc.vec3(dest);
        }
    }
    enc.vec3(e.pos);
    enc.vec3(e.vel);
    enc.f32(e.yaw);
    enc.f32(e.pitch);
    enc.bool(e.on_ground);
    enc.vec3(e.mins);
    enc.vec3(e.maxs);
    enc.u32(e.linked_node);
    enc.bool(e.linked);
    enc.bool(e.active);
}

fn decode_entity(dec: &mut Dec) -> Result<Entity, String> {
    let id = dec.u16()?;
    let class = match dec.u8()? {
        0 => EntityClass::Player {
            client_id: dec.u32()?,
            health: dec.i32()?,
            score: dec.i32()?,
            dead: dec.bool()?,
            pending_relocation: if dec.u8()? != 0 {
                Some(dec.vec3()?)
            } else {
                None
            },
        },
        1 => EntityClass::Item {
            class: ItemClass::from_class_byte(dec.u8()?),
            respawn_at: dec.u64()?,
            taken: dec.bool()?,
        },
        2 => EntityClass::Projectile {
            owner: dec.u16()?,
            expire_at: dec.u64()?,
            live: dec.bool()?,
        },
        3 => EntityClass::Teleporter { dest: dec.vec3()? },
        t => return Err(format!("unknown entity class tag {t}")),
    };
    Ok(Entity {
        id,
        class,
        pos: dec.vec3()?,
        vel: dec.vec3()?,
        yaw: dec.f32()?,
        pitch: dec.f32()?,
        on_ground: dec.bool()?,
        mins: dec.vec3()?,
        maxs: dec.vec3()?,
        linked_node: dec.u32()?,
        linked: dec.bool()?,
        active: dec.bool()?,
    })
}

impl GameWorld {
    /// Serialize every entity slot (active or not) into a checkpoint
    /// buffer. Single-threaded contexts only — the caller must hold the
    /// world quiescent (the arena supervisor snapshots between frames,
    /// under the pool claim).
    pub fn snapshot_bytes(&self) -> Vec<u8> {
        let cap = self.store.capacity();
        let mut enc = Enc {
            // Header + a generous per-entity estimate; avoids regrowth.
            buf: Vec::with_capacity(8 + cap * 96),
        };
        enc.u32(MAGIC);
        enc.u32(cap as u32);
        for id in 0..cap as EntityId {
            encode_entity(&self.store.snapshot(id), &mut enc);
        }
        enc.buf
    }

    /// Overwrite this world's entity state from a snapshot taken on a
    /// world of identical capacity, rebuilding the link table to match.
    /// Single-threaded contexts only. On error the world is left
    /// unchanged (all validation happens before any mutation).
    pub fn restore_bytes(&self, bytes: &[u8]) -> Result<(), String> {
        let mut dec = Dec { buf: bytes, at: 0 };
        let magic = dec.u32()?;
        if magic != MAGIC {
            return Err(format!("bad snapshot magic {magic:#010x}"));
        }
        let cap = dec.u32()? as usize;
        if cap != self.store.capacity() {
            return Err(format!(
                "snapshot capacity {cap} != world capacity {}",
                self.store.capacity()
            ));
        }
        // Decode everything first so a truncated buffer cannot leave
        // the world half-restored.
        let mut ents = Vec::with_capacity(cap);
        for id in 0..cap as EntityId {
            let e = decode_entity(&mut dec)?;
            if e.id != id {
                return Err(format!("snapshot slot {id} holds entity {}", e.id));
            }
            ents.push(e);
        }
        // Unlink the present, install the snapshot, relink its links.
        for id in 0..cap as EntityId {
            let cur = self.store.snapshot(id);
            if cur.linked {
                self.links.remove(cur.linked_node, 0, id as u32);
            }
        }
        for e in ents {
            let id = e.id;
            let linked = e.linked;
            let node = e.linked_node;
            self.store.init(id, e);
            if linked {
                self.links.push(node, 0, id as u32);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use parquake_bsp::mapgen::MapGenConfig;
    use parquake_math::Pcg32;

    use super::*;

    fn world(players: u16) -> GameWorld {
        let map = Arc::new(MapGenConfig::small_arena(11).generate());
        GameWorld::new(map, 4, players)
    }

    /// Drive the world through `steps` cheap deterministic mutations so
    /// snapshots cover moved, despawned and respawned entities. Moves
    /// draw from `rng`, so two churn segments over the same ops still
    /// diverge (the stream position differs).
    fn churn(w: &GameWorld, steps: u32, rng: &mut Pcg32) {
        let n = w.max_players() as u32;
        for s in 0..steps {
            // Multiplier coprime to any power-of-two player count, so
            // every op kind reaches every slot as `s` advances.
            let idx = (s.wrapping_mul(7).wrapping_add(s / 4) % n) as u16;
            match s % 4 {
                0 => {
                    w.spawn_player(idx, 100 + idx as u32, rng);
                }
                1 => {
                    for p in 0..n as u16 {
                        if w.store.snapshot(p).active {
                            w.store.with_mut(p, 0, |e| {
                                e.pos.x += rng.range_f32(-40.0, 40.0);
                                e.pos.y += rng.range_f32(-40.0, 40.0);
                            });
                            w.relink_unlocked(p);
                        }
                    }
                }
                2 => {
                    if let Some(item) = w.item_ids().next() {
                        w.store.with_mut(item, 0, |e| {
                            if let EntityClass::Item { taken, .. } = &mut e.class {
                                *taken = !*taken;
                            }
                        });
                    }
                }
                _ => w.despawn_player(idx),
            }
        }
    }

    #[test]
    fn snapshot_restore_is_world_hash_identical() {
        let w = world(8);
        let mut rng = Pcg32::seeded(42);
        churn(&w, 37, &mut rng);
        let hash = w.world_hash();
        let bytes = w.snapshot_bytes();
        w.restore_bytes(&bytes).unwrap();
        assert_eq!(w.world_hash(), hash);
        w.audit_links().unwrap();
    }

    #[test]
    fn restore_rolls_back_a_diverged_world() {
        let w = world(8);
        let mut rng = Pcg32::seeded(43);
        churn(&w, 20, &mut rng);
        let hash_at_f = w.world_hash();
        let bytes = w.snapshot_bytes();
        // Diverge well past the checkpoint.
        churn(&w, 55, &mut rng);
        assert_ne!(w.world_hash(), hash_at_f);
        w.restore_bytes(&bytes).unwrap();
        assert_eq!(w.world_hash(), hash_at_f);
        w.audit_links().unwrap();
    }

    #[test]
    fn restore_rejects_garbage_without_mutating() {
        let w = world(4);
        let mut rng = Pcg32::seeded(44);
        churn(&w, 9, &mut rng);
        let hash = w.world_hash();

        assert!(w.restore_bytes(&[1, 2, 3]).is_err());
        let mut bad_magic = w.snapshot_bytes();
        bad_magic[0] ^= 0xFF;
        assert!(w.restore_bytes(&bad_magic).is_err());
        let mut truncated = w.snapshot_bytes();
        truncated.truncate(truncated.len() - 5);
        assert!(w.restore_bytes(&truncated).is_err());
        let other = world(6); // different capacity
        assert!(w.restore_bytes(&other.snapshot_bytes()).is_err());

        assert_eq!(w.world_hash(), hash, "failed restore mutated the world");
        w.audit_links().unwrap();
    }

    #[test]
    fn restore_crosses_worlds_of_equal_shape() {
        let a = world(8);
        let b = world(8);
        let mut rng = Pcg32::seeded(45);
        churn(&a, 31, &mut rng);
        b.restore_bytes(&a.snapshot_bytes()).unwrap();
        assert_eq!(b.world_hash(), a.world_hash());
        b.audit_links().unwrap();
    }

    #[test]
    fn item_class_byte_roundtrips() {
        for c in [
            ItemClass::Health,
            ItemClass::Armor,
            ItemClass::Ammo,
            ItemClass::Weapon,
            ItemClass::Powerup,
        ] {
            assert_eq!(ItemClass::from_class_byte(item_class_byte(c)), c);
        }
    }
}
