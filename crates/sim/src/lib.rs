//! Game simulation for `parquake`.
//!
//! Everything the server *computes* when it processes a move command —
//! independent of how that computation is scheduled or locked:
//!
//! * [`entity`] — the entity store (players, items, projectiles,
//!   teleporters) with protocol-checked mutable access,
//! * [`world`] — [`world::GameWorld`]: the compiled map, the areanode
//!   tree, the link table and the entity store bundled together,
//! * [`movement`] — player motion physics (acceleration, friction,
//!   gravity, slide-move collision against world and objects) — the
//!   short-range component of move execution (paper §2.3),
//! * [`interact`] — long-range interactions: hitscan attacks and thrown
//!   projectiles (the two object classes of paper §4.3),
//! * [`worldphase`] — the world-physics phase run by the master thread
//!   at the start of each frame (projectile flight, item respawn,
//!   deferred relocations),
//! * [`visibility`] — reply scoping: which entities a client can see,
//! * [`snapshot`] — checkpoint codec: serialize/restore the full
//!   entity state for the arena supervisor's crash recovery.
//!
//! Simulation functions are *pure with respect to scheduling*: they
//! receive the candidate entity lists the caller collected (under
//! whatever locking policy it uses) and report the work they performed
//! via [`WorkCounters`] so the caller can charge modelled CPU time.

pub mod entity;
pub mod interact;
pub mod movement;
pub mod snapshot;
pub mod visibility;
pub mod world;
pub mod worldphase;

pub use entity::{Entity, EntityClass, EntityId, EntityStore, ItemClass};
pub use movement::{
    step_kernel, step_world_only, world_only_hit, KernelOutcome, PredictState, PLAYER_MAXS,
    PLAYER_MINS,
};
pub use world::GameWorld;

/// Counters of raw algorithmic work performed by a simulation routine;
/// the execution layer converts these into modelled CPU time.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WorkCounters {
    /// BSP nodes visited by collision traces.
    pub trace_steps: u64,
    /// Swept/overlap tests against candidate objects.
    pub object_tests: u64,
    /// Physics integration substeps (slide-move bumps).
    pub substeps: u64,
    /// Candidate entities gathered from areanode lists.
    pub candidates: u64,
    /// Areanode tree nodes visited while gathering.
    pub areanode_visits: u64,
    /// Entity updates encoded into replies.
    pub encoded_entities: u64,
    /// Entities examined for visibility.
    pub visibility_checks: u64,
    /// Interaction events applied (pickups, hits, teleports…).
    pub interactions: u64,
    /// Batch interest-matching steps (endpoint sorts, merge advances,
    /// broad-phase range walks) performed by the DDM sweep.
    pub interest_steps: u64,
}

impl WorkCounters {
    pub fn new() -> WorkCounters {
        WorkCounters::default()
    }

    pub fn merge(&mut self, o: &WorkCounters) {
        self.trace_steps += o.trace_steps;
        self.object_tests += o.object_tests;
        self.substeps += o.substeps;
        self.candidates += o.candidates;
        self.areanode_visits += o.areanode_visits;
        self.encoded_entities += o.encoded_entities;
        self.visibility_checks += o.visibility_checks;
        self.interactions += o.interactions;
        self.interest_steps += o.interest_steps;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn work_counters_merge() {
        let mut a = WorkCounters {
            trace_steps: 1,
            object_tests: 2,
            ..WorkCounters::new()
        };
        let b = WorkCounters {
            trace_steps: 10,
            encoded_entities: 5,
            ..WorkCounters::new()
        };
        a.merge(&b);
        assert_eq!(a.trace_steps, 11);
        assert_eq!(a.object_tests, 2);
        assert_eq!(a.encoded_entities, 5);
    }
}
