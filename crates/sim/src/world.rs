//! The assembled game world: map + areanode tree + links + entities.

use std::sync::Arc;

use parquake_areanode::{AreanodeTree, LinkTable, NodeId};
use parquake_bsp::BspWorld;
use parquake_math::vec3::vec3;
use parquake_math::{Pcg32, Vec3};

use crate::entity::{Entity, EntityClass, EntityId, EntityStore, ItemClass};

/// Default maximum distance at which entities are sent to clients.
pub const DEFAULT_VIEW_DIST: f32 = 1600.0;

/// Everything the servers share: static geometry, the spatial index and
/// the mutable entity state.
pub struct GameWorld {
    pub map: Arc<BspWorld>,
    pub tree: AreanodeTree,
    pub links: LinkTable,
    pub store: EntityStore,
    pub max_view_dist: f32,
    max_players: u16,
    item_base: EntityId,
    tele_base: EntityId,
    proj_base: EntityId,
}

impl GameWorld {
    /// Assemble a world over a compiled map. Creates and links item and
    /// teleporter entities; reserves one projectile slot per player
    /// (a player has at most one projectile in flight, so slots never
    /// contend between threads).
    pub fn new(map: Arc<BspWorld>, areanode_depth: u32, max_players: u16) -> GameWorld {
        let tree = AreanodeTree::new(map.bounds, areanode_depth);
        let n_items = map.item_spawns.len() as u16;
        let n_teles = map.teleporters.len() as u16;
        let item_base = max_players;
        let tele_base = item_base + n_items;
        let proj_base = tele_base + n_teles;
        let capacity = proj_base as usize + max_players as usize;

        let links = LinkTable::new(tree.node_count());
        links.set_checking(false);
        let store = EntityStore::new(capacity);

        let world = GameWorld {
            map,
            tree,
            links,
            store,
            max_view_dist: DEFAULT_VIEW_DIST,
            max_players,
            item_base,
            tele_base,
            proj_base,
        };

        // Items.
        for (i, spawn) in world.map.item_spawns.iter().enumerate() {
            let id = item_base + i as u16;
            let ent = Entity {
                id,
                class: EntityClass::Item {
                    class: ItemClass::from_class_byte(spawn.class),
                    respawn_at: 0,
                    taken: false,
                },
                pos: spawn.pos,
                vel: Vec3::ZERO,
                yaw: 0.0,
                pitch: 0.0,
                on_ground: true,
                mins: vec3(-16.0, -16.0, 0.0),
                maxs: vec3(16.0, 16.0, 56.0),
                linked_node: 0,
                linked: false,
                active: true,
            };
            world.store.init(id, ent);
            world.link_unlocked(id);
        }
        // Teleporter pads.
        for (i, &(pad, dest)) in world.map.teleporters.iter().enumerate() {
            let id = tele_base + i as u16;
            let ent = Entity {
                id,
                class: EntityClass::Teleporter { dest },
                pos: pad,
                vel: Vec3::ZERO,
                yaw: 0.0,
                pitch: 0.0,
                on_ground: true,
                mins: vec3(-24.0, -24.0, 0.0),
                maxs: vec3(24.0, 24.0, 48.0),
                linked_node: 0,
                linked: false,
                active: true,
            };
            world.store.init(id, ent);
            world.link_unlocked(id);
        }
        // Idle projectile slots (one per player).
        for p in 0..max_players {
            let id = proj_base + p;
            let ent = Entity {
                id,
                class: EntityClass::Projectile {
                    owner: p,
                    expire_at: 0,
                    live: false,
                },
                pos: Vec3::ZERO,
                vel: Vec3::ZERO,
                yaw: 0.0,
                pitch: 0.0,
                on_ground: false,
                mins: vec3(-4.0, -4.0, -4.0),
                maxs: vec3(4.0, 4.0, 4.0),
                linked_node: 0,
                linked: false,
                active: false,
            };
            world.store.init(id, ent);
        }
        world
    }

    #[inline]
    pub fn max_players(&self) -> u16 {
        self.max_players
    }

    /// Entity id of player slot `idx`.
    #[inline]
    pub fn player_slot(&self, idx: u16) -> EntityId {
        debug_assert!(idx < self.max_players);
        idx
    }

    /// Projectile slot owned by player `idx`.
    #[inline]
    pub fn projectile_slot(&self, player_idx: u16) -> EntityId {
        self.proj_base + player_idx
    }

    /// All item entity ids.
    pub fn item_ids(&self) -> std::ops::Range<u16> {
        self.item_base..self.tele_base
    }

    /// Is this id a player slot?
    #[inline]
    pub fn is_player(&self, id: EntityId) -> bool {
        id < self.max_players
    }

    /// Spawn (or respawn) a player into the world. Single-threaded
    /// contexts only (setup / world phase). Returns the entity id.
    pub fn spawn_player(&self, idx: u16, client_id: u32, rng: &mut Pcg32) -> EntityId {
        let id = self.player_slot(idx);
        let pos = self.pick_spawn_pos(idx, rng);
        let prev = self.store.snapshot(id);
        let was_linked = prev.linked;
        self.store.init(
            id,
            Entity {
                id,
                class: EntityClass::Player {
                    client_id,
                    health: 100,
                    score: 0,
                    dead: false,
                    pending_relocation: None,
                },
                pos,
                vel: Vec3::ZERO,
                yaw: rng.range_f32(-180.0, 180.0),
                pitch: 0.0,
                on_ground: false,
                mins: crate::movement::PLAYER_MINS,
                maxs: crate::movement::PLAYER_MAXS,
                linked_node: prev.linked_node,
                linked: was_linked,
                active: true,
            },
        );
        if was_linked {
            self.relink_unlocked(id);
        } else {
            self.link_unlocked(id);
        }
        id
    }

    /// Deterministically choose a free-standing spawn position.
    fn pick_spawn_pos(&self, idx: u16, rng: &mut Pcg32) -> Vec3 {
        let spawns = &self.map.spawn_points;
        assert!(!spawns.is_empty(), "map has no spawn points");
        for attempt in 0..16 {
            let base = spawns[(idx as usize + attempt * 7) % spawns.len()];
            let jitter = vec3(rng.range_f32(-48.0, 48.0), rng.range_f32(-48.0, 48.0), 0.0);
            let pos = base + jitter * (attempt.min(3) as f32 / 3.0);
            if self.map.player_fits(pos) {
                return pos;
            }
        }
        spawns[idx as usize % spawns.len()]
    }

    /// Link an entity for the first time (no locks; single-threaded).
    fn link_unlocked(&self, id: EntityId) {
        let ent = self.store.snapshot(id);
        debug_assert!(!ent.linked, "entity {id} already linked");
        let node = self.tree.node_for_box(&ent.abs_box());
        self.links.push(node, 0, id as u32);
        self.store.init(
            id,
            Entity {
                linked_node: node,
                linked: true,
                ..ent
            },
        );
    }

    /// Re-link an entity after movement, without lock bookkeeping
    /// (single-threaded contexts: the world phase and the sequential
    /// server). The parallel server uses its own locked relink.
    pub fn relink_unlocked(&self, id: EntityId) {
        let ent = self.store.snapshot(id);
        if !ent.linked {
            self.link_unlocked(id);
            return;
        }
        let new_node = self.tree.node_for_box(&ent.abs_box());
        if new_node != ent.linked_node {
            self.links.remove(ent.linked_node, 0, id as u32);
            self.links.push(new_node, 0, id as u32);
            self.store.init(
                id,
                Entity {
                    linked_node: new_node,
                    ..ent
                },
            );
        }
    }

    /// Compute the node an entity at `abs_box` should link to.
    #[inline]
    pub fn node_for(&self, b: &parquake_math::Aabb) -> NodeId {
        self.tree.node_for_box(b)
    }

    /// Deactivate a player (disconnect). Single-threaded contexts.
    pub fn despawn_player(&self, idx: u16) {
        let id = self.player_slot(idx);
        let ent = self.store.snapshot(id);
        if ent.active {
            if ent.linked {
                self.links.remove(ent.linked_node, 0, id as u32);
            }
            self.store.init(
                id,
                Entity {
                    active: false,
                    linked: false,
                    ..ent
                },
            );
        }
    }

    /// Verify spatial-index consistency: every linked entity appears in
    /// exactly the object list its `linked_node` names, the node's
    /// bounds contain the entity, and no stale links remain. Requires
    /// quiescence (post-run / single-threaded).
    pub fn audit_links(&self) -> Result<(), String> {
        let links = self.links.snapshot_links();
        let mut seen = std::collections::HashMap::new();
        for &(node, ent) in &links {
            if seen.insert(ent, node).is_some() {
                return Err(format!("entity {ent} linked to multiple nodes"));
            }
        }
        for (node, ent) in &links {
            let e = self.store.snapshot(*ent as EntityId);
            if !e.linked {
                return Err(format!(
                    "entity {ent} in node {node} list but not flagged linked"
                ));
            }
            if e.linked_node != *node {
                return Err(format!(
                    "entity {ent} thinks it is in node {} but sits in node {node}",
                    e.linked_node
                ));
            }
            if !self.tree.node(*node).bounds.contains(&e.abs_box()) {
                return Err(format!(
                    "entity {ent} at {:?} escapes node {node} bounds",
                    e.pos
                ));
            }
        }
        // The reverse direction: every linked-flagged entity is listed.
        for id in 0..self.store.capacity() as EntityId {
            let e = self.store.snapshot(id);
            if e.linked && !seen.contains_key(&(id as u32)) {
                return Err(format!("entity {id} flagged linked but in no list"));
            }
        }
        Ok(())
    }

    /// FNV-1a hash of all active entity state — used by determinism and
    /// sequential-vs-parallel equivalence tests.
    pub fn world_hash(&self) -> u64 {
        let mut h: u64 = 0xcbf29ce484222325;
        let mut mix = |v: u64| {
            h ^= v;
            h = h.wrapping_mul(0x100000001b3);
        };
        for id in 0..self.store.capacity() as EntityId {
            let e = self.store.snapshot(id);
            if !e.active {
                continue;
            }
            mix(e.id as u64);
            mix(quant(e.pos.x));
            mix(quant(e.pos.y));
            mix(quant(e.pos.z));
            mix(e.linked_node as u64);
            match e.class {
                EntityClass::Player {
                    health,
                    score,
                    dead,
                    ..
                } => {
                    mix(health as u64);
                    mix(score as u64);
                    mix(dead as u64);
                }
                EntityClass::Item { taken, .. } => mix(taken as u64),
                EntityClass::Projectile { live, .. } => mix(live as u64),
                EntityClass::Teleporter { .. } => mix(7),
            }
        }
        h
    }
}

/// Quantize a coordinate to 1/8 unit for hashing (collision epsilons
/// make exact float equality too brittle across policies).
fn quant(v: f32) -> u64 {
    (v * 8.0).round() as i64 as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use parquake_bsp::mapgen::MapGenConfig;

    fn world() -> GameWorld {
        let map = Arc::new(MapGenConfig::small_arena(3).generate());
        GameWorld::new(map, 4, 8)
    }

    #[test]
    fn construction_links_items_and_teleporters() {
        let mut w = world();
        let expected = w.map.item_spawns.len() + w.map.teleporters.len();
        assert_eq!(w.links.total_links(), expected);
        // All item entities active and positioned at their markers.
        for id in w.item_ids() {
            let e = w.store.snapshot(id);
            assert!(e.active);
            assert!(matches!(e.class, EntityClass::Item { taken: false, .. }));
        }
    }

    #[test]
    fn spawned_player_is_linked_and_standing() {
        let w = world();
        let mut rng = Pcg32::seeded(1);
        let id = w.spawn_player(0, 100, &mut rng);
        let e = w.store.snapshot(id);
        assert!(e.is_live_player());
        assert!(
            w.map.player_fits(e.pos),
            "spawned inside wall at {:?}",
            e.pos
        );
        // The linked node's bounds must contain the player's box.
        assert!(w.tree.node(e.linked_node).bounds.contains(&e.abs_box()));
    }

    #[test]
    fn respawn_reuses_slot_and_relinks() {
        let mut w = world();
        let mut rng = Pcg32::seeded(2);
        w.spawn_player(0, 100, &mut rng);
        let links_before = w.links.total_links();
        w.spawn_player(0, 100, &mut rng);
        assert_eq!(w.links.total_links(), links_before, "duplicate link");
    }

    #[test]
    fn despawn_removes_link() {
        let mut w = world();
        let mut rng = Pcg32::seeded(3);
        w.spawn_player(0, 1, &mut rng);
        let n = w.links.total_links();
        w.despawn_player(0);
        assert_eq!(w.links.total_links(), n - 1);
        assert!(!w.store.snapshot(0).active);
    }

    #[test]
    fn relink_moves_between_nodes() {
        let w = world();
        let mut rng = Pcg32::seeded(4);
        let id = w.spawn_player(0, 1, &mut rng);
        let before = w.store.snapshot(id);
        // Move the player to the opposite corner of the map.
        let far = w.map.bounds.max - Vec3::splat(200.0);
        w.store
            .with_mut(id, 0, |e| e.pos = vec3(far.x, far.y, before.pos.z));
        w.relink_unlocked(id);
        let after = w.store.snapshot(id);
        assert!(w
            .tree
            .node(after.linked_node)
            .bounds
            .contains(&after.abs_box()));
    }

    #[test]
    fn world_hash_changes_with_state() {
        let w = world();
        let mut rng = Pcg32::seeded(5);
        let h0 = w.world_hash();
        w.spawn_player(0, 1, &mut rng);
        let h1 = w.world_hash();
        assert_ne!(h0, h1);
        w.store.with_mut(0, 0, |e| e.pos.x += 10.0);
        assert_ne!(w.world_hash(), h1);
    }

    #[test]
    fn world_hash_is_deterministic() {
        let build = || {
            let w = world();
            let mut rng = Pcg32::seeded(9);
            for i in 0..4 {
                w.spawn_player(i, i as u32, &mut rng);
            }
            w.world_hash()
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn projectile_slots_are_per_player() {
        let w = world();
        assert_ne!(w.projectile_slot(0), w.projectile_slot(1));
        let p = w.store.snapshot(w.projectile_slot(3));
        assert!(!p.active);
        assert!(matches!(
            p.class,
            EntityClass::Projectile {
                owner: 3,
                live: false,
                ..
            }
        ));
    }
}
