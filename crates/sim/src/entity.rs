//! The entity store.
//!
//! Game objects live in a fixed-capacity slot array. During the
//! parallel request-processing phase, multiple server threads mutate
//! entities concurrently; correctness comes from the region-locking
//! protocol (a thread only touches entities inside regions it has
//! locked), which Rust cannot see. As with the areanode
//! `LinkTable`, slots are `UnsafeCell`s behind a safe API with
//! *dynamic protocol checking*: when checking is enabled, mutation
//! requires the entity to have been claimed by the accessing task
//! (the server claims every candidate it gathered under its region
//! locks, and releases them when the locks drop).

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};

use parquake_areanode::NodeId;
use parquake_math::{Aabb, Vec3};
use parquake_protocol::EntityKind;

/// Entity slot index (also the wire id).
pub type EntityId = u16;

/// Sentinel for "no owner" in the claim table.
const NO_OWNER: u32 = u32::MAX;

/// Item categories, mapped from generator class bytes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ItemClass {
    Health,
    Armor,
    Ammo,
    Weapon,
    Powerup,
}

impl ItemClass {
    /// Map a generator class byte onto an item class.
    pub fn from_class_byte(b: u8) -> ItemClass {
        match b % 5 {
            0 => ItemClass::Health,
            1 => ItemClass::Armor,
            2 => ItemClass::Ammo,
            3 => ItemClass::Weapon,
            _ => ItemClass::Powerup,
        }
    }

    /// Respawn delay after pickup, in nanoseconds (Quake-ish values).
    pub fn respawn_ns(self) -> u64 {
        match self {
            ItemClass::Health => 15_000_000_000,
            ItemClass::Armor => 20_000_000_000,
            ItemClass::Ammo => 15_000_000_000,
            ItemClass::Weapon => 30_000_000_000,
            ItemClass::Powerup => 60_000_000_000,
        }
    }
}

/// Kind-specific entity state.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum EntityClass {
    Player {
        client_id: u32,
        health: i32,
        score: i32,
        /// Set when dead; the world phase respawns the player.
        dead: bool,
        /// Deferred far relocation (teleporter / respawn), applied by
        /// the world phase — see DESIGN.md on long-range effects.
        pending_relocation: Option<Vec3>,
    },
    Item {
        class: ItemClass,
        /// When taken, the world phase reactivates it at this time.
        respawn_at: u64,
        taken: bool,
    },
    Projectile {
        owner: EntityId,
        expire_at: u64,
        /// In flight (false = slot idle, reusable by its owner).
        live: bool,
    },
    Teleporter {
        dest: Vec3,
    },
}

/// A game object.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Entity {
    pub id: EntityId,
    pub class: EntityClass,
    /// Origin in world space.
    pub pos: Vec3,
    pub vel: Vec3,
    pub yaw: f32,
    pub pitch: f32,
    pub on_ground: bool,
    /// Collision box relative to the origin.
    pub mins: Vec3,
    pub maxs: Vec3,
    /// Areanode the entity is currently linked to (meaningful only
    /// when `linked` is true).
    pub linked_node: NodeId,
    /// Whether the entity is currently present in an areanode object
    /// list. Retired projectiles and despawned players are unlinked.
    pub linked: bool,
    /// Inactive entities are invisible and intangible (taken items,
    /// idle projectile slots, unspawned players).
    pub active: bool,
}

impl Entity {
    /// Absolute bounding box at the current position.
    #[inline]
    pub fn abs_box(&self) -> Aabb {
        Aabb::new(self.pos + self.mins, self.pos + self.maxs)
    }

    /// Absolute bounding box at a hypothetical position.
    #[inline]
    pub fn abs_box_at(&self, pos: Vec3) -> Aabb {
        Aabb::new(pos + self.mins, pos + self.maxs)
    }

    /// Eye position (for aiming).
    #[inline]
    pub fn eye(&self) -> Vec3 {
        self.pos + Vec3::new(0.0, 0.0, self.maxs.z - 8.0)
    }

    /// Wire kind for replies.
    pub fn wire_kind(&self) -> EntityKind {
        match self.class {
            EntityClass::Player { .. } => EntityKind::Player,
            EntityClass::Item { .. } => EntityKind::Item,
            EntityClass::Projectile { .. } => EntityKind::Projectile,
            EntityClass::Teleporter { .. } => EntityKind::Teleporter,
        }
    }

    /// Wire state byte for replies (kind-specific summary).
    pub fn wire_state(&self) -> u8 {
        match self.class {
            EntityClass::Player { health, dead, .. } => {
                if dead {
                    0
                } else {
                    (health.clamp(0, 200) as u8).max(1)
                }
            }
            EntityClass::Item { taken, .. } => u8::from(!taken),
            EntityClass::Projectile { live, .. } => u8::from(live),
            EntityClass::Teleporter { .. } => 1,
        }
    }

    /// Is this a live player?
    pub fn is_live_player(&self) -> bool {
        matches!(self.class, EntityClass::Player { dead: false, .. }) && self.active
    }
}

struct Slot {
    ent: UnsafeCell<Entity>,
    owner: AtomicU32,
}

/// Fixed-capacity entity storage with dynamic access-protocol checks.
pub struct EntityStore {
    slots: Vec<Slot>,
    checking: AtomicBool,
}

// SAFETY: concurrent mutation is governed by the region-locking
// protocol; with checking enabled every write verifies the claim.
unsafe impl Sync for EntityStore {}
unsafe impl Send for EntityStore {}

impl EntityStore {
    /// A store of `capacity` inactive placeholder entities.
    pub fn new(capacity: usize) -> EntityStore {
        assert!(capacity <= EntityId::MAX as usize + 1);
        EntityStore {
            slots: (0..capacity)
                .map(|i| Slot {
                    ent: UnsafeCell::new(Entity {
                        id: i as EntityId,
                        class: EntityClass::Teleporter { dest: Vec3::ZERO },
                        pos: Vec3::ZERO,
                        vel: Vec3::ZERO,
                        yaw: 0.0,
                        pitch: 0.0,
                        on_ground: false,
                        mins: Vec3::ZERO,
                        maxs: Vec3::ZERO,
                        linked_node: 0,
                        linked: false,
                        active: false,
                    }),
                    owner: AtomicU32::new(NO_OWNER),
                })
                .collect(),
            checking: AtomicBool::new(false),
        }
    }

    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Toggle access-protocol checking (the parallel server enables it
    /// for the request-processing phase in checked builds).
    pub fn set_checking(&self, on: bool) {
        self.checking.store(on, Ordering::Release);
    }

    pub fn is_checking(&self) -> bool {
        self.checking.load(Ordering::Acquire)
    }

    /// Claim exclusive write access for `task`. Panics if the entity is
    /// already claimed by another task (protocol violation) when
    /// checking is enabled.
    pub fn claim(&self, id: EntityId, task: u32) {
        if self.is_checking() {
            let r = self.slots[id as usize].owner.compare_exchange(
                NO_OWNER,
                task,
                Ordering::AcqRel,
                Ordering::Acquire,
            );
            if let Err(prev) = r {
                assert_eq!(
                    prev, task,
                    "entity access violation: entity {id} claimed by task {prev}, \
                     task {task} attempted to claim it"
                );
            }
        }
    }

    /// Release a claim.
    pub fn release(&self, id: EntityId, task: u32) {
        if self.is_checking() {
            let _ = self.slots[id as usize].owner.compare_exchange(
                task,
                NO_OWNER,
                Ordering::AcqRel,
                Ordering::Acquire,
            );
        }
    }

    /// Copy out an entity's state (reads are unchecked: replies read
    /// global state in the read-only reply phase).
    #[inline]
    pub fn snapshot(&self, id: EntityId) -> Entity {
        // SAFETY: protocol—concurrent writers hold distinct regions and
        // readers run in read-only phases; a torn read would indicate a
        // protocol violation caught by the write checks in checked runs.
        unsafe { *self.slots[id as usize].ent.get() }
    }

    /// Mutate an entity under the access protocol.
    pub fn with_mut<R>(&self, id: EntityId, task: u32, f: impl FnOnce(&mut Entity) -> R) -> R {
        if self.is_checking() {
            let owner = self.slots[id as usize].owner.load(Ordering::Acquire);
            assert_eq!(
                owner, task,
                "entity access violation: task {task} wrote entity {id} owned by {owner}"
            );
        }
        // SAFETY: claim verified above when checking; otherwise the
        // phase protocol guarantees exclusivity.
        let ent = unsafe { &mut *self.slots[id as usize].ent.get() };
        f(ent)
    }

    /// Unchecked initialization/system mutation — only for
    /// single-threaded contexts (setup, the world phase, tests); takes
    /// `task` only for symmetry.
    pub fn init(&self, id: EntityId, ent: Entity) {
        // SAFETY: single-threaded by contract.
        unsafe { *self.slots[id as usize].ent.get() = ent };
    }

    /// Iterate ids of active entities (snapshot-based).
    pub fn active_ids(&self) -> Vec<EntityId> {
        (0..self.capacity() as EntityId)
            .filter(|&i| self.snapshot(i).active)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parquake_math::vec3::vec3;

    fn player(id: EntityId) -> Entity {
        Entity {
            id,
            class: EntityClass::Player {
                client_id: id as u32,
                health: 100,
                score: 0,
                dead: false,
                pending_relocation: None,
            },
            pos: vec3(10.0, 20.0, 30.0),
            vel: Vec3::ZERO,
            yaw: 0.0,
            pitch: 0.0,
            on_ground: true,
            mins: vec3(-16.0, -16.0, -24.0),
            maxs: vec3(16.0, 16.0, 32.0),
            linked_node: 0,
            linked: false,
            active: true,
        }
    }

    #[test]
    fn snapshot_roundtrips_init() {
        let store = EntityStore::new(8);
        store.init(3, player(3));
        let e = store.snapshot(3);
        assert_eq!(e.pos, vec3(10.0, 20.0, 30.0));
        assert!(e.is_live_player());
    }

    #[test]
    fn abs_box_is_positioned() {
        let e = player(0);
        let b = e.abs_box();
        assert_eq!(b.min, vec3(-6.0, 4.0, 6.0));
        assert_eq!(b.max, vec3(26.0, 36.0, 62.0));
        assert!(e.eye().z > e.pos.z);
    }

    #[test]
    fn claimed_write_succeeds() {
        let store = EntityStore::new(4);
        store.init(1, player(1));
        store.set_checking(true);
        store.claim(1, 7);
        store.with_mut(1, 7, |e| e.pos.x = 99.0);
        store.release(1, 7);
        assert_eq!(store.snapshot(1).pos.x, 99.0);
    }

    #[test]
    #[should_panic(expected = "entity access violation")]
    fn unclaimed_write_panics() {
        let store = EntityStore::new(4);
        store.init(1, player(1));
        store.set_checking(true);
        store.with_mut(1, 7, |e| e.pos.x = 99.0);
    }

    #[test]
    #[should_panic(expected = "entity access violation")]
    fn cross_task_claim_panics() {
        let store = EntityStore::new(4);
        store.set_checking(true);
        store.claim(2, 1);
        store.claim(2, 9);
    }

    #[test]
    fn reclaim_by_same_task_is_idempotent() {
        let store = EntityStore::new(4);
        store.set_checking(true);
        store.claim(2, 1);
        store.claim(2, 1);
        store.release(2, 1);
    }

    #[test]
    fn unchecked_mode_allows_writes() {
        let store = EntityStore::new(4);
        store.init(0, player(0));
        store.set_checking(false);
        store.with_mut(0, 42, |e| e.yaw = 180.0);
        assert_eq!(store.snapshot(0).yaw, 180.0);
    }

    #[test]
    fn wire_state_encodes_class() {
        let mut p = player(0);
        assert_eq!(p.wire_state(), 100);
        if let EntityClass::Player { dead, .. } = &mut p.class {
            *dead = true;
        }
        assert_eq!(p.wire_state(), 0);

        let item = Entity {
            class: EntityClass::Item {
                class: ItemClass::Health,
                respawn_at: 0,
                taken: true,
            },
            ..player(1)
        };
        assert_eq!(item.wire_state(), 0);
        assert_eq!(item.wire_kind(), parquake_protocol::EntityKind::Item);
    }

    #[test]
    fn active_ids_filters() {
        let store = EntityStore::new(4);
        store.init(0, player(0));
        store.init(2, player(2));
        assert_eq!(store.active_ids(), vec![0, 2]);
    }

    #[test]
    fn item_class_mapping_and_respawn() {
        assert_eq!(ItemClass::from_class_byte(0), ItemClass::Health);
        assert_eq!(ItemClass::from_class_byte(9), ItemClass::Powerup);
        assert!(ItemClass::Weapon.respawn_ns() > ItemClass::Health.respawn_ns());
    }
}
