//! Reply scoping: which entities each client is told about.
//!
//! The original server "determines which entities are of interest to
//! each client and sends out information only for those" (paper §2).
//! We reproduce that with the room PVS plus a view-distance cutoff;
//! when more entities are visible than fit in a reply, the nearest win.
//! Reply-building cost is proportional to the number of *visible*
//! entities, which is what makes total reply time grow superlinearly
//! with the player count — the effect that dominates the paper's
//! sequential breakdown.

use parquake_protocol::{EntityUpdate, MAX_ENTITIES_PER_REPLY};

use crate::entity::EntityId;
use crate::world::GameWorld;
use crate::WorkCounters;

/// Collect the entity updates visible to `viewer` into `out`
/// (cleared first). Scratch buffer `dist_scratch` avoids per-call
/// allocation in the reply hot path.
pub fn build_reply_entities(
    world: &GameWorld,
    viewer: EntityId,
    out: &mut Vec<EntityUpdate>,
    dist_scratch: &mut Vec<(f32, EntityUpdate)>,
    work: &mut WorkCounters,
) {
    out.clear();
    dist_scratch.clear();
    let me = world.store.snapshot(viewer);
    let my_room = world.map.rooms.room_of(me.pos);
    let max_d2 = world.max_view_dist * world.max_view_dist;

    for id in 0..world.store.capacity() as EntityId {
        if id == viewer {
            continue;
        }
        let e = world.store.snapshot(id);
        if !e.active {
            continue;
        }
        work.visibility_checks += 1;
        let d2 = e.pos.distance_sq(me.pos);
        if d2 > max_d2 {
            continue;
        }
        if !world
            .map
            .rooms
            .rooms_visible(my_room, world.map.rooms.room_of(e.pos))
        {
            continue;
        }
        dist_scratch.push((
            d2,
            EntityUpdate {
                id: e.id,
                kind: e.wire_kind(),
                state: e.wire_state(),
                pos: e.pos,
                yaw: e.yaw,
            },
        ));
    }

    if dist_scratch.len() > MAX_ENTITIES_PER_REPLY {
        dist_scratch.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
        dist_scratch.truncate(MAX_ENTITIES_PER_REPLY);
    }
    out.extend(dist_scratch.iter().map(|&(_, u)| u));
    work.encoded_entities += out.len() as u64;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entity::EntityClass;
    use parquake_bsp::mapgen::MapGenConfig;
    use parquake_math::vec3::vec3;
    use parquake_math::Pcg32;
    use std::sync::Arc;

    fn build(world: &GameWorld, viewer: EntityId) -> Vec<EntityUpdate> {
        let mut out = Vec::new();
        let mut scratch = Vec::new();
        let mut work = WorkCounters::new();
        build_reply_entities(world, viewer, &mut out, &mut scratch, &mut work);
        out
    }

    #[test]
    fn nearby_players_are_visible() {
        let map = Arc::new(MapGenConfig::open_hall(1).generate());
        let w = GameWorld::new(map, 4, 8);
        let mut rng = Pcg32::seeded(1);
        w.spawn_player(0, 0, &mut rng);
        w.spawn_player(1, 1, &mut rng);
        let p0 = w.store.snapshot(0).pos;
        w.store
            .with_mut(1, 0, |e| e.pos = p0 + vec3(200.0, 0.0, 0.0));
        let vis = build(&w, 0);
        assert!(vis.iter().any(|u| u.id == 1), "player 1 invisible");
        // Viewer never sees itself.
        assert!(!vis.iter().any(|u| u.id == 0));
    }

    #[test]
    fn distance_cutoff_applies() {
        let map = Arc::new(MapGenConfig::open_hall(1).generate());
        let mut w = GameWorld::new(map, 4, 8);
        w.max_view_dist = 100.0;
        let mut rng = Pcg32::seeded(2);
        w.spawn_player(0, 0, &mut rng);
        w.spawn_player(1, 1, &mut rng);
        let p0 = w.store.snapshot(0).pos;
        w.store
            .with_mut(1, 0, |e| e.pos = p0 + vec3(500.0, 0.0, 0.0));
        let vis = build(&w, 0);
        assert!(!vis.iter().any(|u| u.id == 1));
    }

    #[test]
    fn rooms_gate_visibility_in_mazes() {
        let map = Arc::new(MapGenConfig::large_arena(5).generate());
        let w = GameWorld::new(map, 4, 8);
        let mut rng = Pcg32::seeded(3);
        w.spawn_player(0, 0, &mut rng);
        w.spawn_player(1, 1, &mut rng);
        // Park player 1 far across the maze (many rooms away).
        w.store.with_mut(0, 0, |e| e.pos = w.map.spawn_points[0]);
        w.store
            .with_mut(1, 0, |e| e.pos = *w.map.spawn_points.last().unwrap());
        let vis = build(&w, 0);
        assert!(!vis.iter().any(|u| u.id == 1), "saw through the maze");
    }

    #[test]
    fn taken_items_report_state_zero() {
        let map = Arc::new(MapGenConfig::open_hall(1).generate());
        let w = GameWorld::new(map, 4, 8);
        let mut rng = Pcg32::seeded(4);
        w.spawn_player(0, 0, &mut rng);
        let item = w.item_ids().next().unwrap();
        let p0 = w.store.snapshot(0).pos;
        w.store.with_mut(item, 0, |e| {
            e.pos = p0 + vec3(100.0, 0.0, 0.0);
            if let EntityClass::Item { taken, .. } = &mut e.class {
                *taken = true;
            }
        });
        let vis = build(&w, 0);
        let u = vis.iter().find(|u| u.id == item).expect("item visible");
        assert_eq!(u.state, 0);
    }

    #[test]
    fn reply_size_is_capped_by_nearest() {
        let map = Arc::new(MapGenConfig::open_hall(1).generate());
        let w = GameWorld::new(map, 4, 200);
        let mut rng = Pcg32::seeded(5);
        for i in 0..200 {
            w.spawn_player(i, i as u32, &mut rng);
        }
        // Cluster everyone around player 0.
        let p0 = w.store.snapshot(0).pos;
        for i in 1..200u16 {
            w.store.with_mut(i, 0, |e| {
                e.pos = p0 + vec3((i as f32) * 3.0, 0.0, 0.0);
            });
        }
        let vis = build(&w, 0);
        assert_eq!(vis.len(), MAX_ENTITIES_PER_REPLY);
        // The nearest player must be in; the farthest must not.
        assert!(vis.iter().any(|u| u.id == 1));
        assert!(!vis.iter().any(|u| u.id == 199));
    }

    #[test]
    fn inactive_entities_are_never_sent() {
        let map = Arc::new(MapGenConfig::open_hall(1).generate());
        let w = GameWorld::new(map, 4, 8);
        let mut rng = Pcg32::seeded(6);
        w.spawn_player(0, 0, &mut rng);
        // Idle projectile slots are inactive.
        let slot = w.projectile_slot(3);
        let vis = build(&w, 0);
        assert!(!vis.iter().any(|u| u.id == slot));
    }
}
