//! Long-range interactions (paper §4.3's two object classes).
//!
//! * **Hitscan attacks** (`ATTACK`) are *fully simulated during request
//!   processing*: a ray from the shooter's eye to the edge of the world
//!   in the view direction. Under optimized locking the server locks the
//!   *directional* region covering that beam.
//! * **Thrown projectiles** (`THROW`) are *partly simulated during
//!   request processing and completed during the world physics phase*:
//!   the launch happens inline (within an *expanded* lock region), the
//!   flight is integrated by the master thread each frame.

use parquake_math::angles::Angles;
use parquake_math::{Aabb, Vec3};

use crate::entity::{EntityClass, EntityId};
use crate::world::GameWorld;
use crate::WorkCounters;

/// Hitscan range (beam is clipped to world geometry anyway).
pub const HITSCAN_RANGE: f32 = 4096.0;
/// Hitscan damage per hit.
pub const HITSCAN_DAMAGE: i32 = 15;
/// Projectile damage on impact.
pub const PROJECTILE_DAMAGE: i32 = 40;
/// Projectile muzzle speed (units/second).
pub const PROJECTILE_SPEED: f32 = 600.0;
/// Projectile lifetime.
pub const PROJECTILE_LIFETIME_NS: u64 = 1_500_000_000;
/// How far beyond its bounding box a thrown object can affect the world
/// while being completed in the world phase — the *expanded* locking
/// margin of paper §4.3 (launch offset + first-frame flight).
pub const EXPANDED_LOCK_MARGIN: f32 = 96.0;

/// Result of a hitscan attack.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HitInfo {
    pub victim: EntityId,
    pub pos: Vec3,
    pub killed: bool,
}

/// The axis-aligned region a directional (beam) lock must cover: from
/// the shooter's eye along the view direction, out to `range`, padded
/// by the victim hull size (paper §4.3 "directional bounding-box
/// locking").
pub fn directional_beam_box(eye: Vec3, angles: Angles, range: f32) -> Aabb {
    let dir = angles.forward();
    let end = eye.mul_add(dir, range);
    Aabb::from_corners(eye, end).inflated(Vec3::splat(32.0))
}

/// Execute a hitscan attack for `shooter`. `candidates` must cover the
/// beam region (guaranteed by whichever locking policy gathered them).
/// Returns the nearest victim hit, with damage applied.
pub fn run_hitscan(
    world: &GameWorld,
    task: u32,
    shooter: EntityId,
    candidates: &[EntityId],
    work: &mut WorkCounters,
) -> Option<HitInfo> {
    let me = world.store.snapshot(shooter);
    if !me.is_live_player() {
        return None;
    }
    let eye = me.eye();
    let angles = Angles::new(me.pitch, me.yaw, 0.0);
    let dir = angles.forward();

    // Clip the beam to world geometry first.
    let tr = world.map.trace(
        parquake_bsp::Hull::Point,
        eye,
        eye.mul_add(dir, HITSCAN_RANGE),
    );
    work.trace_steps += tr.steps as u64;
    let wall_frac = tr.fraction;
    let delta = dir * HITSCAN_RANGE;

    // Nearest candidate player intersecting the beam before the wall.
    let beam_origin = Aabb::point(eye);
    let mut best: Option<(f32, EntityId)> = None;
    for &cand in candidates {
        if cand == shooter {
            continue;
        }
        let other = world.store.snapshot(cand);
        if !other.is_live_player() {
            continue;
        }
        work.object_tests += 1;
        if let Some(t) = beam_origin.sweep_hit(delta, &other.abs_box()) {
            if t <= wall_frac && best.map(|(bt, _)| t < bt).unwrap_or(true) {
                best = Some((t, cand));
            }
        }
    }

    let (t, victim) = best?;
    work.interactions += 1;
    let mut killed = false;
    world.store.with_mut(victim, task, |e| {
        if let EntityClass::Player { health, dead, .. } = &mut e.class {
            *health -= HITSCAN_DAMAGE;
            if *health <= 0 && !*dead {
                *dead = true;
                killed = true;
            }
        }
    });
    if killed {
        world.store.with_mut(shooter, task, |e| {
            if let EntityClass::Player { score, .. } = &mut e.class {
                *score += 5;
            }
        });
    }
    Some(HitInfo {
        victim,
        pos: eye.mul_add(dir, HITSCAN_RANGE * t),
        killed,
    })
}

/// Launch the shooter's projectile if its slot is idle. The caller must
/// hold locks covering the expanded region around the shooter and is
/// responsible for linking the returned entity.
pub fn launch_projectile(
    world: &GameWorld,
    task: u32,
    shooter_idx: u16,
    now: u64,
    work: &mut WorkCounters,
) -> Option<EntityId> {
    let shooter = world.player_slot(shooter_idx);
    let me = world.store.snapshot(shooter);
    if !me.is_live_player() {
        return None;
    }
    let slot = world.projectile_slot(shooter_idx);
    let proj = world.store.snapshot(slot);
    if let EntityClass::Projectile { live: true, .. } = proj.class {
        return None; // one in flight at a time
    }
    work.interactions += 1;
    let angles = Angles::new(me.pitch, me.yaw, 0.0);
    let dir = angles.forward();
    let start = me.eye().mul_add(dir, 24.0);
    world.store.with_mut(slot, task, |e| {
        e.pos = start;
        e.vel = dir * PROJECTILE_SPEED + Vec3::new(0.0, 0.0, 40.0);
        e.active = true;
        e.class = EntityClass::Projectile {
            owner: shooter,
            expire_at: now + PROJECTILE_LIFETIME_NS,
            live: true,
        };
    });
    Some(slot)
}

#[cfg(test)]
mod tests {
    use super::*;
    use parquake_bsp::mapgen::MapGenConfig;
    use parquake_math::vec3::vec3;
    use parquake_math::Pcg32;
    use std::sync::Arc;

    fn world() -> GameWorld {
        let map = Arc::new(MapGenConfig::open_hall(11).generate());
        GameWorld::new(map, 4, 8)
    }

    fn face(w: &GameWorld, shooter: EntityId, target: EntityId) {
        let a = w.store.snapshot(shooter);
        let b = w.store.snapshot(target);
        let ang = Angles::looking_at(a.eye(), b.pos);
        w.store.with_mut(shooter, 0, |e| {
            e.yaw = ang.yaw;
            e.pitch = ang.pitch;
        });
    }

    fn spawn_pair(w: &GameWorld) -> (EntityId, EntityId) {
        let mut rng = Pcg32::seeded(5);
        let a = w.spawn_player(0, 0, &mut rng);
        let b = w.spawn_player(1, 1, &mut rng);
        // Place them at a clean separation in open space.
        let center = w.map.spawn_points[0];
        w.store.with_mut(a, 0, |e| e.pos = center);
        w.store
            .with_mut(b, 0, |e| e.pos = center + vec3(300.0, 0.0, 0.0));
        w.relink_unlocked(a);
        w.relink_unlocked(b);
        (a, b)
    }

    #[test]
    fn hitscan_hits_facing_target() {
        let w = world();
        let (a, b) = spawn_pair(&w);
        face(&w, a, b);
        let mut work = WorkCounters::new();
        let hit = run_hitscan(&w, 0, a, &[b], &mut work).expect("must hit");
        assert_eq!(hit.victim, b);
        assert!(!hit.killed);
        match w.store.snapshot(b).class {
            EntityClass::Player { health, .. } => assert_eq!(health, 100 - HITSCAN_DAMAGE),
            _ => unreachable!(),
        }
    }

    #[test]
    fn hitscan_misses_when_facing_away() {
        let w = world();
        let (a, b) = spawn_pair(&w);
        face(&w, a, b);
        w.store.with_mut(a, 0, |e| e.yaw += 180.0);
        let mut work = WorkCounters::new();
        assert!(run_hitscan(&w, 0, a, &[b], &mut work).is_none());
    }

    #[test]
    fn hitscan_kill_awards_score() {
        let w = world();
        let (a, b) = spawn_pair(&w);
        face(&w, a, b);
        w.store.with_mut(b, 0, |e| {
            if let EntityClass::Player { health, .. } = &mut e.class {
                *health = HITSCAN_DAMAGE; // one shot left
            }
        });
        let mut work = WorkCounters::new();
        let hit = run_hitscan(&w, 0, a, &[b], &mut work).unwrap();
        assert!(hit.killed);
        match w.store.snapshot(a).class {
            EntityClass::Player { score, .. } => assert_eq!(score, 5),
            _ => unreachable!(),
        }
        assert!(!w.store.snapshot(b).is_live_player());
    }

    #[test]
    fn hitscan_picks_nearest_victim() {
        let w = world();
        let mut rng = Pcg32::seeded(6);
        let a = w.spawn_player(0, 0, &mut rng);
        let b = w.spawn_player(1, 1, &mut rng);
        let c = w.spawn_player(2, 2, &mut rng);
        let center = w.map.spawn_points[0];
        w.store.with_mut(a, 0, |e| e.pos = center);
        w.store
            .with_mut(b, 0, |e| e.pos = center + vec3(200.0, 0.0, 0.0));
        w.store
            .with_mut(c, 0, |e| e.pos = center + vec3(400.0, 0.0, 0.0));
        face(&w, a, c);
        let mut work = WorkCounters::new();
        let hit = run_hitscan(&w, 0, a, &[c, b], &mut work).unwrap();
        assert_eq!(hit.victim, b, "should hit the nearer player first");
    }

    #[test]
    fn walls_block_hitscan() {
        // Use the maze map: two players in different rooms.
        let map = Arc::new(MapGenConfig::small_arena(21).generate());
        let w = GameWorld::new(map, 4, 8);
        let mut rng = Pcg32::seeded(7);
        let a = w.spawn_player(0, 0, &mut rng);
        let b = w.spawn_player(1, 1, &mut rng);
        // Spawn 0 and spawn 24 are opposite corners; the maze between
        // them blocks a straight shot.
        w.store.with_mut(a, 0, |e| e.pos = w.map.spawn_points[0]);
        w.store
            .with_mut(b, 0, |e| e.pos = *w.map.spawn_points.last().unwrap());
        face(&w, a, b);
        let mut work = WorkCounters::new();
        assert!(run_hitscan(&w, 0, a, &[b], &mut work).is_none());
    }

    #[test]
    fn projectile_launch_occupies_slot() {
        let w = world();
        let (a, _) = spawn_pair(&w);
        let mut work = WorkCounters::new();
        let slot = launch_projectile(&w, 0, 0, 1000, &mut work).expect("launch");
        assert_eq!(slot, w.projectile_slot(0));
        let p = w.store.snapshot(slot);
        assert!(p.active);
        assert!(p.vel.length() > PROJECTILE_SPEED * 0.9);
        match p.class {
            EntityClass::Projectile {
                live,
                owner,
                expire_at,
            } => {
                assert!(live);
                assert_eq!(owner, a);
                assert_eq!(expire_at, 1000 + PROJECTILE_LIFETIME_NS);
            }
            _ => unreachable!(),
        }
        // Second launch while in flight is refused.
        assert!(launch_projectile(&w, 0, 0, 2000, &mut work).is_none());
    }

    #[test]
    fn directional_beam_box_contains_beam() {
        let eye = vec3(100.0, 100.0, 50.0);
        let ang = Angles::yawed(45.0);
        let b = directional_beam_box(eye, ang, 1000.0);
        assert!(b.contains_point(eye));
        assert!(b.contains_point(eye.mul_add(ang.forward(), 999.0)));
        // A beam along +x..+y diagonal: box spans both axes.
        assert!(b.size().x > 600.0 && b.size().y > 600.0);
    }
}
