//! Water volumes and swim physics.

use std::sync::Arc;

use parquake_bsp::mapgen::MapGenConfig;
use parquake_bsp::tree::Contents;
use parquake_math::vec3::vec3;
use parquake_math::Pcg32;
use parquake_protocol::{Buttons, MoveCmd};
use parquake_sim::movement::{run_move, MAX_GROUND_SPEED};
use parquake_sim::{GameWorld, WorkCounters};

fn flooded_world() -> (GameWorld, parquake_math::Vec3) {
    // Deterministically find a seed whose map floods room (0,0) — the
    // generator is pure, so probe seeds until one works.
    for seed in 0..64u64 {
        let cfg = MapGenConfig::flooded_arena(seed);
        let map = cfg.generate();
        let spawn = map.spawn_points[0];
        let probe = vec3(spawn.x, spawn.y, 20.0);
        if map.in_water(probe) {
            let w = GameWorld::new(Arc::new(map), 4, 4);
            let mut rng = Pcg32::seeded(1);
            for i in 0..4 {
                w.spawn_player(i, i as u32, &mut rng);
            }
            return (w, spawn);
        }
    }
    panic!("no seed in 0..64 floods room (0,0)");
}

#[test]
fn water_contents_are_reported() {
    let (w, spawn) = flooded_world();
    assert_eq!(
        w.map.contents(vec3(spawn.x, spawn.y, 20.0)),
        Contents::Water
    );
    // Above the 40-unit pool surface: air.
    assert_eq!(
        w.map.contents(vec3(spawn.x, spawn.y, 80.0)),
        Contents::Empty
    );
    // Inside the floor: solid wins over water.
    assert_eq!(
        w.map.contents(vec3(spawn.x, spawn.y, -10.0)),
        Contents::Solid
    );
}

#[test]
fn water_does_not_block_movement_or_traces() {
    let (w, spawn) = flooded_world();
    let tr = w.map.trace(
        parquake_bsp::Hull::Player,
        vec3(spawn.x, spawn.y, 60.0),
        vec3(spawn.x, spawn.y + 60.0, 60.0),
    );
    assert!(!tr.hit(), "water blocked a trace");
}

#[test]
fn swimmers_sink_slowly_and_can_swim_up() {
    let (w, spawn) = flooded_world();
    // Park player 0 mid-pool.
    w.store.with_mut(0, 0, |e| {
        e.pos = vec3(spawn.x, spawn.y, 30.0);
        e.vel = parquake_math::Vec3::ZERO;
        e.on_ground = false;
    });
    w.relink_unlocked(0);
    let mut touched = Vec::new();
    let mut work = WorkCounters::new();

    // Idle: slow sink, never free-fall.
    for i in 0..10 {
        run_move(
            &w,
            0,
            0,
            &MoveCmd::idle(i, 30),
            &[],
            0,
            &mut touched,
            &mut work,
        );
    }
    let e = w.store.snapshot(0);
    assert!(e.vel.z < 0.0, "no sinking: {:?}", e.vel);
    assert!(e.vel.z > -120.0, "sank like a stone: {:?}", e.vel);

    // Swim-jump: upward motion.
    let cmd = MoveCmd {
        buttons: Buttons(Buttons::JUMP),
        ..MoveCmd::idle(99, 30)
    };
    run_move(&w, 0, 0, &cmd, &[], 0, &mut touched, &mut work);
    assert!(w.store.snapshot(0).vel.z > 0.0);
}

#[test]
fn swimming_is_slower_than_running() {
    let (w, spawn) = flooded_world();
    w.store.with_mut(0, 0, |e| {
        e.pos = vec3(spawn.x, spawn.y, 20.0);
        e.vel = parquake_math::Vec3::ZERO;
    });
    w.relink_unlocked(0);
    let mut touched = Vec::new();
    let mut work = WorkCounters::new();
    let cmd = MoveCmd {
        forward: MAX_GROUND_SPEED,
        ..MoveCmd::idle(0, 30)
    };
    for _ in 0..40 {
        run_move(&w, 0, 0, &cmd, &[], 0, &mut touched, &mut work);
        // Hold depth so we stay submerged for the whole measurement.
        w.store.with_mut(0, 0, |e| e.pos.z = 20.0);
        w.relink_unlocked(0);
    }
    let swim_speed = w.store.snapshot(0).vel.length_xy();
    assert!(
        swim_speed < MAX_GROUND_SPEED * 0.85,
        "swimming too fast: {swim_speed}"
    );
    assert!(swim_speed > 50.0, "barely moving: {swim_speed}");
}

#[test]
fn pitched_swimming_moves_vertically() {
    let (w, spawn) = flooded_world();
    w.store.with_mut(0, 0, |e| {
        e.pos = vec3(spawn.x, spawn.y, 30.0);
        e.vel = parquake_math::Vec3::ZERO;
    });
    w.relink_unlocked(0);
    let mut touched = Vec::new();
    let mut work = WorkCounters::new();
    // Look up steeply and swim forward: should rise.
    let cmd = MoveCmd {
        pitch: -60.0, // negative pitch = up
        forward: MAX_GROUND_SPEED,
        ..MoveCmd::idle(0, 30)
    };
    for _ in 0..5 {
        run_move(&w, 0, 0, &cmd, &[], 0, &mut touched, &mut work);
    }
    assert!(
        w.store.snapshot(0).vel.z > 20.0,
        "no upward swim: {:?}",
        w.store.snapshot(0).vel
    );
}
