//! Property-based tests for the game simulation: no command sequence
//! may corrupt world state.

use std::sync::Arc;

use parquake_bsp::mapgen::MapGenConfig;
use parquake_math::Pcg32;
use parquake_protocol::{Buttons, MoveCmd};
use parquake_sim::movement::run_move;
use parquake_sim::{GameWorld, WorkCounters};
use proptest::prelude::*;

fn arb_cmd() -> impl Strategy<Value = MoveCmd> {
    (
        -89.0f32..89.0,
        -180.0f32..180.0,
        -320.0f32..320.0,
        -320.0f32..320.0,
        any::<u8>(),
        1u8..100,
    )
        .prop_map(|(pitch, yaw, forward, side, buttons, msec)| MoveCmd {
            seq: 0,
            sent_at: 0,
            pitch,
            yaw,
            forward,
            side,
            up: 0.0,
            buttons: Buttons(buttons & 0b1111),
            msec,
            predict_ack: None,
        })
}

fn world(players: u16) -> GameWorld {
    let map = Arc::new(MapGenConfig::small_arena(5).generate());
    let w = GameWorld::new(map, 4, players);
    let mut rng = Pcg32::seeded(3);
    for i in 0..players {
        w.spawn_player(i, i as u32, &mut rng);
    }
    w
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn players_never_escape_or_embed(cmds in prop::collection::vec(arb_cmd(), 1..60)) {
        let w = world(4);
        let mut touched = Vec::new();
        let mut work = WorkCounters::new();
        let mut now = 0u64;
        for cmd in &cmds {
            for p in 0..4u16 {
                run_move(&w, 0, p, cmd, &[], now, &mut touched, &mut work);
                w.relink_unlocked(p);
                let e = w.store.snapshot(p);
                prop_assert!(e.pos.is_finite(), "NaN position after {cmd:?}");
                prop_assert!(e.vel.is_finite(), "NaN velocity");
                prop_assert!(
                    w.map.bounds.contains_point(e.pos),
                    "escaped world at {:?}",
                    e.pos
                );
                prop_assert!(
                    w.map.player_fits(e.pos),
                    "embedded in solid at {:?}",
                    e.pos
                );
            }
            now += 30_000_000;
        }
        prop_assert!(w.audit_links().is_ok());
    }

    #[test]
    fn moves_with_candidates_stay_consistent(cmds in prop::collection::vec(arb_cmd(), 1..40)) {
        // All players as mutual candidates: collisions and touches
        // everywhere; spatial index must survive.
        let w = world(6);
        let candidates: Vec<u16> = (0..6).collect();
        let mut touched = Vec::new();
        let mut work = WorkCounters::new();
        let mut now = 0u64;
        for cmd in &cmds {
            for p in 0..6u16 {
                run_move(&w, 0, p, cmd, &candidates, now, &mut touched, &mut work);
                w.relink_unlocked(p);
            }
            now += 30_000_000;
        }
        prop_assert!(w.audit_links().is_ok(), "{:?}", w.audit_links());
        // Linked node always contains the player's box.
        for p in 0..6u16 {
            let e = w.store.snapshot(p);
            prop_assert!(w.tree.node(e.linked_node).bounds.contains(&e.abs_box()));
        }
    }

    #[test]
    fn world_phase_is_safe_after_arbitrary_commands(
        cmds in prop::collection::vec(arb_cmd(), 1..30),
        phases in 1usize..8,
    ) {
        let w = world(5);
        let candidates: Vec<u16> = (0..5).collect();
        let mut touched = Vec::new();
        let mut work = WorkCounters::new();
        let mut rng = Pcg32::seeded(11);
        let mut events = Vec::new();
        let mut now = 0u64;
        for cmd in &cmds {
            for p in 0..5u16 {
                run_move(&w, 0, p, cmd, &candidates, now, &mut touched, &mut work);
                w.relink_unlocked(p);
            }
            now += 30_000_000;
        }
        for k in 0..phases {
            parquake_sim::worldphase::run_world_phase(
                &w,
                now + k as u64 * 30_000_000,
                30_000_000,
                &mut rng,
                &mut events,
                &mut work,
            );
        }
        prop_assert!(w.audit_links().is_ok(), "{:?}", w.audit_links());
        // All players alive again (world phase respawns the dead).
        for p in 0..5u16 {
            let e = w.store.snapshot(p);
            prop_assert!(e.active);
        }
    }

    #[test]
    fn world_hash_is_stable_under_noop_commands(reps in 1usize..20) {
        // Zero-duration commands must not change the world at all.
        let w = world(3);
        let h0 = w.world_hash();
        let mut touched = Vec::new();
        let mut work = WorkCounters::new();
        let cmd = MoveCmd::idle(0, 0); // msec = 0: no time passes
        for _ in 0..reps {
            for p in 0..3u16 {
                run_move(&w, 0, p, &cmd, &[], 0, &mut touched, &mut work);
            }
        }
        prop_assert_eq!(w.world_hash(), h0);
    }
}

// The ISSUE 5 acceptance bar: checkpoint/restore is world-hash
// identical after any random number of simulated frames, and restoring
// that checkpoint onto the further-evolved world rolls the hash back.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn snapshot_restore_is_hash_identical_after_random_frames(
        frames_before in 0u32..48,
        frames_after in 1u32..48,
        cmds in prop::collection::vec(arb_cmd(), 4..12),
        seed in any::<u64>(),
    ) {
        let w = world(4);
        let mut rng = Pcg32::seeded(seed);
        let mut touched = Vec::new();
        let mut work = WorkCounters::new();
        let mut events = Vec::new();
        let mut now = 0u64;
        let mut step = |w: &GameWorld, now: &mut u64| {
            for (p, cmd) in (0..4u16).zip(cmds.iter().cycle()) {
                run_move(w, 0, p, cmd, &[], *now, &mut touched, &mut work);
                w.relink_unlocked(p);
            }
            parquake_sim::worldphase::run_world_phase(
                w, *now, 30_000_000, &mut rng, &mut events, &mut work,
            );
            *now += 30_000_000;
        };
        for _ in 0..frames_before {
            step(&w, &mut now);
        }
        let hash_at_checkpoint = w.world_hash();
        let bytes = w.snapshot_bytes();

        // Round trip in place.
        w.restore_bytes(&bytes).unwrap();
        prop_assert_eq!(w.world_hash(), hash_at_checkpoint);
        prop_assert!(w.audit_links().is_ok(), "{:?}", w.audit_links());

        // Diverge, then roll back to the checkpoint.
        for _ in 0..frames_after {
            step(&w, &mut now);
        }
        w.restore_bytes(&bytes).unwrap();
        prop_assert_eq!(w.world_hash(), hash_at_checkpoint);
        prop_assert!(w.audit_links().is_ok(), "{:?}", w.audit_links());
    }
}
