//! Text-table rendering of breakdowns and statistics (the harness's
//! figure output format).

use crate::breakdown::{Breakdown, Bucket};

/// Render a set of labelled breakdowns as a percentage table, one row
/// per configuration — the textual equivalent of the paper's stacked
/// bar charts.
pub fn breakdown_table(rows: &[(String, &Breakdown)]) -> String {
    let mut out = String::new();
    out.push_str(&format!("{:<28}", "configuration"));
    for b in Bucket::ALL {
        out.push_str(&format!("{:>11}", b.label()));
    }
    out.push('\n');
    for (label, bd) in rows {
        out.push_str(&format!("{label:<28}"));
        for b in Bucket::ALL {
            out.push_str(&format!("{:>10.1}%", bd.percent(b)));
        }
        out.push('\n');
    }
    out
}

/// Render a simple aligned numeric table.
pub fn numeric_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let cols = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(cols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    for (i, h) in header.iter().enumerate() {
        out.push_str(&format!("{:>w$}  ", h, w = widths[i]));
    }
    out.push('\n');
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(cols) {
            out.push_str(&format!("{:>w$}  ", cell, w = widths[i]));
        }
        out.push('\n');
    }
    out
}

/// Format a float to a fixed number of decimals (helper for tables).
pub fn f(v: f64, decimals: usize) -> String {
    format!("{v:.decimals$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_table_contains_labels_and_percentages() {
        let mut b = Breakdown::new();
        b.add(Bucket::Exec, 50);
        b.add(Bucket::Idle, 50);
        let t = breakdown_table(&[("seq 64p".to_string(), &b)]);
        assert!(t.contains("seq 64p"));
        assert!(t.contains("exec"));
        assert!(t.contains("50.0%"));
    }

    #[test]
    fn numeric_table_aligns() {
        let t = numeric_table(
            &["players", "rate"],
            &[
                vec!["64".into(), "1000.0".into()],
                vec!["128".into(), "9.5".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("players"));
        assert!(lines[2].contains("9.5"));
    }

    #[test]
    fn float_formatting() {
        assert_eq!(f(1.23456, 2), "1.23");
        assert_eq!(f(10.0, 0), "10");
    }
}
