//! Measurement infrastructure for `parquake`.
//!
//! The paper's evaluation (§4) rests on three instruments, all
//! reproduced here:
//!
//! * **execution-time breakdowns** — every nanosecond of a server
//!   thread's life is attributed to one of the paper's buckets
//!   ([`Bucket`]): request execution, lock synchronization, receive,
//!   reply, intra-/inter-frame wait, idle, plus the world-update phase;
//! * **response rate and response time** — measured at the clients
//!   ([`ResponseStats`]);
//! * **lock statistics** — leaf vs parent lock shares, distinct leaves
//!   locked per request, relock counts, and per-frame overlap between
//!   threads ([`LockStats`], [`FrameStats`]).
//!
//! All types are passive accumulators: the server and bots feed them
//! durations and counts obtained from whichever fabric (real or
//! virtual-time) the experiment runs on. Everything is mergeable so
//! per-thread collectors can be combined into run-level results.

pub mod arena;
pub mod breakdown;
pub mod gateway;
pub mod report;
pub mod stats;
pub mod supervisor;
pub mod timeline;
pub mod witness;

pub use arena::{rollup, ArenaLoad, ElasticEvent, ElasticEventKind, ElasticStats};
pub use breakdown::{Breakdown, Bucket};
pub use gateway::GatewayLane;
pub use stats::{FrameStats, LockStats, PredictionStats, ResponseStats, ThreadStats};
pub use supervisor::{SupervisorEvent, SupervisorEventKind, SupervisorStats};
pub use timeline::{FrameSample, Timeline};
pub use witness::{LockClass, LockLayer, LockViolation, LockViolationKind, WitnessReport};

/// Nanoseconds — the common time unit across fabrics.
pub type Nanos = u64;

/// Convert nanoseconds to seconds as f64.
#[inline]
pub fn ns_to_secs(ns: Nanos) -> f64 {
    ns as f64 / 1e9
}

/// Convert nanoseconds to milliseconds as f64.
#[inline]
pub fn ns_to_ms(ns: Nanos) -> f64 {
    ns as f64 / 1e6
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_conversions() {
        assert_eq!(ns_to_secs(1_500_000_000), 1.5);
        assert_eq!(ns_to_ms(2_500_000), 2.5);
    }
}
