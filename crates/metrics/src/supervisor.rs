//! Arena supervision accounting: panics caught, restores performed,
//! checkpoint volume, shed frames, recovery latency.
//!
//! The directory's supervisor (crates/arena) is the writer; experiments
//! and the UDP gateway read a merged copy at the end of a run. As with
//! [`crate::ElasticStats`], events carry fabric timestamps so reports
//! can replay the fault/recovery history of a run.

use crate::Nanos;

/// What happened to one arena at one moment.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SupervisorEventKind {
    /// A frame panicked and was caught; the arena is fenced off.
    Panicked,
    /// The watchdog condemned the arena for overrunning its deadline.
    Stuck,
    /// The arena was restored from a checkpoint and is live again.
    Restored,
    /// A live slot was handed off to another arena (rebalance/drain).
    Migrated,
}

/// One entry of the supervision history.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SupervisorEvent {
    /// Fabric time of the event.
    pub at: Nanos,
    /// Which arena.
    pub arena: u16,
    pub kind: SupervisorEventKind,
}

/// Cumulative supervision counters for one directory.
#[derive(Clone, Debug, Default)]
pub struct SupervisorStats {
    /// Frames whose panic was caught (injected or organic).
    pub panics_caught: u64,
    /// Arenas condemned by the watchdog for a deadline overrun.
    pub stuck_detected: u64,
    /// Checkpoint restores performed (each brings an arena back live).
    pub restarts: u64,
    /// Checkpoints written into the per-arena rings.
    pub checkpoints_taken: u64,
    /// Total serialized checkpoint volume.
    pub checkpoint_bytes: u64,
    /// Frames run in shed (degraded) mode with a stretched interval.
    pub shed_frames: u64,
    /// Queued move commands merged away by per-client coalescing
    /// during shed frames (newest kept, older superseded).
    pub coalesced_moves: u64,
    /// Σ crash-to-live recovery latency over all restores.
    pub recovery_latency_ns_sum: Nanos,
    /// Worst single recovery latency.
    pub recovery_latency_ns_max: Nanos,
    /// Clients the ledger replay re-booked after a restore.
    pub replayed_placements: u64,
    /// Restored slots wiped because the ledger showed the client had
    /// migrated away after the checkpoint was taken (the checkpoint is
    /// older than the handoff; the book wins).
    pub stale_restored_slots: u64,
    /// Completed cross-arena slot handoffs.
    pub migrations: u64,
    /// Of `migrations`, handoffs triggered by the drain-before-reap
    /// path (emptying a lingering arena) rather than spread rebalance.
    pub drain_migrations: u64,
    /// Handoffs abandoned before any mutation (fence contention, no
    /// free target slot, capsule validation failure).
    pub migrate_aborted: u64,
    /// Handoffs whose landed capsule hashed differently from the
    /// source pre-fence state. Always 0 unless the codec is broken.
    pub migrate_hash_mismatch: u64,
    /// Chronological fault/recovery history.
    pub events: Vec<SupervisorEvent>,
}

impl SupervisorStats {
    pub fn new() -> SupervisorStats {
        SupervisorStats::default()
    }

    /// Record one completed restore.
    pub fn note_restore(&mut self, at: Nanos, arena: u16, latency_ns: Nanos) {
        self.restarts += 1;
        self.recovery_latency_ns_sum += latency_ns;
        self.recovery_latency_ns_max = self.recovery_latency_ns_max.max(latency_ns);
        self.events.push(SupervisorEvent {
            at,
            arena,
            kind: SupervisorEventKind::Restored,
        });
    }

    /// Average crash-to-live recovery latency in milliseconds.
    pub fn avg_recovery_ms(&self) -> f64 {
        if self.restarts == 0 {
            0.0
        } else {
            crate::ns_to_ms(self.recovery_latency_ns_sum) / self.restarts as f64
        }
    }

    /// Fold a worker-local accumulator into a directory-level total
    /// (events are concatenated then re-sorted by time, stably).
    pub fn merge(&mut self, o: &SupervisorStats) {
        self.panics_caught += o.panics_caught;
        self.stuck_detected += o.stuck_detected;
        self.restarts += o.restarts;
        self.checkpoints_taken += o.checkpoints_taken;
        self.checkpoint_bytes += o.checkpoint_bytes;
        self.shed_frames += o.shed_frames;
        self.coalesced_moves += o.coalesced_moves;
        self.recovery_latency_ns_sum += o.recovery_latency_ns_sum;
        self.recovery_latency_ns_max = self.recovery_latency_ns_max.max(o.recovery_latency_ns_max);
        self.replayed_placements += o.replayed_placements;
        self.stale_restored_slots += o.stale_restored_slots;
        self.migrations += o.migrations;
        self.drain_migrations += o.drain_migrations;
        self.migrate_aborted += o.migrate_aborted;
        self.migrate_hash_mismatch += o.migrate_hash_mismatch;
        self.events.extend(o.events.iter().copied());
        self.events.sort_by_key(|e| e.at);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn restores_accumulate_latency() {
        let mut s = SupervisorStats::new();
        s.note_restore(1_000, 0, 2_000_000);
        s.note_restore(9_000, 1, 6_000_000);
        assert_eq!(s.restarts, 2);
        assert_eq!(s.avg_recovery_ms(), 4.0);
        assert_eq!(s.recovery_latency_ns_max, 6_000_000);
        assert_eq!(s.events.len(), 2);
        assert_eq!(SupervisorStats::new().avg_recovery_ms(), 0.0);
    }

    #[test]
    fn merge_sums_and_resorts_events() {
        let mut a = SupervisorStats {
            panics_caught: 2,
            checkpoints_taken: 5,
            checkpoint_bytes: 100,
            ..SupervisorStats::new()
        };
        a.note_restore(50, 0, 10);
        let mut b = SupervisorStats {
            panics_caught: 1,
            stuck_detected: 1,
            shed_frames: 7,
            coalesced_moves: 12,
            replayed_placements: 3,
            stale_restored_slots: 1,
            migrations: 4,
            drain_migrations: 2,
            migrate_aborted: 1,
            migrate_hash_mismatch: 0,
            ..SupervisorStats::new()
        };
        b.events.push(SupervisorEvent {
            at: 10,
            arena: 1,
            kind: SupervisorEventKind::Panicked,
        });
        b.events.push(SupervisorEvent {
            at: 70,
            arena: 0,
            kind: SupervisorEventKind::Migrated,
        });
        a.merge(&b);
        assert_eq!(a.panics_caught, 3);
        assert_eq!(a.stuck_detected, 1);
        assert_eq!(a.shed_frames, 7);
        assert_eq!(a.coalesced_moves, 12);
        assert_eq!(a.replayed_placements, 3);
        assert_eq!(a.stale_restored_slots, 1);
        assert_eq!(a.migrations, 4);
        assert_eq!(a.drain_migrations, 2);
        assert_eq!(a.migrate_aborted, 1);
        assert_eq!(a.events.last().unwrap().kind, SupervisorEventKind::Migrated);
        assert_eq!(a.events[0].at, 10, "events re-sorted by time");
        assert_eq!(a.events[1].kind, SupervisorEventKind::Restored);
    }
}
