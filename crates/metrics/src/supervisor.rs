//! Arena supervision accounting: panics caught, restores performed,
//! checkpoint volume, shed frames, recovery latency.
//!
//! The directory's supervisor (crates/arena) is the writer; experiments
//! and the UDP gateway read a merged copy at the end of a run. As with
//! [`crate::ElasticStats`], events carry fabric timestamps so reports
//! can replay the fault/recovery history of a run.

use crate::Nanos;

/// What happened to one arena at one moment.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SupervisorEventKind {
    /// A frame panicked and was caught; the arena is fenced off.
    Panicked,
    /// The watchdog condemned the arena for overrunning its deadline.
    Stuck,
    /// The arena was restored from a checkpoint and is live again.
    Restored,
}

/// One entry of the supervision history.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SupervisorEvent {
    /// Fabric time of the event.
    pub at: Nanos,
    /// Which arena.
    pub arena: u16,
    pub kind: SupervisorEventKind,
}

/// Cumulative supervision counters for one directory.
#[derive(Clone, Debug, Default)]
pub struct SupervisorStats {
    /// Frames whose panic was caught (injected or organic).
    pub panics_caught: u64,
    /// Arenas condemned by the watchdog for a deadline overrun.
    pub stuck_detected: u64,
    /// Checkpoint restores performed (each brings an arena back live).
    pub restarts: u64,
    /// Checkpoints written into the per-arena rings.
    pub checkpoints_taken: u64,
    /// Total serialized checkpoint volume.
    pub checkpoint_bytes: u64,
    /// Frames run in shed (degraded) mode with a stretched interval.
    pub shed_frames: u64,
    /// Queued move commands merged away by per-client coalescing
    /// during shed frames (newest kept, older superseded).
    pub coalesced_moves: u64,
    /// Σ crash-to-live recovery latency over all restores.
    pub recovery_latency_ns_sum: Nanos,
    /// Worst single recovery latency.
    pub recovery_latency_ns_max: Nanos,
    /// Clients the ledger replay re-booked after a restore.
    pub replayed_placements: u64,
    /// Chronological fault/recovery history.
    pub events: Vec<SupervisorEvent>,
}

impl SupervisorStats {
    pub fn new() -> SupervisorStats {
        SupervisorStats::default()
    }

    /// Record one completed restore.
    pub fn note_restore(&mut self, at: Nanos, arena: u16, latency_ns: Nanos) {
        self.restarts += 1;
        self.recovery_latency_ns_sum += latency_ns;
        self.recovery_latency_ns_max = self.recovery_latency_ns_max.max(latency_ns);
        self.events.push(SupervisorEvent {
            at,
            arena,
            kind: SupervisorEventKind::Restored,
        });
    }

    /// Average crash-to-live recovery latency in milliseconds.
    pub fn avg_recovery_ms(&self) -> f64 {
        if self.restarts == 0 {
            0.0
        } else {
            crate::ns_to_ms(self.recovery_latency_ns_sum) / self.restarts as f64
        }
    }

    /// Fold a worker-local accumulator into a directory-level total
    /// (events are concatenated then re-sorted by time, stably).
    pub fn merge(&mut self, o: &SupervisorStats) {
        self.panics_caught += o.panics_caught;
        self.stuck_detected += o.stuck_detected;
        self.restarts += o.restarts;
        self.checkpoints_taken += o.checkpoints_taken;
        self.checkpoint_bytes += o.checkpoint_bytes;
        self.shed_frames += o.shed_frames;
        self.coalesced_moves += o.coalesced_moves;
        self.recovery_latency_ns_sum += o.recovery_latency_ns_sum;
        self.recovery_latency_ns_max = self.recovery_latency_ns_max.max(o.recovery_latency_ns_max);
        self.replayed_placements += o.replayed_placements;
        self.events.extend(o.events.iter().copied());
        self.events.sort_by_key(|e| e.at);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn restores_accumulate_latency() {
        let mut s = SupervisorStats::new();
        s.note_restore(1_000, 0, 2_000_000);
        s.note_restore(9_000, 1, 6_000_000);
        assert_eq!(s.restarts, 2);
        assert_eq!(s.avg_recovery_ms(), 4.0);
        assert_eq!(s.recovery_latency_ns_max, 6_000_000);
        assert_eq!(s.events.len(), 2);
        assert_eq!(SupervisorStats::new().avg_recovery_ms(), 0.0);
    }

    #[test]
    fn merge_sums_and_resorts_events() {
        let mut a = SupervisorStats {
            panics_caught: 2,
            checkpoints_taken: 5,
            checkpoint_bytes: 100,
            ..SupervisorStats::new()
        };
        a.note_restore(50, 0, 10);
        let mut b = SupervisorStats {
            panics_caught: 1,
            stuck_detected: 1,
            shed_frames: 7,
            coalesced_moves: 12,
            replayed_placements: 3,
            ..SupervisorStats::new()
        };
        b.events.push(SupervisorEvent {
            at: 10,
            arena: 1,
            kind: SupervisorEventKind::Panicked,
        });
        a.merge(&b);
        assert_eq!(a.panics_caught, 3);
        assert_eq!(a.stuck_detected, 1);
        assert_eq!(a.shed_frames, 7);
        assert_eq!(a.coalesced_moves, 12);
        assert_eq!(a.replayed_placements, 3);
        assert_eq!(a.events[0].at, 10, "events re-sorted by time");
        assert_eq!(a.events[1].kind, SupervisorEventKind::Restored);
    }
}
