//! Per-arena load summaries and their aggregate rollup.
//!
//! A multi-arena directory runs N independent worlds; observability has
//! to answer both "how is arena k doing?" and "how is the machine
//! doing?". [`ArenaLoad`] is one arena's server- and client-side view
//! for a run; [`rollup`] folds a set of them into the aggregate the
//! `arenasweep` figure reports.

use crate::{ns_to_secs, Nanos, ResponseStats};

/// One arena's load summary over a measured window.
#[derive(Clone, Debug, Default)]
pub struct ArenaLoad {
    /// Arena id (the aggregate from [`rollup`] uses `u16::MAX`).
    pub arena: u16,
    /// Server frames this arena executed.
    pub frames: u64,
    /// Replies the arena's runtime sent.
    pub replies: u64,
    /// Move commands the arena executed.
    pub requests: u64,
    /// Datagrams drained from the arena's request ports.
    pub datagrams: u64,
    /// Clients the admission policy routed here.
    pub admitted: u64,
    /// Client-side response statistics attributed to this arena.
    pub response: ResponseStats,
}

impl ArenaLoad {
    /// Replies per second observed by this arena's clients.
    pub fn response_rate(&self, duration_ns: Nanos) -> f64 {
        if duration_ns == 0 {
            return 0.0;
        }
        self.response.received as f64 / ns_to_secs(duration_ns)
    }

    /// Average client-observed response time in milliseconds.
    pub fn avg_response_ms(&self) -> f64 {
        self.response.avg_latency_ms()
    }

    /// Server frames per second.
    pub fn frame_rate(&self, duration_ns: Nanos) -> f64 {
        if duration_ns == 0 {
            return 0.0;
        }
        self.frames as f64 / ns_to_secs(duration_ns)
    }
}

/// What an elastic-directory event did to the live-arena set.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ElasticEventKind {
    /// An arena was brought live under admission pressure.
    Spawned,
    /// An idle arena was drained and reaped after its linger window.
    Reaped,
}

/// One spawn/reap transition of an elastic directory.
#[derive(Clone, Copy, Debug)]
pub struct ElasticEvent {
    /// Fabric time of the transition.
    pub at: Nanos,
    /// The arena that changed state.
    pub arena: u16,
    pub kind: ElasticEventKind,
    /// Live arenas immediately after the transition.
    pub live: u32,
}

/// Spawn/reap counters published by an elastic arena directory when
/// the run ends (the `repro elasticity` figure plots `events`).
#[derive(Clone, Debug, Default)]
pub struct ElasticStats {
    /// Arenas live at boot (never reaped).
    pub boot: u32,
    /// Upper bound on live arenas (the elasticity ceiling).
    pub max_arenas: u32,
    /// Arenas brought live under admission pressure.
    pub spawned: u64,
    /// Arenas drained and reaped after their linger window.
    pub reaped: u64,
    /// Peak live-arena count over the run.
    pub peak_live: u32,
    /// Live arenas when the run ended.
    pub live_at_end: u32,
    /// Every spawn/reap transition in order.
    pub events: Vec<ElasticEvent>,
}

impl ElasticStats {
    /// Live-arena count at fabric time `at` (from the event timeline).
    pub fn live_at(&self, at: Nanos) -> u32 {
        let mut live = self.boot;
        for ev in &self.events {
            if ev.at > at {
                break;
            }
            live = ev.live;
        }
        live
    }
}

/// Fold per-arena loads into the machine-level aggregate. Counters sum;
/// response statistics merge (so latency averages weight by replies).
pub fn rollup(per: &[ArenaLoad]) -> ArenaLoad {
    let mut agg = ArenaLoad {
        arena: u16::MAX,
        ..ArenaLoad::default()
    };
    for a in per {
        agg.frames += a.frames;
        agg.replies += a.replies;
        agg.requests += a.requests;
        agg.datagrams += a.datagrams;
        agg.admitted += a.admitted;
        agg.response.merge(&a.response);
    }
    agg
}

#[cfg(test)]
mod tests {
    use super::*;

    fn load(arena: u16, replies: u64, latency_ms: u64) -> ArenaLoad {
        let mut response = ResponseStats::new();
        for _ in 0..replies {
            response.note_sent();
            response.note_reply(latency_ms * 1_000_000);
        }
        ArenaLoad {
            arena,
            frames: 100,
            replies,
            requests: replies,
            datagrams: replies + 5,
            admitted: 4,
            response,
        }
    }

    #[test]
    fn rollup_sums_counters_and_merges_latency() {
        let per = [load(0, 100, 2), load(1, 300, 4)];
        let agg = rollup(&per);
        assert_eq!(agg.arena, u16::MAX);
        assert_eq!(agg.frames, 200);
        assert_eq!(agg.replies, 400);
        assert_eq!(agg.datagrams, 410);
        assert_eq!(agg.admitted, 8);
        assert_eq!(agg.response.received, 400);
        // Weighted mean: (100·2 + 300·4) / 400 = 3.5 ms.
        assert!((agg.avg_response_ms() - 3.5).abs() < 1e-9);
    }

    #[test]
    fn elastic_live_count_follows_the_event_timeline() {
        let stats = ElasticStats {
            boot: 1,
            max_arenas: 4,
            spawned: 2,
            reaped: 1,
            peak_live: 3,
            live_at_end: 2,
            events: vec![
                ElasticEvent {
                    at: 100,
                    arena: 1,
                    kind: ElasticEventKind::Spawned,
                    live: 2,
                },
                ElasticEvent {
                    at: 200,
                    arena: 2,
                    kind: ElasticEventKind::Spawned,
                    live: 3,
                },
                ElasticEvent {
                    at: 300,
                    arena: 2,
                    kind: ElasticEventKind::Reaped,
                    live: 2,
                },
            ],
        };
        assert_eq!(stats.live_at(0), 1);
        assert_eq!(stats.live_at(150), 2);
        assert_eq!(stats.live_at(250), 3);
        assert_eq!(stats.live_at(1000), 2);
    }

    #[test]
    fn rates_divide_by_the_window() {
        let a = load(0, 500, 1);
        assert!((a.response_rate(10_000_000_000) - 50.0).abs() < 1e-9);
        assert!((a.frame_rate(10_000_000_000) - 10.0).abs() < 1e-9);
        assert_eq!(a.response_rate(0), 0.0);
    }
}
