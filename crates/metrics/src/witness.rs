//! Lock-discipline witness reports.
//!
//! The fabric's runtime lock-order witness (lockdep-style; see
//! `parquake-fabric::witness`) classifies every fabric mutex into a
//! [`LockClass`], watches the per-task acquisition stacks, and reports
//! what it saw through these types so the harness and tests can assert
//! "zero violations" after every experiment. The types live here — not
//! in the fabric — because `parquake-metrics` is the dependency-free
//! reporting crate everything else already feeds.

use std::fmt;

/// Role of one fabric mutex in the region-locking protocol (§3.3 of the
/// paper). The protocol's global acquisition order is: leaf locks in
/// ascending rank, then (while leaves are held) parent, global-state
/// and client reply locks, each held only for short sections. The
/// control lock is only ever held alone (barrier/frame bookkeeping).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LockClass {
    /// Frame/barrier control lock (`server::par::Ctrl`).
    Ctrl,
    /// Global event-state buffer lock.
    Global,
    /// Areanode leaf lock; `rank` is the node's position in the
    /// canonical ascending acquisition order.
    Leaf { rank: u32 },
    /// Internal (parent) areanode list lock.
    Parent { node: u32 },
    /// Per-client reply buffer lock.
    Client { slot: u32 },
    /// Never classified by the server (test locks, bot-side locks).
    Other { id: u32 },
}

impl LockClass {
    /// Rank-erased protocol layer, used as the node in the lock-order
    /// graph. Unclassified locks each form their own layer so unrelated
    /// test locks cannot fabricate cycles with protocol locks.
    pub fn layer(&self) -> LockLayer {
        match *self {
            LockClass::Ctrl => LockLayer::Ctrl,
            LockClass::Global => LockLayer::Global,
            LockClass::Leaf { .. } => LockLayer::Leaf,
            LockClass::Parent { .. } => LockLayer::Parent,
            LockClass::Client { .. } => LockLayer::Client,
            LockClass::Other { id } => LockLayer::Other(id),
        }
    }
}

impl fmt::Display for LockClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            LockClass::Ctrl => write!(f, "ctrl"),
            LockClass::Global => write!(f, "global"),
            LockClass::Leaf { rank } => write!(f, "leaf#{rank}"),
            LockClass::Parent { node } => write!(f, "parent#{node}"),
            LockClass::Client { slot } => write!(f, "client#{slot}"),
            LockClass::Other { id } => write!(f, "other#{id}"),
        }
    }
}

/// Node of the class-order graph (see [`LockClass::layer`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LockLayer {
    Ctrl,
    Global,
    Leaf,
    Parent,
    Client,
    /// One layer per unclassified lock id.
    Other(u32),
}

impl fmt::Display for LockLayer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            LockLayer::Ctrl => write!(f, "ctrl"),
            LockLayer::Global => write!(f, "global"),
            LockLayer::Leaf => write!(f, "leaf"),
            LockLayer::Parent => write!(f, "parent"),
            LockLayer::Client => write!(f, "client"),
            LockLayer::Other(id) => write!(f, "other#{id}"),
        }
    }
}

/// What the witness caught.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LockViolationKind {
    /// A leaf lock acquired while already holding a leaf of equal or
    /// higher rank — breaks the ascending-order deadlock-freedom
    /// argument.
    LeafOrder { held_rank: u32, acquired_rank: u32 },
    /// Acquiring a lock whose layer already has a path to a held layer
    /// in the observed order graph — two tasks taking these layers in
    /// opposite orders can deadlock.
    LayerCycle {
        holding: LockLayer,
        acquiring: LockLayer,
    },
    /// A lock still held while the task parked on a condition variable
    /// (barrier/phase transition) — the guard outlives the phase it
    /// belongs to and stalls every task that needs it.
    HeldAcrossWait,
    /// A panic unwound out of a task (or into a supervised fate
    /// boundary) while locks were still held — nothing will ever
    /// release them, so every task queued on them wedges even though
    /// the panic itself was "caught".
    HeldAtUnwind,
}

impl fmt::Display for LockViolationKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LockViolationKind::LeafOrder {
                held_rank,
                acquired_rank,
            } => write!(
                f,
                "leaf order: acquired leaf#{acquired_rank} while holding leaf#{held_rank}"
            ),
            LockViolationKind::LayerCycle { holding, acquiring } => write!(
                f,
                "layer cycle: acquiring {acquiring} while holding {holding}, but \
                 {acquiring} -> {holding} order was also observed"
            ),
            LockViolationKind::HeldAcrossWait => write!(f, "lock held across condition wait"),
            LockViolationKind::HeldAtUnwind => write!(f, "lock still held at panic unwind"),
        }
    }
}

/// One detected violation, with enough context to debug it.
#[derive(Clone, Debug)]
pub struct LockViolation {
    pub kind: LockViolationKind,
    /// Task that performed the offending operation.
    pub task: u32,
    /// Lock being acquired (or waited through, for `HeldAcrossWait`).
    pub lock: u32,
    pub class: LockClass,
    /// `(lock, class)` stack held at the time, oldest first.
    pub held: Vec<(u32, LockClass)>,
    /// Fabric time of the operation.
    pub at: u64,
}

impl fmt::Display for LockViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "task {} at t={}ns on lock {} ({}): {} [held:",
            self.task, self.at, self.lock, self.class, self.kind
        )?;
        for (id, class) in &self.held {
            write!(f, " {id}({class})")?;
        }
        write!(f, "]")
    }
}

/// Everything the witness observed over one run.
#[derive(Clone, Debug, Default)]
pub struct WitnessReport {
    /// Total successful lock acquisitions observed.
    pub acquisitions: u64,
    /// Locks that were explicitly classified (non-`Other`).
    pub classified: usize,
    /// Deepest simultaneous hold stack of any task.
    pub max_held_depth: usize,
    /// Distinct layer-order edges observed (held layer -> acquired
    /// layer), sorted.
    pub order_edges: Vec<(LockLayer, LockLayer)>,
    pub violations: Vec<LockViolation>,
}

impl WitnessReport {
    /// True when the run was discipline-clean.
    pub fn clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Panic with every violation listed unless the run was clean.
    /// Harness/test convenience for the "zero violations" assertion.
    pub fn assert_clean(&self, context: &str) {
        if !self.clean() {
            let mut msg = format!(
                "{context}: lock witness caught {} violation(s):\n",
                self.violations.len()
            );
            for v in &self.violations {
                msg.push_str(&format!("  {v}\n"));
            }
            panic!("{msg}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_stable() {
        let v = LockViolation {
            kind: LockViolationKind::LeafOrder {
                held_rank: 5,
                acquired_rank: 2,
            },
            task: 1,
            lock: 9,
            class: LockClass::Leaf { rank: 2 },
            held: vec![(7, LockClass::Leaf { rank: 5 })],
            at: 1234,
        };
        let s = v.to_string();
        assert!(s.contains("leaf#2"), "{s}");
        assert!(s.contains("holding leaf#5"), "{s}");
        assert!(s.contains("task 1"), "{s}");
    }

    #[test]
    fn layers_collapse_ranks() {
        assert_eq!(LockClass::Leaf { rank: 3 }.layer(), LockLayer::Leaf);
        assert_eq!(LockClass::Leaf { rank: 9 }.layer(), LockLayer::Leaf);
        assert_ne!(
            LockClass::Other { id: 1 }.layer(),
            LockClass::Other { id: 2 }.layer()
        );
    }

    #[test]
    fn assert_clean_passes_on_empty() {
        WitnessReport::default().assert_clean("test");
    }
}
