//! Per-frame time series.
//!
//! The paper's §4.2 measures "the dynamic difference in the number of
//! requests per thread per frame … for the first fifty consecutive
//! multi-threaded frames". Aggregates can't show that; this bounded
//! per-frame recorder can.

use crate::Nanos;

/// One server frame's vital signs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FrameSample {
    /// Frame start time.
    pub start_ns: Nanos,
    /// Wall/virtual duration of the frame.
    pub duration_ns: Nanos,
    /// Threads that participated.
    pub participants: u32,
    /// Move requests processed, total across participants.
    pub requests: u32,
    /// Largest per-thread request count this frame.
    pub requests_max: u32,
    /// Smallest per-thread request count this frame (participants only).
    pub requests_min: u32,
    /// The frame's master thread.
    pub master: u32,
}

impl FrameSample {
    /// The paper's per-frame imbalance measure (max − min).
    #[inline]
    pub fn imbalance(&self) -> u32 {
        self.requests_max.saturating_sub(self.requests_min)
    }
}

/// A bounded frame recorder: keeps the first `capacity` frames (the
/// paper looks at the *first* fifty, so early frames are the ones that
/// matter; steady-state behaviour lives in the aggregates).
#[derive(Clone, Debug)]
pub struct Timeline {
    samples: Vec<FrameSample>,
    capacity: usize,
    /// Frames seen in total (recorded or not).
    pub total_frames: u64,
}

impl Default for Timeline {
    fn default() -> Self {
        Timeline::new(4096)
    }
}

impl Timeline {
    pub fn new(capacity: usize) -> Timeline {
        Timeline {
            samples: Vec::new(),
            capacity,
            total_frames: 0,
        }
    }

    /// Record one frame (dropped silently once at capacity).
    pub fn push(&mut self, sample: FrameSample) {
        self.total_frames += 1;
        if self.samples.len() < self.capacity {
            self.samples.push(sample);
        }
    }

    pub fn samples(&self) -> &[FrameSample] {
        &self.samples
    }

    pub fn len(&self) -> usize {
        self.samples.len()
    }

    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The first `n` frames in which more than one thread participated —
    /// the paper's "first fifty consecutive multi-threaded frames".
    pub fn first_multithreaded(&self, n: usize) -> Vec<FrameSample> {
        self.samples
            .iter()
            .filter(|s| s.participants > 1)
            .take(n)
            .copied()
            .collect()
    }

    /// Percentile of frame duration (nearest-rank), in nanoseconds.
    pub fn duration_percentile(&self, p: f64) -> Nanos {
        if self.samples.is_empty() {
            return 0;
        }
        let mut durs: Vec<Nanos> = self.samples.iter().map(|s| s.duration_ns).collect();
        durs.sort_unstable();
        let rank = ((durs.len() as f64) * p.clamp(0.0, 1.0)).ceil() as usize;
        durs[rank.saturating_sub(1).min(durs.len() - 1)]
    }

    /// CSV dump (`start_ms,duration_ms,participants,requests,imbalance`).
    pub fn to_csv(&self) -> String {
        let mut out =
            String::from("frame,start_ms,duration_ms,participants,requests,imbalance,master\n");
        for (i, s) in self.samples.iter().enumerate() {
            out.push_str(&format!(
                "{},{:.3},{:.3},{},{},{},{}\n",
                i,
                s.start_ns as f64 / 1e6,
                s.duration_ns as f64 / 1e6,
                s.participants,
                s.requests,
                s.imbalance(),
                s.master,
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(start: Nanos, dur: Nanos, parts: u32, max: u32, min: u32) -> FrameSample {
        FrameSample {
            start_ns: start,
            duration_ns: dur,
            participants: parts,
            requests: max + min,
            requests_max: max,
            requests_min: min,
            master: 0,
        }
    }

    #[test]
    fn push_respects_capacity_but_counts_all() {
        let mut t = Timeline::new(3);
        for i in 0..10 {
            t.push(sample(i, 100, 1, 1, 1));
        }
        assert_eq!(t.len(), 3);
        assert_eq!(t.total_frames, 10);
    }

    #[test]
    fn first_multithreaded_skips_solo_frames() {
        let mut t = Timeline::new(100);
        t.push(sample(0, 1, 1, 1, 1));
        t.push(sample(1, 1, 3, 5, 2));
        t.push(sample(2, 1, 1, 1, 1));
        t.push(sample(3, 1, 2, 4, 1));
        let mt = t.first_multithreaded(50);
        assert_eq!(mt.len(), 2);
        assert_eq!(mt[0].imbalance(), 3);
        assert_eq!(mt[1].imbalance(), 3);
    }

    #[test]
    fn duration_percentiles() {
        let mut t = Timeline::new(100);
        for i in 1..=100u64 {
            t.push(sample(i, i * 10, 1, 1, 1));
        }
        assert_eq!(t.duration_percentile(0.5), 500);
        assert_eq!(t.duration_percentile(1.0), 1000);
        assert_eq!(Timeline::new(4).duration_percentile(0.5), 0);
    }

    #[test]
    fn csv_has_header_and_rows() {
        let mut t = Timeline::new(10);
        t.push(sample(1_000_000, 2_000_000, 2, 3, 1));
        let csv = t.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("frame,"));
        assert!(lines[1].contains("2,4,2,0")); // participants,requests,imbalance,master
    }
}
