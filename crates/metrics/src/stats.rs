//! Server- and client-side statistics accumulators.

use crate::breakdown::Breakdown;
use crate::Nanos;

/// Everything one server thread records over a run.
#[derive(Clone, Debug, Default)]
pub struct ThreadStats {
    pub breakdown: Breakdown,
    /// Client requests processed (moves executed).
    pub requests: u64,
    /// Replies formed and sent.
    pub replies: u64,
    /// Frames this thread participated in.
    pub frames: u64,
    /// Frames this thread mastered (ran the world update).
    pub mastered: u64,
    /// Datagrams drained from this thread's request port.
    pub datagrams: u64,
    /// Datagrams that failed protocol decoding and were dropped.
    pub decode_rejected: u64,
    /// Connects refused by handshake validation (client-id already
    /// bound to a different reply port that is still fresh).
    pub connect_rejected: u64,
    /// Datagrams the bounded request queue discarded before this
    /// thread could drain them (read back from the fabric at exit).
    pub queue_dropped: u64,
    /// Client slots reclaimed by the inactivity timeout.
    pub timeouts: u64,
    /// Lifecycle notifications (connect accepted / disconnect /
    /// reclaim / reject) sent to a directory control port.
    pub lifecycle_sent: u64,
    /// Frame panics caught by the supervision wrapper (the frame's
    /// effects are abandoned; the arena is fenced or restored).
    pub panics_caught: u64,
    /// Moves discarded as duplicates of an already-applied input
    /// sequence (predicting clients only; WAN duplication/reordering).
    pub inputs_deduped: u64,
    /// Input-sequence gaps observed from predicting clients (lost or
    /// late moves) — each bumps the slot's perturbation epoch.
    pub input_gaps: u64,
    /// Distribution of entity-update counts per reply sent.
    pub reply_sizes: SizeHist,
    pub lock: LockStats,
}

impl ThreadStats {
    pub fn new() -> ThreadStats {
        ThreadStats::default()
    }

    pub fn merge(&mut self, other: &ThreadStats) {
        self.breakdown.merge(&other.breakdown);
        self.requests += other.requests;
        self.replies += other.replies;
        self.frames += other.frames;
        self.mastered += other.mastered;
        self.datagrams += other.datagrams;
        self.decode_rejected += other.decode_rejected;
        self.connect_rejected += other.connect_rejected;
        self.queue_dropped += other.queue_dropped;
        self.timeouts += other.timeouts;
        self.lifecycle_sent += other.lifecycle_sent;
        self.panics_caught += other.panics_caught;
        self.inputs_deduped += other.inputs_deduped;
        self.input_gaps += other.input_gaps;
        self.reply_sizes.merge(&other.reply_sizes);
        self.lock.merge(&other.lock);
    }
}

/// Exact histogram of small counts (0..=64): reply entity-list sizes
/// are protocol-capped, so direct per-value buckets give exact
/// percentiles where `ResponseStats`' log₂ octaves would blur them.
#[derive(Clone, Debug)]
pub struct SizeHist {
    /// `counts[n]` = samples of value `n`; the last bucket absorbs
    /// anything larger.
    pub counts: [u64; 65],
}

impl Default for SizeHist {
    fn default() -> Self {
        SizeHist { counts: [0; 65] }
    }
}

impl SizeHist {
    pub fn new() -> SizeHist {
        SizeHist::default()
    }

    pub fn note(&mut self, n: usize) {
        self.counts[n.min(self.counts.len() - 1)] += 1;
    }

    pub fn merge(&mut self, o: &SizeHist) {
        for i in 0..self.counts.len() {
            self.counts[i] += o.counts[i];
        }
    }

    pub fn samples(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Exact percentile (`p` in [0, 1]) of the recorded values.
    pub fn percentile(&self, p: f64) -> u64 {
        let total = self.samples();
        if total == 0 {
            return 0;
        }
        let target = ((total as f64) * p.clamp(0.0, 1.0)).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (value, &count) in self.counts.iter().enumerate() {
            seen += count;
            if seen >= target {
                return value as u64;
            }
        }
        (self.counts.len() - 1) as u64
    }

    /// Largest recorded value.
    pub fn max(&self) -> u64 {
        self.counts
            .iter()
            .rposition(|&c| c > 0)
            .map(|v| v as u64)
            .unwrap_or(0)
    }
}

/// Client-side prediction/reconciliation accounting (one per bot
/// driver; mergeable across a swarm). The accounting identity — every
/// locally predicted input is eventually *judged* against an
/// authoritative ack, *dropped* by a ring overflow, or still *in
/// flight* when the run ends — is checked by [`Self::closed`].
#[derive(Clone, Debug, Default)]
pub struct PredictionStats {
    /// Inputs predicted locally (sent with the prediction trailer and
    /// entered into the input ring).
    pub predicted: u64,
    /// Reconciliation passes: trailered replies consumed.
    pub reconciled: u64,
    /// Ring entries retired by an authoritative ack and compared
    /// against the server's state for that seq.
    pub judged: u64,
    /// Judged entries whose predicted state differed from the server's
    /// (rollback + replay corrected the client).
    pub mispredictions: u64,
    /// Ring entries discarded because the ring overflowed (server
    /// starved long enough that unacked inputs exceeded capacity).
    pub dropped: u64,
    /// Inputs re-simulated during rollback replays.
    pub replayed: u64,
    /// Divergence-oracle evaluations: reconciliations with *no* inputs
    /// in flight and an unperturbed slot, where prediction must equal
    /// the server bit-for-bit.
    pub oracle_checks: u64,
    /// Oracle evaluations that failed — any nonzero value is a
    /// prediction-kernel bug, not a tuning matter.
    pub oracle_mismatches: u64,
    /// Times the input ring wrapped (drives `dropped`).
    pub ring_overflows: u64,
    /// Distribution of reconciliation depth: unacked inputs replayed
    /// per trailered reply.
    pub depth: SizeHist,
}

impl PredictionStats {
    pub fn new() -> PredictionStats {
        PredictionStats::default()
    }

    pub fn merge(&mut self, o: &PredictionStats) {
        self.predicted += o.predicted;
        self.reconciled += o.reconciled;
        self.judged += o.judged;
        self.mispredictions += o.mispredictions;
        self.dropped += o.dropped;
        self.replayed += o.replayed;
        self.oracle_checks += o.oracle_checks;
        self.oracle_mismatches += o.oracle_mismatches;
        self.ring_overflows += o.ring_overflows;
        self.depth.merge(&o.depth);
    }

    /// Does the prediction ledger close? `in_flight` is the number of
    /// ring entries still awaiting an ack at shutdown.
    pub fn closed(&self, in_flight: u64) -> bool {
        self.predicted == self.judged + self.dropped + in_flight
    }

    /// Fraction of judged inputs the client mispredicted.
    pub fn misprediction_rate(&self) -> f64 {
        if self.judged == 0 {
            return 0.0;
        }
        self.mispredictions as f64 / self.judged as f64
    }

    /// Inputs that were predicted and *not* later invalidated — the
    /// "effective responses" a predicting client acted on instantly.
    pub fn effective_inputs(&self) -> u64 {
        self.predicted.saturating_sub(self.mispredictions)
    }
}

/// Areanode locking statistics (paper §5.1 / Figure 7).
#[derive(Clone, Debug, Default)]
pub struct LockStats {
    /// Time blocked acquiring leaf locks.
    pub leaf_ns: Nanos,
    /// Time blocked acquiring parent (object-list) locks.
    pub parent_ns: Nanos,
    /// Leaf lock acquisitions.
    pub leaf_ops: u64,
    /// Parent lock acquisitions.
    pub parent_ops: u64,
    /// Requests that acquired at least one region lock.
    pub requests: u64,
    /// Σ over requests of the number of *distinct* leaves locked.
    pub distinct_leaves: u64,
    /// Σ over requests of *total* leaf lock operations (≥ distinct;
    /// the surplus is the paper's "relocked" count).
    pub leaf_lock_events: u64,
    /// Σ over requests of the leaf count of the tree at the time
    /// (denominator for "% of world locked per request").
    pub leaf_capacity: u64,
    /// Time blocked on the global state buffer lock.
    pub global_buffer_ns: Nanos,
    /// Time blocked on per-player reply buffer locks.
    pub reply_buffer_ns: Nanos,
}

impl LockStats {
    pub fn merge(&mut self, o: &LockStats) {
        self.leaf_ns += o.leaf_ns;
        self.parent_ns += o.parent_ns;
        self.leaf_ops += o.leaf_ops;
        self.parent_ops += o.parent_ops;
        self.requests += o.requests;
        self.distinct_leaves += o.distinct_leaves;
        self.leaf_lock_events += o.leaf_lock_events;
        self.leaf_capacity += o.leaf_capacity;
        self.global_buffer_ns += o.global_buffer_ns;
        self.reply_buffer_ns += o.reply_buffer_ns;
    }

    /// Total object-lock wait time.
    pub fn total_ns(&self) -> Nanos {
        self.leaf_ns + self.parent_ns
    }

    /// Fraction of lock time spent on leaves (Fig 7a).
    pub fn leaf_share(&self) -> f64 {
        let t = self.total_ns();
        if t == 0 {
            0.0
        } else {
            self.leaf_ns as f64 / t as f64
        }
    }

    /// Average % of the world's leaves locked per request (Fig 7b).
    pub fn avg_distinct_leaf_percent(&self) -> f64 {
        if self.leaf_capacity == 0 {
            0.0
        } else {
            100.0 * self.distinct_leaves as f64 / self.leaf_capacity as f64
        }
    }

    /// Fraction of leaf lock events that re-locked an already-locked
    /// leaf within the same request (paper: 40% at 31 nodes, 30% at 63).
    pub fn relock_fraction(&self) -> f64 {
        if self.leaf_lock_events == 0 {
            0.0
        } else {
            (self.leaf_lock_events - self.distinct_leaves) as f64 / self.leaf_lock_events as f64
        }
    }

    /// Average distinct leaves locked per request.
    pub fn avg_distinct_leaves(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.distinct_leaves as f64 / self.requests as f64
        }
    }
}

/// Client-side response statistics (response rate / response time).
#[derive(Clone, Debug)]
pub struct ResponseStats {
    /// Requests sent.
    pub sent: u64,
    /// Replies received.
    pub received: u64,
    /// Σ response time.
    pub latency_sum_ns: Nanos,
    pub latency_min_ns: Nanos,
    pub latency_max_ns: Nanos,
    /// Log₂ histogram of response times: bucket i counts responses in
    /// `[2^i, 2^(i+1))` microseconds.
    pub histogram: [u64; 24],
}

impl Default for ResponseStats {
    fn default() -> Self {
        ResponseStats {
            sent: 0,
            received: 0,
            latency_sum_ns: 0,
            latency_min_ns: Nanos::MAX,
            latency_max_ns: 0,
            histogram: [0; 24],
        }
    }
}

impl ResponseStats {
    pub fn new() -> ResponseStats {
        ResponseStats::default()
    }

    pub fn note_sent(&mut self) {
        self.sent += 1;
    }

    pub fn note_reply(&mut self, latency_ns: Nanos) {
        self.received += 1;
        self.latency_sum_ns += latency_ns;
        self.latency_min_ns = self.latency_min_ns.min(latency_ns);
        self.latency_max_ns = self.latency_max_ns.max(latency_ns);
        let us = (latency_ns / 1000).max(1);
        let bucket = (63 - us.leading_zeros()) as usize;
        self.histogram[bucket.min(23)] += 1;
    }

    /// Average response time in milliseconds.
    pub fn avg_latency_ms(&self) -> f64 {
        if self.received == 0 {
            0.0
        } else {
            crate::ns_to_ms(self.latency_sum_ns) / self.received as f64
        }
    }

    /// Response rate in replies/second over a run of `duration_ns`.
    pub fn response_rate(&self, duration_ns: Nanos) -> f64 {
        if duration_ns == 0 {
            0.0
        } else {
            self.received as f64 / crate::ns_to_secs(duration_ns)
        }
    }

    /// Approximate response-time percentile (from the log2 histogram;
    /// resolution is one octave). `p` in [0, 1]. Returns milliseconds.
    pub fn approx_percentile_ms(&self, p: f64) -> f64 {
        if self.received == 0 {
            return 0.0;
        }
        let target = (self.received as f64 * p.clamp(0.0, 1.0)).ceil() as u64;
        let mut seen = 0u64;
        for (bucket, &count) in self.histogram.iter().enumerate() {
            seen += count;
            if seen >= target {
                // Bucket spans [2^b, 2^(b+1)) microseconds; report the
                // geometric midpoint.
                let lo = (1u64 << bucket) as f64;
                return lo * 1.5 / 1000.0;
            }
        }
        crate::ns_to_ms(self.latency_max_ns)
    }

    pub fn merge(&mut self, o: &ResponseStats) {
        self.sent += o.sent;
        self.received += o.received;
        self.latency_sum_ns += o.latency_sum_ns;
        self.latency_min_ns = self.latency_min_ns.min(o.latency_min_ns);
        self.latency_max_ns = self.latency_max_ns.max(o.latency_max_ns);
        for i in 0..self.histogram.len() {
            self.histogram[i] += o.histogram[i];
        }
    }
}

/// Per-frame, whole-server statistics recorded by the frame master
/// (imbalance and overlap analysis, paper §4.2/§5).
#[derive(Clone, Debug, Default)]
pub struct FrameStats {
    /// Frames completed.
    pub frames: u64,
    /// Σ frame wall duration.
    pub frame_ns_sum: Nanos,
    /// Σ requests processed per frame.
    pub requests_sum: u64,
    /// Σ over frames of (max requests on a thread − min requests on a
    /// thread): the per-frame imbalance the paper measures at 2T/128p.
    pub imbalance_sum: u64,
    /// Σ of squared imbalance (for the standard deviation).
    pub imbalance_sq_sum: u64,
    /// Σ over frames of the number of distinct leaves locked by ≥ 1
    /// thread (map coverage per frame).
    pub leaves_touched_sum: u64,
    /// Σ over frames of the number of leaves locked by ≥ 2 distinct
    /// threads (Fig 7c numerator).
    pub leaves_shared_sum: u64,
    /// Leaf count of the tree (Fig 7c denominator, per frame).
    pub leaf_count: u64,
    /// Frames in which at least one thread waited for the world update.
    pub frames_waited_on_world: u64,
    /// Inter-frame wait attributable to the world update phase.
    pub interwait_world_ns: Nanos,
    /// Inter-frame wait attributable to waiting for the previous frame
    /// to complete.
    pub interwait_frame_ns: Nanos,
    /// Threads participating, summed over frames (avg participation).
    pub participants_sum: u64,
}

impl FrameStats {
    pub fn new() -> FrameStats {
        FrameStats::default()
    }

    /// Record one frame's imbalance sample from per-thread request
    /// counts (only threads that participated).
    pub fn note_frame_requests(&mut self, per_thread: &[u32]) {
        if per_thread.is_empty() {
            return;
        }
        let max = *per_thread.iter().max().unwrap() as u64;
        let min = *per_thread.iter().min().unwrap() as u64;
        let d = max - min;
        self.imbalance_sum += d;
        self.imbalance_sq_sum += d * d;
        self.requests_sum += per_thread.iter().map(|&r| r as u64).sum::<u64>();
        self.participants_sum += per_thread.len() as u64;
    }

    /// Record which leaves each participating thread locked this frame.
    /// `usage[t]` is a bitmask over leaf indices (tree ≤ 64 leaves).
    pub fn note_frame_leaf_usage(&mut self, usage: &[u64], leaf_count: u64) {
        let mut once = 0u64;
        let mut twice = 0u64;
        for &mask in usage {
            twice |= once & mask;
            once |= mask;
        }
        self.leaves_touched_sum += once.count_ones() as u64;
        self.leaves_shared_sum += twice.count_ones() as u64;
        self.leaf_count = leaf_count;
    }

    /// Mean per-frame thread request-count difference (paper: 3.3).
    pub fn mean_imbalance(&self) -> f64 {
        if self.frames == 0 {
            0.0
        } else {
            self.imbalance_sum as f64 / self.frames as f64
        }
    }

    /// Standard deviation of the per-frame difference (paper: 2.5).
    pub fn stddev_imbalance(&self) -> f64 {
        if self.frames == 0 {
            return 0.0;
        }
        let mean = self.mean_imbalance();
        let var = self.imbalance_sq_sum as f64 / self.frames as f64 - mean * mean;
        var.max(0.0).sqrt()
    }

    /// Average % of leaves locked by ≥2 threads per frame (Fig 7c).
    pub fn avg_shared_leaf_percent(&self) -> f64 {
        if self.frames == 0 || self.leaf_count == 0 {
            0.0
        } else {
            100.0 * self.leaves_shared_sum as f64 / (self.frames * self.leaf_count) as f64
        }
    }

    /// Average % of the map's leaves accessed per frame (§5.1 text).
    pub fn avg_touched_leaf_percent(&self) -> f64 {
        if self.frames == 0 || self.leaf_count == 0 {
            0.0
        } else {
            100.0 * self.leaves_touched_sum as f64 / (self.frames * self.leaf_count) as f64
        }
    }

    /// Average requests per frame across all threads.
    pub fn avg_requests_per_frame(&self) -> f64 {
        if self.frames == 0 {
            0.0
        } else {
            self.requests_sum as f64 / self.frames as f64
        }
    }

    /// Share of inter-frame wait due to the world update (paper §5.2:
    /// ~25% world vs ~75% previous-frame completion).
    pub fn interwait_world_share(&self) -> f64 {
        let t = self.interwait_world_ns + self.interwait_frame_ns;
        if t == 0 {
            0.0
        } else {
            self.interwait_world_ns as f64 / t as f64
        }
    }
}

#[cfg(test)]
#[allow(clippy::field_reassign_with_default)]
mod tests {
    use super::*;
    use crate::breakdown::Bucket;

    #[test]
    fn thread_stats_merge() {
        let mut a = ThreadStats::new();
        a.requests = 10;
        a.breakdown.add(Bucket::Exec, 100);
        let mut b = ThreadStats::new();
        b.requests = 5;
        b.replies = 3;
        b.breakdown.add(Bucket::Exec, 50);
        b.datagrams = 20;
        b.decode_rejected = 2;
        b.connect_rejected = 1;
        b.queue_dropped = 4;
        b.timeouts = 1;
        b.lifecycle_sent = 6;
        b.panics_caught = 2;
        b.inputs_deduped = 7;
        b.input_gaps = 3;
        a.merge(&b);
        assert_eq!(a.requests, 15);
        assert_eq!(a.replies, 3);
        assert_eq!(a.breakdown.get(Bucket::Exec), 150);
        assert_eq!(a.datagrams, 20);
        assert_eq!(a.decode_rejected, 2);
        assert_eq!(a.connect_rejected, 1);
        assert_eq!(a.queue_dropped, 4);
        assert_eq!(a.timeouts, 1);
        assert_eq!(a.lifecycle_sent, 6);
        assert_eq!(a.panics_caught, 2);
        assert_eq!(a.inputs_deduped, 7);
        assert_eq!(a.input_gaps, 3);
    }

    #[test]
    fn prediction_stats_ledger_closes_and_merges() {
        let mut a = PredictionStats::new();
        a.predicted = 100;
        a.judged = 90;
        a.mispredictions = 9;
        a.dropped = 4;
        a.replayed = 200;
        a.reconciled = 80;
        a.oracle_checks = 30;
        a.depth.note(2);
        a.depth.note(5);
        // 100 predicted = 90 judged + 4 dropped + 6 in flight.
        assert!(a.closed(6));
        assert!(!a.closed(5));
        assert!((a.misprediction_rate() - 0.1).abs() < 1e-9);
        assert_eq!(a.effective_inputs(), 91);

        let mut b = PredictionStats::new();
        b.predicted = 50;
        b.judged = 50;
        b.depth.note(5);
        a.merge(&b);
        assert_eq!(a.predicted, 150);
        assert_eq!(a.judged, 140);
        assert_eq!(a.depth.samples(), 3);
        assert_eq!(a.depth.percentile(1.0), 5);
        assert!(a.closed(6));
        // Zero-judged corner: rate is defined as 0.
        assert_eq!(PredictionStats::new().misprediction_rate(), 0.0);
    }

    #[test]
    fn lock_stats_shares() {
        let mut l = LockStats::default();
        l.leaf_ns = 750;
        l.parent_ns = 250;
        assert_eq!(l.leaf_share(), 0.75);
        assert_eq!(l.total_ns(), 1000);
        assert_eq!(LockStats::default().leaf_share(), 0.0);
    }

    #[test]
    fn lock_stats_relock_fraction() {
        let mut l = LockStats::default();
        l.requests = 10;
        l.distinct_leaves = 60; // 6 distinct per request
        l.leaf_lock_events = 100; // 10 lock events per request
        assert!((l.relock_fraction() - 0.4).abs() < 1e-9);
        assert_eq!(l.avg_distinct_leaves(), 6.0);
    }

    #[test]
    fn lock_stats_world_percent() {
        let mut l = LockStats::default();
        l.requests = 4;
        l.distinct_leaves = 16;
        l.leaf_capacity = 64; // 16-leaf tree, 4 requests
        assert_eq!(l.avg_distinct_leaf_percent(), 25.0);
    }

    #[test]
    fn response_stats_latency_accounting() {
        let mut r = ResponseStats::new();
        r.note_sent();
        r.note_sent();
        r.note_reply(2_000_000); // 2 ms
        r.note_reply(4_000_000); // 4 ms
        assert_eq!(r.sent, 2);
        assert_eq!(r.received, 2);
        assert_eq!(r.avg_latency_ms(), 3.0);
        assert_eq!(r.latency_min_ns, 2_000_000);
        assert_eq!(r.latency_max_ns, 4_000_000);
        // 2 s run: 1 reply per second.
        assert_eq!(r.response_rate(2_000_000_000), 1.0);
    }

    #[test]
    fn response_histogram_buckets() {
        let mut r = ResponseStats::new();
        r.note_reply(1_000); // 1 us → bucket 0
        r.note_reply(3_000); // 3 us → bucket 1
        r.note_reply(1_000_000); // 1000 us → bucket 9 (512..1024)
        assert_eq!(r.histogram[0], 1);
        assert_eq!(r.histogram[1], 1);
        assert_eq!(r.histogram[9], 1);
    }

    #[test]
    fn percentiles_from_histogram() {
        let mut r = ResponseStats::new();
        for _ in 0..90 {
            r.note_reply(1_000_000); // 1 ms → bucket 9
        }
        for _ in 0..10 {
            r.note_reply(64_000_000); // 64 ms → bucket 15
        }
        let p50 = r.approx_percentile_ms(0.5);
        assert!((0.5..3.0).contains(&p50), "p50 = {p50}");
        let p99 = r.approx_percentile_ms(0.99);
        assert!(p99 > 40.0, "p99 = {p99}");
        assert_eq!(ResponseStats::new().approx_percentile_ms(0.5), 0.0);
    }

    #[test]
    fn response_merge() {
        let mut a = ResponseStats::new();
        a.note_reply(1000);
        let mut b = ResponseStats::new();
        b.note_reply(9000);
        b.note_sent();
        a.merge(&b);
        assert_eq!(a.received, 2);
        assert_eq!(a.sent, 1);
        assert_eq!(a.latency_min_ns, 1000);
        assert_eq!(a.latency_max_ns, 9000);
    }

    #[test]
    fn frame_stats_imbalance() {
        let mut f = FrameStats::new();
        f.note_frame_requests(&[5, 2, 3]);
        f.note_frame_requests(&[4, 4, 4]);
        f.frames = 2;
        assert_eq!(f.mean_imbalance(), 1.5);
        assert_eq!(f.avg_requests_per_frame(), 11.0);
        // imbalances are 3 and 0: variance = (9+0)/2 - 2.25 = 2.25
        assert!((f.stddev_imbalance() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn frame_stats_leaf_overlap() {
        let mut f = FrameStats::new();
        // Thread 0 locks leaves {0,1,2}; thread 1 locks {2,3}.
        f.note_frame_leaf_usage(&[0b0111, 0b1100], 16);
        f.frames = 1;
        assert_eq!(f.leaves_touched_sum, 4);
        assert_eq!(f.leaves_shared_sum, 1);
        assert_eq!(f.avg_shared_leaf_percent(), 100.0 / 16.0);
        assert_eq!(f.avg_touched_leaf_percent(), 25.0);
    }

    #[test]
    fn frame_stats_interwait_split() {
        let mut f = FrameStats::new();
        f.interwait_world_ns = 25;
        f.interwait_frame_ns = 75;
        assert_eq!(f.interwait_world_share(), 0.25);
    }

    #[test]
    fn empty_stats_are_zero_not_nan() {
        let f = FrameStats::new();
        assert_eq!(f.mean_imbalance(), 0.0);
        assert_eq!(f.stddev_imbalance(), 0.0);
        assert_eq!(f.avg_shared_leaf_percent(), 0.0);
        let r = ResponseStats::new();
        assert_eq!(r.avg_latency_ms(), 0.0);
        assert_eq!(r.response_rate(0), 0.0);
    }
}
