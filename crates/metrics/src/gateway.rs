//! Per-shard gateway accounting.
//!
//! The sharded UDP gateway runs one inbound pump per shard socket;
//! every datagram a pump reads must be attributed to exactly one fate
//! so that losing a datagram inside the gateway is impossible without
//! the books refusing to close. Each pump owns a [`GatewayLane`]
//! (no sharing, no locks); the run report keeps the per-shard lanes
//! *and* their sum, and both levels must close.

/// Fate accounting for one gateway shard's inbound pump.
///
/// Closing identity: everything read off the socket is rejected,
/// dropped by fault injection, or forwarded into the fabric — and
/// fault duplication only ever adds to `forwarded`, never to
/// `datagrams_in`.
// lockcheck: identity(datagrams_in + fault_duplicated == decode_rejected + spoof_rejected + arena_unknown + fault_dropped + forwarded)
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct GatewayLane {
    /// Which shard socket this lane counts (0-based).
    pub shard: usize,
    /// Datagrams read off this shard's socket.
    pub datagrams_in: u64,
    /// Datagrams that failed protocol decode.
    pub decode_rejected: u64,
    /// Datagrams whose source address failed admission.
    pub spoof_rejected: u64,
    /// Decoded requests whose placement named a missing arena.
    pub arena_unknown: u64,
    /// Datagrams the fault lottery swallowed.
    pub fault_dropped: u64,
    /// Extra fabric deliveries minted by fault duplication.
    pub fault_duplicated: u64,
    /// Datagrams forwarded into the fabric (front + arena ports),
    /// including duplicated copies.
    pub forwarded: u64,
    /// Subset of `forwarded` that went to the directory front port.
    pub to_front: u64,
    /// Datagrams received via a batched `recvmmsg` (beyond the one
    /// blocking read that triggered the batch).
    pub batched_recvs: u64,
    /// Datagrams sent via a batched `sendmmsg`.
    pub batched_sends: u64,
    /// Replies written back to client sockets by this shard's
    /// outbound pump.
    pub datagrams_out: u64,
    /// Replies whose client had no address-book entry when retention
    /// expired.
    pub replies_unroutable: u64,
}

impl GatewayLane {
    /// A fresh lane for shard `shard`.
    pub fn new(shard: usize) -> GatewayLane {
        GatewayLane {
            shard,
            ..GatewayLane::default()
        }
    }

    /// Prove the shard's fate identity: every datagram read (plus each
    /// duplicate the fault lottery minted) is accounted for by exactly
    /// one rejection, drop, or forward.
    pub fn accounting_closed(&self) -> bool {
        self.datagrams_in + self.fault_duplicated
            == self.decode_rejected
                + self.spoof_rejected
                + self.arena_unknown
                + self.fault_dropped
                + self.forwarded
            && self.to_front <= self.forwarded
    }

    /// Fold another lane's counters into this one (shard index of the
    /// receiver is kept — used to build the aggregate lane).
    pub fn absorb(&mut self, other: &GatewayLane) {
        self.datagrams_in += other.datagrams_in;
        self.decode_rejected += other.decode_rejected;
        self.spoof_rejected += other.spoof_rejected;
        self.arena_unknown += other.arena_unknown;
        self.fault_dropped += other.fault_dropped;
        self.fault_duplicated += other.fault_duplicated;
        self.forwarded += other.forwarded;
        self.to_front += other.to_front;
        self.batched_recvs += other.batched_recvs;
        self.batched_sends += other.batched_sends;
        self.datagrams_out += other.datagrams_out;
        self.replies_unroutable += other.replies_unroutable;
    }

    /// Sum a set of shard lanes into one aggregate lane (shard index
    /// `usize::MAX` marks it as the aggregate, not a real socket).
    pub fn aggregate<'a>(lanes: impl IntoIterator<Item = &'a GatewayLane>) -> GatewayLane {
        let mut total = GatewayLane::new(usize::MAX);
        for lane in lanes {
            total.absorb(lane);
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn closed_lane(shard: usize) -> GatewayLane {
        GatewayLane {
            shard,
            datagrams_in: 100,
            decode_rejected: 3,
            spoof_rejected: 2,
            arena_unknown: 1,
            fault_dropped: 4,
            fault_duplicated: 5,
            forwarded: 95,
            to_front: 10,
            batched_recvs: 40,
            batched_sends: 20,
            datagrams_out: 80,
            replies_unroutable: 2,
        }
    }

    #[test]
    fn lane_identity_closes_on_consistent_counts() {
        assert!(closed_lane(0).accounting_closed());
    }

    #[test]
    fn lane_identity_refuses_a_lost_datagram() {
        let mut lane = closed_lane(0);
        lane.forwarded -= 1; // one datagram vanished inside the pump
        assert!(!lane.accounting_closed());
    }

    #[test]
    fn lane_identity_refuses_front_exceeding_forwarded() {
        let mut lane = closed_lane(0);
        lane.to_front = lane.forwarded + 1;
        assert!(!lane.accounting_closed());
    }

    #[test]
    fn aggregate_of_closed_lanes_is_closed() {
        let lanes = vec![closed_lane(0), closed_lane(1), closed_lane(2)];
        let total = GatewayLane::aggregate(&lanes);
        assert!(total.accounting_closed());
        assert_eq!(total.shard, usize::MAX);
        assert_eq!(
            total.datagrams_in,
            lanes.iter().map(|l| l.datagrams_in).sum::<u64>()
        );
        assert_eq!(
            total.forwarded,
            lanes.iter().map(|l| l.forwarded).sum::<u64>()
        );
    }

    #[test]
    fn aggregate_surfaces_any_open_shard() {
        let mut bad = closed_lane(1);
        bad.fault_dropped += 7; // drops recorded but reads missing
        let lanes = vec![closed_lane(0), bad];
        let total = GatewayLane::aggregate(&lanes);
        assert!(!total.accounting_closed());
    }
}
