//! Execution-time breakdown accumulators (the paper's Figure 4/5/6
//! stacked bars).

use crate::Nanos;

/// Where a server thread's time goes. The taxonomy and definitions are
/// exactly the paper's (§4, "Our execution time breakdowns…"):
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Bucket {
    /// Time processing requests (move execution), *excluding* lock
    /// overhead.
    Exec,
    /// Lock synchronization on game objects (areanode locking) during
    /// request processing.
    Lock,
    /// Receiving and parsing requests.
    Receive,
    /// Forming and sending replies (the entire reply phase).
    Reply,
    /// World physics update (master thread only; <5% sequentially).
    World,
    /// Waiting at the barrier before the reply phase for other threads
    /// to drain their request queues.
    IntraWait,
    /// Waiting between frames: for the world update to finish, or for
    /// the current frame to end after missing it.
    InterWait,
    /// Blocked in `select` with nothing to do.
    Idle,
}

impl Bucket {
    /// All buckets, in display order.
    pub const ALL: [Bucket; 8] = [
        Bucket::Exec,
        Bucket::Lock,
        Bucket::Receive,
        Bucket::Reply,
        Bucket::World,
        Bucket::IntraWait,
        Bucket::InterWait,
        Bucket::Idle,
    ];

    /// Short column label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            Bucket::Exec => "exec",
            Bucket::Lock => "lock",
            Bucket::Receive => "recv",
            Bucket::Reply => "reply",
            Bucket::World => "world",
            Bucket::IntraWait => "intra-wait",
            Bucket::InterWait => "inter-wait",
            Bucket::Idle => "idle",
        }
    }

    #[inline]
    fn index(self) -> usize {
        match self {
            Bucket::Exec => 0,
            Bucket::Lock => 1,
            Bucket::Receive => 2,
            Bucket::Reply => 3,
            Bucket::World => 4,
            Bucket::IntraWait => 5,
            Bucket::InterWait => 6,
            Bucket::Idle => 7,
        }
    }
}

/// Accumulated time per bucket.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Breakdown {
    ns: [Nanos; 8],
}

impl Breakdown {
    pub fn new() -> Breakdown {
        Breakdown::default()
    }

    /// Attribute `ns` nanoseconds to `bucket`.
    #[inline]
    pub fn add(&mut self, bucket: Bucket, ns: Nanos) {
        self.ns[bucket.index()] += ns;
    }

    /// Time accumulated in one bucket.
    #[inline]
    pub fn get(&self, bucket: Bucket) -> Nanos {
        self.ns[bucket.index()]
    }

    /// Total accounted time.
    pub fn total(&self) -> Nanos {
        self.ns.iter().sum()
    }

    /// Total excluding idle and waits — the paper's "workload" measure
    /// used to assess macro-scale balance (§4.2).
    pub fn workload(&self) -> Nanos {
        self.total()
            - self.get(Bucket::Idle)
            - self.get(Bucket::IntraWait)
            - self.get(Bucket::InterWait)
    }

    /// Fraction of total time in `bucket` (0 when nothing recorded).
    pub fn fraction(&self, bucket: Bucket) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            self.get(bucket) as f64 / total as f64
        }
    }

    /// Percentage of total time in `bucket`.
    pub fn percent(&self, bucket: Bucket) -> f64 {
        self.fraction(bucket) * 100.0
    }

    /// Fraction of *non-idle* time in `bucket` (the paper reports wait
    /// time as a share of non-idle time in §5.2).
    pub fn fraction_non_idle(&self, bucket: Bucket) -> f64 {
        let non_idle = self.total() - self.get(Bucket::Idle);
        if non_idle == 0 {
            0.0
        } else {
            self.get(bucket) as f64 / non_idle as f64
        }
    }

    /// Merge another breakdown into this one.
    pub fn merge(&mut self, other: &Breakdown) {
        for i in 0..8 {
            self.ns[i] += other.ns[i];
        }
    }

    /// Average of several breakdowns (for "average execution time
    /// breakdown" figures). Empty input yields an empty breakdown.
    pub fn average<'a>(items: impl IntoIterator<Item = &'a Breakdown>) -> Breakdown {
        let mut sum = Breakdown::new();
        let mut n = 0u64;
        for b in items {
            sum.merge(b);
            n += 1;
        }
        if n > 1 {
            for v in &mut sum.ns {
                *v /= n;
            }
        }
        sum
    }

    /// Request-processing time: exec + lock + receive (the paper's
    /// "request (receive + exec + lock)" grouping in §4.1).
    pub fn request_phase(&self) -> Nanos {
        self.get(Bucket::Exec) + self.get(Bucket::Lock) + self.get(Bucket::Receive)
    }

    /// Total wait time (intra + inter).
    pub fn wait(&self) -> Nanos {
        self.get(Bucket::IntraWait) + self.get(Bucket::InterWait)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_get_total() {
        let mut b = Breakdown::new();
        b.add(Bucket::Exec, 100);
        b.add(Bucket::Exec, 50);
        b.add(Bucket::Lock, 25);
        assert_eq!(b.get(Bucket::Exec), 150);
        assert_eq!(b.get(Bucket::Lock), 25);
        assert_eq!(b.total(), 175);
    }

    #[test]
    fn fractions_and_percent() {
        let mut b = Breakdown::new();
        b.add(Bucket::Exec, 75);
        b.add(Bucket::Idle, 25);
        assert_eq!(b.fraction(Bucket::Exec), 0.75);
        assert_eq!(b.percent(Bucket::Idle), 25.0);
        assert_eq!(Breakdown::new().fraction(Bucket::Exec), 0.0);
    }

    #[test]
    fn fraction_non_idle_excludes_idle() {
        let mut b = Breakdown::new();
        b.add(Bucket::InterWait, 40);
        b.add(Bucket::Exec, 60);
        b.add(Bucket::Idle, 100);
        assert_eq!(b.fraction_non_idle(Bucket::InterWait), 0.4);
    }

    #[test]
    fn workload_excludes_waits_and_idle() {
        let mut b = Breakdown::new();
        b.add(Bucket::Exec, 10);
        b.add(Bucket::Reply, 20);
        b.add(Bucket::IntraWait, 5);
        b.add(Bucket::InterWait, 7);
        b.add(Bucket::Idle, 100);
        assert_eq!(b.workload(), 30);
    }

    #[test]
    fn merge_and_average() {
        let mut a = Breakdown::new();
        a.add(Bucket::Exec, 100);
        let mut b = Breakdown::new();
        b.add(Bucket::Exec, 300);
        b.add(Bucket::Lock, 50);
        let avg = Breakdown::average([&a, &b]);
        assert_eq!(avg.get(Bucket::Exec), 200);
        assert_eq!(avg.get(Bucket::Lock), 25);
    }

    #[test]
    fn request_phase_grouping() {
        let mut b = Breakdown::new();
        b.add(Bucket::Exec, 10);
        b.add(Bucket::Lock, 20);
        b.add(Bucket::Receive, 30);
        b.add(Bucket::Reply, 99);
        assert_eq!(b.request_phase(), 60);
        assert_eq!(b.wait(), 0);
    }

    #[test]
    fn all_buckets_have_unique_indices() {
        let mut b = Breakdown::new();
        for (i, bucket) in Bucket::ALL.iter().enumerate() {
            b.add(*bucket, (i + 1) as u64);
        }
        for (i, bucket) in Bucket::ALL.iter().enumerate() {
            assert_eq!(b.get(*bucket), (i + 1) as u64, "{bucket:?}");
        }
    }

    #[test]
    fn labels_are_distinct() {
        let labels: std::collections::HashSet<_> = Bucket::ALL.iter().map(|b| b.label()).collect();
        assert_eq!(labels.len(), 8);
    }
}
