//! Shared helpers for the `parquake` benchmark suite.
//!
//! Benches live in `benches/`:
//!
//! * `substrates` — microbenchmarks of the hot kernels (BSP traces,
//!   areanode queries, codec, visibility),
//! * `figures` — one group per paper figure, timing the scaled-down
//!   regeneration of each configuration on the virtual SMP,
//! * `ablations` — the design-choice studies DESIGN.md calls out
//!   (lock policy, HT model, memory model, areanode depth, map).

use parquake_bsp::mapgen::MapGenConfig;
use parquake_harness::experiment::{Experiment, ExperimentConfig, Outcome};
use parquake_server::ServerKind;

/// A scaled-down experiment sized for benchmarking (one virtual second,
/// bench-friendly wall time per iteration).
pub fn bench_experiment(players: u32, server: ServerKind) -> ExperimentConfig {
    ExperimentConfig {
        players,
        server,
        map: MapGenConfig::small_arena(1),
        duration_ns: 1_000_000_000,
        bot_drivers: 4,
        checking: false,
        ..ExperimentConfig::default()
    }
}

/// Run a configuration and return its outcome (benches time this).
pub fn run(cfg: ExperimentConfig) -> Outcome {
    Experiment::new(cfg).run()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_config_runs() {
        let out = run(bench_experiment(8, ServerKind::Sequential));
        assert_eq!(out.connected, 8);
    }
}
