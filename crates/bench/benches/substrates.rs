//! Microbenchmarks of the hot kernels underneath the servers.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use parquake_areanode::{AreanodeTree, LeafSet};
use parquake_bsp::mapgen::MapGenConfig;
use parquake_bsp::Hull;
use parquake_math::vec3::vec3;
use parquake_math::{Aabb, Pcg32, Vec3};
use parquake_protocol::{ClientMessage, Decode, Encode, MoveCmd};
use parquake_sim::visibility::build_reply_entities;
use parquake_sim::{GameWorld, WorkCounters};
use std::sync::Arc;

fn bsp_traces(c: &mut Criterion) {
    let world = MapGenConfig::eval_arena(3).generate();
    let start = world.spawn_points[0];
    let mut g = c.benchmark_group("bsp");
    g.bench_function("trace_player_hull_short", |b| {
        b.iter(|| {
            black_box(world.trace(
                Hull::Player,
                black_box(start),
                black_box(start + vec3(48.0, 30.0, 0.0)),
            ))
        })
    });
    g.bench_function("trace_point_hull_long", |b| {
        b.iter(|| {
            black_box(world.trace(
                Hull::Point,
                black_box(start),
                black_box(start + vec3(4096.0, 512.0, 0.0)),
            ))
        })
    });
    g.bench_function("contents_query", |b| {
        b.iter(|| black_box(world.contents(black_box(start))))
    });
    g.finish();
}

fn areanode_queries(c: &mut Criterion) {
    let world = MapGenConfig::eval_arena(3).generate();
    let tree = AreanodeTree::new(world.bounds, 4);
    let player_box = Aabb::centered(world.spawn_points[0], vec3(16.0, 16.0, 28.0));
    let move_box = player_box.inflated(Vec3::splat(45.0));
    let mut plan = LeafSet::new();
    let mut nodes = Vec::new();
    let mut g = c.benchmark_group("areanode");
    g.bench_function("lock_plan_short_move", |b| {
        b.iter(|| tree.leaves_overlapping(black_box(&move_box), &mut plan))
    });
    g.bench_function("lock_plan_whole_map", |b| {
        b.iter(|| tree.leaves_overlapping(black_box(&world.bounds), &mut plan))
    });
    g.bench_function("candidate_traversal", |b| {
        b.iter(|| tree.nodes_overlapping(black_box(&move_box), &mut nodes))
    });
    g.bench_function("node_for_box_link", |b| {
        b.iter(|| black_box(tree.node_for_box(black_box(&player_box))))
    });
    g.finish();
}

fn codec(c: &mut Criterion) {
    let msg = ClientMessage::Move {
        client_id: 42,
        cmd: MoveCmd {
            seq: 9,
            sent_at: 123456789,
            pitch: -5.0,
            yaw: 132.0,
            forward: 320.0,
            side: 0.0,
            up: 0.0,
            buttons: parquake_protocol::Buttons(3),
            msec: 30,
            predict_ack: None,
        },
    };
    let bytes = msg.to_bytes();
    let mut g = c.benchmark_group("codec");
    g.bench_function("encode_move", |b| {
        let mut out = Vec::with_capacity(64);
        b.iter(|| {
            out.clear();
            black_box(&msg).encode(&mut out);
        })
    });
    g.bench_function("decode_move", |b| {
        b.iter(|| ClientMessage::from_bytes(black_box(&bytes)).unwrap())
    });
    g.finish();
}

fn visibility(c: &mut Criterion) {
    let map = Arc::new(MapGenConfig::eval_arena(3).generate());
    let world = GameWorld::new(map, 4, 128);
    let mut rng = Pcg32::seeded(5);
    for i in 0..128 {
        world.spawn_player(i, i as u32, &mut rng);
    }
    let mut out = Vec::new();
    let mut scratch = Vec::new();
    c.bench_function("visibility/reply_scope_128p", |b| {
        b.iter(|| {
            let mut work = WorkCounters::new();
            build_reply_entities(&world, black_box(7), &mut out, &mut scratch, &mut work);
            black_box(out.len())
        })
    });
}

criterion_group!(benches, bsp_traces, areanode_queries, codec, visibility);
criterion_main!(benches);
