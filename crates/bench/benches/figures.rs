//! One benchmark group per paper table/figure: times the regeneration
//! of a scaled-down version of each configuration on the virtual SMP.
//! (Full-scale regeneration with the paper's player counts is the
//! `repro` binary; these benches track the *cost of reproducing* each
//! figure and catch performance regressions in the simulator itself.)

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use parquake_bench::{bench_experiment, run};
use parquake_server::{LockPolicy, ServerKind};

fn fig4_overhead(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig4_seq_vs_par1");
    g.sample_size(10);
    for (name, kind) in [
        ("sequential", ServerKind::Sequential),
        (
            "parallel-1",
            ServerKind::Parallel {
                threads: 1,
                locking: LockPolicy::Baseline,
            },
        ),
    ] {
        g.bench_with_input(BenchmarkId::from_parameter(name), &kind, |b, &kind| {
            b.iter(|| run(bench_experiment(32, kind)))
        });
    }
    g.finish();
}

fn fig5_thread_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig5_baseline_threads");
    g.sample_size(10);
    for threads in [2u32, 4, 8] {
        let kind = ServerKind::Parallel {
            threads,
            locking: LockPolicy::Baseline,
        };
        g.bench_with_input(BenchmarkId::from_parameter(threads), &kind, |b, &kind| {
            b.iter(|| run(bench_experiment(32, kind)))
        });
    }
    g.finish();
}

fn fig6_optimized(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig6_optimized_threads");
    g.sample_size(10);
    for threads in [2u32, 4, 8] {
        let kind = ServerKind::Parallel {
            threads,
            locking: LockPolicy::Optimized,
        };
        g.bench_with_input(BenchmarkId::from_parameter(threads), &kind, |b, &kind| {
            b.iter(|| run(bench_experiment(32, kind)))
        });
    }
    g.finish();
}

fn fig7_areanode_sizes(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig7b_areanode_depth");
    g.sample_size(10);
    for depth in [1u32, 3, 5] {
        g.bench_with_input(BenchmarkId::from_parameter(depth), &depth, |b, &depth| {
            b.iter(|| {
                let mut cfg = bench_experiment(
                    32,
                    ServerKind::Parallel {
                        threads: 4,
                        locking: LockPolicy::Baseline,
                    },
                );
                cfg.areanode_depth = depth;
                run(cfg)
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    fig4_overhead,
    fig5_thread_scaling,
    fig6_optimized,
    fig7_areanode_sizes
);
criterion_main!(benches);
