//! Ablation studies for the design choices DESIGN.md calls out: the
//! hyper-threading model, the shared-bus memory model, the map profile,
//! and bot behaviour mixes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use parquake_bench::{bench_experiment, run};
use parquake_bots::BotBehavior;
use parquake_bsp::mapgen::MapGenConfig;
use parquake_fabric::{FabricKind, VirtualSmpConfig};
use parquake_server::{LockPolicy, ServerKind};

fn smp_model(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_smp_model");
    g.sample_size(10);
    let kind = ServerKind::Parallel {
        threads: 8,
        locking: LockPolicy::Baseline,
    };
    for (name, ht, mem) in [
        ("full_model", true, 0.17),
        ("no_ht_penalty", false, 0.17),
        ("no_mem_penalty", true, 0.0),
        ("ideal_smp", false, 0.0),
    ] {
        g.bench_with_input(
            BenchmarkId::from_parameter(name),
            &(ht, mem),
            |b, &(ht, mem)| {
                b.iter(|| {
                    let mut cfg = bench_experiment(32, kind);
                    cfg.fabric = FabricKind::VirtualSmp(VirtualSmpConfig {
                        hyperthreading: ht,
                        mem_penalty: mem,
                        ..VirtualSmpConfig::default()
                    });
                    run(cfg)
                })
            },
        );
    }
    g.finish();
}

fn map_profiles(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_map_profile");
    g.sample_size(10);
    let kind = ServerKind::Parallel {
        threads: 4,
        locking: LockPolicy::Optimized,
    };
    for name in ["eval", "small", "hall"] {
        g.bench_with_input(BenchmarkId::from_parameter(name), &name, |b, &name| {
            b.iter(|| {
                let mut cfg = bench_experiment(32, kind);
                cfg.map = match name {
                    "eval" => MapGenConfig::eval_arena(1),
                    "small" => MapGenConfig::small_arena(1),
                    _ => MapGenConfig::open_hall(1),
                };
                run(cfg)
            })
        });
    }
    g.finish();
}

fn behavior_mixes(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_bot_behavior");
    g.sample_size(10);
    let kind = ServerKind::Parallel {
        threads: 4,
        locking: LockPolicy::Baseline,
    };
    for name in ["deathmatch", "wander", "idle"] {
        g.bench_with_input(BenchmarkId::from_parameter(name), &name, |b, &name| {
            b.iter(|| {
                let mut cfg = bench_experiment(32, kind);
                cfg.behavior = match name {
                    "deathmatch" => BotBehavior::deathmatch(),
                    "wander" => BotBehavior::wander(),
                    _ => BotBehavior::idle(),
                };
                run(cfg)
            })
        });
    }
    g.finish();
}

fn lock_policies(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_lock_policy");
    g.sample_size(10);
    for (name, locking) in [
        ("baseline", LockPolicy::Baseline),
        ("optimized", LockPolicy::Optimized),
        ("one_pass", LockPolicy::OnePass),
    ] {
        g.bench_with_input(
            BenchmarkId::from_parameter(name),
            &locking,
            |b, &locking| {
                b.iter(|| {
                    run(bench_experiment(
                        48,
                        ServerKind::Parallel {
                            threads: 4,
                            locking,
                        },
                    ))
                })
            },
        );
    }
    g.finish();
}

criterion_group!(
    benches,
    smp_model,
    map_profiles,
    behavior_mixes,
    lock_policies
);
criterion_main!(benches);
