//! parquake-lockcheck — the multi-pass workspace verifier.
//!
//! Enforces the static half of the region-locking verification layer
//! (the dynamic half is the runtime witness in `parquake-fabric`).
//! Eight passes run over every production source file in the workspace:
//!
//! * **raw-sync** — no raw `std::sync::Mutex`/`parking_lot` lock
//!   acquisition outside `crates/fabric`. Game-state synchronization
//!   must go through the fabric so it is simulated, witnessed, and
//!   deterministic. Host-side bookkeeping (result collection, stat
//!   sinks) may opt out per line with a *reasoned* waiver pragma (see
//!   waiver-audit below).
//! * **ordered-acquire** — inside `crates/server`, the fabric lock API
//!   (`ctx.lock`/`ctx.unlock`) may only be called from functions marked
//!   `// lockcheck: acquire-site` (the `RegionLocks` methods and
//!   `Ctrl::enter`/`exit`). Everything else must use those methods, so
//!   every protocol acquisition funnels through witnessed, ordered
//!   sites.
//! * **guard-across-wait** — no raw mutex guard may be live across a
//!   fabric barrier/phase-transition call (`cond_wait`,
//!   `cond_wait_until`, `sleep_until`, `wait_readable`).
//! * **sim-lock-free** — `crates/sim` (the world-phase code, which the
//!   frame protocol runs under master exclusivity) takes no object
//!   locks at all: no fabric lock calls, no raw mutexes.
//! * **unwind-safety** — no raw mutex guard and no fabric lock may be
//!   live at a `catch_unwind` boundary (a panic caught with a lock
//!   still held wedges every task that needs it — since the arena
//!   supervisor fences and restores crashed arenas, a wedged fabric
//!   lock silently stalls the whole pool the supervisor is meant to
//!   save). In frame-path code (`crates/sim`, the server frame
//!   modules, the arena claim/supervisor path) `unwrap()`/`expect()`/
//!   `panic!` are only legal at lines annotated
//!   `lockcheck: panic-site(<why this cannot fire / is safe to>)`.
//! * **waiver-audit** — every raw-sync waiver must carry a reason
//!   (`lockcheck: allow(raw-sync: <why>)`), must actually suppress
//!   something, and the per-crate totals must match the committed
//!   `lockcheck.budget` file exactly, so the waiver list can neither
//!   grow nor rot silently.
//! * **wire-tag-registry** — every wire-tag constant (`const *TAG*:
//!   u8`) in `protocol`/`server`/`arena` must be declared exactly once,
//!   in the central registry `crates/protocol/src/tags.rs`, with no
//!   value collisions — a duplicated tag byte silently aliases two
//!   message kinds.
//! * **identity-closure** — every stats struct annotated
//!   `lockcheck: identity(<equation>)` must expose a `*_closed()`
//!   method proving the equation and be exercised from at least one
//!   test.
//!
//! The scanner is a hand-rolled token-level pass: it strips comments,
//! strings and char literals (so quoted or commented `ctx.lock(` never
//! trips a rule), honours `#[cfg(test)]` tails (test modules at the end
//! of a source file are exempt — the discipline governs production
//! code; integration tests under `tests/` are only read as the test
//! corpus for identity-closure), and tracks brace depth to delimit
//! `acquire-site` functions. A `syn`-based AST pass was considered and
//! rejected to keep the checker dependency-free and offline-buildable.
//!
//! Usage: `cargo run -p parquake-lockcheck` from the workspace root
//! (CI does exactly this); `--root <dir>` to point elsewhere;
//! `--format=json|github|text` to select output (GitHub error
//! annotations for CI, JSON for tooling); `--self-test` to run the
//! embedded violation fixtures for every rule.

use std::collections::HashMap;
use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

#[derive(Debug, PartialEq, Eq)]
struct Violation {
    file: String,
    /// 1-based.
    line: usize,
    rule: &'static str,
    msg: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.msg
        )
    }
}

const RULE_RAW_SYNC: &str = "raw-sync";
const RULE_ORDERED: &str = "ordered-acquire";
const RULE_GUARD: &str = "guard-across-wait";
const RULE_SIM: &str = "sim-lock-free";
const RULE_UNWIND: &str = "unwind-safety";
const RULE_WAIVER: &str = "waiver-audit";
const RULE_TAGS: &str = "wire-tag-registry";
const RULE_IDENTITY: &str = "identity-closure";

/// Every pass, for reports.
const PASSES: [&str; 8] = [
    RULE_RAW_SYNC,
    RULE_ORDERED,
    RULE_GUARD,
    RULE_SIM,
    RULE_UNWIND,
    RULE_WAIVER,
    RULE_TAGS,
    RULE_IDENTITY,
];

/// The one module allowed to declare wire-tag constants.
const REGISTRY_PATH: &str = "crates/protocol/src/tags.rs";
/// Committed per-crate waiver budget, workspace-relative.
const BUDGET_PATH: &str = "lockcheck.budget";

#[derive(Clone, Copy, PartialEq)]
enum Format {
    Text,
    Json,
    Github,
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--self-test") {
        return self_test();
    }
    let root = match args.iter().position(|a| a == "--root") {
        Some(i) => PathBuf::from(args.get(i + 1).map(String::as_str).unwrap_or(".")),
        None => PathBuf::from("."),
    };
    let mut format = Format::Text;
    for a in &args {
        match a.as_str() {
            "--format=json" => format = Format::Json,
            "--format=github" => format = Format::Github,
            "--format=text" => format = Format::Text,
            _ => {}
        }
    }
    if !root.join("Cargo.toml").is_file() {
        eprintln!(
            "lockcheck: no Cargo.toml under {} (run from the workspace root)",
            root.display()
        );
        return ExitCode::FAILURE;
    }

    let mut src_paths = Vec::new();
    collect_rs(&root.join("src"), &mut src_paths);
    let mut test_paths = Vec::new();
    collect_rs(&root.join("tests"), &mut test_paths);
    if let Ok(entries) = fs::read_dir(root.join("crates")) {
        for e in entries.flatten() {
            collect_rs(&e.path().join("src"), &mut src_paths);
            collect_rs(&e.path().join("tests"), &mut test_paths);
        }
    }
    src_paths.sort();
    test_paths.sort();

    let read_all = |paths: &[PathBuf]| -> Result<Vec<(String, String)>, ExitCode> {
        let mut out = Vec::new();
        for f in paths {
            let text = match fs::read_to_string(f) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("lockcheck: cannot read {}: {e}", f.display());
                    return Err(ExitCode::FAILURE);
                }
            };
            let rel = f
                .strip_prefix(&root)
                .unwrap_or(f)
                .to_string_lossy()
                .replace('\\', "/");
            out.push((rel, text));
        }
        Ok(out)
    };
    let files = match read_all(&src_paths) {
        Ok(f) => f,
        Err(c) => return c,
    };
    let test_files = match read_all(&test_paths) {
        Ok(f) => f,
        Err(c) => return c,
    };
    let budget = fs::read_to_string(root.join(BUDGET_PATH)).ok();
    let violations = check_workspace(&files, &test_files, budget.as_deref());
    let scanned = files.len();

    match format {
        Format::Text => {
            for v in &violations {
                eprintln!("{v}");
            }
        }
        Format::Github => {
            // GitHub Actions workflow commands: each line becomes an
            // inline error annotation on the PR diff.
            for v in &violations {
                println!(
                    "::error file={},line={},title=lockcheck [{}]::{}",
                    v.file,
                    v.line.max(1),
                    v.rule,
                    v.msg.replace('\n', " ")
                );
            }
        }
        Format::Json => {
            println!("{}", json_report(&violations, scanned));
        }
    }
    if violations.is_empty() {
        if format != Format::Json {
            println!(
                "lockcheck: {scanned} files clean across {} passes ({})",
                PASSES.len(),
                PASSES.join(", ")
            );
        }
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "lockcheck: {} violation(s) in {scanned} files",
            violations.len()
        );
        ExitCode::FAILURE
    }
}

/// Serialize the run as a stable JSON document (hand-rolled — the
/// checker stays dependency-free).
fn json_report(violations: &[Violation], scanned: usize) -> String {
    fn esc(s: &str) -> String {
        let mut out = String::with_capacity(s.len() + 2);
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\t' => out.push_str("\\t"),
                '\r' => out.push_str("\\r"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out
    }
    let mut s = String::from("{");
    s.push_str(&format!("\"files_scanned\":{scanned},\"passes\":["));
    for (i, p) in PASSES.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!("\"{p}\""));
    }
    s.push_str("],\"violations\":[");
    for (i, v) in violations.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "{{\"file\":\"{}\",\"line\":{},\"rule\":\"{}\",\"message\":\"{}\"}}",
            esc(&v.file),
            v.line,
            v.rule,
            esc(&v.msg)
        ));
    }
    s.push_str("]}");
    s
}

/// Recursively gather `.rs` files under `dir`. Callers only pass `src/`
/// and `tests/` roots, so `vendor/`, `target/` and `benches/` are never
/// visited.
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for e in entries.flatten() {
        let p = e.path();
        if p.is_dir() {
            collect_rs(&p, out);
        } else if p.extension().is_some_and(|x| x == "rs") {
            out.push(p);
        }
    }
}

/// The crate a workspace-relative path belongs to (`crates/<name>/…` →
/// `<name>`; the root package maps to `root`).
fn crate_of(path: &str) -> &str {
    let Some(rest) = path.strip_prefix("crates/") else {
        return "root";
    };
    rest.split('/').next().unwrap_or("root")
}

/// Is this file part of the frame path, where a stray panic unwinds
/// into a `catch_unwind` fate boundary and must therefore be declared?
/// `crates/sim` entirely (world-phase code), the server frame modules,
/// and the arena claim/supervisor path.
fn frame_path(path: &str) -> bool {
    let krate = crate_of(path);
    let file = path.rsplit('/').next().unwrap_or(path);
    match krate {
        "sim" => true,
        "server" => matches!(file, "exec.rs" | "par.rs" | "seq.rs" | "runtime.rs"),
        "arena" => matches!(file, "directory.rs" | "supervisor.rs"),
        _ => false,
    }
}

/// Replace comments, string literals and char literals with spaces,
/// preserving line structure so diagnostics keep their line numbers.
fn strip_source(text: &str) -> String {
    let b: Vec<char> = text.chars().collect();
    let mut out = String::with_capacity(text.len());
    let blank = |out: &mut String, c: char| out.push(if c == '\n' { '\n' } else { ' ' });
    let mut i = 0;
    while i < b.len() {
        let c = b[i];
        let next = b.get(i + 1).copied();
        if c == '/' && next == Some('/') {
            while i < b.len() && b[i] != '\n' {
                out.push(' ');
                i += 1;
            }
        } else if c == '/' && next == Some('*') {
            let mut depth = 1usize;
            out.push_str("  ");
            i += 2;
            while i < b.len() && depth > 0 {
                if b[i] == '/' && b.get(i + 1) == Some(&'*') {
                    depth += 1;
                    out.push_str("  ");
                    i += 2;
                } else if b[i] == '*' && b.get(i + 1) == Some(&'/') {
                    depth -= 1;
                    out.push_str("  ");
                    i += 2;
                } else {
                    blank(&mut out, b[i]);
                    i += 1;
                }
            }
        } else if c == 'r' && (next == Some('"') || next == Some('#')) && !prev_is_ident(&b, i) {
            // Raw string r"…" / r#"…"#.
            let mut j = i + 1;
            let mut hashes = 0usize;
            while b.get(j) == Some(&'#') {
                hashes += 1;
                j += 1;
            }
            if b.get(j) == Some(&'"') {
                for _ in i..=j {
                    out.push(' ');
                }
                i = j + 1;
                while i < b.len() {
                    if b[i] == '"' {
                        let mut k = 0;
                        while k < hashes && b.get(i + 1 + k) == Some(&'#') {
                            k += 1;
                        }
                        if k == hashes {
                            for _ in 0..=hashes {
                                out.push(' ');
                            }
                            i += 1 + hashes;
                            break;
                        }
                    }
                    blank(&mut out, b[i]);
                    i += 1;
                }
            } else {
                out.push(c);
                i += 1;
            }
        } else if c == '"' {
            out.push(' ');
            i += 1;
            while i < b.len() {
                if b[i] == '\\' && i + 1 < b.len() {
                    out.push_str("  ");
                    i += 2;
                } else if b[i] == '"' {
                    out.push(' ');
                    i += 1;
                    break;
                } else {
                    blank(&mut out, b[i]);
                    i += 1;
                }
            }
        } else if c == '\'' {
            // Char literal vs lifetime: '\n' / 'x' are literals; 'a and
            // 'static (no nearby closing quote) are lifetimes.
            if next == Some('\\') {
                out.push_str("  ");
                i += 2;
                // The escaped character is consumed unconditionally —
                // in '\'' it IS a quote and must not close the scan.
                if i < b.len() {
                    blank(&mut out, b[i]);
                    i += 1;
                }
                while i < b.len() && b[i] != '\'' {
                    blank(&mut out, b[i]);
                    i += 1;
                }
                out.push(' ');
                i += 1;
            } else if b.get(i + 2) == Some(&'\'') && next != Some('\n') {
                out.push_str("   ");
                i += 3;
            } else {
                out.push(c);
                i += 1;
            }
        } else {
            out.push(c);
            i += 1;
        }
    }
    out
}

fn prev_is_ident(b: &[char], i: usize) -> bool {
    i > 0 && (b[i - 1].is_alphanumeric() || b[i - 1] == '_')
}

/// A raw-mutex guard binding live in some scope.
struct Guard {
    name: String,
    depth: i32,
}

/// One raw-sync waiver pragma found in production code.
struct Waiver {
    /// 1-based line the pragma sits on.
    line: usize,
    /// The `: <why>` payload, if present and non-empty.
    reason: Option<String>,
    /// Did the pragma actually suppress a finding?
    used: bool,
}

/// One wire-tag constant declaration.
struct TagDecl {
    name: String,
    /// Parsed byte value; `None` when the initializer is not a literal.
    value: Option<u32>,
    line: usize,
}

/// One `lockcheck: identity(<equation>)` annotation, resolved as far as
/// single-file scanning can take it.
struct IdentitySite {
    line: usize,
    equation: String,
    struct_name: Option<String>,
    closed_method: Option<String>,
}

/// Everything a single file contributes to the workspace-level passes.
#[derive(Default)]
struct FileFacts {
    waivers: Vec<Waiver>,
    tags: Vec<TagDecl>,
    identities: Vec<IdentitySite>,
    /// Stripped `#[cfg(test)]` tail, fed to the test corpus for
    /// identity-closure.
    test_tail: String,
}

/// Does `line` carry the pragma `lockcheck: allow(<what>)` — with or
/// without a `: reason` payload?
fn has_allow(line: &str, what: &str) -> bool {
    let open = format!("lockcheck: allow({what}");
    line.find(&open).is_some_and(|p| {
        let rest = &line[p + open.len()..];
        rest.starts_with(')') || rest.starts_with(':')
    })
}

/// Does `line` (or its predecessor) carry a reasoned
/// `lockcheck: panic-site(<why>)` annotation?
fn has_panic_site(line: &str) -> bool {
    let open = "lockcheck: panic-site(";
    line.find(open).is_some_and(|p| {
        let rest = &line[p + open.len()..];
        rest.find(')')
            .is_some_and(|close| !rest[..close].trim().is_empty())
    })
}

/// Parse a wire-tag constant declaration off a stripped line:
/// `[pub] const <NAME>: u8 = <literal>;` where NAME contains `TAG`.
fn tag_decl(line: &str) -> Option<(String, Option<u32>)> {
    let t = line.trim_start();
    let t = t.strip_prefix("pub ").unwrap_or(t);
    let rest = t.strip_prefix("const ")?;
    let (name, after) = rest.split_once(':')?;
    let name = name.trim();
    if !name.contains("TAG") || !name.chars().all(|c| c.is_alphanumeric() || c == '_') {
        return None;
    }
    let (ty, init) = after.split_once('=')?;
    if ty.trim() != "u8" {
        return None;
    }
    let lit = init.trim().trim_end_matches(';').trim();
    let value = if let Some(hex) = lit.strip_prefix("0x") {
        u32::from_str_radix(&hex.replace('_', ""), 16).ok()
    } else {
        lit.replace('_', "").parse().ok()
    };
    Some((name.to_string(), value))
}

/// First identifier following `needle` on `line`.
fn ident_after<'a>(line: &'a str, needle: &str) -> Option<&'a str> {
    let p = line.find(needle)? + needle.len();
    let rest = &line[p..];
    let end = rest
        .find(|c: char| !c.is_alphanumeric() && c != '_')
        .unwrap_or(rest.len());
    (end > 0).then(|| &rest[..end])
}

/// Run every per-file rule over one file and collect its facts for the
/// workspace passes. `path` is workspace-relative with forward slashes.
fn check_source(path: &str, text: &str) -> (Vec<Violation>, FileFacts) {
    let krate = crate_of(path);
    let raw_lines: Vec<&str> = text.lines().collect();
    let stripped = strip_source(text);
    let lines: Vec<&str> = stripped.lines().collect();

    // Production-code cutoff: everything from a `#[cfg(test)]` item to
    // EOF is the file's test-module tail and is exempt.
    let cutoff = lines
        .iter()
        .position(|l| l.contains("#[cfg(test)]"))
        .unwrap_or(lines.len());

    let allow_on = |idx: usize, what: &str| -> bool {
        raw_lines.get(idx).is_some_and(|l| has_allow(l, what))
            || (idx > 0 && has_allow(raw_lines[idx - 1], what))
    };
    let panic_site_on = |idx: usize| -> bool {
        raw_lines.get(idx).is_some_and(|l| has_panic_site(l))
            || (idx > 0 && has_panic_site(raw_lines[idx - 1]))
    };

    let mut facts = FileFacts {
        test_tail: lines[cutoff.min(lines.len())..].join("\n"),
        ..FileFacts::default()
    };

    // The lint's own sources quote every pragma verbatim (rule docs,
    // self-test fixtures), so raw-line pragma collection over this
    // crate would audit its own documentation. Skip it — the crate has
    // no locks to waive and no stats identities.
    let audit_pragmas = krate != "lockcheck";
    if audit_pragmas {
        for (idx, l) in raw_lines.iter().enumerate().take(cutoff) {
            if let Some(p) = l.find("lockcheck: allow(raw-sync") {
                let rest = &l[p + "lockcheck: allow(raw-sync".len()..];
                let reason = rest
                    .strip_prefix(':')
                    .and_then(|r| r.split(')').next())
                    .map(str::trim)
                    .filter(|r| !r.is_empty())
                    .map(str::to_string);
                facts.waivers.push(Waiver {
                    line: idx + 1,
                    reason,
                    used: false,
                });
            }
        }
    }

    let mut out = Vec::new();
    let mut depth: i32 = 0;
    let mut site_armed = false;
    let mut in_site = false;
    let mut site_depth: i32 = 0;
    let mut site_opened = false;
    let mut guards: Vec<Guard> = Vec::new();
    // Source-order balance of fabric lock acquisitions within the
    // current function, for the unwind-safety pass.
    let mut fabric_balance: i32 = 0;

    for (idx, &line) in lines.iter().enumerate().take(cutoff) {
        if raw_lines[idx].contains("lockcheck: acquire-site") {
            site_armed = true;
        }
        if line.contains("fn ") {
            fabric_balance = 0;
            if site_armed && !in_site {
                in_site = true;
                site_armed = false;
                site_depth = depth;
                site_opened = false;
            }
        }

        // Marks the waiver that suppressed a finding on line `idx`.
        let mark_waiver_used = |facts: &mut FileFacts| {
            for cand in [idx + 1, idx] {
                if let Some(w) = facts.waivers.iter_mut().find(|w| w.line == cand) {
                    w.used = true;
                    return;
                }
            }
        };

        // ---- raw-sync ------------------------------------------------
        if krate != "fabric" {
            if line.contains("parking_lot") {
                if allow_on(idx, "raw-sync") {
                    mark_waiver_used(&mut facts);
                } else {
                    out.push(Violation {
                        file: path.into(),
                        line: idx + 1,
                        rule: RULE_RAW_SYNC,
                        msg: "parking_lot is reserved for crates/fabric".into(),
                    });
                }
            }
            if line.contains(".lock()") {
                if allow_on(idx, "raw-sync") {
                    mark_waiver_used(&mut facts);
                } else {
                    out.push(Violation {
                        file: path.into(),
                        line: idx + 1,
                        rule: RULE_RAW_SYNC,
                        msg: "raw mutex acquisition outside crates/fabric (use the \
                              fabric lock API, or annotate host-side bookkeeping \
                              with a reasoned raw-sync waiver)"
                            .into(),
                    });
                }
            }
        }

        // ---- ordered-acquire ----------------------------------------
        if (krate == "server" || krate == "arena")
            && (line.contains("ctx.lock(") || line.contains("ctx.unlock("))
            && !in_site
        {
            out.push(Violation {
                file: path.into(),
                line: idx + 1,
                rule: RULE_ORDERED,
                msg: "fabric lock call outside an `// lockcheck: acquire-site` \
                      function (go through RegionLocks / Ctrl::enter/exit, or \
                      the arena Pool::enter/exit)"
                    .into(),
            });
        }

        // ---- sim-lock-free ------------------------------------------
        if krate == "sim"
            && ["ctx.lock(", "ctx.unlock(", ".lock()", "Mutex", "RwLock"]
                .iter()
                .any(|p| line.contains(p))
        {
            out.push(Violation {
                file: path.into(),
                line: idx + 1,
                rule: RULE_SIM,
                msg: "world-phase code must take no object locks (phase \
                      exclusivity belongs to the frame protocol)"
                    .into(),
            });
        }

        // ---- guard-across-wait --------------------------------------
        if krate != "fabric" {
            let barrier = [
                "ctx.cond_wait(",
                "ctx.cond_wait_until(",
                "ctx.sleep_until(",
                "ctx.wait_readable(",
            ]
            .iter()
            .find(|p| line.contains(*p));
            if let Some(b) = barrier {
                if let Some(g) = guards.first() {
                    if !allow_on(idx, "guard-across-wait") {
                        out.push(Violation {
                            file: path.into(),
                            line: idx + 1,
                            rule: RULE_GUARD,
                            msg: format!(
                                "`{}` called while raw guard `{}` is live",
                                b.trim_end_matches('('),
                                g.name
                            ),
                        });
                    }
                }
            }
        }

        // ---- unwind-safety ------------------------------------------
        // The fabric owns the task-boundary catch_unwind (and reports
        // leaked locks to the witness at runtime); everywhere else a
        // fate boundary must be entered lock-free.
        if krate != "fabric" && line.contains("catch_unwind") && !allow_on(idx, "unwind-safety") {
            if let Some(g) = guards.first() {
                out.push(Violation {
                    file: path.into(),
                    line: idx + 1,
                    rule: RULE_UNWIND,
                    msg: format!(
                        "raw guard `{}` is live at a catch_unwind boundary (a \
                         caught panic would leave it poisoned/held)",
                        g.name
                    ),
                });
            }
            if fabric_balance > 0 {
                out.push(Violation {
                    file: path.into(),
                    line: idx + 1,
                    rule: RULE_UNWIND,
                    msg: "fabric lock held at a catch_unwind boundary (a caught \
                          panic would wedge every task queued on it)"
                        .into(),
                });
            }
        }
        if krate != "fabric" {
            for pat in ["ctx.lock(", ".enter(ctx)"] {
                fabric_balance += line.matches(pat).count() as i32;
            }
            for pat in ["ctx.unlock(", ".exit(ctx)"] {
                fabric_balance -= line.matches(pat).count() as i32;
            }
        }

        // ---- unwind-safety: frame-path panic sites ------------------
        if frame_path(path) {
            if let Some(pat) = [".unwrap()", ".expect(", "panic!"]
                .iter()
                .find(|p| line.contains(*p))
            {
                if !panic_site_on(idx) {
                    out.push(Violation {
                        file: path.into(),
                        line: idx + 1,
                        rule: RULE_UNWIND,
                        msg: format!(
                            "`{}` in frame-path code without a `lockcheck: \
                             panic-site(<reason>)` annotation (frame panics \
                             unwind into the supervisor's fate boundary)",
                            pat.trim_start_matches('.')
                        ),
                    });
                }
            }
        }

        // ---- wire-tag collection ------------------------------------
        if matches!(krate, "protocol" | "server" | "arena") {
            if let Some((name, value)) = tag_decl(line) {
                facts.tags.push(TagDecl {
                    name,
                    value,
                    line: idx + 1,
                });
            }
        }

        // ---- identity collection ------------------------------------
        if audit_pragmas && raw_lines[idx].contains("lockcheck: identity(") {
            let equation = raw_lines[idx]
                .split("lockcheck: identity(")
                .nth(1)
                .and_then(|r| r.split(')').next())
                .unwrap_or("")
                .trim()
                .to_string();
            // The annotated struct follows within a few lines (derive
            // attributes and doc comments in between are fine).
            let struct_name = (idx..lines.len().min(idx + 8))
                .find_map(|j| ident_after(lines[j], "struct "))
                .map(str::to_string);
            let closed_method = struct_name.as_deref().and_then(|name| {
                // Inside the struct's impl block (approximated as: from
                // `impl <name>` until the next impl/struct item), find a
                // `fn *_closed`.
                let impl_at = lines
                    .iter()
                    .position(|l| ident_after(l, "impl ") == Some(name))?;
                lines[impl_at + 1..]
                    .iter()
                    .take_while(|l| !l.contains("impl ") && !l.contains("struct "))
                    .find_map(|l| ident_after(l, "fn ").filter(|f| f.ends_with("_closed")))
                    .map(str::to_string)
            });
            if struct_name.is_none() {
                out.push(Violation {
                    file: path.into(),
                    line: idx + 1,
                    rule: RULE_IDENTITY,
                    msg: "identity annotation is not followed by a struct \
                          declaration"
                        .into(),
                });
            } else if closed_method.is_none() {
                out.push(Violation {
                    file: path.into(),
                    line: idx + 1,
                    rule: RULE_IDENTITY,
                    msg: format!(
                        "struct `{}` declares identity `{}` but exposes no \
                         `*_closed()` method proving it",
                        struct_name.as_deref().unwrap_or("?"),
                        equation
                    ),
                });
            }
            facts.identities.push(IdentitySite {
                line: idx + 1,
                equation,
                struct_name,
                closed_method,
            });
        }

        // ---- brace tracking -----------------------------------------
        if krate != "fabric" {
            if let Some(name) = guard_binding(line) {
                guards.push(Guard { name, depth });
            }
            if line.contains("drop(") {
                guards.retain(|g| !line.contains(&format!("drop({})", g.name)));
            }
        }
        for c in line.chars() {
            match c {
                '{' => {
                    depth += 1;
                    if in_site && depth > site_depth {
                        site_opened = true;
                    }
                }
                '}' => depth -= 1,
                _ => {}
            }
        }
        guards.retain(|g| depth >= g.depth);
        if in_site && site_opened && depth <= site_depth {
            in_site = false;
        }
    }

    // ---- waiver-audit: per-file checks ------------------------------
    for w in &facts.waivers {
        if w.reason.is_none() {
            out.push(Violation {
                file: path.into(),
                line: w.line,
                rule: RULE_WAIVER,
                msg: "raw-sync waiver carries no reason — write \
                      `lockcheck: allow(raw-sync: <why this cannot go \
                      through the fabric>)`"
                    .into(),
            });
        }
        if !w.used {
            out.push(Violation {
                file: path.into(),
                line: w.line,
                rule: RULE_WAIVER,
                msg: "raw-sync waiver suppresses nothing on this or the next \
                      line — delete it (stale waivers hide real debt)"
                    .into(),
            });
        }
    }

    out.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    (out, facts)
}

/// Run all eight passes over a whole workspace: per-file rules plus the
/// cross-file audits (waiver budget, wire-tag registry, identity
/// closure). `budget` is the content of `lockcheck.budget` (`None` =
/// the file is missing, which is itself a violation).
fn check_workspace(
    files: &[(String, String)],
    test_files: &[(String, String)],
    budget: Option<&str>,
) -> Vec<Violation> {
    let mut out = Vec::new();
    let mut facts = Vec::new();
    for (path, text) in files {
        let (v, f) = check_source(path, text);
        out.extend(v);
        facts.push((path.as_str(), f));
    }

    // ---- waiver-audit: committed budget -----------------------------
    let mut waived: HashMap<&str, usize> = HashMap::new();
    for (path, f) in &facts {
        if !f.waivers.is_empty() {
            *waived.entry(crate_of(path)).or_default() += f.waivers.len();
        }
    }
    match budget {
        None => out.push(Violation {
            file: BUDGET_PATH.into(),
            line: 1,
            rule: RULE_WAIVER,
            msg: "waiver budget file is missing — commit one line per crate: \
                  `<crate> <waiver-count>`"
                .into(),
        }),
        Some(src) => {
            let mut budgeted: HashMap<&str, (usize, usize)> = HashMap::new();
            for (lineno, l) in src.lines().enumerate() {
                let l = l.split('#').next().unwrap_or("").trim();
                if l.is_empty() {
                    continue;
                }
                let mut it = l.split_whitespace();
                if let (Some(name), Some(n)) = (it.next(), it.next()) {
                    if let Ok(n) = n.parse::<usize>() {
                        budgeted.insert(name, (n, lineno + 1));
                    }
                }
            }
            let mut crates: Vec<&str> = waived
                .keys()
                .chain(budgeted.keys())
                .copied()
                .collect::<std::collections::BTreeSet<_>>()
                .into_iter()
                .collect();
            crates.sort();
            for name in crates {
                let actual = waived.get(name).copied().unwrap_or(0);
                match budgeted.get(name) {
                    None => out.push(Violation {
                        file: BUDGET_PATH.into(),
                        line: 1,
                        rule: RULE_WAIVER,
                        msg: format!(
                            "crate `{name}` has {actual} raw-sync waiver(s) but \
                             no budget entry — add `{name} {actual}` (and \
                             justify the growth in the PR)"
                        ),
                    }),
                    Some((max, lineno)) if actual > *max => out.push(Violation {
                        file: BUDGET_PATH.into(),
                        line: *lineno,
                        rule: RULE_WAIVER,
                        msg: format!(
                            "crate `{name}` has {actual} raw-sync waiver(s), \
                             over its budget of {max} — funnel the new sync \
                             through the fabric or raise the budget explicitly"
                        ),
                    }),
                    Some((max, lineno)) if actual < *max => out.push(Violation {
                        file: BUDGET_PATH.into(),
                        line: *lineno,
                        rule: RULE_WAIVER,
                        msg: format!(
                            "crate `{name}` has only {actual} raw-sync \
                             waiver(s) but budgets {max} — ratchet the budget \
                             down so the headroom cannot be spent silently"
                        ),
                    }),
                    Some(_) => {}
                }
            }
        }
    }

    // ---- wire-tag-registry ------------------------------------------
    let mut by_name: HashMap<&str, Vec<(&str, usize)>> = HashMap::new();
    let mut registry_by_value: HashMap<u32, Vec<(&str, usize)>> = HashMap::new();
    for (path, f) in &facts {
        for t in &f.tags {
            if *path != REGISTRY_PATH {
                out.push(Violation {
                    file: (*path).into(),
                    line: t.line,
                    rule: RULE_TAGS,
                    msg: format!(
                        "wire-tag constant `{}` declared outside the registry \
                         — declare it once in {REGISTRY_PATH} and import it",
                        t.name
                    ),
                });
            } else if let Some(v) = t.value {
                registry_by_value
                    .entry(v)
                    .or_default()
                    .push((&t.name, t.line));
            }
            by_name.entry(&t.name).or_default().push((path, t.line));
        }
    }
    for (name, sites) in &by_name {
        if sites.len() > 1 {
            for (path, line) in &sites[1..] {
                out.push(Violation {
                    file: (*path).into(),
                    line: *line,
                    rule: RULE_TAGS,
                    msg: format!(
                        "wire-tag constant `{name}` is declared more than once \
                         (first at {}:{})",
                        sites[0].0, sites[0].1
                    ),
                });
            }
        }
    }
    for (value, sites) in &registry_by_value {
        if sites.len() > 1 {
            for (name, line) in &sites[1..] {
                out.push(Violation {
                    file: REGISTRY_PATH.into(),
                    line: *line,
                    rule: RULE_TAGS,
                    msg: format!(
                        "wire-tag value {value} collides: `{name}` aliases \
                         `{}` (declared at line {})",
                        sites[0].0, sites[0].1
                    ),
                });
            }
        }
    }

    // ---- identity-closure: test-corpus reference --------------------
    let mut corpus = String::new();
    for (_, f) in &facts {
        corpus.push_str(&f.test_tail);
        corpus.push('\n');
    }
    for (_, text) in test_files {
        corpus.push_str(&strip_source(text));
        corpus.push('\n');
    }
    for (path, f) in &facts {
        for site in &f.identities {
            let (Some(name), Some(method)) = (&site.struct_name, &site.closed_method) else {
                continue; // already flagged per-file
            };
            let called = corpus.contains(&format!(".{method}("));
            let named = corpus.contains(name.as_str());
            if !called && !named {
                out.push(Violation {
                    file: (*path).into(),
                    line: site.line,
                    rule: RULE_IDENTITY,
                    msg: format!(
                        "identity `{}` of `{name}` is never exercised: no test \
                         references `{name}` or calls `.{method}()`",
                        site.equation
                    ),
                });
            }
        }
    }

    out
}

/// Detect `let [mut] NAME = <expr>.lock()[.unwrap()|.expect(…)];` — a
/// raw guard binding that stays live to the end of its scope. (Operates
/// on stripped lines, so `expect("…")` has become `expect(   )`.)
fn guard_binding(line: &str) -> Option<String> {
    let t = line.trim();
    let rest = t.strip_prefix("let ")?;
    let (name_part, expr) = rest.split_once('=')?;
    let expr: String = expr
        .trim()
        .trim_end_matches(';')
        .trim_end()
        .chars()
        .filter(|c| *c != ' ')
        .collect();
    let held = expr.ends_with(".lock()")
        || expr.ends_with(".lock().unwrap()")
        || expr.ends_with(".lock().expect()");
    if !held {
        return None;
    }
    let name = name_part
        .trim()
        .trim_start_matches("mut ")
        .split(':')
        .next()?
        .trim()
        .to_string();
    (!name.is_empty() && name.chars().all(|c| c.is_alphanumeric() || c == '_')).then_some(name)
}

// ---------------------------------------------------------------------
// Self-test fixtures: seeded violations the lint must catch, plus
// compliant twins it must pass.
// ---------------------------------------------------------------------

struct Fixture {
    path: &'static str,
    source: &'static str,
    expect: &'static [(&'static str, usize)],
}

const FIXTURES: &[Fixture] = &[
    // Raw std::sync::Mutex acquisition outside fabric: rejected.
    Fixture {
        path: "crates/bots/src/bad_mutex.rs",
        source: "fn f(m: &std::sync::Mutex<u32>) {\n    let mut g = m.lock().unwrap();\n    *g += 1;\n}\n",
        expect: &[(RULE_RAW_SYNC, 2)],
    },
    // Same with a reasoned escape pragma: accepted.
    Fixture {
        path: "crates/bots/src/allowed_mutex.rs",
        source: "fn f(m: &std::sync::Mutex<u32>) {\n    // lockcheck: allow(raw-sync: fixture bookkeeping)\n    let mut g = m.lock().unwrap();\n    *g += 1;\n}\n",
        expect: &[],
    },
    // A reasonless waiver still suppresses, but is itself flagged.
    Fixture {
        path: "crates/bots/src/reasonless.rs",
        source: "fn f(m: &std::sync::Mutex<u32>) {\n    // lockcheck: allow(raw-sync)\n    let mut g = m.lock().unwrap();\n    *g += 1;\n}\n",
        expect: &[(RULE_WAIVER, 2)],
    },
    // A waiver that suppresses nothing is dead weight: flagged.
    Fixture {
        path: "crates/bots/src/stale_waiver.rs",
        source: "fn f() {\n    // lockcheck: allow(raw-sync: left behind by a refactor)\n    let x = 1;\n    let _ = x;\n}\n",
        expect: &[(RULE_WAIVER, 2)],
    },
    // parking_lot anywhere outside fabric: rejected.
    Fixture {
        path: "crates/harness/src/parking.rs",
        source: "use parking_lot::Mutex;\n",
        expect: &[(RULE_RAW_SYNC, 1)],
    },
    // Fabric lock API in server code outside an acquire-site: rejected.
    Fixture {
        path: "crates/server/src/rogue_lock.rs",
        source: "fn f(ctx: &TaskCtx) {\n    ctx.lock(3);\n    ctx.unlock(3);\n}\n",
        expect: &[(RULE_ORDERED, 2), (RULE_ORDERED, 3)],
    },
    // The pragma blesses exactly one function; the next is still rogue.
    Fixture {
        path: "crates/server/src/blessed_lock.rs",
        source: "// lockcheck: acquire-site\nfn acquire(ctx: &TaskCtx) {\n    ctx.lock(3);\n}\nfn other(ctx: &TaskCtx) {\n    ctx.unlock(3);\n}\n",
        expect: &[(RULE_ORDERED, 6)],
    },
    // Raw guard live across a fabric barrier: rejected.
    Fixture {
        path: "crates/server/src/guard_across.rs",
        source: "fn f(ctx: &TaskCtx, m: &std::sync::Mutex<u32>) {\n    // lockcheck: allow(raw-sync: fixture)\n    let g = m.lock().unwrap();\n    ctx.cond_wait(0, 1);\n}\n",
        expect: &[(RULE_GUARD, 4)],
    },
    // Guard scoped out (or dropped) before the barrier: accepted.
    Fixture {
        path: "crates/server/src/guard_dropped.rs",
        source: "fn f(ctx: &TaskCtx, m: &std::sync::Mutex<u32>) {\n    {\n        // lockcheck: allow(raw-sync: fixture)\n        let g = m.lock().unwrap();\n        let _ = *g;\n    }\n    ctx.cond_wait(0, 1);\n}\n",
        expect: &[],
    },
    // World-phase code taking any lock: rejected.
    Fixture {
        path: "crates/sim/src/world_phase.rs",
        source: "fn step(ctx: &TaskCtx) {\n    ctx.lock(0);\n}\n",
        expect: &[(RULE_SIM, 2)],
    },
    // Lock tokens inside strings/comments never trip a rule.
    Fixture {
        path: "crates/bots/src/quoted.rs",
        source: "fn f() {\n    let s = \"m.lock() inside a string\";\n    // m.lock() inside a comment\n    let _ = s;\n}\n",
        expect: &[],
    },
    // In-file #[cfg(test)] tails are exempt.
    Fixture {
        path: "crates/bots/src/test_tail.rs",
        source: "fn prod() {}\n#[cfg(test)]\nmod tests {\n    fn t(m: &std::sync::Mutex<u32>) {\n        let _g = m.lock().unwrap();\n    }\n}\n",
        expect: &[],
    },
    // Fabric itself may use parking_lot freely.
    Fixture {
        path: "crates/fabric/src/internals.rs",
        source: "use parking_lot::Mutex;\nfn f(m: &Mutex<u32>) {\n    let _g = m.lock();\n}\n",
        expect: &[],
    },
    // unwind-safety: raw guard live at a catch_unwind boundary.
    Fixture {
        path: "crates/harness/src/unwind_guard.rs",
        source: "fn f(m: &std::sync::Mutex<u32>) {\n    // lockcheck: allow(raw-sync: fixture)\n    let g = m.lock().unwrap();\n    let _ = std::panic::catch_unwind(|| 1);\n    let _ = *g;\n}\n",
        expect: &[(RULE_UNWIND, 4)],
    },
    // unwind-safety: fabric lock held at a catch_unwind boundary.
    Fixture {
        path: "crates/bots/src/unwind_lock.rs",
        source: "fn f(ctx: &TaskCtx) {\n    ctx.lock(1);\n    let _ = std::panic::catch_unwind(|| 1);\n    ctx.unlock(1);\n}\n",
        expect: &[(RULE_UNWIND, 3)],
    },
    // unwind-safety: boundary entered lock-free is clean.
    Fixture {
        path: "crates/bots/src/unwind_clean.rs",
        source: "fn f(ctx: &TaskCtx) {\n    ctx.lock(1);\n    ctx.unlock(1);\n    let _ = std::panic::catch_unwind(|| 1);\n}\n",
        expect: &[],
    },
    // unwind-safety: undeclared panic site in frame-path code.
    Fixture {
        path: "crates/sim/src/panicky.rs",
        source: "fn f(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n",
        expect: &[(RULE_UNWIND, 2)],
    },
    // unwind-safety: a reasoned panic-site annotation blesses the line.
    Fixture {
        path: "crates/sim/src/declared_panic.rs",
        source: "fn f(x: Option<u32>) -> u32 {\n    // lockcheck: panic-site(x is Some by construction in the caller)\n    x.unwrap()\n}\n",
        expect: &[],
    },
    // unwind-safety: frame-path scoping — the same unwrap outside the
    // frame path is nobody's business.
    Fixture {
        path: "crates/harness/src/host_side.rs",
        source: "fn f(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n",
        expect: &[],
    },
    // identity-closure: annotation without a closing method.
    Fixture {
        path: "crates/metrics/src/unproved.rs",
        source: "// lockcheck: identity(a == b + c)\npub struct S {\n    pub a: u64,\n}\nimpl S {\n    pub fn total(&self) -> u64 {\n        self.a\n    }\n}\n",
        expect: &[(RULE_IDENTITY, 1)],
    },
];

/// Workspace-level fixtures: multiple files, a budget, and a test
/// corpus, exercising the cross-file passes.
struct WsFixture {
    name: &'static str,
    files: &'static [(&'static str, &'static str)],
    tests: &'static str,
    budget: Option<&'static str>,
    expect: &'static [(&'static str, &'static str, usize)],
}

const WAIVED_ONCE: &str = "fn f(m: &std::sync::Mutex<u32>) {\n    let g = m.lock().unwrap(); // lockcheck: allow(raw-sync: fixture)\n    let _ = *g;\n}\n";

const WS_FIXTURES: &[WsFixture] = &[
    WsFixture {
        name: "budget-balanced",
        files: &[("crates/bots/src/a.rs", WAIVED_ONCE)],
        tests: "",
        budget: Some("# comment\nbots 1\n"),
        expect: &[],
    },
    WsFixture {
        name: "budget-missing-file",
        files: &[("crates/bots/src/a.rs", WAIVED_ONCE)],
        tests: "",
        budget: None,
        expect: &[(RULE_WAIVER, "lockcheck.budget", 1)],
    },
    WsFixture {
        // `bots` has a waiver but no entry; `server` budgets headroom
        // it does not use. Both directions are drift and both fire.
        name: "budget-missing-crate",
        files: &[("crates/bots/src/a.rs", WAIVED_ONCE)],
        tests: "",
        budget: Some("server 2\n"),
        expect: &[
            (RULE_WAIVER, "lockcheck.budget", 1),
            (RULE_WAIVER, "lockcheck.budget", 1),
        ],
    },
    WsFixture {
        name: "budget-overrun",
        files: &[
            ("crates/bots/src/a.rs", WAIVED_ONCE),
            ("crates/bots/src/b.rs", WAIVED_ONCE),
        ],
        tests: "",
        budget: Some("bots 1\n"),
        expect: &[(RULE_WAIVER, "lockcheck.budget", 1)],
    },
    WsFixture {
        name: "budget-stale-headroom",
        files: &[("crates/bots/src/a.rs", WAIVED_ONCE)],
        tests: "",
        budget: Some("bots 3\n"),
        expect: &[(RULE_WAIVER, "lockcheck.budget", 1)],
    },
    WsFixture {
        name: "tag-outside-registry",
        files: &[(
            "crates/server/src/rogue_tag.rs",
            "const TAG_ROGUE: u8 = 9;\n",
        )],
        tests: "",
        budget: Some(""),
        expect: &[(RULE_TAGS, "crates/server/src/rogue_tag.rs", 1)],
    },
    WsFixture {
        name: "tag-collision-in-registry",
        files: &[(
            "crates/protocol/src/tags.rs",
            "pub const TAG_A: u8 = 7;\npub const TAG_B: u8 = 0x07;\n",
        )],
        tests: "",
        budget: Some(""),
        expect: &[(RULE_TAGS, "crates/protocol/src/tags.rs", 2)],
    },
    WsFixture {
        name: "tag-duplicate-declaration",
        files: &[
            (
                "crates/protocol/src/tags.rs",
                "pub const TAG_A: u8 = 7;\n",
            ),
            ("crates/arena/src/shadow.rs", "const TAG_A: u8 = 8;\n"),
        ],
        tests: "",
        budget: Some(""),
        expect: &[
            (RULE_TAGS, "crates/arena/src/shadow.rs", 1),
            (RULE_TAGS, "crates/arena/src/shadow.rs", 1),
        ],
    },
    WsFixture {
        name: "tags-distinct-are-clean",
        files: &[(
            "crates/protocol/src/tags.rs",
            "pub const TAG_A: u8 = 7;\npub const TAG_B: u8 = 8;\npub const ARENA_EXT_TAG: u8 = 0xA7;\n",
        )],
        tests: "",
        budget: Some(""),
        expect: &[],
    },
    WsFixture {
        name: "identity-proved-and-tested",
        files: &[(
            "crates/metrics/src/proved.rs",
            "// lockcheck: identity(placed == departed + resident)\npub struct Book {\n    pub placed: u64,\n    pub departed: u64,\n    pub resident: u64,\n}\nimpl Book {\n    pub fn population_closed(&self) -> bool {\n        self.placed == self.departed + self.resident\n    }\n}\n",
        )],
        tests: "fn t(b: Book) { assert!(b.population_closed()); }\n",
        budget: Some(""),
        expect: &[],
    },
    WsFixture {
        name: "identity-untested",
        files: &[(
            "crates/metrics/src/proved.rs",
            "// lockcheck: identity(placed == departed + resident)\npub struct Book {\n    pub placed: u64,\n}\nimpl Book {\n    pub fn population_closed(&self) -> bool {\n        true\n    }\n}\n",
        )],
        tests: "fn unrelated() {}\n",
        budget: Some(""),
        expect: &[(RULE_IDENTITY, "crates/metrics/src/proved.rs", 1)],
    },
];

fn self_test() -> ExitCode {
    let mut failed = 0usize;
    for fx in FIXTURES {
        let got = check_source(fx.path, fx.source).0;
        let got_pairs: Vec<(&str, usize)> = got.iter().map(|v| (v.rule, v.line)).collect();
        if got_pairs != fx.expect {
            failed += 1;
            eprintln!("self-test FAIL {}:", fx.path);
            eprintln!("  expected {:?}", fx.expect);
            eprintln!("  got      {got_pairs:?}");
            for v in &got {
                eprintln!("    {v}");
            }
        }
    }
    for fx in WS_FIXTURES {
        let files: Vec<(String, String)> = fx
            .files
            .iter()
            .map(|(p, s)| (p.to_string(), s.to_string()))
            .collect();
        let tests = vec![("tests/fixture.rs".to_string(), fx.tests.to_string())];
        let got = check_workspace(&files, &tests, fx.budget);
        let got_tuples: Vec<(&str, &str, usize)> = got
            .iter()
            .map(|v| (v.rule, v.file.as_str(), v.line))
            .collect();
        if got_tuples != fx.expect {
            failed += 1;
            eprintln!("self-test FAIL workspace fixture `{}`:", fx.name);
            eprintln!("  expected {:?}", fx.expect);
            eprintln!("  got      {got_tuples:?}");
            for v in &got {
                eprintln!("    {v}");
            }
        }
    }
    if failed == 0 {
        println!(
            "lockcheck self-test: {} file fixtures + {} workspace fixtures ok",
            FIXTURES.len(),
            WS_FIXTURES.len()
        );
        ExitCode::SUCCESS
    } else {
        eprintln!("lockcheck self-test: {failed} fixture(s) failed");
        ExitCode::FAILURE
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn self_test_fixtures_pass() {
        assert_eq!(self_test(), ExitCode::SUCCESS);
    }

    #[test]
    fn json_report_is_escaped_and_parsable_shape() {
        let v = vec![Violation {
            file: "a \"b\"\\c.rs".into(),
            line: 3,
            rule: RULE_RAW_SYNC,
            msg: "line1\nline2".into(),
        }];
        let s = json_report(&v, 7);
        assert!(s.contains("\"files_scanned\":7"), "{s}");
        assert!(s.contains("\\\"b\\\"\\\\c.rs"), "{s}");
        assert!(s.contains("line1\\nline2"), "{s}");
        assert!(s.starts_with('{') && s.ends_with('}'), "{s}");
    }

    #[test]
    fn tag_decl_parses_literals() {
        assert_eq!(
            tag_decl("pub const ARENA_EXT_TAG: u8 = 0xA7;"),
            Some(("ARENA_EXT_TAG".into(), Some(0xA7)))
        );
        assert_eq!(
            tag_decl("const TAG_MOVE: u8 = 2;"),
            Some(("TAG_MOVE".into(), Some(2)))
        );
        assert_eq!(tag_decl("const MAX_DATAGRAM: usize = 2048;"), None);
        assert_eq!(tag_decl("const TAG_WIDE: u16 = 2;"), None);
        assert_eq!(tag_decl("let tag = 2;"), None);
    }

    // Source-shaped fragment pool for the strip_source properties:
    // raw strings, nested block comments, char literals, lifetimes,
    // escapes — the constructs the scanner must not mangle.
    const FRAGMENTS: &[&str] = &[
        "fn f() {",
        "}",
        "let x = m.lock();",
        "\"string with } brace and ctx.lock( inside\"",
        "\"escaped \\\" quote\"",
        "r\"raw string\"",
        "r#\"raw with \" quote\"#",
        "r##\"nested \"# almost\"##",
        "/* block comment */",
        "/* nested /* block */ comment */",
        "// line comment with \" quote",
        "'x'",
        "'\\n'",
        "'\\''",
        "&'a str",
        "'static",
        "r#raw_ident",
        "/* unterminated-on-this-line",
        "*/",
        "",
    ];

    proptest! {
        #[test]
        fn strip_source_preserves_line_count(
            picks in prop::collection::vec(0usize..FRAGMENTS.len(), 0..40)
        ) {
            let src: String = picks
                .iter()
                .map(|&i| FRAGMENTS[i])
                .collect::<Vec<_>>()
                .join("\n");
            let stripped = strip_source(&src);
            prop_assert_eq!(
                src.lines().count(),
                stripped.lines().count(),
                "line count changed for source:\n{}",
                src
            );
        }

        #[test]
        fn strip_source_is_idempotent(
            picks in prop::collection::vec(0usize..FRAGMENTS.len(), 0..40)
        ) {
            let src: String = picks
                .iter()
                .map(|&i| FRAGMENTS[i])
                .collect::<Vec<_>>()
                .join("\n");
            let once = strip_source(&src);
            let twice = strip_source(&once);
            prop_assert_eq!(&once, &twice, "not idempotent for source:\n{}", src);
        }
    }
}
