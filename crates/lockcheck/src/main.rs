//! parquake-lockcheck — the workspace lock-discipline lint.
//!
//! Enforces the static half of the region-locking verification layer
//! (the dynamic half is the runtime witness in `parquake-fabric`):
//!
//! * **raw-sync** — no raw `std::sync::Mutex`/`parking_lot` lock
//!   acquisition outside `crates/fabric`. Game-state synchronization
//!   must go through the fabric so it is simulated, witnessed, and
//!   deterministic. Host-side bookkeeping (result collection, stat
//!   sinks) may opt out per line with `// lockcheck: allow(raw-sync)`.
//! * **ordered-acquire** — inside `crates/server`, the fabric lock API
//!   (`ctx.lock`/`ctx.unlock`) may only be called from functions marked
//!   `// lockcheck: acquire-site` (the `RegionLocks` methods and
//!   `Ctrl::enter`/`exit`). Everything else must use those methods, so
//!   every protocol acquisition funnels through witnessed, ordered
//!   sites.
//! * **guard-across-wait** — no raw mutex guard may be live across a
//!   fabric barrier/phase-transition call (`cond_wait`,
//!   `cond_wait_until`, `sleep_until`, `wait_readable`).
//! * **sim-lock-free** — `crates/sim` (the world-phase code, which the
//!   frame protocol runs under master exclusivity) takes no object
//!   locks at all: no fabric lock calls, no raw mutexes.
//!
//! The scanner is a hand-rolled token-level pass: it strips comments,
//! strings and char literals (so quoted or commented `ctx.lock(` never
//! trips a rule), honours `#[cfg(test)]` tails (test modules at the end
//! of a source file are exempt — the discipline governs production
//! code; integration tests under `tests/` are never scanned), and
//! tracks brace depth to delimit `acquire-site` functions. A
//! `syn`-based AST pass was considered and rejected to keep the checker
//! dependency-free and offline-buildable.
//!
//! Usage: `cargo run -p parquake-lockcheck` from the workspace root
//! (CI does exactly this); `--root <dir>` to point elsewhere;
//! `--self-test` to run the embedded violation fixtures.

use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

#[derive(Debug, PartialEq, Eq)]
struct Violation {
    file: String,
    /// 1-based.
    line: usize,
    rule: &'static str,
    msg: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.msg
        )
    }
}

const RULE_RAW_SYNC: &str = "raw-sync";
const RULE_ORDERED: &str = "ordered-acquire";
const RULE_GUARD: &str = "guard-across-wait";
const RULE_SIM: &str = "sim-lock-free";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--self-test") {
        return self_test();
    }
    let root = match args.iter().position(|a| a == "--root") {
        Some(i) => PathBuf::from(args.get(i + 1).map(String::as_str).unwrap_or(".")),
        None => PathBuf::from("."),
    };
    if !root.join("Cargo.toml").is_file() {
        eprintln!(
            "lockcheck: no Cargo.toml under {} (run from the workspace root)",
            root.display()
        );
        return ExitCode::FAILURE;
    }

    let mut files = Vec::new();
    collect_rs(&root.join("src"), &mut files);
    if let Ok(entries) = fs::read_dir(root.join("crates")) {
        for e in entries.flatten() {
            collect_rs(&e.path().join("src"), &mut files);
        }
    }
    files.sort();

    let mut violations = Vec::new();
    let mut scanned = 0usize;
    for f in &files {
        let text = match fs::read_to_string(f) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("lockcheck: cannot read {}: {e}", f.display());
                return ExitCode::FAILURE;
            }
        };
        let rel = f
            .strip_prefix(&root)
            .unwrap_or(f)
            .to_string_lossy()
            .replace('\\', "/");
        violations.extend(check_source(&rel, &text));
        scanned += 1;
    }

    for v in &violations {
        eprintln!("{v}");
    }
    if violations.is_empty() {
        println!("lockcheck: {scanned} files clean");
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "lockcheck: {} violation(s) in {scanned} files",
            violations.len()
        );
        ExitCode::FAILURE
    }
}

/// Recursively gather `.rs` files under `dir`. Callers only pass `src/`
/// roots, so `vendor/`, `target/`, `tests/` and `benches/` are never
/// visited.
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for e in entries.flatten() {
        let p = e.path();
        if p.is_dir() {
            collect_rs(&p, out);
        } else if p.extension().is_some_and(|x| x == "rs") {
            out.push(p);
        }
    }
}

/// The crate a workspace-relative path belongs to (`crates/<name>/…` →
/// `<name>`; the root package maps to `root`).
fn crate_of(path: &str) -> &str {
    let Some(rest) = path.strip_prefix("crates/") else {
        return "root";
    };
    rest.split('/').next().unwrap_or("root")
}

/// Replace comments, string literals and char literals with spaces,
/// preserving line structure so diagnostics keep their line numbers.
fn strip_source(text: &str) -> String {
    let b: Vec<char> = text.chars().collect();
    let mut out = String::with_capacity(text.len());
    let blank = |out: &mut String, c: char| out.push(if c == '\n' { '\n' } else { ' ' });
    let mut i = 0;
    while i < b.len() {
        let c = b[i];
        let next = b.get(i + 1).copied();
        if c == '/' && next == Some('/') {
            while i < b.len() && b[i] != '\n' {
                out.push(' ');
                i += 1;
            }
        } else if c == '/' && next == Some('*') {
            let mut depth = 1usize;
            out.push_str("  ");
            i += 2;
            while i < b.len() && depth > 0 {
                if b[i] == '/' && b.get(i + 1) == Some(&'*') {
                    depth += 1;
                    out.push_str("  ");
                    i += 2;
                } else if b[i] == '*' && b.get(i + 1) == Some(&'/') {
                    depth -= 1;
                    out.push_str("  ");
                    i += 2;
                } else {
                    blank(&mut out, b[i]);
                    i += 1;
                }
            }
        } else if c == 'r' && (next == Some('"') || next == Some('#')) && !prev_is_ident(&b, i) {
            // Raw string r"…" / r#"…"#.
            let mut j = i + 1;
            let mut hashes = 0usize;
            while b.get(j) == Some(&'#') {
                hashes += 1;
                j += 1;
            }
            if b.get(j) == Some(&'"') {
                for _ in i..=j {
                    out.push(' ');
                }
                i = j + 1;
                while i < b.len() {
                    if b[i] == '"' {
                        let mut k = 0;
                        while k < hashes && b.get(i + 1 + k) == Some(&'#') {
                            k += 1;
                        }
                        if k == hashes {
                            for _ in 0..=hashes {
                                out.push(' ');
                            }
                            i += 1 + hashes;
                            break;
                        }
                    }
                    blank(&mut out, b[i]);
                    i += 1;
                }
            } else {
                out.push(c);
                i += 1;
            }
        } else if c == '"' {
            out.push(' ');
            i += 1;
            while i < b.len() {
                if b[i] == '\\' && i + 1 < b.len() {
                    out.push_str("  ");
                    i += 2;
                } else if b[i] == '"' {
                    out.push(' ');
                    i += 1;
                    break;
                } else {
                    blank(&mut out, b[i]);
                    i += 1;
                }
            }
        } else if c == '\'' {
            // Char literal vs lifetime: '\n' / 'x' are literals; 'a and
            // 'static (no nearby closing quote) are lifetimes.
            if next == Some('\\') {
                out.push_str("  ");
                i += 2;
                while i < b.len() && b[i] != '\'' {
                    blank(&mut out, b[i]);
                    i += 1;
                }
                out.push(' ');
                i += 1;
            } else if b.get(i + 2) == Some(&'\'') {
                out.push_str("   ");
                i += 3;
            } else {
                out.push(c);
                i += 1;
            }
        } else {
            out.push(c);
            i += 1;
        }
    }
    out
}

fn prev_is_ident(b: &[char], i: usize) -> bool {
    i > 0 && (b[i - 1].is_alphanumeric() || b[i - 1] == '_')
}

/// A raw-mutex guard binding live in some scope.
struct Guard {
    name: String,
    depth: i32,
}

/// Run every rule over one file. `path` is workspace-relative with
/// forward slashes.
fn check_source(path: &str, text: &str) -> Vec<Violation> {
    let krate = crate_of(path);
    let raw_lines: Vec<&str> = text.lines().collect();
    let stripped = strip_source(text);
    let lines: Vec<&str> = stripped.lines().collect();

    // Production-code cutoff: everything from a `#[cfg(test)]` item to
    // EOF is the file's test-module tail and is exempt.
    let cutoff = lines
        .iter()
        .position(|l| l.contains("#[cfg(test)]"))
        .unwrap_or(lines.len());

    let allow_on = |idx: usize, what: &str| -> bool {
        let tag = format!("lockcheck: allow({what})");
        raw_lines.get(idx).is_some_and(|l| l.contains(&tag))
            || (idx > 0 && raw_lines[idx - 1].contains(&tag))
    };

    let mut out = Vec::new();
    let mut depth: i32 = 0;
    let mut site_armed = false;
    let mut in_site = false;
    let mut site_depth: i32 = 0;
    let mut site_opened = false;
    let mut guards: Vec<Guard> = Vec::new();

    for (idx, &line) in lines.iter().enumerate().take(cutoff) {
        if raw_lines[idx].contains("lockcheck: acquire-site") {
            site_armed = true;
        }
        if site_armed && !in_site && line.contains("fn ") {
            in_site = true;
            site_armed = false;
            site_depth = depth;
            site_opened = false;
        }

        // ---- raw-sync ------------------------------------------------
        if krate != "fabric" {
            if line.contains("parking_lot") && !allow_on(idx, "raw-sync") {
                out.push(Violation {
                    file: path.into(),
                    line: idx + 1,
                    rule: RULE_RAW_SYNC,
                    msg: "parking_lot is reserved for crates/fabric".into(),
                });
            }
            if line.contains(".lock()") && !allow_on(idx, "raw-sync") {
                out.push(Violation {
                    file: path.into(),
                    line: idx + 1,
                    rule: RULE_RAW_SYNC,
                    msg: "raw mutex acquisition outside crates/fabric (use the \
                          fabric lock API, or annotate host-side bookkeeping \
                          with `// lockcheck: allow(raw-sync)`)"
                        .into(),
                });
            }
        }

        // ---- ordered-acquire ----------------------------------------
        if (krate == "server" || krate == "arena")
            && (line.contains("ctx.lock(") || line.contains("ctx.unlock("))
            && !in_site
        {
            out.push(Violation {
                file: path.into(),
                line: idx + 1,
                rule: RULE_ORDERED,
                msg: "fabric lock call outside an `// lockcheck: acquire-site` \
                      function (go through RegionLocks / Ctrl::enter/exit, or \
                      the arena Pool::enter/exit)"
                    .into(),
            });
        }

        // ---- sim-lock-free ------------------------------------------
        if krate == "sim"
            && ["ctx.lock(", "ctx.unlock(", ".lock()", "Mutex", "RwLock"]
                .iter()
                .any(|p| line.contains(p))
        {
            out.push(Violation {
                file: path.into(),
                line: idx + 1,
                rule: RULE_SIM,
                msg: "world-phase code must take no object locks (phase \
                      exclusivity belongs to the frame protocol)"
                    .into(),
            });
        }

        // ---- guard-across-wait --------------------------------------
        if krate != "fabric" {
            let barrier = [
                "ctx.cond_wait(",
                "ctx.cond_wait_until(",
                "ctx.sleep_until(",
                "ctx.wait_readable(",
            ]
            .iter()
            .find(|p| line.contains(*p));
            if let Some(b) = barrier {
                if let Some(g) = guards.first() {
                    if !allow_on(idx, "guard-across-wait") {
                        out.push(Violation {
                            file: path.into(),
                            line: idx + 1,
                            rule: RULE_GUARD,
                            msg: format!(
                                "`{}` called while raw guard `{}` is live",
                                b.trim_end_matches('('),
                                g.name
                            ),
                        });
                    }
                }
            }
            if let Some(name) = guard_binding(line) {
                guards.push(Guard { name, depth });
            }
            if line.contains("drop(") {
                guards.retain(|g| !line.contains(&format!("drop({})", g.name)));
            }
        }

        // ---- brace tracking -----------------------------------------
        for c in line.chars() {
            match c {
                '{' => {
                    depth += 1;
                    if in_site && depth > site_depth {
                        site_opened = true;
                    }
                }
                '}' => depth -= 1,
                _ => {}
            }
        }
        guards.retain(|g| depth >= g.depth);
        if in_site && site_opened && depth <= site_depth {
            in_site = false;
        }
    }
    out
}

/// Detect `let [mut] NAME = <expr>.lock()[.unwrap()|.expect(…)];` — a
/// raw guard binding that stays live to the end of its scope. (Operates
/// on stripped lines, so `expect("…")` has become `expect(   )`.)
fn guard_binding(line: &str) -> Option<String> {
    let t = line.trim();
    let rest = t.strip_prefix("let ")?;
    let (name_part, expr) = rest.split_once('=')?;
    let expr: String = expr
        .trim()
        .trim_end_matches(';')
        .trim_end()
        .chars()
        .filter(|c| *c != ' ')
        .collect();
    let held = expr.ends_with(".lock()")
        || expr.ends_with(".lock().unwrap()")
        || expr.ends_with(".lock().expect()");
    if !held {
        return None;
    }
    let name = name_part
        .trim()
        .trim_start_matches("mut ")
        .split(':')
        .next()?
        .trim()
        .to_string();
    (!name.is_empty() && name.chars().all(|c| c.is_alphanumeric() || c == '_')).then_some(name)
}

// ---------------------------------------------------------------------
// Self-test fixtures: seeded violations the lint must catch, plus
// compliant twins it must pass.
// ---------------------------------------------------------------------

struct Fixture {
    path: &'static str,
    source: &'static str,
    expect: &'static [(&'static str, usize)],
}

const FIXTURES: &[Fixture] = &[
    // Raw std::sync::Mutex acquisition outside fabric: rejected.
    Fixture {
        path: "crates/bots/src/bad_mutex.rs",
        source: "fn f(m: &std::sync::Mutex<u32>) {\n    let mut g = m.lock().unwrap();\n    *g += 1;\n}\n",
        expect: &[(RULE_RAW_SYNC, 2)],
    },
    // Same with the escape pragma: accepted.
    Fixture {
        path: "crates/bots/src/allowed_mutex.rs",
        source: "fn f(m: &std::sync::Mutex<u32>) {\n    // lockcheck: allow(raw-sync)\n    let mut g = m.lock().unwrap();\n    *g += 1;\n}\n",
        expect: &[],
    },
    // parking_lot anywhere outside fabric: rejected.
    Fixture {
        path: "crates/harness/src/parking.rs",
        source: "use parking_lot::Mutex;\n",
        expect: &[(RULE_RAW_SYNC, 1)],
    },
    // Fabric lock API in server code outside an acquire-site: rejected.
    Fixture {
        path: "crates/server/src/rogue_lock.rs",
        source: "fn f(ctx: &TaskCtx) {\n    ctx.lock(3);\n    ctx.unlock(3);\n}\n",
        expect: &[(RULE_ORDERED, 2), (RULE_ORDERED, 3)],
    },
    // The pragma blesses exactly one function; the next is still rogue.
    Fixture {
        path: "crates/server/src/blessed_lock.rs",
        source: "// lockcheck: acquire-site\nfn acquire(ctx: &TaskCtx) {\n    ctx.lock(3);\n}\nfn other(ctx: &TaskCtx) {\n    ctx.unlock(3);\n}\n",
        expect: &[(RULE_ORDERED, 6)],
    },
    // Raw guard live across a fabric barrier: rejected.
    Fixture {
        path: "crates/server/src/guard_across.rs",
        source: "fn f(ctx: &TaskCtx, m: &std::sync::Mutex<u32>) {\n    // lockcheck: allow(raw-sync)\n    let g = m.lock().unwrap();\n    ctx.cond_wait(0, 1);\n}\n",
        expect: &[(RULE_GUARD, 4)],
    },
    // Guard scoped out (or dropped) before the barrier: accepted.
    Fixture {
        path: "crates/server/src/guard_dropped.rs",
        source: "fn f(ctx: &TaskCtx, m: &std::sync::Mutex<u32>) {\n    {\n        // lockcheck: allow(raw-sync)\n        let g = m.lock().unwrap();\n        let _ = *g;\n    }\n    ctx.cond_wait(0, 1);\n}\n",
        expect: &[],
    },
    // World-phase code taking any lock: rejected.
    Fixture {
        path: "crates/sim/src/world_phase.rs",
        source: "fn step(ctx: &TaskCtx) {\n    ctx.lock(0);\n}\n",
        expect: &[(RULE_SIM, 2)],
    },
    // Lock tokens inside strings/comments never trip a rule.
    Fixture {
        path: "crates/bots/src/quoted.rs",
        source: "fn f() {\n    let s = \"m.lock() inside a string\";\n    // m.lock() inside a comment\n    let _ = s;\n}\n",
        expect: &[],
    },
    // In-file #[cfg(test)] tails are exempt.
    Fixture {
        path: "crates/bots/src/test_tail.rs",
        source: "fn prod() {}\n#[cfg(test)]\nmod tests {\n    fn t(m: &std::sync::Mutex<u32>) {\n        let _g = m.lock().unwrap();\n    }\n}\n",
        expect: &[],
    },
    // Fabric itself may use parking_lot freely.
    Fixture {
        path: "crates/fabric/src/internals.rs",
        source: "use parking_lot::Mutex;\nfn f(m: &Mutex<u32>) {\n    let _g = m.lock();\n}\n",
        expect: &[],
    },
];

fn self_test() -> ExitCode {
    let mut failed = 0usize;
    for fx in FIXTURES {
        let got = check_source(fx.path, fx.source);
        let got_pairs: Vec<(&str, usize)> = got.iter().map(|v| (v.rule, v.line)).collect();
        if got_pairs != fx.expect {
            failed += 1;
            eprintln!("self-test FAIL {}:", fx.path);
            eprintln!("  expected {:?}", fx.expect);
            eprintln!("  got      {got_pairs:?}");
            for v in &got {
                eprintln!("    {v}");
            }
        }
    }
    if failed == 0 {
        println!("lockcheck self-test: {} fixtures ok", FIXTURES.len());
        ExitCode::SUCCESS
    } else {
        eprintln!("lockcheck self-test: {failed} fixture(s) failed");
        ExitCode::FAILURE
    }
}
