//! Elasticity end-to-end: a ramped bot swarm drives a pooled
//! directory past its boot capacity (arenas spawn under admission
//! pressure) and back down to zero (empty arenas linger, then reap),
//! with the population identity closing across the whole run.

use std::sync::atomic::Ordering;
use std::sync::Arc;

use parquake_arena::{spawn_directory, AdmissionPolicy, ArenaDirectoryConfig, ArenaScheduling};
use parquake_bots::{spawn_swarm_multi, BotSwarmConfig, SwarmRamp, SwarmTopology};
use parquake_bsp::mapgen::MapGenConfig;
use parquake_fabric::{FabricKind, LockWitness};
use parquake_metrics::ElasticEventKind;
use parquake_server::{ServerConfig, ServerKind};

#[test]
fn directory_spawns_under_pressure_and_reaps_after_drain() {
    let fabric = FabricKind::VirtualSmp(Default::default()).build();
    let witness = Arc::new(LockWitness::new());
    fabric.attach_witness(witness.clone());

    // Boot 1 arena of 8 slots with a ceiling of 3: 20 ramped bots must
    // overflow into spawned arenas on the way up, and the spawned
    // arenas must drain and reap on the way down.
    let mut server = ServerConfig::new(ServerKind::Sequential, 9_000_000_000);
    server.checking = true;
    let mut cfg = ArenaDirectoryConfig::new(1, 8, server);
    cfg.scheduling = ArenaScheduling::Pooled { workers: 2 };
    cfg.map = MapGenConfig::small_arena(11);
    cfg.policy = AdmissionPolicy::FillFirst;
    cfg.max_arenas = 3;
    cfg.linger_ns = 400_000_000;
    let handle = spawn_directory(&fabric, cfg);

    let topology = SwarmTopology {
        arena_ports: handle.arena_ports.clone(),
        connect_port: Some(handle.front_port),
    };
    let mut swarm_cfg = BotSwarmConfig::new(20, 8_000_000_000);
    swarm_cfg.drivers = 4;
    swarm_cfg.ramp = Some(SwarmRamp::UpDown {
        ramp_up_ns: 2_000_000_000,
        hold_ns: 2_000_000_000,
        ramp_down_ns: 1_000_000_000,
    });
    let swarm = spawn_swarm_multi(&fabric, &swarm_cfg, &topology, |_| (0, 0));
    fabric.run();

    let report = witness.report();
    assert!(
        report.violations.is_empty(),
        "lock witness flagged the elastic directory: {:?}",
        report.violations
    );
    assert_eq!(
        swarm.connected.load(Ordering::Relaxed),
        20,
        "every bot should complete its handshake"
    );

    let elastic = handle.elastic.lock().unwrap().clone();
    assert!(elastic.spawned >= 1, "no arena spawned: {elastic:?}");
    assert!(elastic.reaped >= 1, "no arena reaped: {elastic:?}");
    assert!(elastic.peak_live >= 2, "{elastic:?}");
    assert_eq!(
        elastic.live_at_end, 1,
        "only the boot arena should survive the drain: {elastic:?}"
    );

    // Every spawned arena actually ran frames, and reaped arenas
    // published their results.
    for e in &elastic.events {
        let r = handle.results[e.arena as usize].lock().unwrap().clone();
        assert!(
            r.frame_count > 0,
            "arena {} {:?} but ran no frames",
            e.arena,
            e.kind
        );
    }
    assert!(elastic
        .events
        .iter()
        .any(|e| e.kind == ElasticEventKind::Spawned));

    // Truthful occupancy across the whole ramp: nobody was turned away
    // while the ceiling had headroom, and the books balance to an
    // empty directory after the drain.
    let adm = handle.admission.lock().unwrap().clone();
    assert_eq!(adm.rejected_full, 0, "{adm:?}");
    assert!(adm.population_closed(), "identity open: {adm:?}");
    assert_eq!(adm.resident, 0, "residents after full drain: {adm:?}");
    assert_eq!(adm.placed, 20, "{adm:?}");
}
