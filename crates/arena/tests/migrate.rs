//! End-to-end live migration on the virtual fabric: a skewed fleet is
//! levelled by fenced handoffs (clients ride the re-ack to their new
//! arena, every capsule lands world-hash-identical, the population
//! identity stays closed), and with drain-before-reap on, an elastic
//! directory empties a spawned arena instead of waiting its clients
//! out.

use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex};

use parquake_arena::{spawn_directory, AdmissionPolicy, ArenaDirectoryConfig, ArenaScheduling};
use parquake_bots::{spawn_swarm_multi, BotSwarmConfig, SwarmTopology};
use parquake_bsp::mapgen::MapGenConfig;
use parquake_fabric::{FabricKind, Nanos, PortId, TaskCtx};
use parquake_protocol::{ClientMessage, Decode, Encode, ServerMessage};
use parquake_server::{ServerConfig, ServerKind};

const SEND_NS: u64 = 4_000_000_000;

/// Every bot requests arena 0 of 2: with the spread trigger armed the
/// director must level the pair live, and the bots must follow the
/// unsolicited re-acks into arena 1.
#[test]
fn skewed_load_is_levelled_by_live_handoffs() {
    let fabric = FabricKind::VirtualSmp(Default::default()).build();
    let mut server = ServerConfig::new(ServerKind::Sequential, SEND_NS + 500_000_000);
    server.checking = false;
    let cfg = ArenaDirectoryConfig {
        policy: AdmissionPolicy::Explicit,
        scheduling: ArenaScheduling::Pooled { workers: 2 },
        map: MapGenConfig::small_arena(11),
        maintenance_ns: 20_000_000,
        migrate_spread: 2,
        ..ArenaDirectoryConfig::new(2, 8, server)
    };
    let handle = spawn_directory(&fabric, cfg);
    let topology = SwarmTopology {
        arena_ports: handle.arena_ports.clone(),
        connect_port: Some(handle.front_port),
    };
    let mut swarm_cfg = BotSwarmConfig::new(8, SEND_NS);
    swarm_cfg.drivers = 2;
    let swarm = spawn_swarm_multi(&fabric, &swarm_cfg, &topology, move |_| (0, 0));
    fabric.run();

    let sup = handle.supervisor.lock().unwrap().clone();
    let adm = handle.admission.lock().unwrap().clone();
    assert!(sup.migrations >= 1, "no handoffs: {sup:?}");
    assert_eq!(
        sup.migrate_hash_mismatch, 0,
        "a capsule landed altered: {sup:?}"
    );
    // The clients followed the re-ack: bots observed cross-arena acks
    // and arena 1 actually served them afterwards.
    assert!(
        swarm.rehomed.load(Ordering::Relaxed) >= 1,
        "no bot rode a re-ack to arena 1 (migrations {})",
        sup.migrations
    );
    let replies_a1 = handle.results[1].lock().unwrap().merged().replies;
    assert!(replies_a1 > 0, "arena 1 never served a migrated client");
    // The books survived every rebooking.
    assert_eq!(swarm.connected.load(Ordering::Relaxed), 8);
    assert!(adm.population_closed(), "identity open: {adm:?}");
    assert_eq!(adm.placed, 8, "{adm:?}");
    assert!(swarm.stats.lock().unwrap().received > 0);
}

/// Deterministic world-hash identity across one scripted handoff: two
/// identical directories run the same traffic, one with migration off;
/// the migrated run must report zero hash mismatches — the per-slot
/// oracle checked under the fence — while still moving slots.
#[test]
fn handoffs_are_deterministic_and_hash_identical() {
    let run = |spread: u32| {
        let fabric = FabricKind::VirtualSmp(Default::default()).build();
        let mut server = ServerConfig::new(ServerKind::Sequential, SEND_NS + 500_000_000);
        server.checking = false;
        let cfg = ArenaDirectoryConfig {
            policy: AdmissionPolicy::Explicit,
            scheduling: ArenaScheduling::Pooled { workers: 2 },
            map: MapGenConfig::small_arena(11),
            maintenance_ns: 20_000_000,
            migrate_spread: spread,
            ..ArenaDirectoryConfig::new(2, 8, server)
        };
        let handle = spawn_directory(&fabric, cfg);
        let topology = SwarmTopology {
            arena_ports: handle.arena_ports.clone(),
            connect_port: Some(handle.front_port),
        };
        let mut swarm_cfg = BotSwarmConfig::new(6, SEND_NS);
        swarm_cfg.drivers = 2;
        let swarm = spawn_swarm_multi(&fabric, &swarm_cfg, &topology, move |_| (0, 0));
        fabric.run();
        let sup = handle.supervisor.lock().unwrap().clone();
        let hashes: Vec<u64> = handle.worlds.iter().map(|w| w.world_hash()).collect();
        let received = swarm.stats.lock().unwrap().received;
        (sup, hashes, received)
    };
    let (sup_a, hashes_a, recv_a) = run(2);
    let (sup_b, hashes_b, recv_b) = run(2);
    assert!(sup_a.migrations >= 1);
    assert_eq!(sup_a.migrate_hash_mismatch, 0, "{sup_a:?}");
    // Identical runs are bit-identical: same handoffs, same worlds.
    assert_eq!(sup_a.migrations, sup_b.migrations);
    assert_eq!(hashes_a, hashes_b);
    assert_eq!(recv_a, recv_b);
}

fn drain_acks_until(ctx: &TaskCtx, port: PortId, until: Nanos, out: &Mutex<Vec<u32>>) {
    loop {
        if ctx.now() >= until {
            break;
        }
        if !ctx.wait_readable(port, Some(until)) {
            break;
        }
        while let Some(raw) = ctx.try_recv(port) {
            if let Ok(ServerMessage::ConnectAck { client_id, .. }) =
                ServerMessage::from_bytes(&raw.payload)
            {
                out.lock().unwrap().push(client_id);
            }
        }
    }
}

/// Drain-before-reap: an elastic directory spawned a second arena for
/// one overflow client; when capacity frees up in the boot arena the
/// director must migrate that client home so the linger reclaim can
/// reap the empty arena — instead of holding it hostage to one
/// session.
#[test]
fn drain_before_reap_empties_the_spawned_arena() {
    let fabric = FabricKind::VirtualSmp(Default::default()).build();
    let mut server = ServerConfig::new(ServerKind::Sequential, SEND_NS + 500_000_000);
    server.checking = false;
    server.client_timeout_ns = 60_000_000_000; // nobody is reclaimed
    let cfg = ArenaDirectoryConfig {
        policy: AdmissionPolicy::FillFirst,
        scheduling: ArenaScheduling::Pooled { workers: 1 },
        map: MapGenConfig::small_arena(11),
        maintenance_ns: 20_000_000,
        max_arenas: 2,
        linger_ns: 200_000_000,
        migrate_drain: true,
        ..ArenaDirectoryConfig::new(1, 2, server)
    };
    let handle = spawn_directory(&fabric, cfg);
    let front = handle.front_port;
    let arena0 = handle.arena_ports[0][0];
    let port = fabric.alloc_port();
    let acked = Arc::new(Mutex::new(Vec::new()));
    let acked_task = acked.clone();
    fabric.spawn(
        "script",
        None,
        Box::new(move |ctx| {
            let connect = |ctx: &TaskCtx, id: u32| {
                let msg = ClientMessage::Connect {
                    client_id: id,
                    arena: 0,
                };
                ctx.send(port, front, msg.to_bytes());
            };
            // Fill the boot arena, then overflow into a spawned one.
            connect(ctx, 1);
            connect(ctx, 2);
            drain_acks_until(ctx, port, 600_000_000, &acked_task);
            connect(ctx, 3);
            drain_acks_until(ctx, port, 1_200_000_000, &acked_task);
            // Client 1 leaves at the arena: a slot frees in the boot
            // arena, so client 3's spawned arena is now drainable.
            let bye = ClientMessage::Disconnect { client_id: 1 };
            ctx.send(port, arena0, bye.to_bytes());
            drain_acks_until(ctx, port, SEND_NS - 200_000_000, &acked_task);
        }),
    );
    fabric.run();

    let acks = acked.lock().unwrap().clone();
    assert!(
        acks.contains(&1) && acks.contains(&2) && acks.contains(&3),
        "setup acks: {acks:?}"
    );
    let sup = handle.supervisor.lock().unwrap().clone();
    let ela = handle.elastic.lock().unwrap().clone();
    let adm = handle.admission.lock().unwrap().clone();
    assert!(ela.spawned >= 1, "overflow never spawned an arena: {ela:?}");
    assert!(
        sup.drain_migrations >= 1,
        "the spawned arena was never drained: {sup:?}"
    );
    assert_eq!(sup.migrate_hash_mismatch, 0, "{sup:?}");
    assert!(
        ela.reaped >= 1,
        "the drained arena was never reaped: {ela:?}"
    );
    assert!(adm.population_closed(), "identity open: {adm:?}");
    assert_eq!(adm.resident, 2, "clients 2 and 3 remain: {adm:?}");
}
