//! End-to-end supervision runs on the virtual fabric: seeded fault
//! lotteries crash and stall arena frames, the supervisor restores
//! from checkpoints, and the directory rides through — population
//! identity closed, clients still served, everything deterministic.

use parquake_arena::{spawn_directory, AdmissionPolicy, ArenaDirectoryConfig, ArenaScheduling};
use parquake_bots::{spawn_swarm_multi, BotSwarmConfig, SwarmTopology};
use parquake_bsp::mapgen::MapGenConfig;
use parquake_fabric::fault::FaultConfig;
use parquake_fabric::FabricKind;
use parquake_metrics::SupervisorStats;
use std::sync::atomic::Ordering;

const SEND_NS: u64 = 4_000_000_000;

fn supervised_cfg(arenas: u32, slots: u16, workers: u32) -> ArenaDirectoryConfig {
    let mut server = parquake_server::ServerConfig::new(
        parquake_server::ServerKind::Sequential,
        SEND_NS + 500_000_000,
    );
    server.checking = false;
    ArenaDirectoryConfig {
        policy: AdmissionPolicy::Explicit,
        scheduling: ArenaScheduling::Pooled { workers },
        map: MapGenConfig::small_arena(11),
        supervision: true,
        checkpoint_interval: 16,
        ..ArenaDirectoryConfig::new(arenas, slots, server)
    }
}

struct Outcome {
    sup: SupervisorStats,
    adm: parquake_arena::AdmissionStats,
    received: u64,
    connected: u32,
    restarts_observed: u64,
    world_hashes: Vec<u64>,
}

fn run(cfg: ArenaDirectoryConfig, players: u32) -> Outcome {
    let arenas = cfg.arenas;
    let fabric = FabricKind::VirtualSmp(Default::default()).build();
    let handle = spawn_directory(&fabric, cfg);
    let topology = SwarmTopology {
        arena_ports: handle.arena_ports.clone(),
        connect_port: Some(handle.front_port),
    };
    let mut swarm_cfg = BotSwarmConfig::new(players, SEND_NS);
    swarm_cfg.drivers = 2;
    let swarm = spawn_swarm_multi(&fabric, &swarm_cfg, &topology, move |c| {
        ((c % arenas) as u16, 0)
    });
    fabric.run();
    let out = Outcome {
        sup: handle.supervisor.lock().unwrap().clone(),
        adm: handle.admission.lock().unwrap().clone(),
        received: swarm.stats.lock().unwrap().received,
        connected: swarm.connected.load(Ordering::Relaxed),
        restarts_observed: swarm.restarts_observed.load(Ordering::Relaxed),
        world_hashes: handle.worlds.iter().map(|w| w.world_hash()).collect(),
    };
    out
}

#[test]
fn injected_panics_are_caught_and_arenas_restored() {
    let mut cfg = supervised_cfg(2, 8, 2);
    cfg.frame_faults = Some(FaultConfig {
        panic_per_frame: 0.02,
        seed: 0xC0FFEE,
        ..FaultConfig::none()
    });
    let out = run(cfg, 12);

    // The lottery fired and every crash was fenced to its arena — the
    // run itself (the whole fabric) survived to publish results.
    assert!(out.sup.panics_caught >= 1, "lottery never fired");
    assert!(
        out.sup.restarts >= out.sup.panics_caught,
        "every crash must be restored (restarts {} < panics {})",
        out.sup.restarts,
        out.sup.panics_caught
    );
    assert!(out.sup.checkpoints_taken > 0);
    assert!(out.sup.recovery_latency_ns_max > 0);
    // Population identity closed across every restart.
    assert_eq!(
        out.adm.placed,
        out.adm.departed + out.adm.resident,
        "population identity must close across restarts"
    );
    // Clients rode through: the handshake completed everywhere and
    // replies kept flowing. The restored arenas re-announced their
    // slots, which the bots surface as observed restarts.
    assert_eq!(out.connected, 12);
    assert!(out.received > 0);
    assert!(
        out.restarts_observed >= 1,
        "bots never saw a restored arena's unsolicited re-ack"
    );
}

#[test]
fn stalls_past_the_watchdog_are_condemned_and_restored() {
    let mut cfg = supervised_cfg(2, 8, 2);
    cfg.watchdog_ns = 100_000_000;
    cfg.frame_faults = Some(FaultConfig {
        stuck_per_frame: 0.01,
        stuck_ns: 400_000_000, // 4× the watchdog bound
        seed: 0xBAD_CAFE,
        ..FaultConfig::none()
    });
    let out = run(cfg, 12);

    assert!(out.sup.stuck_detected >= 1, "watchdog never fired");
    assert!(
        out.sup.restarts >= out.sup.stuck_detected,
        "every condemned arena must be restored"
    );
    assert_eq!(out.adm.placed, out.adm.departed + out.adm.resident);
    assert_eq!(out.connected, 12);
    assert!(out.received > 0);
}

#[test]
fn short_stalls_degrade_gracefully_with_move_coalescing() {
    // Stalls below the watchdog bound look like slow frames: the
    // overload detector stretches the arena's effective interval and
    // shed frames coalesce the queued moves per client instead of
    // dropping them.
    let mut cfg = supervised_cfg(1, 8, 1);
    cfg.watchdog_ns = 10_000_000_000; // never condemns
    cfg.frame_faults = Some(FaultConfig {
        stuck_per_frame: 0.5,
        stuck_ns: 45_000_000, // > the 30 ms event-driven deadline
        seed: 7,
        ..FaultConfig::none()
    });
    let out = run(cfg, 8);

    assert_eq!(out.sup.stuck_detected, 0, "no stall crossed the watchdog");
    assert_eq!(out.sup.restarts, 0);
    assert!(
        out.sup.shed_frames > 0,
        "overload never stretched the arena"
    );
    assert!(
        out.sup.coalesced_moves > 0,
        "shed frames should have merged queued moves"
    );
    // Degraded, not broken: the session kept working.
    assert_eq!(out.connected, 8);
    assert!(out.received > 0);
    assert_eq!(out.adm.placed, out.adm.departed + out.adm.resident);
}

#[test]
fn supervised_crash_runs_replay_deterministically() {
    let mk = || {
        let mut cfg = supervised_cfg(2, 8, 2);
        cfg.frame_faults = Some(FaultConfig {
            panic_per_frame: 0.02,
            seed: 0xD1CE,
            ..FaultConfig::none()
        });
        cfg
    };
    let a = run(mk(), 12);
    let b = run(mk(), 12);
    assert!(a.sup.panics_caught > 0);
    assert_eq!(a.sup.panics_caught, b.sup.panics_caught);
    assert_eq!(a.sup.restarts, b.sup.restarts);
    assert_eq!(a.sup.checkpoints_taken, b.sup.checkpoints_taken);
    assert_eq!(a.received, b.received);
    assert_eq!(
        a.world_hashes, b.world_hashes,
        "same seed must replay the same crash/recovery history"
    );
}

#[test]
fn supervision_without_faults_only_checkpoints() {
    // Supervision on, lottery off: the machinery idles — checkpoints
    // accrue, nothing crashes, nothing is restored.
    let out = run(supervised_cfg(2, 8, 2), 12);
    assert_eq!(out.sup.panics_caught, 0);
    assert_eq!(out.sup.stuck_detected, 0);
    assert_eq!(out.sup.restarts, 0);
    assert!(out.sup.checkpoints_taken > 0);
    assert!(out.sup.checkpoint_bytes > 0);
    assert_eq!(out.connected, 12);
}

#[test]
fn unsupervised_directories_report_zero_supervision_activity() {
    let mut cfg = supervised_cfg(2, 8, 2);
    cfg.supervision = false;
    cfg.checkpoint_interval = 16;
    let out = run(cfg, 12);
    let s = &out.sup;
    assert_eq!(
        (
            s.panics_caught,
            s.checkpoints_taken,
            s.restarts,
            s.shed_frames
        ),
        (0, 0, 0, 0),
        "supervision off must leave the whole subsystem cold"
    );
    assert_eq!(out.connected, 12);
}
