//! End-to-end directory runs on the virtual fabric: bots connect
//! through the front door, the admission policy spreads them, the pool
//! multiplexes arena frames, and every arena's books balance.

use std::sync::atomic::Ordering;
use std::sync::Arc;

use parquake_arena::{spawn_directory, AdmissionPolicy, ArenaDirectoryConfig, ArenaScheduling};
use parquake_bots::{spawn_swarm_multi, BotSwarmConfig, SwarmTopology};
use parquake_bsp::mapgen::MapGenConfig;
use parquake_fabric::{FabricKind, LockWitness};
use parquake_server::{LockPolicy, ServerConfig, ServerKind};

const SEND_NS: u64 = 3_000_000_000;

fn directory_cfg(arenas: u32, slots: u16, scheduling: ArenaScheduling) -> ArenaDirectoryConfig {
    let mut server = ServerConfig::new(ServerKind::Sequential, SEND_NS + 500_000_000);
    server.checking = true;
    ArenaDirectoryConfig {
        policy: AdmissionPolicy::Explicit,
        scheduling,
        map: MapGenConfig::small_arena(11),
        ..ArenaDirectoryConfig::new(arenas, slots, server)
    }
}

/// Run `players` bots against the directory; bot `c` requests arena
/// `c % arenas`. Returns the handle and the swarm's per-arena stats.
fn run(
    cfg: ArenaDirectoryConfig,
    players: u32,
) -> (
    parquake_arena::ArenaHandle,
    Vec<parquake_metrics::ResponseStats>,
    u32,
) {
    let arenas = cfg.arenas;
    let fabric = FabricKind::VirtualSmp(Default::default()).build();
    let witness = Arc::new(LockWitness::new());
    fabric.attach_witness(witness.clone());

    let handle = spawn_directory(&fabric, cfg);
    let topology = SwarmTopology {
        arena_ports: handle.arena_ports.clone(),
        connect_port: Some(handle.front_port),
    };
    let mut swarm_cfg = BotSwarmConfig::new(players, SEND_NS);
    swarm_cfg.drivers = 4;
    let swarm = spawn_swarm_multi(&fabric, &swarm_cfg, &topology, move |c| {
        ((c % arenas) as u16, 0)
    });
    fabric.run();

    let report = witness.report();
    assert!(
        report.violations.is_empty(),
        "lock witness flagged the directory: {:?}",
        report.violations
    );
    let per_arena = swarm.per_arena.lock().unwrap().clone();
    let connected = swarm.connected.load(Ordering::Relaxed);
    (handle, per_arena, connected)
}

#[test]
fn pooled_directory_serves_every_arena() {
    let cfg = directory_cfg(3, 8, ArenaScheduling::Pooled { workers: 2 });
    let (handle, per_arena, connected) = run(cfg, 24);

    assert_eq!(connected, 24, "every bot should complete its handshake");
    let adm = handle.admission.lock().unwrap().clone();
    assert_eq!(adm.per_arena.iter().sum::<u64>(), adm.routed);
    assert_eq!(adm.rejected_full, 0);
    assert_eq!(adm.dropped_unknown, 0);
    // Bot c requested arena c%3, and Explicit had room everywhere.
    assert!(adm.explicit_requests > 0);
    for (k, swarm) in per_arena.iter().enumerate().take(3) {
        assert!(adm.per_arena[k] > 0, "arena {k} got no connects");
        let r = handle.results[k].lock().unwrap().clone();
        assert!(r.frame_count > 0, "arena {k} ran no frames");
        assert!(swarm.received > 0, "arena {k} clients saw no replies");
        // Frames are the sequential body: exactly one participant.
        assert_eq!(r.threads.len(), 1);
    }
    // Pool accounting: frames per arena and per worker sum to the same
    // total, and both workers took part.
    let pool = handle.pool.as_ref().unwrap().lock().unwrap().clone();
    assert_eq!(
        pool.frames_by_arena.iter().sum::<u64>(),
        pool.frames_by_worker.iter().sum::<u64>()
    );
    let total: u64 = (0..3)
        .map(|k| handle.results[k].lock().unwrap().frame_count)
        .sum();
    assert_eq!(pool.frames_by_arena.iter().sum::<u64>(), total);
    assert!(pool.frames_by_worker.iter().all(|&f| f > 0));
}

#[test]
fn pooled_frames_can_run_under_region_locking() {
    let mut cfg = directory_cfg(2, 6, ArenaScheduling::Pooled { workers: 2 });
    cfg.pooled_locking = Some(LockPolicy::Optimized);
    let (handle, per_arena, connected) = run(cfg, 12);
    assert_eq!(connected, 12);
    for (k, swarm) in per_arena.iter().enumerate().take(2) {
        assert!(swarm.received > 0);
        let r = handle.results[k].lock().unwrap().clone();
        // Region locking actually ran: the frame body took leaf locks.
        assert!(r.merged().lock.leaf_ops > 0);
    }
}

#[test]
fn dedicated_directory_runs_parallel_runtimes_per_arena() {
    let mut cfg = directory_cfg(2, 8, ArenaScheduling::Dedicated);
    cfg.server.kind = ServerKind::Parallel {
        threads: 2,
        locking: LockPolicy::Optimized,
    };
    let (handle, per_arena, connected) = run(cfg, 16);
    assert_eq!(connected, 16);
    for (k, swarm) in per_arena.iter().enumerate().take(2) {
        let r = handle.results[k].lock().unwrap().clone();
        assert_eq!(r.threads.len(), 2, "arena {k} should run 2 threads");
        assert!(r.frame_count > 0);
        assert!(swarm.received > 0);
    }
}

#[test]
fn fill_first_packs_the_first_arena() {
    let mut cfg = directory_cfg(2, 32, ArenaScheduling::Pooled { workers: 1 });
    cfg.policy = AdmissionPolicy::FillFirst;
    let (handle, _, connected) = run(cfg, 8);
    assert_eq!(connected, 8);
    let adm = handle.admission.lock().unwrap().clone();
    // All 8 fit in arena 0's 32 slots: arena 1 gets nothing.
    assert!(adm.per_arena[0] > 0);
    assert_eq!(adm.per_arena[1], 0);
}

#[test]
fn single_pooled_arena_matches_the_sequential_server() {
    // The acceptance bar: a 1-arena pooled directory is the sequential
    // server — same frame body, same world, same results — so the
    // default configuration's behaviour is unchanged.
    use parquake_bots::spawn_swarm;
    use parquake_server::spawn_server;

    let seq_outcome = {
        let fabric = FabricKind::VirtualSmp(Default::default()).build();
        let map = Arc::new(MapGenConfig::small_arena(11).generate());
        let world = Arc::new(parquake_sim::GameWorld::new(map, 4, 8));
        let mut scfg = ServerConfig::new(ServerKind::Sequential, SEND_NS + 500_000_000);
        scfg.checking = false;
        let server = spawn_server(&fabric, scfg, world.clone());
        let mut swarm_cfg = BotSwarmConfig::new(8, SEND_NS);
        swarm_cfg.drivers = 4;
        let swarm = spawn_swarm(&fabric, &swarm_cfg, &server.ports, |_| 0);
        fabric.run();
        let received = swarm.stats.lock().unwrap().received;
        (world.world_hash(), received)
    };

    let pooled_outcome = {
        let fabric = FabricKind::VirtualSmp(Default::default()).build();
        let mut cfg = directory_cfg(1, 8, ArenaScheduling::Pooled { workers: 1 });
        cfg.server.checking = false;
        let handle = spawn_directory(&fabric, cfg);
        // Address the arena directly (no front door), exactly like the
        // classic swarm does.
        let topology = SwarmTopology::single(&handle.arena_ports[0]);
        let mut swarm_cfg = BotSwarmConfig::new(8, SEND_NS);
        swarm_cfg.drivers = 4;
        let swarm = spawn_swarm_multi(&fabric, &swarm_cfg, &topology, |_| (0, 0));
        fabric.run();
        let received = swarm.stats.lock().unwrap().received;
        (handle.worlds[0].world_hash(), received)
    };

    assert_eq!(
        seq_outcome, pooled_outcome,
        "1-arena pooled directory must reproduce the sequential server exactly"
    );
}
