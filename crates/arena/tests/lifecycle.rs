//! Lifecycle-notification reconciliation: the director's occupancy
//! must converge to the truth under server-side slot churn the front
//! door never sees (at-arena disconnects, inactivity reclaims), and
//! the population identity `placed == departed + resident` must hold
//! under any interleaving.

use std::sync::{Arc, Mutex};

use parquake_arena::{spawn_directory, ArenaDirectoryConfig, ArenaScheduling, Departure, Ledger};
use parquake_bsp::mapgen::MapGenConfig;
use parquake_fabric::{FabricKind, Nanos, PortId, TaskCtx};
use parquake_protocol::{ClientMessage, Decode, Encode, ServerMessage};
use parquake_server::{ServerConfig, ServerKind};
use proptest::prelude::*;

/// Drain the client port until `until`, collecting acked client ids.
fn drain_acks_until(ctx: &TaskCtx, port: PortId, until: Nanos, out: &Mutex<Vec<u32>>) {
    loop {
        if ctx.now() >= until {
            break;
        }
        if !ctx.wait_readable(port, Some(until)) {
            break;
        }
        while let Some(raw) = ctx.try_recv(port) {
            if let Ok(ServerMessage::ConnectAck { client_id, .. }) =
                ServerMessage::from_bytes(&raw.payload)
            {
                out.lock().unwrap().push(client_id);
            }
        }
    }
}

fn connect(ctx: &TaskCtx, port: PortId, to: PortId, client_id: u32) {
    let msg = ClientMessage::Connect {
        client_id,
        arena: 0,
    };
    ctx.send(port, to, msg.to_bytes());
}

/// Connect → at-arena disconnect → reconnect: the disconnect bypasses
/// the front door entirely, so only the lifecycle notice can free the
/// director's occupancy. The reconnect must land in the freed slot
/// with zero `rejected_full`.
#[test]
fn occupancy_converges_after_at_arena_disconnect() {
    let fabric = FabricKind::VirtualSmp(Default::default()).build();
    let mut server = ServerConfig::new(ServerKind::Sequential, 4_000_000_000);
    server.checking = true;
    let mut cfg = ArenaDirectoryConfig::new(1, 2, server);
    cfg.scheduling = ArenaScheduling::Pooled { workers: 1 };
    cfg.map = MapGenConfig::small_arena(11);
    // Leave-despawns and their notices run on maintenance frames, not
    // on the next datagram that happens by.
    cfg.maintenance_ns = 20_000_000;
    let handle = spawn_directory(&fabric, cfg);
    let front = handle.front_port;
    let arena0 = handle.arena_ports[0][0];
    let port = fabric.alloc_port();
    let acked = Arc::new(Mutex::new(Vec::new()));
    let acked_task = acked.clone();
    fabric.spawn(
        "script",
        None,
        Box::new(move |ctx| {
            // Fill the 2-slot arena.
            connect(ctx, port, front, 1);
            connect(ctx, port, front, 2);
            drain_acks_until(ctx, port, 800_000_000, &acked_task);
            // Client 1 leaves *at the arena* — the front door never
            // hears about it.
            let bye = ClientMessage::Disconnect { client_id: 1 };
            ctx.send(port, arena0, bye.to_bytes());
            drain_acks_until(ctx, port, 1_800_000_000, &acked_task);
            // A third client must fit into the freed slot.
            connect(ctx, port, front, 3);
            drain_acks_until(ctx, port, 2_800_000_000, &acked_task);
        }),
    );
    fabric.run();

    let acks = acked.lock().unwrap().clone();
    assert!(
        acks.contains(&1) && acks.contains(&2),
        "setup acks: {acks:?}"
    );
    assert!(
        acks.contains(&3),
        "reconnect should land in the freed slot, acks: {acks:?}"
    );
    let adm = handle.admission.lock().unwrap().clone();
    assert_eq!(adm.rejected_full, 0, "occupancy drifted: {adm:?}");
    assert!(
        adm.notice_disconnected >= 1,
        "no Disconnected notice: {adm:?}"
    );
    assert!(adm.population_closed(), "identity open: {adm:?}");
    assert_eq!(adm.placed, 3);
    assert_eq!(adm.resident, 2, "clients 2 and 3 remain: {adm:?}");
}

/// Inactivity reclaim must evict the sticky book entry: with a
/// 1-slot arena, a new client can only ever be admitted if the
/// reclaimed one's booking is gone.
#[test]
fn reclaim_notice_evicts_the_book_entry() {
    let fabric = FabricKind::VirtualSmp(Default::default()).build();
    let mut server = ServerConfig::new(ServerKind::Sequential, 5_000_000_000);
    server.checking = true;
    server.client_timeout_ns = 250_000_000;
    let mut cfg = ArenaDirectoryConfig::new(1, 1, server);
    cfg.scheduling = ArenaScheduling::Pooled { workers: 1 };
    cfg.map = MapGenConfig::small_arena(11);
    let handle = spawn_directory(&fabric, cfg);
    let front = handle.front_port;
    let port = fabric.alloc_port();
    let acked = Arc::new(Mutex::new(Vec::new()));
    let acked_task = acked.clone();
    fabric.spawn(
        "script",
        None,
        Box::new(move |ctx| {
            connect(ctx, port, front, 1);
            drain_acks_until(ctx, port, 500_000_000, &acked_task);
            // Client 1 goes silent; the server reclaims its slot after
            // 250 ms and the Reclaimed notice must free the booking.
            drain_acks_until(ctx, port, 2_000_000_000, &acked_task);
            connect(ctx, port, front, 2);
            drain_acks_until(ctx, port, 3_000_000_000, &acked_task);
        }),
    );
    fabric.run();

    let acks = acked.lock().unwrap().clone();
    assert!(acks.contains(&1), "setup ack missing: {acks:?}");
    assert!(
        acks.contains(&2),
        "sticky book leak: the reclaimed client still occupies the only slot, acks: {acks:?}"
    );
    let adm = handle.admission.lock().unwrap().clone();
    assert_eq!(adm.rejected_full, 0, "{adm:?}");
    assert!(adm.notice_reclaimed >= 1, "no Reclaimed notice: {adm:?}");
    assert!(adm.population_closed(), "identity open: {adm:?}");
}

proptest! {
    /// Any interleaving of front-door connects/disconnects with
    /// arena-side connect/reclaim/migrate notices keeps the ledger's
    /// identity closed and its occupancy equal to its book — including
    /// under LRU eviction pressure (cap 8 over 24 client ids).
    #[test]
    fn interleaved_streams_keep_the_population_identity(
        ops in prop::collection::vec((0u8..5, 0u32..24, 0u16..4), 0..200)
    ) {
        let mut l = Ledger::new(4, 8);
        for (op, id, arena) in ops {
            match op {
                // Front-door connect: sticky if booked, else place.
                0 => {
                    if l.touch(id).is_none() {
                        l.place(id, arena, 0);
                    }
                }
                // Front-door disconnect.
                1 => {
                    l.remove(id, Departure::FrontDoor);
                }
                // Reclaimed/Disconnected notice: evict only a booking
                // at the reporting arena.
                2 => match l.touch(id) {
                    Some(p) if p.arena == arena => {
                        l.remove(id, Departure::Notice);
                    }
                    _ => {}
                },
                // Connected notice: the arena is authoritative.
                3 => {
                    l.place(id, arena, 0);
                }
                // Migrated handoff: rebook in place — neither placed
                // nor departed may move; unknown clients are a no-op.
                4 => {
                    l.migrate(id, arena, 0);
                }
                _ => unreachable!(),
            }
            prop_assert!(
                l.population_closed(),
                "placed {} != departed {} + resident {}",
                l.placed, l.departed, l.resident()
            );
            prop_assert_eq!(l.occupancy().iter().sum::<u32>() as u64, l.resident());
        }
    }
}
