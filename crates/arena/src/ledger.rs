//! The director's population ledger: who is placed where, truthfully.
//!
//! PR 3's director kept two loosely-coupled structures — an
//! `occupancy` estimate and a sticky `book: HashMap<u32, u16>` — and
//! only ever decremented them on front-door `Disconnect`s. Server-side
//! inactivity reclaims and at-arena disconnects were invisible, so a
//! long-running directory drifted toward "everything is full" and
//! could never prove an arena empty enough to reap.
//!
//! [`Ledger`] replaces both: the book is the single source of truth
//! (client → [`Placement`]), occupancy is *derived* (maintained
//! incrementally, with the invariant `occupancy.iter().sum() ==
//! book.len()`), and every mutation updates the placed/departed
//! counters so the population identity `placed == departed + resident`
//! holds by construction. Lifecycle notices from the arena runtimes
//! ([`parquake_server::LifecycleEvent`]) feed the removal paths the old
//! design was missing.
//!
//! The map is bounded: at `cap` entries the least-recently-touched
//! placement is evicted (deterministically — touches are stamped with a
//! monotonic counter, not wall time). Eviction is a memory-pressure
//! safety valve, not a routing decision: an evicted client that is
//! still alive server-side simply loses stickiness and re-places on its
//! next connect.

use std::collections::HashMap;

/// Where one client was placed, and when we last heard about it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Placement {
    /// The arena the client was placed into.
    pub arena: u16,
    /// The server thread whose home block holds the client's slot
    /// (static assignment deals at connect time) — out-of-band
    /// `Move`/`Disconnect` forwards must target this thread's port,
    /// not thread 0.
    pub thread: u16,
    /// Monotonic LRU stamp (largest = most recently touched).
    touched: u64,
}

/// Why a placement was removed (drives the departure counters).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Departure {
    /// A front-door `Disconnect` passed the director.
    FrontDoor,
    /// The arena reported the client disconnected or was reclaimed.
    Notice,
    /// The LRU capacity bound evicted the entry.
    Evicted,
}

/// Book + derived occupancy + closing population counters.
// lockcheck: identity(placed == departed + resident)
#[derive(Clone, Debug)]
pub struct Ledger {
    book: HashMap<u32, Placement>,
    occupancy: Vec<u32>,
    /// LRU bound on `book` (entries, not bytes). Always >= 1.
    cap: usize,
    clock: u64,
    /// Placements ever made (including re-places after departure).
    pub placed: u64,
    /// Placements ended, for any reason.
    pub departed: u64,
    /// Of `departed`, LRU evictions.
    pub evicted: u64,
}

impl Ledger {
    /// A ledger over `arenas` occupancy cells, bounded at `cap` booked
    /// clients.
    pub fn new(arenas: usize, cap: usize) -> Ledger {
        Ledger {
            book: HashMap::new(),
            occupancy: vec![0; arenas],
            cap: cap.max(1),
            clock: 0,
            placed: 0,
            departed: 0,
            evicted: 0,
        }
    }

    /// The derived per-arena occupancy.
    pub fn occupancy(&self) -> &[u32] {
        &self.occupancy
    }

    /// Booked clients right now (the `resident` leg of the identity).
    pub fn resident(&self) -> u64 {
        self.book.len() as u64
    }

    /// The population identity. True by construction; asserted in
    /// tests and exported so reports can prove it held.
    pub fn population_closed(&self) -> bool {
        self.placed == self.departed + self.resident()
    }

    /// Read-only placement lookup — no LRU refresh. The restore path
    /// uses this to ask "is this checkpointed client booked somewhere
    /// else now?" without promoting a stale session.
    pub fn lookup(&self, client_id: u32) -> Option<Placement> {
        self.book.get(&client_id).copied()
    }

    /// Look up a client's placement, refreshing its LRU stamp.
    pub fn touch(&mut self, client_id: u32) -> Option<Placement> {
        self.clock += 1;
        let clock = self.clock;
        self.book.get_mut(&client_id).map(|p| {
            p.touched = clock;
            *p
        })
    }

    /// Record a placement. Returns the LRU-evicted entry, if the bound
    /// was hit. A client already booked is *re*-placed (its old entry
    /// departs first — the arena may differ, e.g. a `Connected` notice
    /// correcting a stale book).
    pub fn place(&mut self, client_id: u32, arena: u16, thread: u16) -> Option<(u32, Placement)> {
        self.remove(client_id, Departure::Notice);
        let evicted = if self.book.len() >= self.cap {
            self.evict_lru()
        } else {
            None
        };
        self.clock += 1;
        self.book.insert(
            client_id,
            Placement {
                arena,
                thread,
                touched: self.clock,
            },
        );
        if (arena as usize) < self.occupancy.len() {
            self.occupancy[arena as usize] += 1;
        }
        self.placed += 1;
        evicted
    }

    /// End a client's placement. Returns the removed entry; `None`
    /// (a stale notice, or an unknown client) is a counted no-op for
    /// the caller.
    pub fn remove(&mut self, client_id: u32, why: Departure) -> Option<Placement> {
        let p = self.book.remove(&client_id)?;
        if (p.arena as usize) < self.occupancy.len() {
            self.occupancy[p.arena as usize] = self.occupancy[p.arena as usize].saturating_sub(1);
        }
        self.departed += 1;
        if why == Departure::Evicted {
            self.evicted += 1;
        }
        Some(p)
    }

    /// Rebook a client in place: same placement entry, new arena and
    /// thread. This is the migration path — the client never departs,
    /// so neither `placed` nor `departed` moves and the population
    /// identity stays closed by construction; only the derived
    /// occupancy shifts one head from the old arena to the new.
    /// Returns the *old* placement, or `None` (unknown client — a
    /// counted no-op for the caller, like a stale notice).
    pub fn migrate(&mut self, client_id: u32, arena: u16, thread: u16) -> Option<Placement> {
        self.clock += 1;
        let clock = self.clock;
        let p = self.book.get_mut(&client_id)?;
        let old = *p;
        p.arena = arena;
        p.thread = thread;
        p.touched = clock;
        if (old.arena as usize) < self.occupancy.len() {
            self.occupancy[old.arena as usize] =
                self.occupancy[old.arena as usize].saturating_sub(1);
        }
        if (arena as usize) < self.occupancy.len() {
            self.occupancy[arena as usize] += 1;
        }
        Some(old)
    }

    /// Every client currently booked into `arena`, as `(client_id,
    /// thread)`, sorted by client id so callers iterate
    /// deterministically. Supervision's restore path diffs this
    /// against a checkpoint's slot table to replay the book.
    pub fn booked_in(&self, arena: u16) -> Vec<(u32, u16)> {
        let mut v: Vec<(u32, u16)> = self
            .book
            .iter()
            .filter(|(_, p)| p.arena == arena)
            .map(|(id, p)| (*id, p.thread))
            .collect();
        v.sort_unstable_by_key(|&(id, _)| id);
        v
    }

    fn evict_lru(&mut self) -> Option<(u32, Placement)> {
        // Deterministic: min by (touched, client_id) — the stamp is
        // unique per mutation but tie-break anyway for robustness.
        let victim = self
            .book
            .iter()
            .min_by_key(|(id, p)| (p.touched, **id))
            .map(|(id, _)| *id)?;
        let p = self.remove(victim, Departure::Evicted)?;
        Some((victim, p))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn occupancy_is_derived_from_the_book() {
        let mut l = Ledger::new(3, 64);
        l.place(1, 0, 0);
        l.place(2, 0, 1);
        l.place(3, 2, 0);
        assert_eq!(l.occupancy(), &[2, 0, 1]);
        assert_eq!(l.resident(), 3);
        l.remove(2, Departure::FrontDoor);
        assert_eq!(l.occupancy(), &[1, 0, 1]);
        assert!(l.population_closed());
        // Sum invariant.
        assert_eq!(l.occupancy().iter().sum::<u32>() as u64, l.resident());
    }

    #[test]
    fn stale_removals_are_noops() {
        let mut l = Ledger::new(2, 64);
        l.place(7, 1, 0);
        assert!(l.remove(7, Departure::Notice).is_some());
        // The arena's own Disconnected notice arriving after a
        // front-door removal must not double-depart.
        assert!(l.remove(7, Departure::Notice).is_none());
        assert_eq!(l.departed, 1);
        assert!(l.population_closed());
    }

    #[test]
    fn replacement_departs_the_old_entry_first() {
        let mut l = Ledger::new(2, 64);
        l.place(7, 0, 0);
        // A Connected notice from arena 1 corrects the stale book.
        l.place(7, 1, 1);
        assert_eq!(l.occupancy(), &[0, 1]);
        assert_eq!(l.placed, 2);
        assert_eq!(l.departed, 1);
        assert!(l.population_closed());
        assert_eq!(l.touch(7).unwrap().arena, 1);
        assert_eq!(l.touch(7).unwrap().thread, 1);
    }

    #[test]
    fn lru_bound_evicts_the_least_recently_touched() {
        let mut l = Ledger::new(1, 3);
        l.place(1, 0, 0);
        l.place(2, 0, 0);
        l.place(3, 0, 0);
        // Refresh 1 so 2 becomes the LRU victim.
        l.touch(1);
        let evicted = l.place(4, 0, 0).expect("bound hit");
        assert_eq!(evicted.0, 2);
        assert_eq!(l.resident(), 3);
        assert_eq!(l.evicted, 1);
        assert!(l.population_closed());
        assert!(l.touch(2).is_none());
        assert!(l.touch(1).is_some());
    }

    #[test]
    fn lru_eviction_order_follows_touch_stamps_exactly() {
        // Deterministic eviction order: victims leave in ascending
        // touch-stamp order, regardless of insertion order.
        let mut l = Ledger::new(1, 4);
        for id in [10, 20, 30, 40] {
            l.place(id, 0, 0);
        }
        // Touch in an order unrelated to insertion: 30, 10, 40, 20.
        for id in [30, 10, 40, 20] {
            l.touch(id);
        }
        // Each new placement evicts the stalest remaining stamp.
        let mut evicted = Vec::new();
        for id in [100, 101, 102, 103] {
            evicted.push(l.place(id, 0, 0).expect("bound hit").0);
        }
        assert_eq!(evicted, vec![30, 10, 40, 20]);
        assert_eq!(l.evicted, 4);
        assert!(l.population_closed());
    }

    #[test]
    fn evicted_client_rebooks_cleanly_on_reconnect() {
        let mut l = Ledger::new(2, 2);
        l.place(1, 0, 0);
        l.place(2, 1, 0);
        // Booking 3 evicts 1 (the LRU).
        let evicted = l.place(3, 0, 0).expect("bound hit");
        assert_eq!(evicted.0, 1);
        assert!(l.touch(1).is_none(), "stickiness lost, as documented");
        // The evicted client reconnects: a fresh placement books it
        // again without disturbing the others or the identity.
        l.touch(3); // keep 3 warm so 2 is the next victim
        let evicted = l.place(1, 1, 1).expect("bound hit");
        assert_eq!(evicted.0, 2);
        let p = l.touch(1).expect("re-booked");
        assert_eq!((p.arena, p.thread), (1, 1));
        assert_eq!(l.resident(), 2);
        assert!(l.population_closed());
    }

    #[test]
    fn population_identity_closes_across_heavy_eviction_churn() {
        // placed == departed + resident must hold at every step of an
        // eviction-heavy workload, not just at the end.
        let mut l = Ledger::new(4, 8);
        for i in 0..200u32 {
            l.place(i, (i % 4) as u16, 0);
            assert!(l.population_closed(), "identity open after placing {i}");
            if i % 3 == 0 {
                l.remove(i / 2, Departure::FrontDoor);
                assert!(
                    l.population_closed(),
                    "identity open after removing {}",
                    i / 2
                );
            }
        }
        assert_eq!(l.resident() as usize, 8);
        assert!(l.evicted > 0, "churn should have hit the bound");
        assert_eq!(l.placed, l.departed + l.resident());
        // Occupancy stays derived through it all.
        assert_eq!(l.occupancy().iter().sum::<u32>() as u64, l.resident());
    }

    #[test]
    fn migrate_rebooks_without_touching_the_identity_legs() {
        let mut l = Ledger::new(3, 64);
        l.place(1, 0, 0);
        l.place(2, 0, 1);
        let (placed, departed) = (l.placed, l.departed);
        let old = l.migrate(2, 2, 0).expect("booked");
        assert_eq!((old.arena, old.thread), (0, 1));
        assert_eq!(l.occupancy(), &[1, 0, 1]);
        assert_eq!(l.placed, placed, "migration is not a placement");
        assert_eq!(l.departed, departed, "migration is not a departure");
        assert!(l.population_closed());
        let p = l.touch(2).expect("still booked");
        assert_eq!((p.arena, p.thread), (2, 0));
        // Occupancy stays derived.
        assert_eq!(l.occupancy().iter().sum::<u32>() as u64, l.resident());
    }

    #[test]
    fn migrate_of_an_unknown_client_is_a_noop() {
        let mut l = Ledger::new(2, 64);
        l.place(1, 0, 0);
        assert!(l.migrate(99, 1, 0).is_none());
        assert_eq!(l.occupancy(), &[1, 0]);
        assert!(l.population_closed());
    }

    #[test]
    fn migrate_refreshes_the_lru_stamp() {
        let mut l = Ledger::new(2, 3);
        l.place(1, 0, 0);
        l.place(2, 0, 0);
        l.place(3, 0, 0);
        // Migrating 1 makes it the most recently touched, so 2 is the
        // next LRU victim.
        l.migrate(1, 1, 0);
        let evicted = l.place(4, 0, 0).expect("bound hit");
        assert_eq!(evicted.0, 2);
        assert!(l.population_closed());
    }

    #[test]
    fn migrate_to_an_out_of_range_arena_does_not_corrupt_occupancy() {
        let mut l = Ledger::new(2, 64);
        l.place(9, 0, 0);
        l.migrate(9, 40_000, 0);
        assert_eq!(l.occupancy(), &[0, 0]);
        l.migrate(9, 1, 0);
        assert_eq!(l.occupancy(), &[0, 1]);
        assert!(l.population_closed());
    }

    #[test]
    fn booked_in_lists_an_arena_sorted_by_client_id() {
        let mut l = Ledger::new(3, 64);
        l.place(9, 1, 0);
        l.place(3, 1, 1);
        l.place(5, 0, 0);
        l.place(7, 1, 0);
        assert_eq!(l.booked_in(1), vec![(3, 1), (7, 0), (9, 0)]);
        assert_eq!(l.booked_in(0), vec![(5, 0)]);
        assert!(l.booked_in(2).is_empty());
    }

    #[test]
    fn out_of_range_arena_ids_do_not_corrupt_occupancy() {
        // A hostile or buggy notice naming a nonexistent arena books
        // the client (stickiness still works) without touching the
        // occupancy table.
        let mut l = Ledger::new(2, 64);
        l.place(9, 40_000, 0);
        assert_eq!(l.occupancy(), &[0, 0]);
        l.remove(9, Departure::Notice);
        assert_eq!(l.occupancy(), &[0, 0]);
        assert!(l.population_closed());
    }
}
