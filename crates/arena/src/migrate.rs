//! Cross-arena live migration: the director moves resident slots from
//! a hot (or draining) arena to a cold one without dropping the
//! sessions.
//!
//! Handoff state machine (see DESIGN.md §11):
//!
//! ```text
//!            pick (spread | drain)
//! idle ──────────────────────────► fenced (claims captured at the
//!                                     │     frame boundary)
//!                                     │ coalesce + drain src moves
//!                                     ▼
//!                                  transfer (capsules → target world,
//!                                     │        validate-before-mutate,
//!                                     │        up to a batch per fence)
//!                                     ▼
//!                                  rebook (ledger migrate in place,
//!                                     │     Migrated notices to tap)
//!                                     ▼
//! idle ◄──────────────────────────  re-ack (claims dropped, target
//!            any failure aborts       slots need_ack, clients ride
//!            before any mutation      rebind grace)
//! ```
//!
//! The fence is two-phase, because the arena most worth migrating off
//! is precisely the one that is claimed essentially all the time: a
//! single try-claim against a saturated arena loses the race on every
//! tick. Instead the director marks both cells *fence-pending* under
//! the pool lock — workers refuse new claims on pending cells — and
//! waits on the pool condvar until the in-flight frames (if any)
//! release their claims at the frame boundary. Capture is therefore
//! bounded by one frame duration, not by luck. The handoff itself runs
//! outside the pool lock, exactly like a worker's frame. Everything
//! after the fence is ordered *target first*: each capsule is
//! validated and installed into the destination world before the
//! source entity is despawned, so any failure aborts that slot with
//! both worlds untouched.
//!
//! One fence per tick (`migrate_interval_ns`), up to [`MIGRATE_BATCH`]
//! slots per fence: the fence wait is the expensive part (a frame
//! boundary on a hot arena can be tens of milliseconds away), so a
//! captured fence is amortised over a small batch while keeping the
//! director's front-door latency bounded.
//!
//! Two triggers, drain first:
//!
//! * **Drain-before-reap** (`migrate_drain`): a non-boot live arena
//!   whose whole population fits in the other live arenas' free
//!   capacity is emptied batch by batch, so the linger reclaim reaps
//!   it instead of waiting its clients out. Checked first — while a
//!   drain candidate exists the fleet is in the consolidation regime
//!   and spread rebalance must not refill the arena being emptied.
//! * **Spread rebalance** (`migrate_spread`): when the hottest live
//!   arena's occupancy exceeds the coldest open arena's by at least
//!   the configured spread, slots migrate off the hottest until the
//!   pair is level.
//!
//! Interaction with checkpoint rings: a migration does not touch
//! either arena's ring, so a later crash of the *source* can restore
//! an image that still contains the migrated player. The supervisor's
//! ledger replay detects this — the client is booked at another arena
//! — wipes the resurrected slot instead of re-booking it, and counts
//! it as `stale_restored_slots` (see [`crate::supervisor`]).

use parquake_fabric::TaskCtx;
use parquake_metrics::{SupervisorEvent, SupervisorEventKind};
use parquake_protocol::Encode;
use parquake_server::clients::SlotState;
use parquake_server::LifecycleEvent;

use crate::admission::MigrationPlan;
use crate::directory::{drain_requests_coalesced, ArenaFate, Director, DirectorEnv, PoolParts};

/// Most slots one captured fence may hand off. Small enough that a
/// batch is a blip next to a frame, large enough that leveling a badly
/// skewed fleet takes tens of fences, not hundreds.
pub const MIGRATE_BATCH: usize = 8;

/// How long the director will hold a pending fence waiting for the
/// in-flight frames to reach their boundary before giving up. Matches
/// the default watchdog bound: a frame that overruns this is condemned
/// anyway.
const FENCE_WAIT_NS: u64 = 250_000_000;

/// One rebalance tick: at most one fenced handoff (up to
/// [`MIGRATE_BATCH`] slots), drain candidates first. Called from the
/// director loop; no-op unless the directory is pooled and migration
/// is configured.
pub(crate) fn rebalance(ctx: &TaskCtx, env: &DirectorEnv, d: &mut Director) {
    if env.migrate_spread == 0 && !env.migrate_drain {
        return;
    }
    let Some(parts) = env.pool.as_ref() else {
        return;
    };
    let now = ctx.now();
    if now < d.next_migrate_at {
        return;
    }
    d.next_migrate_at = now + env.migrate_interval_ns;
    if let Some((src, dst)) = pick_drain(env, d) {
        handoff(ctx, env, d, parts, src, dst, true);
    } else if let Some((src, dst)) = pick_spread(env, d) {
        handoff(ctx, env, d, parts, src, dst, false);
    }
}

/// What the next rebalance tick intends to do, as a [`MigrationPlan`]
/// for admission scoring: the same drain-first pick as [`rebalance`]
/// and the same batch sizing as [`handoff`], but without touching
/// anything. `None` when migration is off, the directory is not
/// pooled, or no trigger currently fires — admission then scores raw
/// occupancy as before.
pub(crate) fn planned(env: &DirectorEnv, d: &Director) -> Option<MigrationPlan> {
    if env.migrate_spread == 0 && !env.migrate_drain {
        return None;
    }
    env.pool.as_ref()?;
    let occ = d.ledger.occupancy();
    if let Some((src, dst)) = pick_drain(env, d) {
        let batch = (occ[src] as usize).min(MIGRATE_BATCH) as u32;
        return Some(MigrationPlan {
            src,
            dst,
            batch,
            drain: true,
        });
    }
    let (src, dst) = pick_spread(env, d)?;
    let batch = ((occ[src].saturating_sub(occ[dst]) as usize) / 2).min(MIGRATE_BATCH) as u32;
    Some(MigrationPlan {
        src,
        dst,
        batch,
        drain: false,
    })
}

/// The drain trigger: smallest-population non-boot live arena whose
/// residents all fit elsewhere.
fn pick_drain(env: &DirectorEnv, d: &Director) -> Option<(usize, usize)> {
    if !env.migrate_drain {
        return None;
    }
    let occ = d.ledger.occupancy();
    let src = (env.boot..occ.len())
        .filter(|&k| d.live[k] && occ[k] > 0)
        .min_by_key(|&k| (occ[k], k))?;
    let free_elsewhere: u64 = occ
        .iter()
        .enumerate()
        .filter(|&(k, _)| k != src && d.live[k])
        .map(|(_, &o)| env.capacity.saturating_sub(o) as u64)
        .sum();
    if free_elsewhere < occ[src] as u64 {
        return None;
    }
    let dst = env
        .policy
        .rebalance_target(src, occ, env.capacity, &d.live)?;
    Some((src, dst))
}

/// The spread trigger: hottest live arena vs the coldest open landing
/// spot, when the gap has reached the configured spread.
fn pick_spread(env: &DirectorEnv, d: &Director) -> Option<(usize, usize)> {
    if env.migrate_spread == 0 {
        return None;
    }
    let occ = d.ledger.occupancy();
    let src = occ
        .iter()
        .enumerate()
        .filter(|&(k, &o)| d.live[k] && o > 0)
        .max_by_key(|&(k, &o)| (o, std::cmp::Reverse(k)))
        .map(|(k, _)| k)?;
    let dst = env
        .policy
        .rebalance_target(src, occ, env.capacity, &d.live)?;
    if occ[src].saturating_sub(occ[dst]) >= env.migrate_spread {
        Some((src, dst))
    } else {
        None
    }
}

/// Capture both cells at their frame boundaries: mark them
/// fence-pending so no worker takes a new claim, then wait on the pool
/// condvar until the in-flight frames release. Returns `false` (with
/// the fence cleared and nothing mutated) if either cell dies or the
/// wait times out.
fn capture_fence(ctx: &TaskCtx, parts: &PoolParts, src: usize, dst: usize) -> bool {
    let deadline = ctx.now() + FENCE_WAIT_NS;
    parts.pool.enter(ctx);
    let healthy = |st: &crate::directory::PoolState, k: usize| {
        st.live[k] && st.fate[k] == ArenaFate::Healthy && !st.fenced[k]
    };
    {
        let st = parts.pool.state();
        if !healthy(st, src) || !healthy(st, dst) {
            parts.pool.exit(ctx);
            return false;
        }
        st.fenced[src] = true;
        st.fenced[dst] = true;
    }
    loop {
        let st = parts.pool.state();
        // A cell can be condemned or crash while we wait (its claim is
        // cleared as it dies) — re-check fate, not just the claims.
        let alive = |k: usize| st.live[k] && st.fate[k] == ArenaFate::Healthy;
        if !alive(src) || !alive(dst) || ctx.now() >= deadline {
            st.fenced[src] = false;
            st.fenced[dst] = false;
            ctx.cond_broadcast(parts.pool.cond);
            parts.pool.exit(ctx);
            return false;
        }
        if !st.claimed[src] && !st.claimed[dst] {
            break;
        }
        ctx.cond_wait_until(parts.pool.cond, parts.pool.lock, deadline);
    }
    {
        let now = ctx.now();
        let st = parts.pool.state();
        st.claimed[src] = true;
        st.claimed[dst] = true;
        st.claim_started[src] = now;
        st.claim_started[dst] = now;
        st.fenced[src] = false;
        st.fenced[dst] = false;
    }
    parts.pool.exit(ctx);
    true
}

/// Execute one fenced handoff of up to [`MIGRATE_BATCH`] residents of
/// `src` into `dst`. A failed capture or a fence that finds nothing
/// migratable counts one `migrate_aborted`; per-slot transfer failures
/// abort that slot with nothing mutated.
fn handoff(
    ctx: &TaskCtx,
    env: &DirectorEnv,
    d: &mut Director,
    parts: &PoolParts,
    src: usize,
    dst: usize,
    drain: bool,
) {
    // Victim candidates come from the book (deterministic: sorted by
    // client id); which of them is actually Active server-side can
    // only be read under the fence.
    let candidates = d.ledger.booked_in(src as u16);
    if candidates.is_empty() {
        return;
    }
    let occ = d.ledger.occupancy();
    // How many to move this fence: a drain keeps going until the
    // source is empty (or the target is full); a rebalance stops once
    // the pair is level, so the next tick's pick sees fresh occupancy.
    let want = if drain {
        occ[src] as usize
    } else {
        (occ[src].saturating_sub(occ[dst]) as usize) / 2
    };
    let want = want.min(MIGRATE_BATCH);
    if want == 0 {
        return;
    }

    if !capture_fence(ctx, parts, src, dst) {
        d.sup.migrate_aborted += 1;
        return;
    }

    let cell_s = &parts.cells[src];
    let cell_d = &parts.cells[dst];

    // Quiesce the source's inbound queue before reading the victims:
    // queued moves are coalesced per client then drained, so each
    // capsule reflects every command its client has already sent.
    {
        let mut coalesced = 0u64;
        let mut unused_mask = 0u64;
        drain_requests_coalesced(
            ctx,
            cell_s,
            &mut cell_s.frame().stats,
            &mut unused_mask,
            &mut coalesced,
        );
        cell_s.guard().coalesced_moves += coalesced;
    }

    // Booked candidates with Active slots are the victims; free slots
    // in the destination table are their landing spots.
    let s_clients = &cell_s.shared.clients;
    let d_clients = &cell_d.shared.clients;
    let mut moved: Vec<u32> = Vec::new();
    let mut next_landing = 0usize;
    for &(cid, _) in candidates.iter() {
        if moved.len() >= want {
            break;
        }
        let Some(s_idx) = (0..s_clients.capacity()).find(|&idx| {
            let slot = s_clients.slot(idx);
            slot.state == SlotState::Active && slot.client_id == cid
        }) else {
            continue;
        };
        let Some(t_idx) = (next_landing..d_clients.capacity())
            .find(|&idx| d_clients.slot(idx).state == SlotState::Empty)
        else {
            break;
        };
        next_landing = t_idx + 1;
        if transfer(ctx, cell_s, cell_d, d, cid, s_idx, t_idx).is_some() {
            moved.push(cid);
        }
    }

    // Unfence both cells; on success reset pacing so the destination
    // frames (and re-acks) promptly even with no input queued.
    parts.pool.enter(ctx);
    {
        let st = parts.pool.state();
        st.claimed[src] = false;
        st.claimed[dst] = false;
        if !moved.is_empty() {
            st.next_due[src] = 0;
            st.next_due[dst] = 0;
            st.sessions[dst] = true;
            st.sessions[src] =
                (0..s_clients.capacity()).any(|i| s_clients.slot(i).state != SlotState::Empty);
        }
        ctx.cond_broadcast(parts.pool.cond);
    }
    parts.pool.exit(ctx);

    if moved.is_empty() {
        d.sup.migrate_aborted += 1;
        return;
    }

    let at = ctx.now();
    for &cid in &moved {
        // Rebook in place: same ledger entry, new arena — `placed` and
        // `departed` untouched, so the population identity never opens.
        d.ledger.migrate(cid, dst as u16, 0);
        d.stats.notice_migrated += 1;
        d.sup.migrations += 1;
        if drain {
            d.sup.drain_migrations += 1;
        }
        d.sup.events.push(SupervisorEvent {
            at,
            arena: dst as u16,
            kind: SupervisorEventKind::Migrated,
        });
        if let Some(tap) = env.tap {
            let ev = LifecycleEvent::Migrated {
                from_arena: src as u16,
                to_arena: dst as u16,
                client_id: cid,
                thread: 0,
            };
            ctx.send(env.front, tap, ev.to_bytes());
        }
    }
    d.empty_since[dst] = None;
}

/// The fenced transfer proper: capsule out of the source world,
/// validate-before-mutate into the destination world, then (only
/// then) clear the source entity and slot and install the
/// destination slot with `needs_ack` set — the destination's next
/// reply phase re-acks the client unprompted with the new arena id,
/// exactly the crash-recovery rebind path.
fn transfer(
    ctx: &TaskCtx,
    cell_s: &crate::directory::ArenaCell,
    cell_d: &crate::directory::ArenaCell,
    d: &mut Director,
    cid: u32,
    s_idx: usize,
    t_idx: usize,
) -> Option<()> {
    let pre_hash = cell_s.shared.world.player_hash(s_idx as u16);
    let capsule = cell_s
        .shared
        .world
        .snapshot_player_bytes(s_idx as u16)
        .ok()?;
    cell_d
        .shared
        .world
        .restore_player_bytes(t_idx as u16, &capsule)
        .ok()?;
    // Landed. The hash check is the world-hash-identity oracle: the
    // capsule's bytes, rehashed at the destination slot, must equal
    // the source's pre-fence state.
    if cell_d.shared.world.player_hash(t_idx as u16) != pre_hash {
        d.sup.migrate_hash_mismatch += 1;
    }
    // Modelled cost: the serialize + deserialize memcpy, mirroring
    // checkpoint capture/restore.
    ctx.charge(((capsule.len() as u64) >> 6).max(1_000));

    let s_slot = cell_s.shared.clients.slot(s_idx);
    let reply_port = s_slot.reply_port;
    let last_seq = s_slot.last_seq;
    let last_sent_at = s_slot.last_sent_at;
    cell_s.shared.world.despawn_player(s_idx as u16);
    s_slot.state = SlotState::Empty;
    s_slot.leaving = false;
    s_slot.needs_ack = false;
    s_slot.requests_this_frame = 0;
    s_slot.events.clear();
    s_slot.baseline.clear();

    let t_slot = cell_d.shared.clients.slot(t_idx);
    t_slot.state = SlotState::Active;
    t_slot.client_id = cid;
    t_slot.reply_port = reply_port;
    t_slot.owner = 0;
    t_slot.desired_thread = 0;
    t_slot.needs_ack = true;
    t_slot.leaving = false;
    t_slot.requests_this_frame = 0;
    t_slot.last_seq = last_seq;
    t_slot.last_sent_at = last_sent_at;
    t_slot.last_active = ctx.now();
    t_slot.events.clear();
    t_slot.baseline.clear();
    Some(())
}
