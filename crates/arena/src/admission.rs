//! Admission control: which arena does a connecting client join?
//!
//! The directory's front door decodes each `Connect`, consults the
//! policy with the client's requested arena (0 when the wire carried no
//! extension) and the current occupancy estimate, and forwards the
//! connect to the chosen arena's runtime. Placement is *sticky*: a
//! retried `Connect` from a client the directory has already placed
//! goes back to the same arena, so lost acks never split a session
//! across worlds.

/// A migration the director has picked but not yet (fully) executed:
/// up to `batch` residents of `src` will move to `dst` over the next
/// fence ticks. Admission consults this so new placements aim at where
/// the population is *heading*, not where it was — otherwise a
/// least-loaded front door keeps refilling the arena the rebalancer is
/// emptying and the two fight forever.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MigrationPlan {
    /// Arena being migrated off.
    pub src: usize,
    /// Landing arena.
    pub dst: usize,
    /// Slots the next fences intend to move.
    pub batch: u32,
    /// True when the source is being drained for reaping: it must not
    /// receive new placements at all, whatever its predicted occupancy.
    pub drain: bool,
}

/// How the directory places new clients.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AdmissionPolicy {
    /// Pack arenas in index order: the first arena with a free slot
    /// wins. Produces full arenas and empty tails (good for reaping
    /// idle worlds).
    FillFirst,
    /// Balance: the least-occupied arena wins (lowest index on ties).
    /// Produces even load (good for latency under the shared pool).
    LeastLoaded,
    /// Honour the client's explicitly requested arena when it is in
    /// range and has room; otherwise fall back to fill-first. Clients
    /// without the arena extension request arena 0.
    Explicit,
}

impl AdmissionPolicy {
    /// Choose an arena for a client requesting `requested`, given the
    /// per-arena occupancy estimates, the common per-arena capacity,
    /// and the live mask (an elastic directory keeps cold/reaped cells
    /// in its tables; only `live[k]` arenas accept placements). `None`
    /// means every live arena is full and the connect is refused — an
    /// elastic director treats that as spawn pressure.
    pub fn place(
        &self,
        requested: u16,
        occupancy: &[u32],
        capacity: u32,
        live: &[bool],
    ) -> Option<usize> {
        let open = |k: usize| live.get(k).copied().unwrap_or(false) && occupancy[k] < capacity;
        let fill_first = || (0..occupancy.len()).find(|&k| open(k));
        match self {
            AdmissionPolicy::FillFirst => fill_first(),
            AdmissionPolicy::LeastLoaded => occupancy
                .iter()
                .enumerate()
                .filter(|&(k, _)| open(k))
                .min_by_key(|&(_, &o)| o)
                .map(|(k, _)| k),
            AdmissionPolicy::Explicit => {
                let req = requested as usize;
                if req < occupancy.len() && open(req) {
                    Some(req)
                } else {
                    fill_first()
                }
            }
        }
    }

    /// [`Self::place`] with the in-flight migration plan factored in.
    /// Only `LeastLoaded` scores by occupancy, so only it predicts:
    /// a spread plan shifts `batch` residents from `src` to `dst` in
    /// the predicted occupancy vector, and a drain plan closes the
    /// source outright (an arena being emptied for reaping must not be
    /// refilled). `FillFirst` and `Explicit` place by index/request,
    /// not load, and are unchanged — a drain source is still closed
    /// for them, since placing into it directly undoes the drain.
    pub fn place_predicted(
        &self,
        requested: u16,
        occupancy: &[u32],
        capacity: u32,
        live: &[bool],
        plan: Option<&MigrationPlan>,
    ) -> Option<usize> {
        let Some(plan) = plan else {
            return self.place(requested, occupancy, capacity, live);
        };
        let mut predicted = occupancy.to_vec();
        let mut live_adj = live.to_vec();
        if matches!(self, AdmissionPolicy::LeastLoaded) {
            let moved = plan
                .batch
                .min(predicted[plan.src])
                .min(capacity.saturating_sub(predicted[plan.dst]));
            predicted[plan.src] -= moved;
            predicted[plan.dst] += moved;
        }
        if plan.drain && plan.src < live_adj.len() {
            live_adj[plan.src] = false;
        }
        self.place(requested, &predicted, capacity, &live_adj)
    }

    /// Choose a landing arena for a *live* slot being migrated off
    /// `src`: the least-occupied live arena with room, excluding the
    /// source. This is `LeastLoaded`'s rule applied to rebalancing —
    /// whatever variant admitted the population, moving a resident
    /// only helps if it lands on the coldest open world. `None` means
    /// nowhere to go (every other live arena is full or dead) and the
    /// handoff is abandoned.
    pub fn rebalance_target(
        &self,
        src: usize,
        occupancy: &[u32],
        capacity: u32,
        live: &[bool],
    ) -> Option<usize> {
        occupancy
            .iter()
            .enumerate()
            .filter(|&(k, &o)| k != src && live.get(k).copied().unwrap_or(false) && o < capacity)
            .min_by_key(|&(_, &o)| o)
            .map(|(k, _)| k)
    }
}

/// Routing counters published by the directory's front door when the
/// run ends.
// lockcheck: identity(placed == departed + resident)
#[derive(Clone, Debug, Default)]
pub struct AdmissionStats {
    /// Connects forwarded to an arena (fresh placements + sticky
    /// repeats).
    pub routed: u64,
    /// Of `routed`, connects forwarded per arena.
    pub per_arena: Vec<u64>,
    /// Every datagram the director handed to arena `k`'s port —
    /// connect routes plus stray forwards. This is the director's leg
    /// of each arena's accounting identity (what landed on arena `k`'s
    /// queue that did not come straight from a client).
    pub forwarded_per_arena: Vec<u64>,
    /// Of `routed`, repeats sent back to an existing placement.
    pub sticky: u64,
    /// Connects that carried a non-zero explicit arena request.
    pub explicit_requests: u64,
    /// Connects refused because every arena was full.
    pub rejected_full: u64,
    /// Non-connect messages at the front door forwarded to the
    /// sender's placed arena (strays from clients that ignore the
    /// ack's arena id).
    pub forwarded_other: u64,
    /// Non-connect messages from clients the directory never placed —
    /// dropped.
    pub dropped_unknown: u64,
    /// Datagrams that failed to decode — dropped, counted, exactly like
    /// a server thread's `decode_rejected`.
    pub decode_rejected: u64,
    /// Clients ever placed into an arena (fresh placements plus
    /// `Connected` notices for clients that joined at an arena
    /// directly, bypassing the front door).
    pub placed: u64,
    /// Clients whose placement ended, however it ended: front-door
    /// `Disconnect`, a `Disconnected`/`Reclaimed`/`Rejected` lifecycle
    /// notice, or an LRU book eviction. The population identity
    /// `placed == departed + resident` holds by construction.
    pub departed: u64,
    /// Clients still booked when the run ended (`book.len()`).
    pub resident: u64,
    /// `Connected` lifecycle notices drained.
    pub notice_connected: u64,
    /// `Disconnected` lifecycle notices drained.
    pub notice_disconnected: u64,
    /// `Reclaimed` lifecycle notices drained.
    pub notice_reclaimed: u64,
    /// `Rejected` lifecycle notices drained.
    pub notice_rejected: u64,
    /// `Migrated` lifecycle notices drained from the control port
    /// (the director's own handoffs rebook the ledger directly and do
    /// not pass through here).
    pub notice_migrated: u64,
    /// Notices about clients the book no longer holds (e.g. a
    /// front-door Disconnect already evicted the entry before the
    /// arena's own `Disconnected` notice arrived) — no-ops.
    pub notice_stale: u64,
    /// Book entries evicted by the LRU capacity bound (memory-pressure
    /// safety valve; counts toward `departed`).
    pub book_evicted: u64,
}

impl AdmissionStats {
    /// Datagrams the director drained from the front door. Every
    /// drained datagram lands in exactly one of these counters, so a
    /// gateway can close its front-door accounting identity against
    /// this sum.
    pub fn drained(&self) -> u64 {
        self.decode_rejected
            + self.routed
            + self.rejected_full
            + self.forwarded_other
            + self.dropped_unknown
    }

    /// The population accounting identity: every client ever placed
    /// either departed (disconnect, reclaim, reject notice, eviction)
    /// or is still resident. A directory whose ledger drifts (the
    /// pre-lifecycle bug) cannot close this.
    pub fn population_closed(&self) -> bool {
        self.placed == self.departed + self.resident
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const LIVE3: &[bool] = &[true, true, true];

    #[test]
    fn fill_first_packs_in_index_order() {
        let p = AdmissionPolicy::FillFirst;
        assert_eq!(p.place(0, &[3, 0, 0], 4, LIVE3), Some(0));
        assert_eq!(p.place(0, &[4, 0, 0], 4, LIVE3), Some(1));
        // An explicit request is ignored by this policy.
        assert_eq!(p.place(2, &[0, 0, 0], 4, LIVE3), Some(0));
        assert_eq!(p.place(0, &[4, 4, 4], 4, LIVE3), None);
    }

    #[test]
    fn least_loaded_balances_with_low_index_ties() {
        let p = AdmissionPolicy::LeastLoaded;
        assert_eq!(p.place(0, &[2, 1, 3], 4, LIVE3), Some(1));
        assert_eq!(p.place(0, &[2, 2, 2], 4, LIVE3), Some(0));
        // Full arenas are never chosen even if least loaded overall.
        assert_eq!(p.place(0, &[4, 4, 3], 4, LIVE3), Some(2));
        assert_eq!(p.place(0, &[4, 4, 4], 4, LIVE3), None);
    }

    #[test]
    fn explicit_honours_in_range_requests_with_room() {
        let p = AdmissionPolicy::Explicit;
        assert_eq!(p.place(2, &[0, 0, 1], 4, LIVE3), Some(2));
        // No extension on the wire ⇒ requested 0 ⇒ arena 0: old
        // clients land where the pre-arena server would put them.
        assert_eq!(p.place(0, &[1, 0, 0], 4, LIVE3), Some(0));
        // Full or out-of-range requests fall back to fill-first.
        assert_eq!(p.place(2, &[1, 0, 4], 4, LIVE3), Some(0));
        assert_eq!(p.place(9, &[4, 1, 0], 4, LIVE3), Some(1));
        assert_eq!(p.place(1, &[4, 4, 4], 4, LIVE3), None);
    }

    #[test]
    fn dead_arenas_are_never_placed_into() {
        // An elastic directory's cold and reaped cells are present in
        // the occupancy table but masked out of placement.
        let live = &[true, false, true];
        assert_eq!(
            AdmissionPolicy::FillFirst.place(0, &[4, 0, 1], 4, live),
            Some(2)
        );
        assert_eq!(
            AdmissionPolicy::LeastLoaded.place(0, &[2, 0, 3], 4, live),
            Some(0)
        );
        // An explicit request for a dead arena falls back to fill-first.
        assert_eq!(
            AdmissionPolicy::Explicit.place(1, &[1, 0, 0], 4, live),
            Some(0)
        );
        // Every live arena full ⇒ refusal, even with empty dead cells.
        assert_eq!(
            AdmissionPolicy::FillFirst.place(0, &[4, 0, 4], 4, live),
            None
        );
    }

    #[test]
    fn rebalance_target_lands_on_the_coldest_open_world() {
        let p = AdmissionPolicy::LeastLoaded;
        // Hottest arena 0 sheds to the emptiest other live arena.
        assert_eq!(p.rebalance_target(0, &[6, 2, 4], 8, LIVE3), Some(1));
        // The source itself is never a target, even when coldest.
        assert_eq!(p.rebalance_target(1, &[6, 0, 4], 8, LIVE3), Some(2));
        // Dead and full arenas are skipped.
        let live = &[true, false, true];
        assert_eq!(p.rebalance_target(0, &[6, 0, 4], 8, live), Some(2));
        assert_eq!(p.rebalance_target(0, &[6, 0, 8], 8, live), None);
        // The rule is the same under every admission variant.
        assert_eq!(
            AdmissionPolicy::Explicit.rebalance_target(0, &[6, 2, 4], 8, LIVE3),
            Some(1)
        );
    }

    #[test]
    fn predicted_placement_sees_through_a_spread_plan() {
        let p = AdmissionPolicy::LeastLoaded;
        // Skewed fleet, rebalancer mid-flight: 5 residents are about to
        // leave arena 0 for arena 1. Raw occupancy [16, 6] would send
        // the connect to arena 1 — straight into the migration's
        // landing zone. Predicted occupancy [11, 11] breaks the tie at
        // the lower index instead.
        let plan = MigrationPlan {
            src: 0,
            dst: 1,
            batch: 5,
            drain: false,
        };
        let live = &[true, true];
        assert_eq!(p.place(0, &[16, 6], 32, live), Some(1));
        assert_eq!(
            p.place_predicted(0, &[16, 6], 32, live, Some(&plan)),
            Some(0)
        );
        // No plan ⇒ identical to plain placement.
        assert_eq!(p.place_predicted(0, &[16, 6], 32, live, None), Some(1));
        // The predicted shift is clamped by the destination's room and
        // the source's population.
        let big = MigrationPlan {
            src: 0,
            dst: 1,
            batch: 99,
            drain: false,
        };
        assert_eq!(
            p.place_predicted(0, &[3, 30], 32, live, Some(&big)),
            Some(0)
        );
    }

    #[test]
    fn a_draining_arena_is_closed_to_admission() {
        let plan = MigrationPlan {
            src: 1,
            dst: 2,
            batch: 8,
            drain: true,
        };
        // Arena 1 is the emptiest, but it is being drained for reaping:
        // every policy must refuse to refill it.
        for p in [
            AdmissionPolicy::LeastLoaded,
            AdmissionPolicy::FillFirst,
            AdmissionPolicy::Explicit,
        ] {
            let k = p.place_predicted(1, &[4, 1, 6], 8, LIVE3, Some(&plan));
            assert_ne!(k, Some(1), "{p:?} refilled the draining arena");
        }
        // Drain everywhere-full still refuses rather than reopening
        // the source.
        assert_eq!(
            AdmissionPolicy::LeastLoaded.place_predicted(0, &[8, 1, 8], 8, LIVE3, Some(&plan)),
            None
        );
    }

    #[test]
    fn population_identity_closes_by_construction() {
        let stats = AdmissionStats {
            placed: 10,
            departed: 7,
            resident: 3,
            ..AdmissionStats::default()
        };
        assert!(stats.population_closed());
        let drifted = AdmissionStats {
            placed: 10,
            departed: 5,
            resident: 3,
            ..AdmissionStats::default()
        };
        assert!(!drifted.population_closed());
    }
}
