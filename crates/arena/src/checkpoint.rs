//! Per-arena checkpoint ring: periodic world + slot-table snapshots.
//!
//! Supervision's recovery path restores a crashed or condemned arena
//! from its most recent checkpoint ([`CheckpointRing::latest`]). The
//! ring keeps the last `depth` checkpoints so a corrupt newest entry
//! (in principle — the codec validates fully before mutating) still
//! leaves older restore points; depth 1 is a plain double-buffer.
//!
//! A checkpoint is taken by whichever pool worker owns the arena's
//! claim, between frames — never mid-frame — so the world and the slot
//! table are mutually consistent by construction: `world` is the exact
//! byte image [`parquake_sim::GameWorld::snapshot_bytes`] produced at
//! `frame_no`, and `slots` is the slot-table identity
//! ([`parquake_server::runtime::SlotSnapshot`]) at the same instant.

use std::collections::VecDeque;

use parquake_fabric::Nanos;
use parquake_server::runtime::SlotSnapshot;

/// One consistent restore point for one arena.
#[derive(Clone, Debug)]
pub struct Checkpoint {
    /// The arena frame counter at snapshot time (restored so frame
    /// cadence — checkpoint intervals, region-affine periods — resumes
    /// where the checkpoint left off).
    pub frame_no: u32,
    /// Fabric time the checkpoint was taken.
    pub taken_at: Nanos,
    /// `GameWorld::snapshot_bytes` image.
    pub world: Vec<u8>,
    /// Client slot identities (non-empty slots only).
    pub slots: Vec<SlotSnapshot>,
}

/// A bounded ring of [`Checkpoint`]s, newest last.
#[derive(Debug)]
pub struct CheckpointRing {
    ring: VecDeque<Checkpoint>,
    depth: usize,
    /// Checkpoints ever taken (not just retained).
    pub taken: u64,
    /// Total serialized world bytes ever written (cost accounting).
    pub bytes: u64,
}

impl CheckpointRing {
    /// A ring retaining the last `depth` checkpoints (min 1).
    pub fn new(depth: usize) -> CheckpointRing {
        CheckpointRing {
            ring: VecDeque::new(),
            depth: depth.max(1),
            taken: 0,
            bytes: 0,
        }
    }

    /// Record a checkpoint, evicting the oldest past `depth`.
    pub fn push(&mut self, cp: Checkpoint) {
        self.taken += 1;
        self.bytes += cp.world.len() as u64;
        if self.ring.len() == self.depth {
            self.ring.pop_front();
        }
        self.ring.push_back(cp);
    }

    /// The newest checkpoint — the restore point.
    pub fn latest(&self) -> Option<&Checkpoint> {
        self.ring.back()
    }

    /// Checkpoints currently retained.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// True before the first checkpoint lands.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cp(frame_no: u32, bytes: usize) -> Checkpoint {
        Checkpoint {
            frame_no,
            taken_at: frame_no as Nanos * 1_000,
            world: vec![0u8; bytes],
            slots: Vec::new(),
        }
    }

    #[test]
    fn ring_retains_depth_newest_wins() {
        let mut r = CheckpointRing::new(2);
        assert!(r.is_empty());
        assert!(r.latest().is_none());
        r.push(cp(1, 10));
        r.push(cp(2, 20));
        r.push(cp(3, 30));
        assert_eq!(r.len(), 2);
        assert_eq!(r.latest().unwrap().frame_no, 3);
        assert_eq!(r.taken, 3);
        assert_eq!(r.bytes, 60);
    }

    #[test]
    fn depth_zero_clamps_to_one() {
        let mut r = CheckpointRing::new(0);
        r.push(cp(1, 1));
        r.push(cp(2, 1));
        assert_eq!(r.len(), 1);
        assert_eq!(r.latest().unwrap().frame_no, 2);
    }
}
