//! The arena directory: N worlds, one front door, one worker pool.
//!
//! ```text
//!                       ┌────────────── directory ──────────────┐
//!  Connect ──► front ──►│ admission ──► arena k runtime (1..N)  │──► ConnectAck{arena:k}
//!  Move ─────────────────────────────► arena k request port     │──► Reply
//!                       │     shared pool: workers 0..W         │
//!                       │ lifecycle notices ──► control port ───│──► ledger
//!                       └───────────────────────────────────────┘
//! ```
//!
//! Two scheduling shapes:
//!
//! * **Pooled** — every arena is a single-threaded sequential runtime
//!   (the paper's §2.1 frame body, verbatim); W pinned workers pull
//!   *whole frames* from whichever arena has work. The pool lock only
//!   guards the claim table — no worker ever holds it during a frame,
//!   and no worker ever touches two arenas at once, so the per-world
//!   locking discipline (and its witness) is untouched.
//! * **Dedicated** — every arena is a full `spawn_server` runtime with
//!   its own threads; assignment schemes and region locking run
//!   unchanged inside each arena. The directory only adds admission.
//!
//! The **director** task owns the front door. It never touches world
//! state: it decodes, places (stickily), and forwards the raw datagram
//! to the chosen arena *preserving the client's source port*, so the
//! arena replies straight to the client and the directory is off the
//! data path after admission.
//!
//! The director's population [`Ledger`] is kept truthful by
//! **lifecycle notices**: each arena runtime reports connect
//! accepts, disconnects, inactivity reclaims and rejects on a control
//! port the director drains between front-door batches. On that
//! corrected bookkeeping sits **elasticity** (pooled scheduling only):
//! `max_arenas` cells are pre-provisioned cold (the fabric requires all
//! allocation before `run()`), admission pressure brings one live
//! (spawning = flipping its claim-table liveness bit), and a live
//! non-boot arena whose occupancy stays zero past `linger_ns` is
//! reaped — its claim slot masked, its `ServerResults` published.
//! The elastic state machine per cell is thus
//! `cold → live → lingering → reaped (→ live again under pressure)`.
//!
//! **Supervision** (off by default) hardens the pooled shape: every
//! claimed frame runs behind `catch_unwind` so a panic fates only its
//! arena (`healthy → crashed`), workers checkpoint each arena's world
//! and slot table into a per-arena ring, a director-side watchdog
//! condemns arenas whose claimed frame overruns (`healthy → stuck`),
//! and [`crate::supervisor`] restores fated arenas from their last
//! checkpoint and replays the ledger (`→ restoring → live`). Sustained
//! frame overruns degrade gracefully: the arena's effective frame
//! interval stretches and queued moves are coalesced per client
//! instead of dropped.

use std::cell::UnsafeCell;
use std::collections::HashMap;
use std::sync::{Arc, Mutex, Once, PoisonError};

use parquake_bsp::mapgen::MapGenConfig;
use parquake_fabric::fault::{FaultConfig, FrameFault, FrameLottery};
use parquake_fabric::{CondId, Fabric, LockId, Nanos, PortId, TaskCtx};
use parquake_interest::InterestStats;
use parquake_metrics::{
    Bucket, ElasticEvent, ElasticEventKind, ElasticStats, FrameSample, FrameStats, LockClass,
    SupervisorStats, ThreadStats, Timeline,
};
use parquake_protocol::{ClientMessage, Decode};
use parquake_server::clients::SlotState;
use parquake_server::runtime::{ServerShared, REQUEST_QUEUE_CAP};
use parquake_server::{
    spawn_server, LifecycleEvent, LockPolicy, ServerConfig, ServerHandle, ServerResults,
};
use parquake_sim::GameWorld;

use crate::admission::{AdmissionPolicy, AdmissionStats};
use crate::checkpoint::{Checkpoint, CheckpointRing};
use crate::ledger::{Departure, Ledger};

/// How arena frames get processors.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ArenaScheduling {
    /// One shared pool of `workers` pinned tasks executes whole frames
    /// of whichever arena has pending input.
    Pooled { workers: u32 },
    /// Each arena gets its own full server runtime per the config
    /// template's `kind` (sequential or parallel with region locking).
    Dedicated,
}

/// Configuration for [`spawn_directory`].
#[derive(Clone, Debug)]
pub struct ArenaDirectoryConfig {
    /// Number of worlds live at boot.
    pub arenas: u32,
    /// Player capacity of each world.
    pub slots_per_arena: u16,
    /// Connect routing policy.
    pub policy: AdmissionPolicy,
    /// Processor scheduling shape.
    pub scheduling: ArenaScheduling,
    /// Map generator settings (one compiled map, shared by every
    /// arena — separate entity state per arena).
    pub map: MapGenConfig,
    /// Areanode tree depth per arena.
    pub areanode_depth: u32,
    /// Server template: `end_time`, cost model, checking, timeouts are
    /// common to all arenas; `kind` is honoured by `Dedicated` only;
    /// `arena_id` and `lifecycle_port` are overwritten per arena.
    pub server: ServerConfig,
    /// Pooled workers re-scan for runnable arenas at least this often
    /// while idle (bounds added latency when a datagram lands while
    /// every worker sleeps).
    pub poll_ns: Nanos,
    /// Minimum gap between two frames of the same arena (0 = purely
    /// event-driven, the sequential server's behaviour).
    pub frame_interval_ns: Nanos,
    /// Run the pooled frame body under a region-locking policy
    /// (uncontended inside one frame, but the lock/unlock pattern and
    /// the witness stay exercised). `None` = the sequential server's
    /// lock-free frames.
    pub pooled_locking: Option<LockPolicy>,
    /// Elasticity ceiling (pooled scheduling only): up to this many
    /// arenas may be live at once; cells beyond `arenas` start cold
    /// and are spawned under admission pressure. `0` (the default) and
    /// anything `<= arenas` mean a fixed fleet — exactly the old
    /// behaviour. Dedicated scheduling ignores this (its runtimes
    /// spawn real tasks at boot and cannot be grown).
    pub max_arenas: u32,
    /// How long a non-boot arena's occupancy must sit at zero before
    /// it is reaped.
    pub linger_ns: Nanos,
    /// Arena runtimes report lifecycle events to the director (on by
    /// default). Off reproduces PR 3's drifting occupancy estimate.
    pub lifecycle: bool,
    /// Pooled arenas with resident sessions run a frame at least this
    /// often even with no input queued, so leave/timeout maintenance
    /// (despawns, `Bye`s, lifecycle notices) cannot stall waiting for
    /// traffic that will never come. `0` = automatic: maintenance runs
    /// at 50 ms when the directory is elastic or reclaims are on,
    /// and stays off otherwise (keeping the 1×1 degenerate path
    /// byte-identical to the sequential server).
    pub maintenance_ns: Nanos,
    /// LRU bound on the director's book (entries). `0` = automatic:
    /// 4× the directory's total player capacity.
    pub book_cap: usize,
    /// The director wakes at least this often to drain lifecycle
    /// notices and run elastic bookkeeping while the front door is
    /// quiet.
    pub notice_poll_ns: Nanos,
    /// Supervise arena frames (pooled scheduling): run each claimed
    /// frame behind `catch_unwind` so a panic fates only that arena,
    /// checkpoint periodically, watchdog stuck frames, and restore
    /// fated arenas from their last checkpoint with a ledger replay.
    /// Dedicated scheduling gets panic isolation only (sequential
    /// runtimes stop serving cleanly on a caught panic). Off by
    /// default — the unsupervised 1×1 pooled path stays byte-identical
    /// to the sequential server.
    pub supervision: bool,
    /// Checkpoint every this-many frames per arena (supervised pooled
    /// only). `0` disables periodic checkpoints (the spawn-time
    /// checkpoint is still taken, so restore always has a target).
    pub checkpoint_interval: u32,
    /// Checkpoints retained per arena ring.
    pub checkpoint_depth: usize,
    /// The watchdog condemns an arena whose claimed frame has been
    /// running longer than this. A stuck frame cannot be preempted —
    /// the watchdog fences the arena (liveness masked, fate condemned)
    /// and the restore happens once the frame returns its claim.
    pub watchdog_ns: Nanos,
    /// Deterministic frame-fault injection for supervised arenas: a
    /// seeded per-arena lottery fires panics and/or stuck stalls
    /// inside claimed frames (see
    /// [`parquake_fabric::fault::FrameLottery`]). `None` = no
    /// injection. Ignored when `supervision` is off — uncaught
    /// injected panics would take down the whole fabric.
    pub frame_faults: Option<FaultConfig>,
    /// Live rebalance (pooled scheduling only): when the occupancy
    /// spread between the hottest and coldest live arena reaches this
    /// many clients, the director migrates one slot off the hottest
    /// arena per rebalance tick (see [`crate::migrate`]). `0` (the
    /// default) disables spread rebalance. Values below 2 are clamped
    /// to 2 — moving a client across a spread of 1 just swaps which
    /// arena is hotter.
    pub migrate_spread: u32,
    /// Minimum gap between two migration handoffs (spread or drain).
    pub migrate_interval_ns: Nanos,
    /// Drain-before-reap (pooled + elastic only): a non-boot live
    /// arena whose whole population fits in the other live arenas'
    /// free capacity is emptied by migration, one slot per tick, so
    /// the linger reclaim reaps it instead of waiting for its clients
    /// to leave on their own.
    pub migrate_drain: bool,
    /// Mirror port for lifecycle notices: every notice the director
    /// drains — and every `Migrated` notice it emits — is also sent
    /// here, uncharged. The UDP gateway points this at its outbound
    /// pump so its placement book follows reclaims and migrations.
    /// `None` (the default) = no mirror.
    pub lifecycle_tap: Option<PortId>,
}

impl ArenaDirectoryConfig {
    pub fn new(arenas: u32, slots_per_arena: u16, server: ServerConfig) -> ArenaDirectoryConfig {
        ArenaDirectoryConfig {
            arenas,
            slots_per_arena,
            policy: AdmissionPolicy::Explicit,
            scheduling: ArenaScheduling::Pooled { workers: 4 },
            map: MapGenConfig::large_arena(0x6D_6D_31),
            areanode_depth: 4,
            server,
            poll_ns: 1_000_000,
            frame_interval_ns: 0,
            pooled_locking: None,
            max_arenas: 0,
            linger_ns: 500_000_000,
            lifecycle: true,
            maintenance_ns: 0,
            book_cap: 0,
            notice_poll_ns: 2_000_000,
            supervision: false,
            checkpoint_interval: 64,
            checkpoint_depth: 4,
            watchdog_ns: 250_000_000,
            frame_faults: None,
            migrate_spread: 0,
            migrate_interval_ns: 25_000_000,
            migrate_drain: false,
            lifecycle_tap: None,
        }
    }
}

/// Per-pool accounting published when the last worker exits.
#[derive(Clone, Debug, Default)]
pub struct PoolReport {
    /// Frames executed by each worker.
    pub frames_by_worker: Vec<u64>,
    /// Frames executed of each arena.
    pub frames_by_arena: Vec<u64>,
    /// Time each worker spent waiting for a runnable arena.
    pub idle_ns_by_worker: Vec<Nanos>,
}

/// A spawned (not yet running) directory.
pub struct ArenaHandle {
    /// The front door: clients send `Connect` here.
    pub front_port: PortId,
    /// Request ports of each arena's runtime (`arena_ports[k][t]` =
    /// arena `k`, thread `t`); move traffic goes straight here. Sized
    /// `max_arenas` — cold cells have allocated ports from birth, so
    /// routing tables built over this vector tolerate arena birth and
    /// death mid-run.
    pub arena_ports: Vec<Vec<PortId>>,
    /// Per-arena server results, filled when the run ends (or at reap
    /// time for reaped arenas).
    pub results: Vec<Arc<Mutex<ServerResults>>>,
    /// The arenas' worlds (final-state inspection, world hashes).
    pub worlds: Vec<Arc<GameWorld>>,
    /// Front-door routing counters, filled when the run ends.
    pub admission: Arc<Mutex<AdmissionStats>>,
    /// Pool accounting (`Pooled` scheduling only), filled when the run
    /// ends.
    pub pool: Option<Arc<Mutex<PoolReport>>>,
    /// Spawn/reap accounting, filled when the run ends.
    pub elastic: Arc<Mutex<ElasticStats>>,
    /// Supervision accounting (panics caught, restores, checkpoints,
    /// shedding), filled when the run ends. All-zero when
    /// `supervision` is off.
    pub supervisor: Arc<Mutex<SupervisorStats>>,
    /// The director's lifecycle control port (tests inject synthetic
    /// notices here). `None` when lifecycle reporting is disabled.
    pub lifecycle_port: Option<PortId>,
}

/// Spawn the directory onto `fabric`: all arena runtimes (live and
/// cold), the worker pool (if pooled), and the front-door director
/// task.
pub fn spawn_directory(fabric: &Arc<dyn Fabric>, cfg: ArenaDirectoryConfig) -> ArenaHandle {
    assert!(cfg.arenas >= 1, "directory needs at least one arena");
    let boot = cfg.arenas as usize;
    let max_arenas = match cfg.scheduling {
        ArenaScheduling::Pooled { .. } => (cfg.max_arenas as usize).max(boot),
        ArenaScheduling::Dedicated => boot,
    };
    let lifecycle_port = if cfg.lifecycle {
        Some(fabric.alloc_bounded_port(REQUEST_QUEUE_CAP))
    } else {
        None
    };
    let map = Arc::new(cfg.map.generate());
    let worlds: Vec<Arc<GameWorld>> = (0..max_arenas)
        .map(|_| {
            Arc::new(GameWorld::new(
                map.clone(),
                cfg.areanode_depth,
                cfg.slots_per_arena.max(1),
            ))
        })
        .collect();

    let supervisor = Arc::new(Mutex::new(SupervisorStats::default()));
    let (arena_ports, results, pool_parts, pool_report) = match cfg.scheduling {
        ArenaScheduling::Pooled { workers } => {
            let (ports, results, parts, report) =
                spawn_pool(fabric, &cfg, &worlds, workers, lifecycle_port, &supervisor);
            (ports, results, Some(parts), Some(report))
        }
        ArenaScheduling::Dedicated => {
            let mut ports = Vec::new();
            let mut results = Vec::new();
            for (k, world) in worlds.iter().enumerate() {
                let mut scfg = cfg.server.clone();
                scfg.arena_id = k as u16;
                scfg.lifecycle_port = lifecycle_port;
                // Dedicated supervision is panic isolation only: a
                // caught panic stops that runtime cleanly (results
                // still published); there is no pooled claim table to
                // drive checkpoint/restore through.
                scfg.catch_panics = cfg.supervision;
                let ServerHandle {
                    ports: p,
                    results: r,
                    ..
                } = spawn_server(fabric, scfg, world.clone());
                ports.push(p);
                results.push(r);
            }
            (ports, results, None, None)
        }
    };

    let admission = Arc::new(Mutex::new(AdmissionStats::default()));
    let elastic = Arc::new(Mutex::new(ElasticStats::default()));
    let front_port = fabric.alloc_bounded_port(REQUEST_QUEUE_CAP);
    let book_cap = if cfg.book_cap > 0 {
        cfg.book_cap
    } else {
        (max_arenas * cfg.slots_per_arena as usize)
            .saturating_mul(4)
            .max(64)
    };
    let env = DirectorEnv {
        front: front_port,
        lifecycle: lifecycle_port,
        arena_ports: arena_ports.clone(),
        policy: cfg.policy,
        capacity: cfg.slots_per_arena as u32,
        cost: cfg.server.cost.clone(),
        end_time: cfg.server.end_time,
        boot,
        linger_ns: cfg.linger_ns,
        notice_poll_ns: cfg.notice_poll_ns.max(1),
        book_cap,
        pool: pool_parts,
        results: results.clone(),
        out: admission.clone(),
        elastic_out: elastic.clone(),
        supervised: cfg.supervision,
        watchdog_ns: cfg.watchdog_ns.max(1),
        supervisor_out: supervisor.clone(),
        migrate_spread: if cfg.migrate_spread > 0 {
            cfg.migrate_spread.max(2)
        } else {
            0
        },
        migrate_interval_ns: cfg.migrate_interval_ns.max(1),
        migrate_drain: cfg.migrate_drain,
        tap: cfg.lifecycle_tap,
    };
    fabric.spawn(
        "arena-director",
        None,
        Box::new(move |ctx| director(ctx, &env)),
    );

    ArenaHandle {
        front_port,
        arena_ports,
        results,
        worlds,
        admission,
        pool: pool_report,
        elastic,
        supervisor,
        lifecycle_port,
    }
}

// ---------------------------------------------------------------------------
// Front door
// ---------------------------------------------------------------------------

/// Everything the director task needs, bundled so the closure stays
/// one move.
pub(crate) struct DirectorEnv {
    pub(crate) front: PortId,
    lifecycle: Option<PortId>,
    arena_ports: Vec<Vec<PortId>>,
    pub(crate) policy: AdmissionPolicy,
    pub(crate) capacity: u32,
    cost: parquake_server::CostModel,
    end_time: Nanos,
    /// Arenas live at boot (never reaped).
    pub(crate) boot: usize,
    linger_ns: Nanos,
    notice_poll_ns: Nanos,
    book_cap: usize,
    /// Pool internals for spawn/reap and supervised restore (pooled
    /// scheduling only).
    pub(crate) pool: Option<PoolParts>,
    results: Vec<Arc<Mutex<ServerResults>>>,
    out: Arc<Mutex<AdmissionStats>>,
    elastic_out: Arc<Mutex<ElasticStats>>,
    pub(crate) supervised: bool,
    pub(crate) watchdog_ns: Nanos,
    supervisor_out: Arc<Mutex<SupervisorStats>>,
    pub(crate) migrate_spread: u32,
    pub(crate) migrate_interval_ns: Nanos,
    pub(crate) migrate_drain: bool,
    pub(crate) tap: Option<PortId>,
}

/// The director's mutable state.
pub(crate) struct Director {
    pub(crate) stats: AdmissionStats,
    pub(crate) ledger: Ledger,
    /// Round-robin home-block spreading inside each arena: connects are
    /// dealt to the arena's threads in turn so no single thread's block
    /// fills while others sit empty.
    next_thread: Vec<usize>,
    /// The director's mirror of pool liveness (it is the only mutator,
    /// so the mirror never goes stale). Deliberately *not* cleared
    /// while an arena is crashed or restoring: sticky traffic keeps
    /// queueing on the arena's bounded port and drains after restore,
    /// and elastic spawn must not recycle the fated cell meanwhile.
    pub(crate) live: Vec<bool>,
    /// When arena k's occupancy last hit zero (linger clock).
    pub(crate) empty_since: Vec<Option<Nanos>>,
    elastic: ElasticStats,
    /// Director-side supervision accounting (watchdog condemnations,
    /// restores, ledger replays); worker-side counters merge in at
    /// pool exit.
    pub(crate) sup: SupervisorStats,
    /// Earliest time the next migration handoff may run (rebalance
    /// throttle — see [`crate::migrate`]).
    pub(crate) next_migrate_at: Nanos,
}

fn director(ctx: &TaskCtx, env: &DirectorEnv) {
    let n = env.arena_ports.len();
    let mut d = Director {
        stats: AdmissionStats {
            per_arena: vec![0; n],
            forwarded_per_arena: vec![0; n],
            ..AdmissionStats::default()
        },
        ledger: Ledger::new(n, env.book_cap),
        next_thread: vec![0usize; n],
        live: (0..n).map(|k| k < env.boot).collect(),
        empty_since: vec![None; n],
        elastic: ElasticStats {
            boot: env.boot as u32,
            max_arenas: n as u32,
            peak_live: env.boot as u32,
            ..ElasticStats::default()
        },
        sup: SupervisorStats::default(),
        next_migrate_at: 0,
    };

    loop {
        let now = ctx.now();
        if now >= env.end_time {
            break;
        }
        // The front door is the main wait; lifecycle notices and linger
        // expiries bound the sleep so they are drained/acted on even
        // when no client traffic arrives.
        let mut deadline = now + env.notice_poll_ns;
        if let Some(lp) = env.lifecycle {
            if let Some(t) = ctx.fabric().port_next_delivery(lp) {
                deadline = deadline.min(t.max(now + 1));
            }
        }
        for k in env.boot..n {
            if let Some(t0) = d.empty_since[k] {
                deadline = deadline.min((t0 + env.linger_ns).max(now + 1));
            }
        }
        if env.migrate_spread > 0 || env.migrate_drain {
            deadline = deadline.min(d.next_migrate_at.max(now + 1));
        }
        let deadline = deadline.min(env.end_time).max(now + 1);
        ctx.wait_readable(env.front, Some(deadline));
        while let Some(raw) = ctx.try_recv(env.front) {
            ctx.charge(env.cost.recv);
            handle_front(ctx, env, &mut d, raw.from, &raw.payload);
        }
        if let Some(lp) = env.lifecycle {
            // Notices are drained uncharged: they model an in-process
            // queue, not client traffic. Each one is mirrored to the
            // tap (when configured) so downstream placement books see
            // the same stream the ledger does.
            while let Some(raw) = ctx.try_recv(lp) {
                handle_notice(&mut d, &raw.payload);
                if let Some(tap) = env.tap {
                    ctx.send(env.front, tap, raw.payload.clone());
                }
            }
        }
        elastic_reap(ctx, env, &mut d);
        crate::migrate::rebalance(ctx, env, &mut d);
        crate::supervisor::supervise(ctx, env, &mut d);
    }

    d.stats.placed = d.ledger.placed;
    d.stats.departed = d.ledger.departed;
    d.stats.resident = d.ledger.resident();
    d.stats.book_evicted = d.ledger.evicted;
    d.elastic.live_at_end = d.live.iter().filter(|&&l| l).count() as u32;
    // End-of-run publishes tolerate poisoning: these mutexes guard
    // plain result snapshots (no invariants to corrupt), and a
    // panicking reader elsewhere must not take the directory's report
    // down with it — supervision's whole point.
    *env.out.lock().unwrap_or_else(PoisonError::into_inner) = d.stats; // lockcheck: allow(raw-sync: host-side result snapshot, written once at run end)
    *env.elastic_out
        .lock() // lockcheck: allow(raw-sync: host-side result snapshot, written once at run end)
        .unwrap_or_else(PoisonError::into_inner) = d.elastic;
    env.supervisor_out
        .lock() // lockcheck: allow(raw-sync: host-side supervision counters, merged at run end)
        .unwrap_or_else(PoisonError::into_inner)
        .merge(&d.sup);
}

fn handle_front(ctx: &TaskCtx, env: &DirectorEnv, d: &mut Director, from: PortId, payload: &[u8]) {
    let Ok(msg) = ClientMessage::from_bytes(payload) else {
        d.stats.decode_rejected += 1;
        return;
    };
    match msg {
        ClientMessage::Connect { client_id, arena } => {
            if arena != 0 {
                d.stats.explicit_requests += 1;
            }
            let placed = match d.ledger.touch(client_id) {
                Some(p) => {
                    d.stats.sticky += 1;
                    Some((p.arena as usize, p.thread as usize))
                }
                None => place_fresh(ctx, env, d, client_id, arena),
            };
            match placed {
                Some((k, t)) if k < env.arena_ports.len() => {
                    // Forward the raw datagram, preserving the client's
                    // source port: the arena acks (and replies)
                    // straight to the client. The arena id in the
                    // payload has served its purpose — the runtime
                    // ignores it and acks with its own id.
                    let t = t.min(env.arena_ports[k].len() - 1);
                    ctx.send(from, env.arena_ports[k][t], payload.to_vec());
                    d.stats.routed += 1;
                    d.stats.per_arena[k] += 1;
                    d.stats.forwarded_per_arena[k] += 1;
                }
                _ => d.stats.rejected_full += 1,
            }
        }
        ClientMessage::Disconnect { client_id } => {
            match d.ledger.remove(client_id, Departure::FrontDoor) {
                // Forward to the *home thread's* port: under static
                // assignment the client's slot lives in the
                // connect-time thread's block, and other threads never
                // scan it.
                Some(p) if (p.arena as usize) < env.arena_ports.len() => {
                    let k = p.arena as usize;
                    let t = (p.thread as usize).min(env.arena_ports[k].len() - 1);
                    ctx.send(from, env.arena_ports[k][t], payload.to_vec());
                    d.stats.forwarded_other += 1;
                    d.stats.forwarded_per_arena[k] += 1;
                }
                Some(_) => {}
                None => d.stats.dropped_unknown += 1,
            }
        }
        ClientMessage::Move { client_id, .. } => match d.ledger.touch(client_id) {
            // A stray move from a client ignoring its ack's arena id:
            // forward to its placement's home thread so the session
            // still works, if degraded.
            Some(p) if (p.arena as usize) < env.arena_ports.len() => {
                let k = p.arena as usize;
                let t = (p.thread as usize).min(env.arena_ports[k].len() - 1);
                ctx.send(from, env.arena_ports[k][t], payload.to_vec());
                d.stats.forwarded_other += 1;
                d.stats.forwarded_per_arena[k] += 1;
            }
            _ => d.stats.dropped_unknown += 1,
        },
    }
}

/// Place a never-before-seen client: policy first, then — if every
/// live arena is full — spawn pressure.
fn place_fresh(
    ctx: &TaskCtx,
    env: &DirectorEnv,
    d: &mut Director,
    client_id: u32,
    requested: u16,
) -> Option<(usize, usize)> {
    let k = d
        .policy_place(env, requested)
        .or_else(|| elastic_spawn(ctx, env, d))?;
    let t = d.next_thread[k] % env.arena_ports[k].len();
    d.next_thread[k] = d.next_thread[k].wrapping_add(1);
    d.ledger.place(client_id, k as u16, t as u16);
    d.empty_since[k] = None;
    Some((k, t))
}

impl Director {
    fn policy_place(&self, env: &DirectorEnv, requested: u16) -> Option<usize> {
        // Score against where the rebalancer is about to move the
        // population, not where it was — otherwise admission refills
        // the arena the next fence is emptying (see
        // [`crate::admission::MigrationPlan`]).
        let plan = crate::migrate::planned(env, self);
        env.policy.place_predicted(
            requested,
            self.ledger.occupancy(),
            env.capacity,
            &self.live,
            plan.as_ref(),
        )
    }
}

/// Reconcile the ledger with one arena lifecycle notice.
fn handle_notice(d: &mut Director, payload: &[u8]) {
    let Ok(ev) = LifecycleEvent::from_bytes(payload) else {
        // Not a lifecycle datagram — a confused sender; count with the
        // front door's decode failures.
        d.stats.decode_rejected += 1;
        return;
    };
    match ev {
        LifecycleEvent::Connected {
            arena,
            client_id,
            thread,
        } => {
            d.stats.notice_connected += 1;
            match d.ledger.touch(client_id) {
                // The notice confirms what the book already says.
                Some(p) if p.arena == arena && p.thread == thread => {}
                // A client the director never placed (it connected at
                // the arena directly) or a stale booking: the arena is
                // the authority — (re)book it there.
                _ => {
                    d.ledger.place(client_id, arena, thread);
                }
            }
        }
        LifecycleEvent::Disconnected { arena, client_id }
        | LifecycleEvent::Reclaimed {
            arena, client_id, ..
        }
        | LifecycleEvent::Rejected { arena, client_id } => {
            match ev {
                LifecycleEvent::Disconnected { .. } => d.stats.notice_disconnected += 1,
                LifecycleEvent::Reclaimed { .. } => d.stats.notice_reclaimed += 1,
                LifecycleEvent::Rejected { .. } => d.stats.notice_rejected += 1,
                LifecycleEvent::Connected { .. } | LifecycleEvent::Migrated { .. } => {
                    unreachable!()
                }
            }
            // Evict only a booking *at that arena*: a late notice from
            // an old placement must not kill a newer one elsewhere.
            match d.ledger.touch(client_id) {
                Some(p) if p.arena == arena => {
                    d.ledger.remove(client_id, Departure::Notice);
                }
                _ => d.stats.notice_stale += 1,
            }
        }
        LifecycleEvent::Migrated {
            from_arena,
            to_arena,
            client_id,
            thread,
        } => {
            // The director's own handoffs rebook the ledger directly
            // (crate::migrate); this arm serves notices injected on
            // the control port (tests, external supervisors).
            d.stats.notice_migrated += 1;
            match d.ledger.touch(client_id) {
                Some(p) if p.arena == to_arena && p.thread == thread => {}
                Some(p) if p.arena == from_arena => {
                    d.ledger.migrate(client_id, to_arena, thread);
                }
                // Unknown client or booked somewhere neither end of
                // the handoff claims: the notice is the authority.
                _ => {
                    d.ledger.place(client_id, to_arena, thread);
                }
            }
        }
    }
}

/// Bring a cold cell live under admission pressure (pooled only).
fn elastic_spawn(ctx: &TaskCtx, env: &DirectorEnv, d: &mut Director) -> Option<usize> {
    let parts = env.pool.as_ref()?;
    let k = d.live.iter().position(|&l| !l)?;
    parts.pool.enter(ctx);
    {
        let st = parts.pool.state();
        st.live[k] = true;
        st.next_due[k] = 0;
        st.sessions[k] = false;
        st.last_frame[k] = ctx.now();
        ctx.cond_broadcast(parts.pool.cond);
    }
    parts.pool.exit(ctx);
    d.live[k] = true;
    d.empty_since[k] = None;
    d.elastic.spawned += 1;
    let live_now = d.live.iter().filter(|&&l| l).count() as u32;
    d.elastic.peak_live = d.elastic.peak_live.max(live_now);
    d.elastic.events.push(ElasticEvent {
        at: ctx.now(),
        arena: k as u16,
        kind: ElasticEventKind::Spawned,
        live: live_now,
    });
    Some(k)
}

/// Reap live non-boot arenas whose occupancy has sat at zero past the
/// linger window (pooled only). A reaped cell's claim slot is masked
/// so workers skip it, and its results are published immediately; the
/// cell can be reborn by [`elastic_spawn`] (its world state is
/// retained — players were already despawned for occupancy to reach
/// zero, and a fresh population simply spawns into the aged world).
fn elastic_reap(ctx: &TaskCtx, env: &DirectorEnv, d: &mut Director) {
    let Some(parts) = env.pool.as_ref() else {
        return;
    };
    let now = ctx.now();
    for k in env.boot..d.live.len() {
        if !d.live[k] || d.ledger.occupancy()[k] > 0 {
            d.empty_since[k] = None;
            continue;
        }
        let since = *d.empty_since[k].get_or_insert(now);
        if now.saturating_sub(since) < env.linger_ns {
            continue;
        }
        parts.pool.enter(ctx);
        let st = parts.pool.state();
        if st.claimed[k] {
            // Mid-frame (a last maintenance frame, most likely): leave
            // the linger clock running and retry next tick.
            parts.pool.exit(ctx);
            continue;
        }
        if st.fate[k] != ArenaFate::Healthy {
            // Crashed or condemned: the supervisor owns this cell's
            // next transition (restore). Reaping it would fork the
            // liveness mirror.
            parts.pool.exit(ctx);
            continue;
        }
        st.live[k] = false;
        st.sessions[k] = false;
        // Claim flag clear + liveness masked: no worker will touch the
        // cell again, so its frame state is safe to snapshot here.
        let cell = &parts.cells[k];
        let f = cell.frame();
        f.stats.queue_dropped = ctx.fabric().port_dropped(cell.port);
        {
            let mut r = env.results[k]
                .lock() // lockcheck: allow(raw-sync: host-side result sink, arena already fenced from workers)
                .unwrap_or_else(PoisonError::into_inner);
            r.threads = vec![f.stats.clone()];
            r.frames = f.frames.clone();
            r.timeline = f.timeline.clone();
            r.frame_count = f.frame_no as u64;
            r.leaf_count = cell.shared.world.tree.leaf_count() as u64;
            r.interest = f.interest.clone();
        }
        parts.pool.exit(ctx);
        d.live[k] = false;
        d.empty_since[k] = None;
        d.elastic.reaped += 1;
        let live_now = d.live.iter().filter(|&&l| l).count() as u32;
        d.elastic.events.push(ElasticEvent {
            at: now,
            arena: k as u16,
            kind: ElasticEventKind::Reaped,
            live: live_now,
        });
    }
}

// ---------------------------------------------------------------------------
// Shared worker pool
// ---------------------------------------------------------------------------

/// One arena's runtime state inside the pool. `frame` and `guard` are
/// mutated only by the worker that currently holds the arena's claim
/// flag (the director takes the claim as a fence while restoring).
pub(crate) struct ArenaCell {
    pub(crate) shared: Arc<ServerShared>,
    port: PortId,
    frame: UnsafeCell<ArenaFrame>,
    /// Supervision state: checkpoint ring, fault lottery, overload
    /// stretch. Claim-protected exactly like `frame`.
    guard: UnsafeCell<ArenaGuard>,
}

pub(crate) struct ArenaFrame {
    pub(crate) stats: ThreadStats,
    frames: FrameStats,
    timeline: Timeline,
    interest: InterestStats,
    pub(crate) frame_no: u32,
}

/// Claim-protected supervision state of one arena.
pub(crate) struct ArenaGuard {
    /// Restore points, newest last.
    pub(crate) ring: CheckpointRing,
    /// Deterministic per-arena fault lottery (`None` = no injection).
    lottery: Option<FrameLottery>,
    /// Effective frame-interval multiplier (1 = real time, up to 8
    /// under sustained overrun).
    stretch: u32,
    /// Consecutive frames that overran the deadline.
    overruns: u32,
    /// Worker-side counters, merged into the directory's
    /// `SupervisorStats` by the last exiting worker.
    pub(crate) panics_caught: u64,
    shed_frames: u64,
    pub(crate) coalesced_moves: u64,
}

/// What the supervisor believes about one arena.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum ArenaFate {
    /// Running normally (or cold/reaped — fate only matters live).
    Healthy,
    /// A claimed frame panicked; the arena is fenced off (liveness
    /// masked, claim clear) awaiting restore.
    Crashed { at: Nanos },
    /// The watchdog caught a claimed frame overrunning; the claim is
    /// still held by the stuck worker, restore happens at release.
    Condemned { at: Nanos },
}

// SAFETY: `frame` and `guard` are accessed only between claim (set
// under the pool lock) and release by the claiming worker, by the
// director after masking liveness with the claim flag clear (reap) or
// after taking the claim itself as a restore fence, or by the last
// exiting worker after every claim flag is clear.
unsafe impl Sync for ArenaCell {}
unsafe impl Send for ArenaCell {}

impl ArenaCell {
    #[allow(clippy::mut_from_ref)]
    pub(crate) fn frame(&self) -> &mut ArenaFrame {
        // SAFETY: see type-level invariant.
        unsafe { &mut *self.frame.get() }
    }

    #[allow(clippy::mut_from_ref)]
    pub(crate) fn guard(&self) -> &mut ArenaGuard {
        // SAFETY: see type-level invariant.
        unsafe { &mut *self.guard.get() }
    }
}

pub(crate) struct PoolState {
    /// Arena k is currently being run by some worker (or fenced by the
    /// director during a restore).
    pub(crate) claimed: Vec<bool>,
    /// Arena k has a migration fence pending: workers must not take
    /// new claims on it, so the director can capture it at the current
    /// frame's boundary instead of racing a saturated arena that is
    /// claimed essentially all the time (see [`crate::migrate`]).
    pub(crate) fenced: Vec<bool>,
    /// Arena k accepts frames (cold, reaped and fated cells are
    /// masked; only the director flips these, except a crashing worker
    /// masking its own arena).
    pub(crate) live: Vec<bool>,
    /// Arena k had non-empty player slots after its last frame
    /// (written by the frame's worker while still owning the claim,
    /// read by the maintenance-due scan).
    pub(crate) sessions: Vec<bool>,
    /// When arena k's last frame finished (maintenance pacing).
    pub(crate) last_frame: Vec<Nanos>,
    /// Earliest time arena k may start its next frame
    /// (`frame_interval_ns` pacing).
    pub(crate) next_due: Vec<Nanos>,
    /// When arena k's current claim was taken (watchdog clock).
    pub(crate) claim_started: Vec<Nanos>,
    /// Supervision fate per arena.
    pub(crate) fate: Vec<ArenaFate>,
    /// Round-robin scan start, for fairness across arenas.
    rotor: usize,
    /// Workers that have left the loop.
    exited: u32,
    frames_by_worker: Vec<u64>,
    frames_by_arena: Vec<u64>,
    idle_ns_by_worker: Vec<Nanos>,
}

/// Pool scheduling state, guarded by the fabric lock `lock`. The lock
/// sits in the control layer (like the parallel server's frame-control
/// lock): it is never held while running a frame, so it can never rank
/// under a region lock.
pub(crate) struct Pool {
    pub(crate) lock: LockId,
    pub(crate) cond: CondId,
    state: UnsafeCell<PoolState>,
}

// SAFETY: `state` is only accessed while holding the fabric `lock`.
unsafe impl Sync for Pool {}
unsafe impl Send for Pool {}

impl Pool {
    #[allow(clippy::mut_from_ref)]
    pub(crate) fn state(&self) -> &mut PoolState {
        // SAFETY: see type-level invariant.
        unsafe { &mut *self.state.get() }
    }

    /// Enter the pool-scheduling critical section.
    // lockcheck: acquire-site
    pub(crate) fn enter(&self, ctx: &TaskCtx) {
        ctx.lock(self.lock);
    }

    /// Leave the pool-scheduling critical section.
    // lockcheck: acquire-site
    pub(crate) fn exit(&self, ctx: &TaskCtx) {
        ctx.unlock(self.lock);
    }
}

/// The pool internals the director needs for spawn/reap and restore.
pub(crate) struct PoolParts {
    pub(crate) pool: Arc<Pool>,
    pub(crate) cells: Arc<Vec<Arc<ArenaCell>>>,
}

type PoolSpawn = (
    Vec<Vec<PortId>>,
    Vec<Arc<Mutex<ServerResults>>>,
    PoolParts,
    Arc<Mutex<PoolReport>>,
);

/// Per-run knobs every pool worker shares (one allocation, cloned
/// `Arc` per worker).
struct PoolRunCfg {
    end_time: Nanos,
    poll_ns: Nanos,
    frame_interval_ns: Nanos,
    maintenance_ns: Nanos,
    supervised: bool,
    /// A frame running longer than this counts as an overrun for the
    /// graceful-degradation stretch (`frame_interval_ns`, or 30 ms
    /// when frames are purely event-driven).
    frame_deadline_ns: Nanos,
    checkpoint_interval: u32,
}

fn spawn_pool(
    fabric: &Arc<dyn Fabric>,
    cfg: &ArenaDirectoryConfig,
    worlds: &[Arc<GameWorld>],
    workers: u32,
    lifecycle_port: Option<PortId>,
    supervisor: &Arc<Mutex<SupervisorStats>>,
) -> PoolSpawn {
    assert!(workers >= 1, "pool needs at least one worker");
    let n = worlds.len();
    let boot = cfg.arenas as usize;
    // Maintenance frames keep session-holding arenas ticking without
    // input so despawns, reclaims and their notices cannot stall; on
    // automatically whenever the truth of "occupancy is zero" matters
    // (elastic fleet or inactivity reclaims configured).
    let maintenance_ns = if cfg.maintenance_ns > 0 {
        cfg.maintenance_ns
    } else if n > boot || cfg.server.client_timeout_ns > 0 {
        50_000_000
    } else {
        0
    };
    let mut cells = Vec::with_capacity(n);
    let mut ports = Vec::with_capacity(n);
    let mut results = Vec::with_capacity(n);
    for (k, world) in worlds.iter().enumerate() {
        let mut scfg = cfg.server.clone();
        scfg.arena_id = k as u16;
        scfg.lifecycle_port = lifecycle_port;
        let shared = Arc::new(ServerShared::new(
            fabric,
            &scfg,
            world.clone(),
            1,
            cfg.pooled_locking,
        ));
        if cfg.pooled_locking.is_some() {
            shared.set_checking(true);
        } else {
            // The sequential frame body takes no region locks, so the
            // parallel protocol checkers have nothing to check.
            shared.world.links.set_checking(false);
            shared.world.store.set_checking(false);
        }
        ports.push(shared.ports.clone());
        results.push(Arc::new(Mutex::new(ServerResults::default())));
        // The per-arena fault lottery is salted with the arena id so
        // each arena's fate stream is independent of worker
        // interleaving — crash sweeps replay bit-for-bit.
        let lottery = if cfg.supervision {
            cfg.frame_faults
                .as_ref()
                .filter(|fc| fc.frame_faults_enabled())
                .map(|fc| FrameLottery::new(fc, k as u64))
        } else {
            None
        };
        if lottery.is_some() {
            install_quiet_panic_hook();
        }
        cells.push(Arc::new(ArenaCell {
            port: shared.ports[0],
            shared,
            frame: UnsafeCell::new(ArenaFrame {
                stats: ThreadStats::new(),
                frames: FrameStats::new(),
                timeline: Timeline::default(),
                interest: InterestStats::default(),
                frame_no: 0,
            }),
            guard: UnsafeCell::new(ArenaGuard {
                ring: CheckpointRing::new(cfg.checkpoint_depth),
                lottery,
                stretch: 1,
                overruns: 0,
                panics_caught: 0,
                shed_frames: 0,
                coalesced_moves: 0,
            }),
        }));
    }

    let pool_lock = fabric.alloc_lock();
    if let Some(w) = fabric.witness() {
        w.classify(pool_lock, LockClass::Ctrl);
    }
    let pool = Arc::new(Pool {
        lock: pool_lock,
        cond: fabric.alloc_cond(),
        state: UnsafeCell::new(PoolState {
            claimed: vec![false; n],
            fenced: vec![false; n],
            live: (0..n).map(|k| k < boot).collect(),
            sessions: vec![false; n],
            last_frame: vec![0; n],
            next_due: vec![0; n],
            claim_started: vec![0; n],
            fate: vec![ArenaFate::Healthy; n],
            rotor: 0,
            exited: 0,
            frames_by_worker: vec![0; workers as usize],
            frames_by_arena: vec![0; n],
            idle_ns_by_worker: vec![0; workers as usize],
        }),
    });
    let report = Arc::new(Mutex::new(PoolReport::default()));

    let rcfg = Arc::new(PoolRunCfg {
        end_time: cfg.server.end_time,
        poll_ns: cfg.poll_ns.max(1),
        frame_interval_ns: cfg.frame_interval_ns,
        maintenance_ns,
        supervised: cfg.supervision,
        frame_deadline_ns: if cfg.frame_interval_ns > 0 {
            cfg.frame_interval_ns
        } else {
            30_000_000
        },
        checkpoint_interval: cfg.checkpoint_interval,
    });
    let cells = Arc::new(cells);
    for w in 0..workers {
        let cells = cells.clone();
        let pool = pool.clone();
        let report = report.clone();
        let results = results.clone();
        let rcfg = rcfg.clone();
        let supervisor = supervisor.clone();
        fabric.spawn(
            &format!("arena-pool-{w}"),
            Some(w),
            Box::new(move |ctx| {
                pool_worker(
                    ctx,
                    w,
                    workers,
                    &cells,
                    &pool,
                    &rcfg,
                    &results,
                    &report,
                    &supervisor,
                )
            }),
        );
    }
    (ports, results, PoolParts { pool, cells }, report)
}

#[allow(clippy::too_many_arguments)]
fn pool_worker(
    ctx: &TaskCtx,
    w: u32,
    workers: u32,
    cells: &[Arc<ArenaCell>],
    pool: &Pool,
    rcfg: &PoolRunCfg,
    results: &[Arc<Mutex<ServerResults>>],
    report: &Mutex<PoolReport>,
    supervisor: &Mutex<SupervisorStats>,
) {
    let n = cells.len();
    // A 1×1 pool with no maintenance ticking and no supervision
    // degenerates to the sequential server's select loop: no
    // scheduling lock, no polling — byte-identical behaviour to
    // `ServerKind::Sequential`, so a default single-arena directory
    // adds zero overhead over today's server. Supervision opts out:
    // its catch_unwind wrapper, checkpoints and watchdog claim
    // accounting all live in the scan path.
    let mut degenerate_frames = 0u64;
    if n == 1 && workers == 1 && rcfg.maintenance_ns == 0 && !rcfg.supervised {
        let cell = &cells[0];
        // `next_due` pacing, exactly like `pool_worker_scan`: input
        // arriving mid-interval is processed *at* `next_due`, not an
        // extra interval later. With `frame_interval_ns == 0` the
        // sleep never fires and the loop is the sequential server's.
        let mut next_due: Nanos = 0;
        loop {
            let t0 = ctx.now();
            if !ctx.wait_readable(cell.port, Some(rcfg.end_time)) {
                break;
            }
            cell.frame()
                .stats
                .breakdown
                .add(Bucket::Idle, ctx.now() - t0);
            if rcfg.frame_interval_ns > 0 && ctx.now() < next_due {
                ctx.sleep_until(next_due);
            }
            run_arena_frame(ctx, cell);
            next_due = ctx.now() + rcfg.frame_interval_ns;
            degenerate_frames += 1;
        }
    } else {
        pool_worker_scan(ctx, w, cells, pool, rcfg);
    }

    // Exit protocol: the last worker out publishes per-arena results
    // and the pool report. Claim flags are all clear by then, so the
    // frame cells are safe to read.
    pool.enter(ctx);
    let st = pool.state();
    if degenerate_frames > 0 {
        st.frames_by_worker[0] += degenerate_frames;
        st.frames_by_arena[0] += degenerate_frames;
    }
    st.exited += 1;
    let last = st.exited == workers;
    if last {
        for (k, cell) in cells.iter().enumerate() {
            let f = cell.frame();
            f.stats.queue_dropped = ctx.fabric().port_dropped(cell.port);
            let mut r = results[k].lock().unwrap_or_else(PoisonError::into_inner); // lockcheck: allow(raw-sync: host-side result sink, last worker publishes alone)
            r.threads = vec![f.stats.clone()];
            r.frames = f.frames.clone();
            r.timeline = f.timeline.clone();
            r.frame_count = f.frame_no as u64;
            r.leaf_count = cell.shared.world.tree.leaf_count() as u64;
            r.interest = f.interest.clone();
        }
        let mut rep = report.lock().unwrap_or_else(PoisonError::into_inner); // lockcheck: allow(raw-sync: host-side pool report, last worker publishes alone)
        rep.frames_by_worker = st.frames_by_worker.clone();
        rep.frames_by_arena = st.frames_by_arena.clone();
        rep.idle_ns_by_worker = st.idle_ns_by_worker.clone();
        if rcfg.supervised {
            // Fold worker-side guard counters into the directory's
            // supervision report; the director contributes the
            // restore/watchdog side separately via `merge`.
            let mut sup = SupervisorStats::default();
            for cell in cells.iter() {
                let g = cell.guard();
                sup.panics_caught += g.panics_caught;
                sup.checkpoints_taken += g.ring.taken;
                sup.checkpoint_bytes += g.ring.bytes;
                sup.shed_frames += g.shed_frames;
                sup.coalesced_moves += g.coalesced_moves;
            }
            supervisor
                .lock() // lockcheck: allow(raw-sync: host-side supervision counters, merged at run end)
                .unwrap_or_else(PoisonError::into_inner)
                .merge(&sup);
        }
    }
    pool.exit(ctx);
}

/// The general pool scheduling loop: claim a due arena under the pool
/// lock, run its frame unlocked, release, repeat. Supervised frames
/// run behind `catch_unwind`: a panic fates only the panicking arena
/// (claim cleared, liveness masked, fate `Crashed`) and the worker
/// moves on to other arenas.
fn pool_worker_scan(
    ctx: &TaskCtx,
    w: u32,
    cells: &[Arc<ArenaCell>],
    pool: &Pool,
    rcfg: &PoolRunCfg,
) {
    let n = cells.len();
    loop {
        let now = ctx.now();
        if now >= rcfg.end_time {
            break;
        }
        pool.enter(ctx);
        // Scan from the rotor for an unclaimed live arena that is due
        // and has either input waiting or a maintenance frame owed.
        // `port_next_delivery` peeks without claiming the port, so the
        // scan is safe for ports the frame body will drain later.
        let mut pick = None;
        {
            let st = pool.state();
            for i in 0..n {
                let k = (st.rotor + i) % n;
                if st.claimed[k] || st.fenced[k] || !st.live[k] || st.next_due[k] > now {
                    continue;
                }
                let input =
                    matches!(ctx.fabric().port_next_delivery(cells[k].port), Some(t) if t <= now);
                let maint = rcfg.maintenance_ns > 0
                    && st.sessions[k]
                    && now >= st.last_frame[k] + rcfg.maintenance_ns;
                if input || maint {
                    pick = Some(k);
                    break;
                }
            }
            if let Some(k) = pick {
                st.claimed[k] = true;
                st.claim_started[k] = now;
                st.rotor = (k + 1) % n;
            }
        }
        match pick {
            Some(k) => {
                pool.exit(ctx);
                let cell = &cells[k];
                let panicked = if rcfg.supervised {
                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        run_arena_frame_supervised(ctx, cell, rcfg)
                    }))
                    .is_err()
                } else {
                    run_arena_frame(ctx, cell);
                    false
                };
                if panicked {
                    // Still owning the claim: count on the cell, then
                    // fate the arena. The world may be mid-mutation —
                    // nothing touches it again until the director
                    // restores from the last checkpoint. Any fabric
                    // lock the frame still held is leaked for good —
                    // report it to the witness so the run fails on it.
                    if let Some(wit) = ctx.fabric().witness() {
                        wit.on_unwind(ctx.id(), ctx.now());
                    }
                    let g = cell.guard();
                    g.panics_caught += 1;
                    cell.frame().stats.panics_caught += 1;
                    pool.enter(ctx);
                    let st = pool.state();
                    st.claimed[k] = false;
                    st.live[k] = false;
                    st.fate[k] = ArenaFate::Crashed { at: ctx.now() };
                    ctx.cond_broadcast(pool.cond);
                    pool.exit(ctx);
                    continue;
                }
                // Still owning the claim: record whether the arena has
                // resident sessions, for the maintenance-due scan, and
                // read the overload stretch for pacing.
                let has_sessions = {
                    let shared = &cell.shared;
                    (0..shared.clients.capacity())
                        .any(|i| shared.clients.slot(i).state != SlotState::Empty)
                };
                let stretch = if rcfg.supervised {
                    cell.guard().stretch
                } else {
                    1
                };
                pool.enter(ctx);
                let st = pool.state();
                st.claimed[k] = false;
                if matches!(st.fate[k], ArenaFate::Condemned { .. }) {
                    // The watchdog condemned this frame while it ran:
                    // leave the arena dead (liveness was masked at
                    // condemn time); the director restores it from
                    // checkpoint now that the claim is clear.
                } else {
                    // Graceful degradation: a stretched arena paces
                    // its frames at `stretch ×` the frame interval
                    // (or the deadline, when purely event-driven).
                    let base = if stretch > 1 {
                        rcfg.frame_interval_ns.max(rcfg.frame_deadline_ns)
                    } else {
                        rcfg.frame_interval_ns
                    };
                    st.next_due[k] = ctx.now() + base * stretch as u64;
                    st.last_frame[k] = ctx.now();
                    st.sessions[k] = has_sessions;
                }
                st.frames_by_worker[w as usize] += 1;
                st.frames_by_arena[k] += 1;
                // The arena is consumable again (it may already have
                // fresh input): wake idle workers to rescan.
                ctx.cond_broadcast(pool.cond);
                pool.exit(ctx);
            }
            None => {
                // Nothing runnable: sleep until the earliest moment an
                // arena could become runnable — queued input, a
                // maintenance frame coming due — or the poll bound,
                // whichever is sooner — then rescan.
                let st = pool.state();
                let mut deadline = now + rcfg.poll_ns;
                for (k, cell) in cells.iter().enumerate() {
                    if st.claimed[k] || st.fenced[k] || !st.live[k] {
                        continue;
                    }
                    if let Some(t) = ctx.fabric().port_next_delivery(cell.port) {
                        deadline = deadline.min(st.next_due[k].max(t));
                    }
                    if rcfg.maintenance_ns > 0 && st.sessions[k] {
                        deadline = deadline
                            .min(st.next_due[k].max(st.last_frame[k] + rcfg.maintenance_ns));
                    }
                }
                let deadline = deadline.min(rcfg.end_time).max(now + 1);
                let (waited, _) = ctx.cond_wait_until(pool.cond, pool.lock, deadline);
                pool.state().idle_ns_by_worker[w as usize] += waited;
                pool.exit(ctx);
            }
        }
    }
}

/// One complete frame of one arena — the sequential server's frame
/// body (§2.1: world update, drain requests, reply), run by whichever
/// pool worker claimed the arena.
fn run_arena_frame(ctx: &TaskCtx, cell: &ArenaCell) {
    run_arena_frame_body(ctx, cell, None);
}

/// The frame body proper. `shed`-mode frames (`Some`) coalesce queued
/// moves per client instead of processing every one; the count of
/// superseded moves is accumulated into the given counter.
fn run_arena_frame_body(ctx: &TaskCtx, cell: &ArenaCell, shed: Option<&mut u64>) {
    let shared = &cell.shared;
    let port = cell.port;
    let f = cell.frame();
    ctx.charge(shared.cost.select_op);
    f.frame_no += 1;
    let frame_start = ctx.now();

    // P: world physics.
    let t0 = ctx.now();
    shared.run_world_update(ctx, port, &mut f.stats, f.frame_no);
    f.stats.breakdown.add(Bucket::World, ctx.now() - t0);
    f.stats.mastered += 1;

    // Rx/E: drain the request queue.
    let mut unused_mask = 0u64;
    let moves = match shed {
        Some(coalesced) => {
            drain_requests_coalesced(ctx, cell, &mut f.stats, &mut unused_mask, coalesced)
        }
        None => shared.drain_requests(ctx, 0, port, &mut f.stats, &mut unused_mask),
    };

    // T/Tx: replies for everyone who sent a request.
    let t0 = ctx.now();
    let global = shared.read_global_events(ctx, &mut f.stats);
    let all_slots: Vec<usize> = (0..shared.clients.capacity()).collect();
    let index = shared.build_interest_index(ctx, &mut f.interest);
    let iframe = index
        .as_ref()
        .map(|ix| shared.match_interest(ctx, &all_slots, ix, &mut f.interest));
    shared.reply_for_slots(
        ctx,
        port,
        &all_slots,
        &global,
        f.frame_no,
        &mut f.stats,
        true,
        iframe.as_ref(),
        &mut f.interest,
    );
    shared.clear_global_events(ctx, &mut f.stats);
    f.stats.breakdown.add(Bucket::Reply, ctx.now() - t0);

    f.stats.frames += 1;
    f.frames.frames += 1;
    f.frames.frame_ns_sum += ctx.now() - frame_start;
    f.frames.note_frame_requests(&[moves]);
    f.frames.leaf_count = shared.world.tree.leaf_count() as u64;
    f.timeline.push(FrameSample {
        start_ns: frame_start,
        duration_ns: ctx.now() - frame_start,
        participants: 1,
        requests: moves,
        requests_max: moves,
        requests_min: moves,
        master: 0,
    });
}

/// Payload of a lottery-injected panic. The quiet panic hook
/// recognises this type and stays silent for it (crash sweeps inject
/// thousands); organic panics keep the default hook's report.
pub struct InjectedPanic;

static QUIET_HOOK: Once = Once::new();

/// Chain a panic hook that suppresses output for [`InjectedPanic`]
/// payloads only. Installed once, process-wide, and only when a
/// panic lottery is actually configured.
fn install_quiet_panic_hook() {
    QUIET_HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<InjectedPanic>().is_none() {
                prev(info);
            }
        }));
    });
}

/// A supervised frame: fault lottery, shed-mode selection, overload
/// bookkeeping, checkpoint cadence. Runs under the claiming worker's
/// `catch_unwind`.
fn run_arena_frame_supervised(ctx: &TaskCtx, cell: &ArenaCell, rcfg: &PoolRunCfg) {
    let g = cell.guard();
    // First claim of this arena's life (or first after a restore that
    // found an empty ring): checkpoint the current state so a crash on
    // the very next line already has a restore point.
    if g.ring.is_empty() {
        take_checkpoint(ctx, cell, g);
    }
    let t0 = ctx.now();
    // The lottery fires before any frame work — and before any fabric
    // lock could possibly be taken — so an injected panic can never
    // wedge a lock. (An organic mid-frame panic under `pooled_locking`
    // can; see DESIGN.md §10's documented limitations.) An injected
    // stall counts toward the overrun clock below: a slow frame is an
    // overrun, wherever the time went.
    if let Some(lot) = g.lottery.as_mut() {
        match lot.draw() {
            FrameFault::Panic => std::panic::panic_any(InjectedPanic),
            // A stall: the frame "hangs" for the configured time —
            // past the watchdog bound it gets the arena condemned
            // mid-claim; short of it, it drives graceful degradation.
            FrameFault::Stuck(ns) => ctx.charge(ns),
            FrameFault::None => {}
        }
    }
    if g.stretch > 1 {
        let mut coalesced = 0u64;
        run_arena_frame_body(ctx, cell, Some(&mut coalesced));
        g.shed_frames += 1;
        g.coalesced_moves += coalesced;
    } else {
        run_arena_frame_body(ctx, cell, None);
    }
    // Graceful degradation: two consecutive deadline overruns double
    // the arena's effective frame interval (cap 8×); a frame back
    // under the deadline halves it toward real time.
    let dur = ctx.now() - t0;
    if dur > rcfg.frame_deadline_ns {
        g.overruns += 1;
        if g.overruns >= 2 && g.stretch < 8 {
            g.stretch *= 2;
            g.overruns = 0;
        }
    } else {
        g.overruns = 0;
        if g.stretch > 1 {
            g.stretch /= 2;
        }
    }
    if rcfg.checkpoint_interval > 0 && cell.frame().frame_no % rcfg.checkpoint_interval == 0 {
        take_checkpoint(ctx, cell, g);
    }
}

/// Snapshot the arena's world + slot table into its checkpoint ring.
/// Caller owns the claim, so both are frame-boundary consistent.
fn take_checkpoint(ctx: &TaskCtx, cell: &ArenaCell, g: &mut ArenaGuard) {
    let world = cell.shared.world.snapshot_bytes();
    let slots = cell.shared.snapshot_slots();
    // Modelled cost: a serializing memcpy of the world image.
    ctx.charge((world.len() as u64 >> 6).max(1_000));
    g.ring.push(Checkpoint {
        frame_no: cell.frame().frame_no,
        taken_at: ctx.now(),
        world,
        slots,
    });
}

/// Shed-mode Rx/E: drain the whole queue first, then process it with
/// per-client move coalescing — only the *newest* queued `Move` per
/// client executes; older ones are superseded (their effect is
/// subsumed, not dropped: the client's next reply reflects its latest
/// command). `Connect`/`Disconnect` always pass through in arrival
/// order. Superseded-move count lands in `coalesced_out`.
pub(crate) fn drain_requests_coalesced(
    ctx: &TaskCtx,
    cell: &ArenaCell,
    stats: &mut ThreadStats,
    frame_leaf_mask: &mut u64,
    coalesced_out: &mut u64,
) -> u32 {
    let shared = &cell.shared;
    let port = cell.port;
    let mut batch: Vec<(PortId, ClientMessage)> = Vec::new();
    loop {
        let t0 = ctx.now();
        let Some(raw) = ctx.try_recv(port) else {
            break;
        };
        ctx.charge(shared.cost.recv);
        stats.datagrams += 1;
        let decoded = ClientMessage::from_bytes(&raw.payload);
        stats.breakdown.add(Bucket::Receive, ctx.now() - t0);
        match decoded {
            Ok(msg) => batch.push((raw.from, msg)),
            Err(_) => stats.decode_rejected += 1,
        }
    }
    let mut newest: HashMap<u32, usize> = HashMap::new();
    for (i, (_, msg)) in batch.iter().enumerate() {
        if let ClientMessage::Move { client_id, .. } = msg {
            newest.insert(*client_id, i);
        }
    }
    let mut moves = 0u32;
    for (i, (from, msg)) in batch.into_iter().enumerate() {
        if let ClientMessage::Move { client_id, .. } = &msg {
            if newest.get(client_id) != Some(&i) {
                *coalesced_out += 1;
                continue;
            }
        }
        if shared.handle_message(ctx, 0, from, msg, stats, frame_leaf_mask) {
            moves += 1;
        }
    }
    moves
}
