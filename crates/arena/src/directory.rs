//! The arena directory: N worlds, one front door, one worker pool.
//!
//! ```text
//!                       ┌────────────── directory ──────────────┐
//!  Connect ──► front ──►│ admission ──► arena k runtime (1..N)  │──► ConnectAck{arena:k}
//!  Move ─────────────────────────────► arena k request port     │──► Reply
//!                       │     shared pool: workers 0..W         │
//!                       └───────────────────────────────────────┘
//! ```
//!
//! Two scheduling shapes:
//!
//! * **Pooled** — every arena is a single-threaded sequential runtime
//!   (the paper's §2.1 frame body, verbatim); W pinned workers pull
//!   *whole frames* from whichever arena has work. The pool lock only
//!   guards the claim table — no worker ever holds it during a frame,
//!   and no worker ever touches two arenas at once, so the per-world
//!   locking discipline (and its witness) is untouched.
//! * **Dedicated** — every arena is a full `spawn_server` runtime with
//!   its own threads; assignment schemes and region locking run
//!   unchanged inside each arena. The directory only adds admission.
//!
//! The **director** task owns the front door. It never touches world
//! state: it decodes, places (stickily), and forwards the raw datagram
//! to the chosen arena *preserving the client's source port*, so the
//! arena replies straight to the client and the directory is off the
//! data path after admission.

use std::cell::UnsafeCell;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use parquake_bsp::mapgen::MapGenConfig;
use parquake_fabric::{CondId, Fabric, LockId, Nanos, PortId, TaskCtx};
use parquake_metrics::{Bucket, FrameSample, FrameStats, LockClass, ThreadStats, Timeline};
use parquake_protocol::{ClientMessage, Decode};
use parquake_server::runtime::{ServerShared, REQUEST_QUEUE_CAP};
use parquake_server::{spawn_server, LockPolicy, ServerConfig, ServerHandle, ServerResults};
use parquake_sim::GameWorld;

use crate::admission::{AdmissionPolicy, AdmissionStats};

/// How arena frames get processors.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ArenaScheduling {
    /// One shared pool of `workers` pinned tasks executes whole frames
    /// of whichever arena has pending input.
    Pooled { workers: u32 },
    /// Each arena gets its own full server runtime per the config
    /// template's `kind` (sequential or parallel with region locking).
    Dedicated,
}

/// Configuration for [`spawn_directory`].
#[derive(Clone, Debug)]
pub struct ArenaDirectoryConfig {
    /// Number of independent worlds.
    pub arenas: u32,
    /// Player capacity of each world.
    pub slots_per_arena: u16,
    /// Connect routing policy.
    pub policy: AdmissionPolicy,
    /// Processor scheduling shape.
    pub scheduling: ArenaScheduling,
    /// Map generator settings (one compiled map, shared by every
    /// arena — separate entity state per arena).
    pub map: MapGenConfig,
    /// Areanode tree depth per arena.
    pub areanode_depth: u32,
    /// Server template: `end_time`, cost model, checking, timeouts are
    /// common to all arenas; `kind` is honoured by `Dedicated` only;
    /// `arena_id` is overwritten per arena.
    pub server: ServerConfig,
    /// Pooled workers re-scan for runnable arenas at least this often
    /// while idle (bounds added latency when a datagram lands while
    /// every worker sleeps).
    pub poll_ns: Nanos,
    /// Minimum gap between two frames of the same arena (0 = purely
    /// event-driven, the sequential server's behaviour).
    pub frame_interval_ns: Nanos,
    /// Run the pooled frame body under a region-locking policy
    /// (uncontended inside one frame, but the lock/unlock pattern and
    /// the witness stay exercised). `None` = the sequential server's
    /// lock-free frames.
    pub pooled_locking: Option<LockPolicy>,
}

impl ArenaDirectoryConfig {
    pub fn new(arenas: u32, slots_per_arena: u16, server: ServerConfig) -> ArenaDirectoryConfig {
        ArenaDirectoryConfig {
            arenas,
            slots_per_arena,
            policy: AdmissionPolicy::Explicit,
            scheduling: ArenaScheduling::Pooled { workers: 4 },
            map: MapGenConfig::large_arena(0x6D_6D_31),
            areanode_depth: 4,
            server,
            poll_ns: 1_000_000,
            frame_interval_ns: 0,
            pooled_locking: None,
        }
    }
}

/// Per-pool accounting published when the last worker exits.
#[derive(Clone, Debug, Default)]
pub struct PoolReport {
    /// Frames executed by each worker.
    pub frames_by_worker: Vec<u64>,
    /// Frames executed of each arena.
    pub frames_by_arena: Vec<u64>,
    /// Time each worker spent waiting for a runnable arena.
    pub idle_ns_by_worker: Vec<Nanos>,
}

/// A spawned (not yet running) directory.
pub struct ArenaHandle {
    /// The front door: clients send `Connect` here.
    pub front_port: PortId,
    /// Request ports of each arena's runtime (`arena_ports[k][t]` =
    /// arena `k`, thread `t`); move traffic goes straight here.
    pub arena_ports: Vec<Vec<PortId>>,
    /// Per-arena server results, filled when the run ends.
    pub results: Vec<Arc<Mutex<ServerResults>>>,
    /// The arenas' worlds (final-state inspection, world hashes).
    pub worlds: Vec<Arc<GameWorld>>,
    /// Front-door routing counters, filled when the run ends.
    pub admission: Arc<Mutex<AdmissionStats>>,
    /// Pool accounting (`Pooled` scheduling only), filled when the run
    /// ends.
    pub pool: Option<Arc<Mutex<PoolReport>>>,
}

/// Spawn the directory onto `fabric`: all arena runtimes, the worker
/// pool (if pooled), and the front-door director task.
pub fn spawn_directory(fabric: &Arc<dyn Fabric>, cfg: ArenaDirectoryConfig) -> ArenaHandle {
    assert!(cfg.arenas >= 1, "directory needs at least one arena");
    let map = Arc::new(cfg.map.generate());
    let worlds: Vec<Arc<GameWorld>> = (0..cfg.arenas)
        .map(|_| {
            Arc::new(GameWorld::new(
                map.clone(),
                cfg.areanode_depth,
                cfg.slots_per_arena.max(1),
            ))
        })
        .collect();

    let (arena_ports, results, pool) = match cfg.scheduling {
        ArenaScheduling::Pooled { workers } => spawn_pool(fabric, &cfg, &worlds, workers),
        ArenaScheduling::Dedicated => {
            let mut ports = Vec::new();
            let mut results = Vec::new();
            for (k, world) in worlds.iter().enumerate() {
                let mut scfg = cfg.server.clone();
                scfg.arena_id = k as u16;
                let ServerHandle {
                    ports: p,
                    results: r,
                    ..
                } = spawn_server(fabric, scfg, world.clone());
                ports.push(p);
                results.push(r);
            }
            (ports, results, None)
        }
    };

    let admission = Arc::new(Mutex::new(AdmissionStats::default()));
    let front_port = fabric.alloc_bounded_port(REQUEST_QUEUE_CAP);
    {
        let ports = arena_ports.clone();
        let adm = admission.clone();
        let policy = cfg.policy;
        let capacity = cfg.slots_per_arena as u32;
        let cost = cfg.server.cost.clone();
        let end_time = cfg.server.end_time;
        fabric.spawn(
            "arena-director",
            None,
            Box::new(move |ctx| {
                director(
                    ctx, front_port, &ports, policy, capacity, &cost, end_time, &adm,
                )
            }),
        );
    }

    ArenaHandle {
        front_port,
        arena_ports,
        results,
        worlds,
        admission,
        pool,
    }
}

// ---------------------------------------------------------------------------
// Front door
// ---------------------------------------------------------------------------

#[allow(clippy::too_many_arguments)]
fn director(
    ctx: &TaskCtx,
    front: PortId,
    arena_ports: &[Vec<PortId>],
    policy: AdmissionPolicy,
    capacity: u32,
    cost: &parquake_server::CostModel,
    end_time: Nanos,
    out: &Mutex<AdmissionStats>,
) {
    let n = arena_ports.len();
    let mut stats = AdmissionStats {
        per_arena: vec![0; n],
        forwarded_per_arena: vec![0; n],
        ..AdmissionStats::default()
    };
    // Occupancy is an *estimate*: incremented on fresh placement,
    // decremented when a Disconnect passes the front door. Clients
    // disconnecting directly at their arena (the normal path) are not
    // seen, which only makes the estimate conservative.
    let mut occupancy = vec![0u32; n];
    // client id → placed arena (sticky routing for connect retries).
    let mut book: HashMap<u32, u16> = HashMap::new();
    // Round-robin home-block spreading inside each arena: connects are
    // dealt to the arena's threads in turn so no single thread's block
    // fills while others sit empty.
    let mut next_thread = vec![0usize; n];

    while ctx.wait_readable(front, Some(end_time)) {
        while let Some(raw) = ctx.try_recv(front) {
            ctx.charge(cost.recv);
            let Ok(msg) = ClientMessage::from_bytes(&raw.payload) else {
                stats.decode_rejected += 1;
                continue;
            };
            match msg {
                ClientMessage::Connect { client_id, arena } => {
                    if arena != 0 {
                        stats.explicit_requests += 1;
                    }
                    let placed = match book.get(&client_id) {
                        Some(&k) => {
                            stats.sticky += 1;
                            Some(k as usize)
                        }
                        None => {
                            let k = policy.place(arena, &occupancy, capacity);
                            if let Some(k) = k {
                                book.insert(client_id, k as u16);
                                occupancy[k] += 1;
                            }
                            k
                        }
                    };
                    match placed {
                        Some(k) => {
                            // Forward the raw datagram, preserving the
                            // client's source port: the arena acks (and
                            // replies) straight to the client. The
                            // arena id in the payload has served its
                            // purpose — the runtime ignores it and acks
                            // with its own id.
                            let t = next_thread[k] % arena_ports[k].len();
                            next_thread[k] = next_thread[k].wrapping_add(1);
                            ctx.send(raw.from, arena_ports[k][t], raw.payload);
                            stats.routed += 1;
                            stats.per_arena[k] += 1;
                            stats.forwarded_per_arena[k] += 1;
                        }
                        None => stats.rejected_full += 1,
                    }
                }
                ClientMessage::Disconnect { client_id } => match book.remove(&client_id) {
                    Some(k) => {
                        occupancy[k as usize] = occupancy[k as usize].saturating_sub(1);
                        ctx.send(raw.from, arena_ports[k as usize][0], raw.payload);
                        stats.forwarded_other += 1;
                        stats.forwarded_per_arena[k as usize] += 1;
                    }
                    None => stats.dropped_unknown += 1,
                },
                ClientMessage::Move { client_id, .. } => match book.get(&client_id) {
                    // A stray move from a client ignoring its ack's
                    // arena id: forward to its placement so the session
                    // still works, if degraded.
                    Some(&k) => {
                        ctx.send(raw.from, arena_ports[k as usize][0], raw.payload);
                        stats.forwarded_other += 1;
                        stats.forwarded_per_arena[k as usize] += 1;
                    }
                    None => stats.dropped_unknown += 1,
                },
            }
        }
    }
    *out.lock().unwrap() = stats; // lockcheck: allow(raw-sync)
}

// ---------------------------------------------------------------------------
// Shared worker pool
// ---------------------------------------------------------------------------

/// One arena's runtime state inside the pool. `frame` is mutated only
/// by the worker that currently holds the arena's claim flag.
struct ArenaCell {
    shared: Arc<ServerShared>,
    port: PortId,
    frame: UnsafeCell<ArenaFrame>,
}

struct ArenaFrame {
    stats: ThreadStats,
    frames: FrameStats,
    timeline: Timeline,
    frame_no: u32,
}

// SAFETY: `frame` is accessed only between claim (set under the pool
// lock) and release by the claiming worker, or by the last exiting
// worker after every claim flag is clear.
unsafe impl Sync for ArenaCell {}
unsafe impl Send for ArenaCell {}

impl ArenaCell {
    #[allow(clippy::mut_from_ref)]
    fn frame(&self) -> &mut ArenaFrame {
        // SAFETY: see type-level invariant.
        unsafe { &mut *self.frame.get() }
    }
}

struct PoolState {
    /// Arena k is currently being run by some worker.
    claimed: Vec<bool>,
    /// Earliest time arena k may start its next frame
    /// (`frame_interval_ns` pacing).
    next_due: Vec<Nanos>,
    /// Round-robin scan start, for fairness across arenas.
    rotor: usize,
    /// Workers that have left the loop.
    exited: u32,
    frames_by_worker: Vec<u64>,
    frames_by_arena: Vec<u64>,
    idle_ns_by_worker: Vec<Nanos>,
}

/// Pool scheduling state, guarded by the fabric lock `lock`. The lock
/// sits in the control layer (like the parallel server's frame-control
/// lock): it is never held while running a frame, so it can never rank
/// under a region lock.
struct Pool {
    lock: LockId,
    cond: CondId,
    state: UnsafeCell<PoolState>,
}

// SAFETY: `state` is only accessed while holding the fabric `lock`.
unsafe impl Sync for Pool {}
unsafe impl Send for Pool {}

impl Pool {
    #[allow(clippy::mut_from_ref)]
    fn state(&self) -> &mut PoolState {
        // SAFETY: see type-level invariant.
        unsafe { &mut *self.state.get() }
    }

    /// Enter the pool-scheduling critical section.
    // lockcheck: acquire-site
    fn enter(&self, ctx: &TaskCtx) {
        ctx.lock(self.lock);
    }

    /// Leave the pool-scheduling critical section.
    // lockcheck: acquire-site
    fn exit(&self, ctx: &TaskCtx) {
        ctx.unlock(self.lock);
    }
}

type PoolSpawn = (
    Vec<Vec<PortId>>,
    Vec<Arc<Mutex<ServerResults>>>,
    Option<Arc<Mutex<PoolReport>>>,
);

fn spawn_pool(
    fabric: &Arc<dyn Fabric>,
    cfg: &ArenaDirectoryConfig,
    worlds: &[Arc<GameWorld>],
    workers: u32,
) -> PoolSpawn {
    assert!(workers >= 1, "pool needs at least one worker");
    let n = worlds.len();
    let mut cells = Vec::with_capacity(n);
    let mut ports = Vec::with_capacity(n);
    let mut results = Vec::with_capacity(n);
    for (k, world) in worlds.iter().enumerate() {
        let mut scfg = cfg.server.clone();
        scfg.arena_id = k as u16;
        let shared = Arc::new(ServerShared::new(
            fabric,
            &scfg,
            world.clone(),
            1,
            cfg.pooled_locking,
        ));
        if cfg.pooled_locking.is_some() {
            shared.set_checking(true);
        } else {
            // The sequential frame body takes no region locks, so the
            // parallel protocol checkers have nothing to check.
            shared.world.links.set_checking(false);
            shared.world.store.set_checking(false);
        }
        ports.push(shared.ports.clone());
        results.push(Arc::new(Mutex::new(ServerResults::default())));
        cells.push(Arc::new(ArenaCell {
            port: shared.ports[0],
            shared,
            frame: UnsafeCell::new(ArenaFrame {
                stats: ThreadStats::new(),
                frames: FrameStats::new(),
                timeline: Timeline::default(),
                frame_no: 0,
            }),
        }));
    }

    let pool_lock = fabric.alloc_lock();
    if let Some(w) = fabric.witness() {
        w.classify(pool_lock, LockClass::Ctrl);
    }
    let pool = Arc::new(Pool {
        lock: pool_lock,
        cond: fabric.alloc_cond(),
        state: UnsafeCell::new(PoolState {
            claimed: vec![false; n],
            next_due: vec![0; n],
            rotor: 0,
            exited: 0,
            frames_by_worker: vec![0; workers as usize],
            frames_by_arena: vec![0; n],
            idle_ns_by_worker: vec![0; workers as usize],
        }),
    });
    let report = Arc::new(Mutex::new(PoolReport::default()));

    let cells = Arc::new(cells);
    for w in 0..workers {
        let cells = cells.clone();
        let pool = pool.clone();
        let report = report.clone();
        let results = results.clone();
        let end_time = cfg.server.end_time;
        let poll_ns = cfg.poll_ns.max(1);
        let frame_interval_ns = cfg.frame_interval_ns;
        fabric.spawn(
            &format!("arena-pool-{w}"),
            Some(w),
            Box::new(move |ctx| {
                pool_worker(
                    ctx,
                    w,
                    workers,
                    &cells,
                    &pool,
                    end_time,
                    poll_ns,
                    frame_interval_ns,
                    &results,
                    &report,
                )
            }),
        );
    }
    (ports, results, Some(report))
}

#[allow(clippy::too_many_arguments)]
fn pool_worker(
    ctx: &TaskCtx,
    w: u32,
    workers: u32,
    cells: &[Arc<ArenaCell>],
    pool: &Pool,
    end_time: Nanos,
    poll_ns: Nanos,
    frame_interval_ns: Nanos,
    results: &[Arc<Mutex<ServerResults>>],
    report: &Mutex<PoolReport>,
) {
    let n = cells.len();
    // A 1×1 pool degenerates to the sequential server's select loop:
    // no scheduling lock, no polling — byte-identical behaviour to
    // `ServerKind::Sequential`, so a default single-arena directory
    // adds zero overhead over today's server.
    let mut degenerate_frames = 0u64;
    if n == 1 && workers == 1 {
        let cell = &cells[0];
        loop {
            let t0 = ctx.now();
            if !ctx.wait_readable(cell.port, Some(end_time)) {
                break;
            }
            cell.frame()
                .stats
                .breakdown
                .add(Bucket::Idle, ctx.now() - t0);
            run_arena_frame(ctx, cell);
            if frame_interval_ns > 0 {
                ctx.sleep_until(ctx.now() + frame_interval_ns);
            }
            degenerate_frames += 1;
        }
    } else {
        pool_worker_scan(ctx, w, cells, pool, end_time, poll_ns, frame_interval_ns);
    }

    // Exit protocol: the last worker out publishes per-arena results
    // and the pool report. Claim flags are all clear by then, so the
    // frame cells are safe to read.
    pool.enter(ctx);
    let st = pool.state();
    if degenerate_frames > 0 {
        st.frames_by_worker[0] += degenerate_frames;
        st.frames_by_arena[0] += degenerate_frames;
    }
    st.exited += 1;
    let last = st.exited == workers;
    if last {
        for (k, cell) in cells.iter().enumerate() {
            let f = cell.frame();
            f.stats.queue_dropped = ctx.fabric().port_dropped(cell.port);
            let mut r = results[k].lock().unwrap(); // lockcheck: allow(raw-sync)
            r.threads = vec![f.stats.clone()];
            r.frames = f.frames.clone();
            r.timeline = f.timeline.clone();
            r.frame_count = f.frame_no as u64;
            r.leaf_count = cell.shared.world.tree.leaf_count() as u64;
        }
        let mut rep = report.lock().unwrap(); // lockcheck: allow(raw-sync)
        rep.frames_by_worker = st.frames_by_worker.clone();
        rep.frames_by_arena = st.frames_by_arena.clone();
        rep.idle_ns_by_worker = st.idle_ns_by_worker.clone();
    }
    pool.exit(ctx);
}

/// The general pool scheduling loop: claim a due arena under the pool
/// lock, run its frame unlocked, release, repeat.
fn pool_worker_scan(
    ctx: &TaskCtx,
    w: u32,
    cells: &[Arc<ArenaCell>],
    pool: &Pool,
    end_time: Nanos,
    poll_ns: Nanos,
    frame_interval_ns: Nanos,
) {
    let n = cells.len();
    loop {
        let now = ctx.now();
        if now >= end_time {
            break;
        }
        pool.enter(ctx);
        // Scan from the rotor for an unclaimed arena that is due and
        // has input waiting. `port_next_delivery` peeks without
        // claiming the port, so the scan is safe for ports the frame
        // body will drain later.
        let mut pick = None;
        {
            let st = pool.state();
            for i in 0..n {
                let k = (st.rotor + i) % n;
                if st.claimed[k] || st.next_due[k] > now {
                    continue;
                }
                if matches!(ctx.fabric().port_next_delivery(cells[k].port), Some(t) if t <= now) {
                    pick = Some(k);
                    break;
                }
            }
            if let Some(k) = pick {
                st.claimed[k] = true;
                st.rotor = (k + 1) % n;
            }
        }
        match pick {
            Some(k) => {
                pool.exit(ctx);
                run_arena_frame(ctx, &cells[k]);
                pool.enter(ctx);
                let st = pool.state();
                st.claimed[k] = false;
                st.next_due[k] = ctx.now() + frame_interval_ns;
                st.frames_by_worker[w as usize] += 1;
                st.frames_by_arena[k] += 1;
                // The arena is consumable again (it may already have
                // fresh input): wake idle workers to rescan.
                ctx.cond_broadcast(pool.cond);
                pool.exit(ctx);
            }
            None => {
                // Nothing runnable: sleep until the earliest moment an
                // arena could become runnable, or the poll bound —
                // whichever is sooner — then rescan.
                let st = pool.state();
                let mut deadline = now + poll_ns;
                for (k, cell) in cells.iter().enumerate() {
                    if st.claimed[k] {
                        continue;
                    }
                    if let Some(t) = ctx.fabric().port_next_delivery(cell.port) {
                        deadline = deadline.min(st.next_due[k].max(t));
                    }
                }
                let deadline = deadline.min(end_time).max(now + 1);
                let (waited, _) = ctx.cond_wait_until(pool.cond, pool.lock, deadline);
                pool.state().idle_ns_by_worker[w as usize] += waited;
                pool.exit(ctx);
            }
        }
    }
}

/// One complete frame of one arena — the sequential server's frame
/// body (§2.1: world update, drain requests, reply), run by whichever
/// pool worker claimed the arena.
fn run_arena_frame(ctx: &TaskCtx, cell: &ArenaCell) {
    let shared = &cell.shared;
    let port = cell.port;
    let f = cell.frame();
    ctx.charge(shared.cost.select_op);
    f.frame_no += 1;
    let frame_start = ctx.now();

    // P: world physics.
    let t0 = ctx.now();
    shared.run_world_update(ctx, port, &mut f.stats, f.frame_no);
    f.stats.breakdown.add(Bucket::World, ctx.now() - t0);
    f.stats.mastered += 1;

    // Rx/E: drain the request queue.
    let mut unused_mask = 0u64;
    let moves = shared.drain_requests(ctx, 0, port, &mut f.stats, &mut unused_mask);

    // T/Tx: replies for everyone who sent a request.
    let t0 = ctx.now();
    let global = shared.read_global_events(ctx, &mut f.stats);
    let all_slots: Vec<usize> = (0..shared.clients.capacity()).collect();
    shared.reply_for_slots(
        ctx,
        port,
        &all_slots,
        &global,
        f.frame_no,
        &mut f.stats,
        true,
    );
    shared.clear_global_events(ctx, &mut f.stats);
    f.stats.breakdown.add(Bucket::Reply, ctx.now() - t0);

    f.stats.frames += 1;
    f.frames.frames += 1;
    f.frames.frame_ns_sum += ctx.now() - frame_start;
    f.frames.note_frame_requests(&[moves]);
    f.frames.leaf_count = shared.world.tree.leaf_count() as u64;
    f.timeline.push(FrameSample {
        start_ns: frame_start,
        duration_ns: ctx.now() - frame_start,
        participants: 1,
        requests: moves,
        requests_max: moves,
        requests_min: moves,
        master: 0,
    });
}
