//! The arena directory: N worlds, one front door, one worker pool.
//!
//! ```text
//!                       ┌────────────── directory ──────────────┐
//!  Connect ──► front ──►│ admission ──► arena k runtime (1..N)  │──► ConnectAck{arena:k}
//!  Move ─────────────────────────────► arena k request port     │──► Reply
//!                       │     shared pool: workers 0..W         │
//!                       │ lifecycle notices ──► control port ───│──► ledger
//!                       └───────────────────────────────────────┘
//! ```
//!
//! Two scheduling shapes:
//!
//! * **Pooled** — every arena is a single-threaded sequential runtime
//!   (the paper's §2.1 frame body, verbatim); W pinned workers pull
//!   *whole frames* from whichever arena has work. The pool lock only
//!   guards the claim table — no worker ever holds it during a frame,
//!   and no worker ever touches two arenas at once, so the per-world
//!   locking discipline (and its witness) is untouched.
//! * **Dedicated** — every arena is a full `spawn_server` runtime with
//!   its own threads; assignment schemes and region locking run
//!   unchanged inside each arena. The directory only adds admission.
//!
//! The **director** task owns the front door. It never touches world
//! state: it decodes, places (stickily), and forwards the raw datagram
//! to the chosen arena *preserving the client's source port*, so the
//! arena replies straight to the client and the directory is off the
//! data path after admission.
//!
//! The director's population [`Ledger`] is kept truthful by
//! **lifecycle notices**: each arena runtime reports connect
//! accepts, disconnects, inactivity reclaims and rejects on a control
//! port the director drains between front-door batches. On that
//! corrected bookkeeping sits **elasticity** (pooled scheduling only):
//! `max_arenas` cells are pre-provisioned cold (the fabric requires all
//! allocation before `run()`), admission pressure brings one live
//! (spawning = flipping its claim-table liveness bit), and a live
//! non-boot arena whose occupancy stays zero past `linger_ns` is
//! reaped — its claim slot masked, its `ServerResults` published.
//! The elastic state machine per cell is thus
//! `cold → live → lingering → reaped (→ live again under pressure)`.

use std::cell::UnsafeCell;
use std::sync::{Arc, Mutex};

use parquake_bsp::mapgen::MapGenConfig;
use parquake_fabric::{CondId, Fabric, LockId, Nanos, PortId, TaskCtx};
use parquake_metrics::{
    Bucket, ElasticEvent, ElasticEventKind, ElasticStats, FrameSample, FrameStats, LockClass,
    ThreadStats, Timeline,
};
use parquake_protocol::{ClientMessage, Decode};
use parquake_server::clients::SlotState;
use parquake_server::runtime::{ServerShared, REQUEST_QUEUE_CAP};
use parquake_server::{
    spawn_server, LifecycleEvent, LockPolicy, ServerConfig, ServerHandle, ServerResults,
};
use parquake_sim::GameWorld;

use crate::admission::{AdmissionPolicy, AdmissionStats};
use crate::ledger::{Departure, Ledger};

/// How arena frames get processors.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ArenaScheduling {
    /// One shared pool of `workers` pinned tasks executes whole frames
    /// of whichever arena has pending input.
    Pooled { workers: u32 },
    /// Each arena gets its own full server runtime per the config
    /// template's `kind` (sequential or parallel with region locking).
    Dedicated,
}

/// Configuration for [`spawn_directory`].
#[derive(Clone, Debug)]
pub struct ArenaDirectoryConfig {
    /// Number of worlds live at boot.
    pub arenas: u32,
    /// Player capacity of each world.
    pub slots_per_arena: u16,
    /// Connect routing policy.
    pub policy: AdmissionPolicy,
    /// Processor scheduling shape.
    pub scheduling: ArenaScheduling,
    /// Map generator settings (one compiled map, shared by every
    /// arena — separate entity state per arena).
    pub map: MapGenConfig,
    /// Areanode tree depth per arena.
    pub areanode_depth: u32,
    /// Server template: `end_time`, cost model, checking, timeouts are
    /// common to all arenas; `kind` is honoured by `Dedicated` only;
    /// `arena_id` and `lifecycle_port` are overwritten per arena.
    pub server: ServerConfig,
    /// Pooled workers re-scan for runnable arenas at least this often
    /// while idle (bounds added latency when a datagram lands while
    /// every worker sleeps).
    pub poll_ns: Nanos,
    /// Minimum gap between two frames of the same arena (0 = purely
    /// event-driven, the sequential server's behaviour).
    pub frame_interval_ns: Nanos,
    /// Run the pooled frame body under a region-locking policy
    /// (uncontended inside one frame, but the lock/unlock pattern and
    /// the witness stay exercised). `None` = the sequential server's
    /// lock-free frames.
    pub pooled_locking: Option<LockPolicy>,
    /// Elasticity ceiling (pooled scheduling only): up to this many
    /// arenas may be live at once; cells beyond `arenas` start cold
    /// and are spawned under admission pressure. `0` (the default) and
    /// anything `<= arenas` mean a fixed fleet — exactly the old
    /// behaviour. Dedicated scheduling ignores this (its runtimes
    /// spawn real tasks at boot and cannot be grown).
    pub max_arenas: u32,
    /// How long a non-boot arena's occupancy must sit at zero before
    /// it is reaped.
    pub linger_ns: Nanos,
    /// Arena runtimes report lifecycle events to the director (on by
    /// default). Off reproduces PR 3's drifting occupancy estimate.
    pub lifecycle: bool,
    /// Pooled arenas with resident sessions run a frame at least this
    /// often even with no input queued, so leave/timeout maintenance
    /// (despawns, `Bye`s, lifecycle notices) cannot stall waiting for
    /// traffic that will never come. `0` = automatic: maintenance runs
    /// at 50 ms when the directory is elastic or reclaims are on,
    /// and stays off otherwise (keeping the 1×1 degenerate path
    /// byte-identical to the sequential server).
    pub maintenance_ns: Nanos,
    /// LRU bound on the director's book (entries). `0` = automatic:
    /// 4× the directory's total player capacity.
    pub book_cap: usize,
    /// The director wakes at least this often to drain lifecycle
    /// notices and run elastic bookkeeping while the front door is
    /// quiet.
    pub notice_poll_ns: Nanos,
}

impl ArenaDirectoryConfig {
    pub fn new(arenas: u32, slots_per_arena: u16, server: ServerConfig) -> ArenaDirectoryConfig {
        ArenaDirectoryConfig {
            arenas,
            slots_per_arena,
            policy: AdmissionPolicy::Explicit,
            scheduling: ArenaScheduling::Pooled { workers: 4 },
            map: MapGenConfig::large_arena(0x6D_6D_31),
            areanode_depth: 4,
            server,
            poll_ns: 1_000_000,
            frame_interval_ns: 0,
            pooled_locking: None,
            max_arenas: 0,
            linger_ns: 500_000_000,
            lifecycle: true,
            maintenance_ns: 0,
            book_cap: 0,
            notice_poll_ns: 2_000_000,
        }
    }
}

/// Per-pool accounting published when the last worker exits.
#[derive(Clone, Debug, Default)]
pub struct PoolReport {
    /// Frames executed by each worker.
    pub frames_by_worker: Vec<u64>,
    /// Frames executed of each arena.
    pub frames_by_arena: Vec<u64>,
    /// Time each worker spent waiting for a runnable arena.
    pub idle_ns_by_worker: Vec<Nanos>,
}

/// A spawned (not yet running) directory.
pub struct ArenaHandle {
    /// The front door: clients send `Connect` here.
    pub front_port: PortId,
    /// Request ports of each arena's runtime (`arena_ports[k][t]` =
    /// arena `k`, thread `t`); move traffic goes straight here. Sized
    /// `max_arenas` — cold cells have allocated ports from birth, so
    /// routing tables built over this vector tolerate arena birth and
    /// death mid-run.
    pub arena_ports: Vec<Vec<PortId>>,
    /// Per-arena server results, filled when the run ends (or at reap
    /// time for reaped arenas).
    pub results: Vec<Arc<Mutex<ServerResults>>>,
    /// The arenas' worlds (final-state inspection, world hashes).
    pub worlds: Vec<Arc<GameWorld>>,
    /// Front-door routing counters, filled when the run ends.
    pub admission: Arc<Mutex<AdmissionStats>>,
    /// Pool accounting (`Pooled` scheduling only), filled when the run
    /// ends.
    pub pool: Option<Arc<Mutex<PoolReport>>>,
    /// Spawn/reap accounting, filled when the run ends.
    pub elastic: Arc<Mutex<ElasticStats>>,
    /// The director's lifecycle control port (tests inject synthetic
    /// notices here). `None` when lifecycle reporting is disabled.
    pub lifecycle_port: Option<PortId>,
}

/// Spawn the directory onto `fabric`: all arena runtimes (live and
/// cold), the worker pool (if pooled), and the front-door director
/// task.
pub fn spawn_directory(fabric: &Arc<dyn Fabric>, cfg: ArenaDirectoryConfig) -> ArenaHandle {
    assert!(cfg.arenas >= 1, "directory needs at least one arena");
    let boot = cfg.arenas as usize;
    let max_arenas = match cfg.scheduling {
        ArenaScheduling::Pooled { .. } => (cfg.max_arenas as usize).max(boot),
        ArenaScheduling::Dedicated => boot,
    };
    let lifecycle_port = if cfg.lifecycle {
        Some(fabric.alloc_bounded_port(REQUEST_QUEUE_CAP))
    } else {
        None
    };
    let map = Arc::new(cfg.map.generate());
    let worlds: Vec<Arc<GameWorld>> = (0..max_arenas)
        .map(|_| {
            Arc::new(GameWorld::new(
                map.clone(),
                cfg.areanode_depth,
                cfg.slots_per_arena.max(1),
            ))
        })
        .collect();

    let (arena_ports, results, pool_parts, pool_report) = match cfg.scheduling {
        ArenaScheduling::Pooled { workers } => {
            let (ports, results, parts, report) =
                spawn_pool(fabric, &cfg, &worlds, workers, lifecycle_port);
            (ports, results, Some(parts), Some(report))
        }
        ArenaScheduling::Dedicated => {
            let mut ports = Vec::new();
            let mut results = Vec::new();
            for (k, world) in worlds.iter().enumerate() {
                let mut scfg = cfg.server.clone();
                scfg.arena_id = k as u16;
                scfg.lifecycle_port = lifecycle_port;
                let ServerHandle {
                    ports: p,
                    results: r,
                    ..
                } = spawn_server(fabric, scfg, world.clone());
                ports.push(p);
                results.push(r);
            }
            (ports, results, None, None)
        }
    };

    let admission = Arc::new(Mutex::new(AdmissionStats::default()));
    let elastic = Arc::new(Mutex::new(ElasticStats::default()));
    let front_port = fabric.alloc_bounded_port(REQUEST_QUEUE_CAP);
    let book_cap = if cfg.book_cap > 0 {
        cfg.book_cap
    } else {
        (max_arenas * cfg.slots_per_arena as usize)
            .saturating_mul(4)
            .max(64)
    };
    let env = DirectorEnv {
        front: front_port,
        lifecycle: lifecycle_port,
        arena_ports: arena_ports.clone(),
        policy: cfg.policy,
        capacity: cfg.slots_per_arena as u32,
        cost: cfg.server.cost.clone(),
        end_time: cfg.server.end_time,
        boot,
        linger_ns: cfg.linger_ns,
        notice_poll_ns: cfg.notice_poll_ns.max(1),
        book_cap,
        pool: pool_parts,
        results: results.clone(),
        out: admission.clone(),
        elastic_out: elastic.clone(),
    };
    fabric.spawn(
        "arena-director",
        None,
        Box::new(move |ctx| director(ctx, &env)),
    );

    ArenaHandle {
        front_port,
        arena_ports,
        results,
        worlds,
        admission,
        pool: pool_report,
        elastic,
        lifecycle_port,
    }
}

// ---------------------------------------------------------------------------
// Front door
// ---------------------------------------------------------------------------

/// Everything the director task needs, bundled so the closure stays
/// one move.
struct DirectorEnv {
    front: PortId,
    lifecycle: Option<PortId>,
    arena_ports: Vec<Vec<PortId>>,
    policy: AdmissionPolicy,
    capacity: u32,
    cost: parquake_server::CostModel,
    end_time: Nanos,
    /// Arenas live at boot (never reaped).
    boot: usize,
    linger_ns: Nanos,
    notice_poll_ns: Nanos,
    book_cap: usize,
    /// Pool internals for spawn/reap (pooled scheduling only).
    pool: Option<PoolParts>,
    results: Vec<Arc<Mutex<ServerResults>>>,
    out: Arc<Mutex<AdmissionStats>>,
    elastic_out: Arc<Mutex<ElasticStats>>,
}

/// The director's mutable state.
struct Director {
    stats: AdmissionStats,
    ledger: Ledger,
    /// Round-robin home-block spreading inside each arena: connects are
    /// dealt to the arena's threads in turn so no single thread's block
    /// fills while others sit empty.
    next_thread: Vec<usize>,
    /// The director's mirror of pool liveness (it is the only mutator,
    /// so the mirror never goes stale).
    live: Vec<bool>,
    /// When arena k's occupancy last hit zero (linger clock).
    empty_since: Vec<Option<Nanos>>,
    elastic: ElasticStats,
}

fn director(ctx: &TaskCtx, env: &DirectorEnv) {
    let n = env.arena_ports.len();
    let mut d = Director {
        stats: AdmissionStats {
            per_arena: vec![0; n],
            forwarded_per_arena: vec![0; n],
            ..AdmissionStats::default()
        },
        ledger: Ledger::new(n, env.book_cap),
        next_thread: vec![0usize; n],
        live: (0..n).map(|k| k < env.boot).collect(),
        empty_since: vec![None; n],
        elastic: ElasticStats {
            boot: env.boot as u32,
            max_arenas: n as u32,
            peak_live: env.boot as u32,
            ..ElasticStats::default()
        },
    };

    loop {
        let now = ctx.now();
        if now >= env.end_time {
            break;
        }
        // The front door is the main wait; lifecycle notices and linger
        // expiries bound the sleep so they are drained/acted on even
        // when no client traffic arrives.
        let mut deadline = now + env.notice_poll_ns;
        if let Some(lp) = env.lifecycle {
            if let Some(t) = ctx.fabric().port_next_delivery(lp) {
                deadline = deadline.min(t.max(now + 1));
            }
        }
        for k in env.boot..n {
            if let Some(t0) = d.empty_since[k] {
                deadline = deadline.min((t0 + env.linger_ns).max(now + 1));
            }
        }
        let deadline = deadline.min(env.end_time).max(now + 1);
        ctx.wait_readable(env.front, Some(deadline));
        while let Some(raw) = ctx.try_recv(env.front) {
            ctx.charge(env.cost.recv);
            handle_front(ctx, env, &mut d, raw.from, &raw.payload);
        }
        if let Some(lp) = env.lifecycle {
            // Notices are drained uncharged: they model an in-process
            // queue, not client traffic.
            while let Some(raw) = ctx.try_recv(lp) {
                handle_notice(&mut d, &raw.payload);
            }
        }
        elastic_reap(ctx, env, &mut d);
    }

    d.stats.placed = d.ledger.placed;
    d.stats.departed = d.ledger.departed;
    d.stats.resident = d.ledger.resident();
    d.stats.book_evicted = d.ledger.evicted;
    d.elastic.live_at_end = d.live.iter().filter(|&&l| l).count() as u32;
    *env.out.lock().unwrap() = d.stats; // lockcheck: allow(raw-sync)
    *env.elastic_out.lock().unwrap() = d.elastic; // lockcheck: allow(raw-sync)
}

fn handle_front(ctx: &TaskCtx, env: &DirectorEnv, d: &mut Director, from: PortId, payload: &[u8]) {
    let Ok(msg) = ClientMessage::from_bytes(payload) else {
        d.stats.decode_rejected += 1;
        return;
    };
    match msg {
        ClientMessage::Connect { client_id, arena } => {
            if arena != 0 {
                d.stats.explicit_requests += 1;
            }
            let placed = match d.ledger.touch(client_id) {
                Some(p) => {
                    d.stats.sticky += 1;
                    Some((p.arena as usize, p.thread as usize))
                }
                None => place_fresh(ctx, env, d, client_id, arena),
            };
            match placed {
                Some((k, t)) if k < env.arena_ports.len() => {
                    // Forward the raw datagram, preserving the client's
                    // source port: the arena acks (and replies)
                    // straight to the client. The arena id in the
                    // payload has served its purpose — the runtime
                    // ignores it and acks with its own id.
                    let t = t.min(env.arena_ports[k].len() - 1);
                    ctx.send(from, env.arena_ports[k][t], payload.to_vec());
                    d.stats.routed += 1;
                    d.stats.per_arena[k] += 1;
                    d.stats.forwarded_per_arena[k] += 1;
                }
                _ => d.stats.rejected_full += 1,
            }
        }
        ClientMessage::Disconnect { client_id } => {
            match d.ledger.remove(client_id, Departure::FrontDoor) {
                // Forward to the *home thread's* port: under static
                // assignment the client's slot lives in the
                // connect-time thread's block, and other threads never
                // scan it.
                Some(p) if (p.arena as usize) < env.arena_ports.len() => {
                    let k = p.arena as usize;
                    let t = (p.thread as usize).min(env.arena_ports[k].len() - 1);
                    ctx.send(from, env.arena_ports[k][t], payload.to_vec());
                    d.stats.forwarded_other += 1;
                    d.stats.forwarded_per_arena[k] += 1;
                }
                Some(_) => {}
                None => d.stats.dropped_unknown += 1,
            }
        }
        ClientMessage::Move { client_id, .. } => match d.ledger.touch(client_id) {
            // A stray move from a client ignoring its ack's arena id:
            // forward to its placement's home thread so the session
            // still works, if degraded.
            Some(p) if (p.arena as usize) < env.arena_ports.len() => {
                let k = p.arena as usize;
                let t = (p.thread as usize).min(env.arena_ports[k].len() - 1);
                ctx.send(from, env.arena_ports[k][t], payload.to_vec());
                d.stats.forwarded_other += 1;
                d.stats.forwarded_per_arena[k] += 1;
            }
            _ => d.stats.dropped_unknown += 1,
        },
    }
}

/// Place a never-before-seen client: policy first, then — if every
/// live arena is full — spawn pressure.
fn place_fresh(
    ctx: &TaskCtx,
    env: &DirectorEnv,
    d: &mut Director,
    client_id: u32,
    requested: u16,
) -> Option<(usize, usize)> {
    let k = d
        .policy_place(env, requested)
        .or_else(|| elastic_spawn(ctx, env, d))?;
    let t = d.next_thread[k] % env.arena_ports[k].len();
    d.next_thread[k] = d.next_thread[k].wrapping_add(1);
    d.ledger.place(client_id, k as u16, t as u16);
    d.empty_since[k] = None;
    Some((k, t))
}

impl Director {
    fn policy_place(&self, env: &DirectorEnv, requested: u16) -> Option<usize> {
        env.policy
            .place(requested, self.ledger.occupancy(), env.capacity, &self.live)
    }
}

/// Reconcile the ledger with one arena lifecycle notice.
fn handle_notice(d: &mut Director, payload: &[u8]) {
    let Ok(ev) = LifecycleEvent::from_bytes(payload) else {
        // Not a lifecycle datagram — a confused sender; count with the
        // front door's decode failures.
        d.stats.decode_rejected += 1;
        return;
    };
    match ev {
        LifecycleEvent::Connected {
            arena,
            client_id,
            thread,
        } => {
            d.stats.notice_connected += 1;
            match d.ledger.touch(client_id) {
                // The notice confirms what the book already says.
                Some(p) if p.arena == arena && p.thread == thread => {}
                // A client the director never placed (it connected at
                // the arena directly) or a stale booking: the arena is
                // the authority — (re)book it there.
                _ => {
                    d.ledger.place(client_id, arena, thread);
                }
            }
        }
        LifecycleEvent::Disconnected { arena, client_id }
        | LifecycleEvent::Reclaimed {
            arena, client_id, ..
        }
        | LifecycleEvent::Rejected { arena, client_id } => {
            match ev {
                LifecycleEvent::Disconnected { .. } => d.stats.notice_disconnected += 1,
                LifecycleEvent::Reclaimed { .. } => d.stats.notice_reclaimed += 1,
                LifecycleEvent::Rejected { .. } => d.stats.notice_rejected += 1,
                LifecycleEvent::Connected { .. } => unreachable!(),
            }
            // Evict only a booking *at that arena*: a late notice from
            // an old placement must not kill a newer one elsewhere.
            match d.ledger.touch(client_id) {
                Some(p) if p.arena == arena => {
                    d.ledger.remove(client_id, Departure::Notice);
                }
                _ => d.stats.notice_stale += 1,
            }
        }
    }
}

/// Bring a cold cell live under admission pressure (pooled only).
fn elastic_spawn(ctx: &TaskCtx, env: &DirectorEnv, d: &mut Director) -> Option<usize> {
    let parts = env.pool.as_ref()?;
    let k = d.live.iter().position(|&l| !l)?;
    parts.pool.enter(ctx);
    {
        let st = parts.pool.state();
        st.live[k] = true;
        st.next_due[k] = 0;
        st.sessions[k] = false;
        st.last_frame[k] = ctx.now();
        ctx.cond_broadcast(parts.pool.cond);
    }
    parts.pool.exit(ctx);
    d.live[k] = true;
    d.empty_since[k] = None;
    d.elastic.spawned += 1;
    let live_now = d.live.iter().filter(|&&l| l).count() as u32;
    d.elastic.peak_live = d.elastic.peak_live.max(live_now);
    d.elastic.events.push(ElasticEvent {
        at: ctx.now(),
        arena: k as u16,
        kind: ElasticEventKind::Spawned,
        live: live_now,
    });
    Some(k)
}

/// Reap live non-boot arenas whose occupancy has sat at zero past the
/// linger window (pooled only). A reaped cell's claim slot is masked
/// so workers skip it, and its results are published immediately; the
/// cell can be reborn by [`elastic_spawn`] (its world state is
/// retained — players were already despawned for occupancy to reach
/// zero, and a fresh population simply spawns into the aged world).
fn elastic_reap(ctx: &TaskCtx, env: &DirectorEnv, d: &mut Director) {
    let Some(parts) = env.pool.as_ref() else {
        return;
    };
    let now = ctx.now();
    for k in env.boot..d.live.len() {
        if !d.live[k] || d.ledger.occupancy()[k] > 0 {
            d.empty_since[k] = None;
            continue;
        }
        let since = *d.empty_since[k].get_or_insert(now);
        if now.saturating_sub(since) < env.linger_ns {
            continue;
        }
        parts.pool.enter(ctx);
        let st = parts.pool.state();
        if st.claimed[k] {
            // Mid-frame (a last maintenance frame, most likely): leave
            // the linger clock running and retry next tick.
            parts.pool.exit(ctx);
            continue;
        }
        st.live[k] = false;
        st.sessions[k] = false;
        // Claim flag clear + liveness masked: no worker will touch the
        // cell again, so its frame state is safe to snapshot here.
        let cell = &parts.cells[k];
        let f = cell.frame();
        f.stats.queue_dropped = ctx.fabric().port_dropped(cell.port);
        {
            let mut r = env.results[k].lock().unwrap(); // lockcheck: allow(raw-sync)
            r.threads = vec![f.stats.clone()];
            r.frames = f.frames.clone();
            r.timeline = f.timeline.clone();
            r.frame_count = f.frame_no as u64;
            r.leaf_count = cell.shared.world.tree.leaf_count() as u64;
        }
        parts.pool.exit(ctx);
        d.live[k] = false;
        d.empty_since[k] = None;
        d.elastic.reaped += 1;
        let live_now = d.live.iter().filter(|&&l| l).count() as u32;
        d.elastic.events.push(ElasticEvent {
            at: now,
            arena: k as u16,
            kind: ElasticEventKind::Reaped,
            live: live_now,
        });
    }
}

// ---------------------------------------------------------------------------
// Shared worker pool
// ---------------------------------------------------------------------------

/// One arena's runtime state inside the pool. `frame` is mutated only
/// by the worker that currently holds the arena's claim flag.
struct ArenaCell {
    shared: Arc<ServerShared>,
    port: PortId,
    frame: UnsafeCell<ArenaFrame>,
}

struct ArenaFrame {
    stats: ThreadStats,
    frames: FrameStats,
    timeline: Timeline,
    frame_no: u32,
}

// SAFETY: `frame` is accessed only between claim (set under the pool
// lock) and release by the claiming worker, by the director after
// masking liveness with the claim flag clear (reap), or by the last
// exiting worker after every claim flag is clear.
unsafe impl Sync for ArenaCell {}
unsafe impl Send for ArenaCell {}

impl ArenaCell {
    #[allow(clippy::mut_from_ref)]
    fn frame(&self) -> &mut ArenaFrame {
        // SAFETY: see type-level invariant.
        unsafe { &mut *self.frame.get() }
    }
}

struct PoolState {
    /// Arena k is currently being run by some worker.
    claimed: Vec<bool>,
    /// Arena k accepts frames (cold and reaped cells are masked; only
    /// the director flips these).
    live: Vec<bool>,
    /// Arena k had non-empty player slots after its last frame
    /// (written by the frame's worker while still owning the claim,
    /// read by the maintenance-due scan).
    sessions: Vec<bool>,
    /// When arena k's last frame finished (maintenance pacing).
    last_frame: Vec<Nanos>,
    /// Earliest time arena k may start its next frame
    /// (`frame_interval_ns` pacing).
    next_due: Vec<Nanos>,
    /// Round-robin scan start, for fairness across arenas.
    rotor: usize,
    /// Workers that have left the loop.
    exited: u32,
    frames_by_worker: Vec<u64>,
    frames_by_arena: Vec<u64>,
    idle_ns_by_worker: Vec<Nanos>,
}

/// Pool scheduling state, guarded by the fabric lock `lock`. The lock
/// sits in the control layer (like the parallel server's frame-control
/// lock): it is never held while running a frame, so it can never rank
/// under a region lock.
struct Pool {
    lock: LockId,
    cond: CondId,
    state: UnsafeCell<PoolState>,
}

// SAFETY: `state` is only accessed while holding the fabric `lock`.
unsafe impl Sync for Pool {}
unsafe impl Send for Pool {}

impl Pool {
    #[allow(clippy::mut_from_ref)]
    fn state(&self) -> &mut PoolState {
        // SAFETY: see type-level invariant.
        unsafe { &mut *self.state.get() }
    }

    /// Enter the pool-scheduling critical section.
    // lockcheck: acquire-site
    fn enter(&self, ctx: &TaskCtx) {
        ctx.lock(self.lock);
    }

    /// Leave the pool-scheduling critical section.
    // lockcheck: acquire-site
    fn exit(&self, ctx: &TaskCtx) {
        ctx.unlock(self.lock);
    }
}

/// The pool internals the director needs for spawn/reap.
struct PoolParts {
    pool: Arc<Pool>,
    cells: Arc<Vec<Arc<ArenaCell>>>,
}

type PoolSpawn = (
    Vec<Vec<PortId>>,
    Vec<Arc<Mutex<ServerResults>>>,
    PoolParts,
    Arc<Mutex<PoolReport>>,
);

fn spawn_pool(
    fabric: &Arc<dyn Fabric>,
    cfg: &ArenaDirectoryConfig,
    worlds: &[Arc<GameWorld>],
    workers: u32,
    lifecycle_port: Option<PortId>,
) -> PoolSpawn {
    assert!(workers >= 1, "pool needs at least one worker");
    let n = worlds.len();
    let boot = cfg.arenas as usize;
    // Maintenance frames keep session-holding arenas ticking without
    // input so despawns, reclaims and their notices cannot stall; on
    // automatically whenever the truth of "occupancy is zero" matters
    // (elastic fleet or inactivity reclaims configured).
    let maintenance_ns = if cfg.maintenance_ns > 0 {
        cfg.maintenance_ns
    } else if n > boot || cfg.server.client_timeout_ns > 0 {
        50_000_000
    } else {
        0
    };
    let mut cells = Vec::with_capacity(n);
    let mut ports = Vec::with_capacity(n);
    let mut results = Vec::with_capacity(n);
    for (k, world) in worlds.iter().enumerate() {
        let mut scfg = cfg.server.clone();
        scfg.arena_id = k as u16;
        scfg.lifecycle_port = lifecycle_port;
        let shared = Arc::new(ServerShared::new(
            fabric,
            &scfg,
            world.clone(),
            1,
            cfg.pooled_locking,
        ));
        if cfg.pooled_locking.is_some() {
            shared.set_checking(true);
        } else {
            // The sequential frame body takes no region locks, so the
            // parallel protocol checkers have nothing to check.
            shared.world.links.set_checking(false);
            shared.world.store.set_checking(false);
        }
        ports.push(shared.ports.clone());
        results.push(Arc::new(Mutex::new(ServerResults::default())));
        cells.push(Arc::new(ArenaCell {
            port: shared.ports[0],
            shared,
            frame: UnsafeCell::new(ArenaFrame {
                stats: ThreadStats::new(),
                frames: FrameStats::new(),
                timeline: Timeline::default(),
                frame_no: 0,
            }),
        }));
    }

    let pool_lock = fabric.alloc_lock();
    if let Some(w) = fabric.witness() {
        w.classify(pool_lock, LockClass::Ctrl);
    }
    let pool = Arc::new(Pool {
        lock: pool_lock,
        cond: fabric.alloc_cond(),
        state: UnsafeCell::new(PoolState {
            claimed: vec![false; n],
            live: (0..n).map(|k| k < boot).collect(),
            sessions: vec![false; n],
            last_frame: vec![0; n],
            next_due: vec![0; n],
            rotor: 0,
            exited: 0,
            frames_by_worker: vec![0; workers as usize],
            frames_by_arena: vec![0; n],
            idle_ns_by_worker: vec![0; workers as usize],
        }),
    });
    let report = Arc::new(Mutex::new(PoolReport::default()));

    let cells = Arc::new(cells);
    for w in 0..workers {
        let cells = cells.clone();
        let pool = pool.clone();
        let report = report.clone();
        let results = results.clone();
        let end_time = cfg.server.end_time;
        let poll_ns = cfg.poll_ns.max(1);
        let frame_interval_ns = cfg.frame_interval_ns;
        fabric.spawn(
            &format!("arena-pool-{w}"),
            Some(w),
            Box::new(move |ctx| {
                pool_worker(
                    ctx,
                    w,
                    workers,
                    &cells,
                    &pool,
                    end_time,
                    poll_ns,
                    frame_interval_ns,
                    maintenance_ns,
                    &results,
                    &report,
                )
            }),
        );
    }
    (ports, results, PoolParts { pool, cells }, report)
}

#[allow(clippy::too_many_arguments)]
fn pool_worker(
    ctx: &TaskCtx,
    w: u32,
    workers: u32,
    cells: &[Arc<ArenaCell>],
    pool: &Pool,
    end_time: Nanos,
    poll_ns: Nanos,
    frame_interval_ns: Nanos,
    maintenance_ns: Nanos,
    results: &[Arc<Mutex<ServerResults>>],
    report: &Mutex<PoolReport>,
) {
    let n = cells.len();
    // A 1×1 pool with no maintenance ticking degenerates to the
    // sequential server's select loop: no scheduling lock, no polling —
    // byte-identical behaviour to `ServerKind::Sequential`, so a
    // default single-arena directory adds zero overhead over today's
    // server.
    let mut degenerate_frames = 0u64;
    if n == 1 && workers == 1 && maintenance_ns == 0 {
        let cell = &cells[0];
        // `next_due` pacing, exactly like `pool_worker_scan`: input
        // arriving mid-interval is processed *at* `next_due`, not an
        // extra interval later. With `frame_interval_ns == 0` the
        // sleep never fires and the loop is the sequential server's.
        let mut next_due: Nanos = 0;
        loop {
            let t0 = ctx.now();
            if !ctx.wait_readable(cell.port, Some(end_time)) {
                break;
            }
            cell.frame()
                .stats
                .breakdown
                .add(Bucket::Idle, ctx.now() - t0);
            if frame_interval_ns > 0 && ctx.now() < next_due {
                ctx.sleep_until(next_due);
            }
            run_arena_frame(ctx, cell);
            next_due = ctx.now() + frame_interval_ns;
            degenerate_frames += 1;
        }
    } else {
        pool_worker_scan(
            ctx,
            w,
            cells,
            pool,
            end_time,
            poll_ns,
            frame_interval_ns,
            maintenance_ns,
        );
    }

    // Exit protocol: the last worker out publishes per-arena results
    // and the pool report. Claim flags are all clear by then, so the
    // frame cells are safe to read.
    pool.enter(ctx);
    let st = pool.state();
    if degenerate_frames > 0 {
        st.frames_by_worker[0] += degenerate_frames;
        st.frames_by_arena[0] += degenerate_frames;
    }
    st.exited += 1;
    let last = st.exited == workers;
    if last {
        for (k, cell) in cells.iter().enumerate() {
            let f = cell.frame();
            f.stats.queue_dropped = ctx.fabric().port_dropped(cell.port);
            let mut r = results[k].lock().unwrap(); // lockcheck: allow(raw-sync)
            r.threads = vec![f.stats.clone()];
            r.frames = f.frames.clone();
            r.timeline = f.timeline.clone();
            r.frame_count = f.frame_no as u64;
            r.leaf_count = cell.shared.world.tree.leaf_count() as u64;
        }
        let mut rep = report.lock().unwrap(); // lockcheck: allow(raw-sync)
        rep.frames_by_worker = st.frames_by_worker.clone();
        rep.frames_by_arena = st.frames_by_arena.clone();
        rep.idle_ns_by_worker = st.idle_ns_by_worker.clone();
    }
    pool.exit(ctx);
}

/// The general pool scheduling loop: claim a due arena under the pool
/// lock, run its frame unlocked, release, repeat.
#[allow(clippy::too_many_arguments)]
fn pool_worker_scan(
    ctx: &TaskCtx,
    w: u32,
    cells: &[Arc<ArenaCell>],
    pool: &Pool,
    end_time: Nanos,
    poll_ns: Nanos,
    frame_interval_ns: Nanos,
    maintenance_ns: Nanos,
) {
    let n = cells.len();
    loop {
        let now = ctx.now();
        if now >= end_time {
            break;
        }
        pool.enter(ctx);
        // Scan from the rotor for an unclaimed live arena that is due
        // and has either input waiting or a maintenance frame owed.
        // `port_next_delivery` peeks without claiming the port, so the
        // scan is safe for ports the frame body will drain later.
        let mut pick = None;
        {
            let st = pool.state();
            for i in 0..n {
                let k = (st.rotor + i) % n;
                if st.claimed[k] || !st.live[k] || st.next_due[k] > now {
                    continue;
                }
                let input =
                    matches!(ctx.fabric().port_next_delivery(cells[k].port), Some(t) if t <= now);
                let maint = maintenance_ns > 0
                    && st.sessions[k]
                    && now >= st.last_frame[k] + maintenance_ns;
                if input || maint {
                    pick = Some(k);
                    break;
                }
            }
            if let Some(k) = pick {
                st.claimed[k] = true;
                st.rotor = (k + 1) % n;
            }
        }
        match pick {
            Some(k) => {
                pool.exit(ctx);
                run_arena_frame(ctx, &cells[k]);
                // Still owning the claim: record whether the arena has
                // resident sessions, for the maintenance-due scan.
                let has_sessions = {
                    let shared = &cells[k].shared;
                    (0..shared.clients.capacity())
                        .any(|i| shared.clients.slot(i).state != SlotState::Empty)
                };
                pool.enter(ctx);
                let st = pool.state();
                st.claimed[k] = false;
                st.next_due[k] = ctx.now() + frame_interval_ns;
                st.last_frame[k] = ctx.now();
                st.sessions[k] = has_sessions;
                st.frames_by_worker[w as usize] += 1;
                st.frames_by_arena[k] += 1;
                // The arena is consumable again (it may already have
                // fresh input): wake idle workers to rescan.
                ctx.cond_broadcast(pool.cond);
                pool.exit(ctx);
            }
            None => {
                // Nothing runnable: sleep until the earliest moment an
                // arena could become runnable — queued input, a
                // maintenance frame coming due — or the poll bound,
                // whichever is sooner — then rescan.
                let st = pool.state();
                let mut deadline = now + poll_ns;
                for (k, cell) in cells.iter().enumerate() {
                    if st.claimed[k] || !st.live[k] {
                        continue;
                    }
                    if let Some(t) = ctx.fabric().port_next_delivery(cell.port) {
                        deadline = deadline.min(st.next_due[k].max(t));
                    }
                    if maintenance_ns > 0 && st.sessions[k] {
                        deadline =
                            deadline.min(st.next_due[k].max(st.last_frame[k] + maintenance_ns));
                    }
                }
                let deadline = deadline.min(end_time).max(now + 1);
                let (waited, _) = ctx.cond_wait_until(pool.cond, pool.lock, deadline);
                pool.state().idle_ns_by_worker[w as usize] += waited;
                pool.exit(ctx);
            }
        }
    }
}

/// One complete frame of one arena — the sequential server's frame
/// body (§2.1: world update, drain requests, reply), run by whichever
/// pool worker claimed the arena.
fn run_arena_frame(ctx: &TaskCtx, cell: &ArenaCell) {
    let shared = &cell.shared;
    let port = cell.port;
    let f = cell.frame();
    ctx.charge(shared.cost.select_op);
    f.frame_no += 1;
    let frame_start = ctx.now();

    // P: world physics.
    let t0 = ctx.now();
    shared.run_world_update(ctx, port, &mut f.stats, f.frame_no);
    f.stats.breakdown.add(Bucket::World, ctx.now() - t0);
    f.stats.mastered += 1;

    // Rx/E: drain the request queue.
    let mut unused_mask = 0u64;
    let moves = shared.drain_requests(ctx, 0, port, &mut f.stats, &mut unused_mask);

    // T/Tx: replies for everyone who sent a request.
    let t0 = ctx.now();
    let global = shared.read_global_events(ctx, &mut f.stats);
    let all_slots: Vec<usize> = (0..shared.clients.capacity()).collect();
    shared.reply_for_slots(
        ctx,
        port,
        &all_slots,
        &global,
        f.frame_no,
        &mut f.stats,
        true,
    );
    shared.clear_global_events(ctx, &mut f.stats);
    f.stats.breakdown.add(Bucket::Reply, ctx.now() - t0);

    f.stats.frames += 1;
    f.frames.frames += 1;
    f.frames.frame_ns_sum += ctx.now() - frame_start;
    f.frames.note_frame_requests(&[moves]);
    f.frames.leaf_count = shared.world.tree.leaf_count() as u64;
    f.timeline.push(FrameSample {
        start_ns: frame_start,
        duration_ns: ctx.now() - frame_start,
        participants: 1,
        requests: moves,
        requests_max: moves,
        requests_min: moves,
        master: 0,
    });
}
