//! Multi-arena layer: many small worlds multiplexed on one machine.
//!
//! The paper parallelizes *one* world across the machine's processors.
//! Production deployments of the original server ran the dual: many
//! independent game worlds ("arenas") packed onto one machine, each
//! world small enough that its frame is cheap, with the machine's
//! parallelism spent *across* worlds instead of *within* one. This
//! crate adds that deployment shape on top of the existing runtime
//! without touching the per-world frame protocol:
//!
//! * [`directory::spawn_directory`] builds an **arena directory**: N
//!   independent [`parquake_sim::GameWorld`]s plus server runtimes, and
//!   either
//!   * schedules their frames as tasks on one **shared worker pool**
//!     ([`ArenaScheduling::Pooled`]) — 4 workers serve 4×64 players in
//!     4 arenas where the paper's parallel server serves 1×256 — or
//!   * gives each arena its own full parallel runtime
//!     ([`ArenaScheduling::Dedicated`]), assignment schemes and region
//!     locking intact inside each arena.
//! * [`admission::AdmissionPolicy`] routes `Connect`s arriving at the
//!   directory's **front door** to an arena: fill-first, least-loaded,
//!   or honouring an explicit arena request carried by the protocol's
//!   backward-compatible arena-id extension (absent ⇒ arena 0).
//! * Per-arena observability: every arena publishes its own
//!   [`parquake_server::ServerResults`]; the pool publishes frame and
//!   idle accounting per worker and per arena; admission publishes
//!   routing counters. `parquake_metrics::arena` rolls these up.
//! * **Truthful occupancy** ([`ledger::Ledger`]): arena runtimes report
//!   lifecycle events (connect accepted / disconnect / inactivity
//!   reclaim / reject) to the director over a control port, so the
//!   director's population ledger tracks server-side slot churn and
//!   closes the identity `placed == departed + resident`.
//! * **Elasticity**: with `max_arenas > arenas` the pooled directory
//!   pre-provisions cold arena cells and brings one live when every
//!   live arena is full (spawn under admission pressure); an arena
//!   whose occupancy stays zero past a linger window is drained and
//!   reaped (its `ServerResults` published, its claim slot masked).
//!   Spawn/reap transitions land in `parquake_metrics::ElasticStats`.
//! * **Supervision** (opt-in): pooled frames run behind `catch_unwind`
//!   so a panic fates only its arena; workers checkpoint each arena's
//!   world + slot table ([`checkpoint::CheckpointRing`]); the
//!   director's watchdog condemns stuck frames; and
//!   [`supervisor`] restores fated arenas from their last checkpoint,
//!   replaying the [`ledger::Ledger`] so the population identity
//!   survives restarts. Sustained overload degrades gracefully
//!   (stretched frame intervals + per-client move coalescing) instead
//!   of dropping input. Accounting lands in
//!   `parquake_metrics::SupervisorStats`.
//! * **Live migration** ([`migrate`], opt-in): the director fences a
//!   hot arena's slot with the same claim flag the supervisor uses,
//!   carries the player across in a validated `sim::snapshot` capsule,
//!   rebooks the [`ledger::Ledger`] in place (the population identity
//!   never opens), emits a `Migrated` lifecycle notice, and lets the
//!   destination re-ack unprompted so the client rides rebind grace
//!   exactly as crash recovery does. Spread rebalance keeps live
//!   populations level; drain-before-reap empties lingering elastic
//!   arenas instead of waiting their clients out.
//!
//! The layer is strictly additive: a 1-arena pooled directory runs the
//! exact sequential frame body, and arena 0 traffic is byte-identical
//! to the pre-arena wire format.

pub mod admission;
pub mod checkpoint;
pub mod directory;
pub mod ledger;
pub mod migrate;
pub mod supervisor;

pub use admission::{AdmissionPolicy, AdmissionStats};
pub use checkpoint::{Checkpoint, CheckpointRing};
pub use directory::{
    spawn_directory, ArenaDirectoryConfig, ArenaHandle, ArenaScheduling, InjectedPanic, PoolReport,
};
pub use ledger::{Departure, Ledger, Placement};
