//! The director-side arena supervisor: watchdog + checkpoint restore.
//!
//! Fate machine per pooled arena (see DESIGN.md §9):
//!
//! ```text
//!            frame panics (caught)          claim released
//! healthy ──────────────────────► crashed ───────────────┐
//!    │                                                    │
//!    │ claimed frame overruns watchdog_ns                 ▼
//!    └──────────────────────────► condemned ────► restoring ──► live
//!                                  (stuck)     (claim fenced by
//!                                                the director)
//! ```
//!
//! The supervisor runs inside the director's loop, between front-door
//! batches. It never races a worker: crashed arenas already released
//! their claim, condemned arenas are restored only after the stuck
//! frame returns its claim, and the restore itself happens *with the
//! claim flag set* — the same fence workers use — so no worker can
//! touch the cell mid-restore. Restoration rewinds the arena's world
//! and slot table to the newest checkpoint, then replays the ledger:
//! placements the checkpoint never saw depart (a synthetic notice),
//! checkpointed clients the book lost are re-booked, and everyone else
//! keeps their sticky placement — so `placed == departed + resident`
//! survives the restart and clients ride through on the connect-retry
//! rebind grace (their slot is reinstated with `needs_ack`, so the
//! arena re-acks them unprompted).

use std::collections::HashSet;

use parquake_fabric::{Nanos, TaskCtx};
use parquake_metrics::{SupervisorEvent, SupervisorEventKind};
use parquake_server::clients::SlotState;

use crate::directory::{ArenaFate, Director, DirectorEnv, PoolParts};
use crate::ledger::Departure;

/// One supervision pass: watchdog sweep, then restore every restorable
/// fated arena. Called from the director loop; no-op unless the
/// directory is pooled and supervised.
pub(crate) fn supervise(ctx: &TaskCtx, env: &DirectorEnv, d: &mut Director) {
    if !env.supervised {
        return;
    }
    let Some(parts) = env.pool.as_ref() else {
        return;
    };
    let now = ctx.now();
    let n = parts.cells.len();
    let mut to_restore: Vec<(usize, Nanos)> = Vec::new();
    parts.pool.enter(ctx);
    {
        let st = parts.pool.state();
        for k in 0..n {
            match st.fate[k] {
                // Watchdog: a claimed frame running past the bound
                // cannot be preempted — condemn the arena (mask
                // liveness, mark stuck) so the releasing worker leaves
                // it dead and restore happens below, on a later pass,
                // once the claim clears.
                ArenaFate::Healthy
                    if st.claimed[k]
                        && now.saturating_sub(st.claim_started[k]) > env.watchdog_ns =>
                {
                    st.fate[k] = ArenaFate::Condemned { at: now };
                    st.live[k] = false;
                    d.sup.stuck_detected += 1;
                    d.sup.events.push(SupervisorEvent {
                        at: now,
                        arena: k as u16,
                        kind: SupervisorEventKind::Stuck,
                    });
                }
                ArenaFate::Crashed { at } if !st.claimed[k] => {
                    // Fence the cell with the claim flag so the
                    // restore can run outside the pool lock.
                    st.claimed[k] = true;
                    d.sup.events.push(SupervisorEvent {
                        at,
                        arena: k as u16,
                        kind: SupervisorEventKind::Panicked,
                    });
                    to_restore.push((k, at));
                }
                ArenaFate::Condemned { at } if !st.claimed[k] => {
                    st.claimed[k] = true;
                    to_restore.push((k, at));
                }
                _ => {}
            }
        }
    }
    parts.pool.exit(ctx);

    for (k, failed_at) in to_restore {
        restore_arena(ctx, d, parts, k, failed_at);
    }
}

/// Rewind arena `k` to its newest checkpoint and bring it back live.
/// The caller has fenced the cell (claim flag set), so the cell is
/// exclusively the director's until the flag clears.
fn restore_arena(ctx: &TaskCtx, d: &mut Director, parts: &PoolParts, k: usize, failed_at: Nanos) {
    let cell = &parts.cells[k];
    let g = cell.guard();
    let now0 = ctx.now();
    // (client_id, connect-time thread) of every checkpointed session,
    // in slot order — deterministic replay.
    let mut resident: Vec<(u32, u16)> = Vec::new();
    if let Some(cp) = g.ring.latest() {
        // The codec validates the whole image before mutating, so a
        // failed restore (impossible unless the ring is corrupt)
        // leaves the crash state in place; the slot wipe below still
        // quiesces the arena either way.
        let _ = cell.shared.world.restore_bytes(&cp.world);
        cell.shared.restore_slots(&cp.slots, now0);
        cell.frame().frame_no = cp.frame_no;
        // Modelled cost: the deserializing memcpy, mirroring
        // checkpoint capture.
        ctx.charge((cp.world.len() as u64 >> 6).max(1_000));
        for s in &cp.slots {
            resident.push((s.client_id, s.owner as u16));
        }
    } else {
        // Crashed before any checkpoint — unreachable from the pooled
        // path (the first claim checkpoints before the lottery), but
        // quiesce to an empty slot table on the pristine world anyway.
        cell.shared.restore_slots(&[], now0);
    }

    // Ledger replay: the book must agree with the restored slot table.
    let arena = k as u16;
    let checkpointed: HashSet<u32> = resident.iter().map(|&(id, _)| id).collect();
    for (cid, _) in d.ledger.booked_in(arena) {
        if !checkpointed.contains(&cid) {
            // Placed after the checkpoint: that session no longer
            // exists server-side. Depart it like an arena notice; the
            // client's retry re-places it (stickiness was lost with
            // the slot).
            d.ledger.remove(cid, Departure::Notice);
        }
    }
    let booked: HashSet<u32> = d
        .ledger
        .booked_in(arena)
        .iter()
        .map(|&(id, _)| id)
        .collect();
    let mut wiped = 0usize;
    for &(cid, thread) in &resident {
        if booked.contains(&cid) {
            continue;
        }
        match d.ledger.lookup(cid) {
            // Booked at ANOTHER arena: the client migrated away after
            // this checkpoint was taken. The checkpoint is older than
            // the handoff, so the book wins — wipe the resurrected
            // slot instead of re-booking it, or the session would
            // exist in two worlds at once.
            Some(p) if p.arena != arena => {
                wipe_resurrected_slot(cell, cid);
                d.sup.stale_restored_slots += 1;
                wiped += 1;
            }
            // Checkpointed but lost from the book (LRU eviction, or an
            // interleaved departure notice): the restored slot is the
            // authority — re-book it.
            _ => {
                d.ledger.place(cid, arena, thread);
                d.sup.replayed_placements += 1;
            }
        }
    }

    // Back live: drop the fence, reset pacing so queued traffic (which
    // kept accumulating on the arena's bounded port throughout) drains
    // immediately, and wake the workers.
    parts.pool.enter(ctx);
    {
        let st = parts.pool.state();
        st.fate[k] = ArenaFate::Healthy;
        st.claimed[k] = false;
        st.live[k] = true;
        st.next_due[k] = 0;
        st.last_frame[k] = ctx.now();
        st.sessions[k] = resident.len() > wiped;
        ctx.cond_broadcast(parts.pool.cond);
    }
    parts.pool.exit(ctx);

    let now = ctx.now();
    d.sup
        .note_restore(now, arena, now.saturating_sub(failed_at));
}

/// A restored slot whose client the ledger shows booked at another
/// arena is stale — despawn its entity and clear the slot so the
/// session lives only where the book says it does.
fn wipe_resurrected_slot(cell: &crate::directory::ArenaCell, cid: u32) {
    let clients = &cell.shared.clients;
    for idx in 0..clients.capacity() {
        let slot = clients.slot(idx);
        if slot.state != SlotState::Empty && slot.client_id == cid {
            cell.shared.world.despawn_player(idx as u16);
            slot.state = SlotState::Empty;
            slot.leaving = false;
            slot.needs_ack = false;
            slot.requests_this_frame = 0;
            slot.events.clear();
            slot.baseline.clear();
            return;
        }
    }
}
