//! Property-based tests for the math substrate.

use parquake_math::vec3::vec3;
use parquake_math::{Aabb, Pcg32, Vec3};
use proptest::prelude::*;

fn finite_f32() -> impl Strategy<Value = f32> {
    -1000.0f32..1000.0f32
}

fn arb_vec3() -> impl Strategy<Value = Vec3> {
    (finite_f32(), finite_f32(), finite_f32()).prop_map(|(x, y, z)| vec3(x, y, z))
}

fn arb_aabb() -> impl Strategy<Value = Aabb> {
    (arb_vec3(), arb_vec3()).prop_map(|(a, b)| Aabb::from_corners(a, b))
}

proptest! {
    #[test]
    fn dot_is_commutative(a in arb_vec3(), b in arb_vec3()) {
        prop_assert_eq!(a.dot(b), b.dot(a));
    }

    #[test]
    fn cross_is_orthogonal(a in arb_vec3(), b in arb_vec3()) {
        let c = a.cross(b);
        // |a·(a×b)| should be tiny relative to the magnitudes involved.
        let scale = (a.length() * b.length()).max(1.0);
        prop_assert!(a.dot(c).abs() <= scale * scale * 1e-3);
        prop_assert!(b.dot(c).abs() <= scale * scale * 1e-3);
    }

    #[test]
    fn normalized_has_unit_length_or_zero(a in arb_vec3()) {
        let n = a.normalized();
        if a.length() > 1e-6 {
            prop_assert!((n.length() - 1.0).abs() < 1e-4);
        } else {
            prop_assert_eq!(n, Vec3::ZERO);
        }
    }

    #[test]
    fn aabb_union_contains_both(a in arb_aabb(), b in arb_aabb()) {
        let u = a.union(&b);
        prop_assert!(u.contains(&a));
        prop_assert!(u.contains(&b));
    }

    #[test]
    fn aabb_intersection_is_symmetric(a in arb_aabb(), b in arb_aabb()) {
        prop_assert_eq!(a.intersects(&b), b.intersects(&a));
    }

    #[test]
    fn swept_box_contains_endpoints(b in arb_aabb(), d in arb_vec3()) {
        let s = b.swept(d);
        prop_assert!(s.contains(&b));
        prop_assert!(s.contains(&b.translated(d)));
    }

    #[test]
    fn sweep_hit_fraction_is_valid_and_touches(b in arb_aabb(), d in arb_vec3(), t in arb_aabb()) {
        if let Some(frac) = b.sweep_hit(d, &t) {
            prop_assert!((0.0..=1.0).contains(&frac));
            // Slightly past the hit fraction, the boxes must overlap
            // (the entry fraction is where faces first touch).
            let eps = 1e-3f32;
            let probe = b.translated(d * (frac + eps).min(1.0));
            let slack = Vec3::splat(d.length() * eps + 1e-3);
            prop_assert!(probe.inflated(slack).intersects(&t));
        }
    }

    #[test]
    fn sweep_hit_zero_delta_matches_overlap(b in arb_aabb(), t in arb_aabb()) {
        let hit = b.sweep_hit(Vec3::ZERO, &t);
        if b.intersects(&t) {
            prop_assert_eq!(hit, Some(0.0));
        } else {
            prop_assert_eq!(hit, None);
        }
    }

    #[test]
    fn pcg_below_bound_holds(seed in any::<u64>(), bound in 1u32..10_000) {
        let mut rng = Pcg32::seeded(seed);
        for _ in 0..64 {
            prop_assert!(rng.below(bound) < bound);
        }
    }

    #[test]
    fn pcg_streams_reproducible(seed in any::<u64>(), stream in any::<u64>()) {
        let mut a = Pcg32::new(seed, stream);
        let mut b = Pcg32::new(seed, stream);
        for _ in 0..32 {
            prop_assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
