//! A tiny deterministic RNG (PCG-XSH-RR 32).
//!
//! Substrate crates need reproducible pseudo-randomness (map generation,
//! bot behaviour, failure injection) without threading a `rand`
//! dependency everywhere. PCG32 is small, fast, statistically solid for
//! workload generation, and — crucially for the reproduction — the same
//! seed always produces the same world and the same bot trajectories on
//! every platform.

/// PCG-XSH-RR 32-bit generator with 64-bit state.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Pcg32 {
    state: u64,
    inc: u64,
}

const PCG_MULT: u64 = 6364136223846793005;

impl Pcg32 {
    /// Create from a seed and stream id. Different streams with the same
    /// seed are independent sequences.
    pub fn new(seed: u64, stream: u64) -> Self {
        let mut rng = Pcg32 {
            state: 0,
            inc: (stream << 1) | 1,
        };
        rng.next_u32();
        rng.state = rng.state.wrapping_add(seed);
        rng.next_u32();
        rng
    }

    /// Single-argument constructor on stream 0.
    pub fn seeded(seed: u64) -> Self {
        Pcg32::new(seed, 0)
    }

    /// Next 32 uniformly random bits.
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        let old = self.state;
        self.state = old.wrapping_mul(PCG_MULT).wrapping_add(self.inc);
        let xorshifted = (((old >> 18) ^ old) >> 27) as u32;
        let rot = (old >> 59) as u32;
        xorshifted.rotate_right(rot)
    }

    /// Next 64 uniformly random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        ((self.next_u32() as u64) << 32) | self.next_u32() as u64
    }

    /// Uniform integer in `[0, bound)` via Lemire's multiply-shift with
    /// rejection (unbiased). `bound` must be non-zero.
    pub fn below(&mut self, bound: u32) -> u32 {
        assert!(bound > 0, "below(0) is meaningless");
        loop {
            let x = self.next_u32();
            let m = (x as u64) * (bound as u64);
            let lo = m as u32;
            if lo >= bound || lo >= bound.wrapping_neg() % bound {
                return (m >> 32) as u32;
            }
        }
    }

    /// Uniform integer in the inclusive range `[lo, hi]`.
    pub fn range_i32(&mut self, lo: i32, hi: i32) -> i32 {
        assert!(lo <= hi);
        let span = (hi as i64 - lo as i64 + 1) as u32;
        lo.wrapping_add(self.below(span) as i32)
    }

    /// Uniform float in `[0, 1)`.
    #[inline]
    pub fn unit_f32(&mut self) -> f32 {
        (self.next_u32() >> 8) as f32 * (1.0 / (1 << 24) as f32)
    }

    /// Uniform float in `[lo, hi)`.
    #[inline]
    pub fn range_f32(&mut self, lo: f32, hi: f32) -> f32 {
        lo + self.unit_f32() * (hi - lo)
    }

    /// Bernoulli trial.
    #[inline]
    pub fn chance(&mut self, p: f32) -> bool {
        self.unit_f32() < p
    }

    /// Pick a uniformly random element of a non-empty slice.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "pick from empty slice");
        &items[self.below(items.len() as u32) as usize]
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below(i as u32 + 1) as usize;
            items.swap(i, j);
        }
    }

    /// Derive an independent child generator (for e.g. per-bot streams).
    pub fn fork(&mut self, stream: u64) -> Pcg32 {
        Pcg32::new(self.next_u64(), stream)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = Pcg32::seeded(42);
        let mut b = Pcg32::seeded(42);
        for _ in 0..100 {
            assert_eq!(a.next_u32(), b.next_u32());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Pcg32::seeded(1);
        let mut b = Pcg32::seeded(2);
        let same = (0..32).filter(|_| a.next_u32() == b.next_u32()).count();
        assert!(same < 4);
    }

    #[test]
    fn different_streams_diverge() {
        let mut a = Pcg32::new(7, 1);
        let mut b = Pcg32::new(7, 2);
        let same = (0..32).filter(|_| a.next_u32() == b.next_u32()).count();
        assert!(same < 4);
    }

    #[test]
    fn below_respects_bound() {
        let mut rng = Pcg32::seeded(9);
        for _ in 0..10_000 {
            assert!(rng.below(7) < 7);
        }
        // bound 1 is always 0
        assert_eq!(rng.below(1), 0);
    }

    #[test]
    fn below_is_roughly_uniform() {
        let mut rng = Pcg32::seeded(1234);
        let mut counts = [0u32; 8];
        let n = 80_000;
        for _ in 0..n {
            counts[rng.below(8) as usize] += 1;
        }
        let expected = n / 8;
        for (i, &c) in counts.iter().enumerate() {
            let dev = (c as i64 - expected as i64).abs();
            assert!(dev < expected as i64 / 10, "bucket {i}: {c} vs {expected}");
        }
    }

    #[test]
    fn unit_f32_in_range() {
        let mut rng = Pcg32::seeded(5);
        for _ in 0..10_000 {
            let v = rng.unit_f32();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn range_i32_inclusive_bounds() {
        let mut rng = Pcg32::seeded(11);
        let mut saw_lo = false;
        let mut saw_hi = false;
        for _ in 0..10_000 {
            let v = rng.range_i32(-3, 3);
            assert!((-3..=3).contains(&v));
            saw_lo |= v == -3;
            saw_hi |= v == 3;
        }
        assert!(saw_lo && saw_hi);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = Pcg32::seeded(77);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>(), "shuffle left input sorted");
    }

    #[test]
    fn fork_produces_independent_stream() {
        let mut parent = Pcg32::seeded(100);
        let mut child = parent.fork(3);
        let a: Vec<u32> = (0..16).map(|_| parent.next_u32()).collect();
        let b: Vec<u32> = (0..16).map(|_| child.next_u32()).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn pick_selects_all_eventually() {
        let mut rng = Pcg32::seeded(8);
        let items = [1, 2, 3];
        let mut seen = [false; 3];
        for _ in 0..1000 {
            seen[*rng.pick(&items) as usize - 1] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
