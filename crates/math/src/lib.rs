//! Vector math substrate for `parquake`.
//!
//! Everything in the game world lives in a right-handed, Z-up coordinate
//! space measured in *units* (one unit ≈ one inch, following the Quake
//! convention the reproduced paper inherits). This crate provides the
//! small, dependency-free geometric vocabulary shared by the BSP world,
//! the areanode tree and the movement simulation:
//!
//! * [`Vec3`] — `f32` 3-vectors with the usual operations,
//! * [`Aabb`] — axis-aligned bounding boxes and swept-box tests,
//! * [`plane`] — axis-aligned and general splitting planes,
//! * [`angles`] — view angles to basis vector conversion,
//! * [`rng`] — a tiny deterministic RNG so substrates stay seedable
//!   without pulling `rand` into every crate.

pub mod aabb;
pub mod angles;
pub mod plane;
pub mod rng;
pub mod vec3;

pub use aabb::Aabb;
pub use plane::{Axis, AxisPlane, Plane, Side};
pub use rng::Pcg32;
pub use vec3::Vec3;

/// Floating point tolerance used throughout collision code.
///
/// Quake used `DIST_EPSILON = 0.03125` (1/32 unit) to keep traces from
/// tunnelling through planes due to f32 rounding; we keep the same value
/// so trace behaviour matches the original's feel.
pub const DIST_EPSILON: f32 = 0.031_25;

/// Clamp `v` into `[lo, hi]`.
#[inline]
pub fn clampf(v: f32, lo: f32, hi: f32) -> f32 {
    v.max(lo).min(hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clampf_clamps_both_ends() {
        assert_eq!(clampf(5.0, 0.0, 1.0), 1.0);
        assert_eq!(clampf(-5.0, 0.0, 1.0), 0.0);
        assert_eq!(clampf(0.5, 0.0, 1.0), 0.5);
    }

    #[test]
    fn dist_epsilon_matches_quake() {
        assert_eq!(DIST_EPSILON, 1.0 / 32.0);
    }
}
