//! `f32` 3-vectors.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Index, IndexMut, Mul, Neg, Sub, SubAssign};

/// A 3-component `f32` vector in world space (Z up).
#[derive(Clone, Copy, PartialEq, Default)]
pub struct Vec3 {
    pub x: f32,
    pub y: f32,
    pub z: f32,
}

/// Shorthand constructor: `vec3(x, y, z)`.
#[inline]
pub const fn vec3(x: f32, y: f32, z: f32) -> Vec3 {
    Vec3 { x, y, z }
}

impl Vec3 {
    pub const ZERO: Vec3 = vec3(0.0, 0.0, 0.0);
    pub const ONE: Vec3 = vec3(1.0, 1.0, 1.0);
    pub const UP: Vec3 = vec3(0.0, 0.0, 1.0);

    #[inline]
    pub const fn new(x: f32, y: f32, z: f32) -> Self {
        vec3(x, y, z)
    }

    /// All components set to `v`.
    #[inline]
    pub const fn splat(v: f32) -> Self {
        vec3(v, v, v)
    }

    #[inline]
    pub fn dot(self, o: Vec3) -> f32 {
        self.x * o.x + self.y * o.y + self.z * o.z
    }

    #[inline]
    pub fn cross(self, o: Vec3) -> Vec3 {
        vec3(
            self.y * o.z - self.z * o.y,
            self.z * o.x - self.x * o.z,
            self.x * o.y - self.y * o.x,
        )
    }

    #[inline]
    pub fn length_sq(self) -> f32 {
        self.dot(self)
    }

    #[inline]
    pub fn length(self) -> f32 {
        self.length_sq().sqrt()
    }

    /// Horizontal (XY-plane) length, used for ground speed.
    #[inline]
    pub fn length_xy(self) -> f32 {
        (self.x * self.x + self.y * self.y).sqrt()
    }

    /// Unit vector in the same direction, or zero if the vector is
    /// (numerically) zero — the Quake convention for degenerate inputs.
    #[inline]
    pub fn normalized(self) -> Vec3 {
        let len = self.length();
        if len > 1e-12 {
            self / len
        } else {
            Vec3::ZERO
        }
    }

    #[inline]
    pub fn distance(self, o: Vec3) -> f32 {
        (self - o).length()
    }

    #[inline]
    pub fn distance_sq(self, o: Vec3) -> f32 {
        (self - o).length_sq()
    }

    /// Component-wise minimum.
    #[inline]
    pub fn min(self, o: Vec3) -> Vec3 {
        vec3(self.x.min(o.x), self.y.min(o.y), self.z.min(o.z))
    }

    /// Component-wise maximum.
    #[inline]
    pub fn max(self, o: Vec3) -> Vec3 {
        vec3(self.x.max(o.x), self.y.max(o.y), self.z.max(o.z))
    }

    /// Component-wise absolute value.
    #[inline]
    pub fn abs(self) -> Vec3 {
        vec3(self.x.abs(), self.y.abs(), self.z.abs())
    }

    /// Linear interpolation: `self` at `t = 0`, `o` at `t = 1`.
    #[inline]
    pub fn lerp(self, o: Vec3, t: f32) -> Vec3 {
        self + (o - self) * t
    }

    /// `a + b * scale` — the `VectorMA` idiom from the original server,
    /// used pervasively in movement code.
    #[inline]
    pub fn mul_add(self, dir: Vec3, scale: f32) -> Vec3 {
        vec3(
            self.x + dir.x * scale,
            self.y + dir.y * scale,
            self.z + dir.z * scale,
        )
    }

    /// True when every component is finite (guards against NaN motion).
    #[inline]
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite() && self.z.is_finite()
    }

    /// Access by axis index: 0 = x, 1 = y, 2 = z.
    #[inline]
    pub fn axis(self, i: usize) -> f32 {
        self[i]
    }
}

impl Index<usize> for Vec3 {
    type Output = f32;
    #[inline]
    fn index(&self, i: usize) -> &f32 {
        match i {
            0 => &self.x,
            1 => &self.y,
            2 => &self.z,
            _ => panic!("Vec3 index {i} out of range"),
        }
    }
}

impl IndexMut<usize> for Vec3 {
    #[inline]
    fn index_mut(&mut self, i: usize) -> &mut f32 {
        match i {
            0 => &mut self.x,
            1 => &mut self.y,
            2 => &mut self.z,
            _ => panic!("Vec3 index {i} out of range"),
        }
    }
}

impl Add for Vec3 {
    type Output = Vec3;
    #[inline]
    fn add(self, o: Vec3) -> Vec3 {
        vec3(self.x + o.x, self.y + o.y, self.z + o.z)
    }
}

impl AddAssign for Vec3 {
    #[inline]
    fn add_assign(&mut self, o: Vec3) {
        *self = *self + o;
    }
}

impl Sub for Vec3 {
    type Output = Vec3;
    #[inline]
    fn sub(self, o: Vec3) -> Vec3 {
        vec3(self.x - o.x, self.y - o.y, self.z - o.z)
    }
}

impl SubAssign for Vec3 {
    #[inline]
    fn sub_assign(&mut self, o: Vec3) {
        *self = *self - o;
    }
}

impl Mul<f32> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn mul(self, s: f32) -> Vec3 {
        vec3(self.x * s, self.y * s, self.z * s)
    }
}

impl Mul<Vec3> for f32 {
    type Output = Vec3;
    #[inline]
    fn mul(self, v: Vec3) -> Vec3 {
        v * self
    }
}

impl Div<f32> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn div(self, s: f32) -> Vec3 {
        vec3(self.x / s, self.y / s, self.z / s)
    }
}

impl Neg for Vec3 {
    type Output = Vec3;
    #[inline]
    fn neg(self) -> Vec3 {
        vec3(-self.x, -self.y, -self.z)
    }
}

impl fmt::Debug for Vec3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.3}, {:.3}, {:.3})", self.x, self.y, self.z)
    }
}

impl fmt::Display for Vec3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_arithmetic() {
        let a = vec3(1.0, 2.0, 3.0);
        let b = vec3(4.0, 5.0, 6.0);
        assert_eq!(a + b, vec3(5.0, 7.0, 9.0));
        assert_eq!(b - a, vec3(3.0, 3.0, 3.0));
        assert_eq!(a * 2.0, vec3(2.0, 4.0, 6.0));
        assert_eq!(2.0 * a, a * 2.0);
        assert_eq!(a / 2.0, vec3(0.5, 1.0, 1.5));
        assert_eq!(-a, vec3(-1.0, -2.0, -3.0));
    }

    #[test]
    fn dot_and_cross() {
        let x = vec3(1.0, 0.0, 0.0);
        let y = vec3(0.0, 1.0, 0.0);
        assert_eq!(x.dot(y), 0.0);
        assert_eq!(x.cross(y), vec3(0.0, 0.0, 1.0));
        assert_eq!(y.cross(x), vec3(0.0, 0.0, -1.0));
        assert_eq!(vec3(2.0, 3.0, 4.0).dot(vec3(5.0, 6.0, 7.0)), 56.0);
    }

    #[test]
    fn length_and_normalize() {
        let v = vec3(3.0, 4.0, 0.0);
        assert_eq!(v.length(), 5.0);
        assert_eq!(v.length_xy(), 5.0);
        let n = v.normalized();
        assert!((n.length() - 1.0).abs() < 1e-6);
        assert_eq!(Vec3::ZERO.normalized(), Vec3::ZERO);
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = vec3(0.0, 0.0, 0.0);
        let b = vec3(10.0, -10.0, 4.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.lerp(b, 0.5), vec3(5.0, -5.0, 2.0));
    }

    #[test]
    fn mul_add_matches_vector_ma() {
        let origin = vec3(1.0, 1.0, 1.0);
        let dir = vec3(0.0, 0.0, -1.0);
        assert_eq!(origin.mul_add(dir, 3.0), vec3(1.0, 1.0, -2.0));
    }

    #[test]
    fn indexing_by_axis() {
        let mut v = vec3(7.0, 8.0, 9.0);
        assert_eq!(v[0], 7.0);
        assert_eq!(v[1], 8.0);
        assert_eq!(v[2], 9.0);
        v[2] = 1.0;
        assert_eq!(v.z, 1.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn index_out_of_range_panics() {
        let _ = vec3(0.0, 0.0, 0.0)[3];
    }

    #[test]
    fn component_min_max_abs() {
        let a = vec3(1.0, -5.0, 3.0);
        let b = vec3(-2.0, 4.0, 3.5);
        assert_eq!(a.min(b), vec3(-2.0, -5.0, 3.0));
        assert_eq!(a.max(b), vec3(1.0, 4.0, 3.5));
        assert_eq!(a.abs(), vec3(1.0, 5.0, 3.0));
    }

    #[test]
    fn finiteness_check() {
        assert!(vec3(1.0, 2.0, 3.0).is_finite());
        assert!(!vec3(f32::NAN, 0.0, 0.0).is_finite());
        assert!(!vec3(0.0, f32::INFINITY, 0.0).is_finite());
    }
}
