//! Splitting planes.
//!
//! Two flavours are used by the substrates:
//!
//! * [`AxisPlane`] — axis-aligned planes. The areanode tree only ever
//!   splits along X or Y (paper §2.2), and our brush-based BSP compiler
//!   emits axis-aligned planes for all world geometry.
//! * [`Plane`] — general planes kept for hitscan/projectile clipping and
//!   future non-axis-aligned geometry.

use crate::aabb::Aabb;
use crate::vec3::{vec3, Vec3};

/// A coordinate axis.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Axis {
    X = 0,
    Y = 1,
    Z = 2,
}

impl Axis {
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// The next horizontal axis, alternating X → Y → X, as the areanode
    /// builder does at successive depths.
    #[inline]
    pub fn next_horizontal(self) -> Axis {
        match self {
            Axis::X => Axis::Y,
            Axis::Y => Axis::X,
            Axis::Z => Axis::X,
        }
    }

    #[inline]
    pub fn from_index(i: usize) -> Axis {
        match i {
            0 => Axis::X,
            1 => Axis::Y,
            2 => Axis::Z,
            _ => panic!("axis index {i} out of range"),
        }
    }
}

/// Which side of a plane something is on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Side {
    /// Entirely on the positive (front) side.
    Front,
    /// Entirely on the negative (back) side.
    Back,
    /// Crossing the plane.
    Both,
}

/// An axis-aligned plane `point[axis] == dist`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AxisPlane {
    pub axis: Axis,
    pub dist: f32,
}

impl AxisPlane {
    #[inline]
    pub fn new(axis: Axis, dist: f32) -> Self {
        AxisPlane { axis, dist }
    }

    /// Signed distance of a point from the plane (positive = front).
    #[inline]
    pub fn point_dist(&self, p: Vec3) -> f32 {
        p[self.axis.index()] - self.dist
    }

    /// Classify a box against the plane.
    #[inline]
    pub fn box_side(&self, b: &Aabb) -> Side {
        let i = self.axis.index();
        if b.min[i] > self.dist {
            Side::Front
        } else if b.max[i] < self.dist {
            Side::Back
        } else {
            Side::Both
        }
    }
}

/// A general plane `normal · p == dist` with unit normal.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Plane {
    pub normal: Vec3,
    pub dist: f32,
}

impl Plane {
    #[inline]
    pub fn new(normal: Vec3, dist: f32) -> Self {
        debug_assert!((normal.length() - 1.0).abs() < 1e-4, "non-unit normal");
        Plane { normal, dist }
    }

    /// Plane with the given axis-aligned normal direction.
    #[inline]
    pub fn axis_aligned(axis: Axis, positive: bool, dist: f32) -> Plane {
        let mut n = Vec3::ZERO;
        n[axis.index()] = if positive { 1.0 } else { -1.0 };
        Plane {
            normal: n,
            dist: if positive { dist } else { -dist },
        }
    }

    /// Plane through a point with the given unit normal.
    #[inline]
    pub fn through(point: Vec3, normal: Vec3) -> Plane {
        Plane::new(normal, normal.dot(point))
    }

    /// Signed distance of a point from the plane.
    #[inline]
    pub fn point_dist(&self, p: Vec3) -> f32 {
        self.normal.dot(p) - self.dist
    }

    /// Classify a box against the plane using the box's projected radius
    /// (the standard `BoxOnPlaneSide` computation).
    pub fn box_side(&self, b: &Aabb) -> Side {
        let c = b.center();
        let h = b.half_extents();
        let r = h.x * self.normal.x.abs() + h.y * self.normal.y.abs() + h.z * self.normal.z.abs();
        let d = self.point_dist(c);
        if d > r {
            Side::Front
        } else if d < -r {
            Side::Back
        } else {
            Side::Both
        }
    }

    /// Intersect the segment `a → b` with the plane. Returns the fraction
    /// `t` where it crosses, if the endpoints are on opposite sides.
    pub fn segment_crossing(&self, a: Vec3, b: Vec3) -> Option<f32> {
        let da = self.point_dist(a);
        let db = self.point_dist(b);
        if (da >= 0.0) == (db >= 0.0) {
            return None;
        }
        Some(da / (da - db))
    }

    /// Reflect (clip) a velocity off the plane with `overbounce` factor
    /// (1.0 = slide, 2.0 = full bounce) — Quake's `ClipVelocity`.
    pub fn clip_velocity(&self, v: Vec3, overbounce: f32) -> Vec3 {
        let backoff = v.dot(self.normal) * overbounce;
        let mut out = v - self.normal * backoff;
        // Kill tiny residuals so sliding along walls doesn't jitter.
        for i in 0..3 {
            if out[i].abs() < 0.1 {
                out[i] = 0.0;
            }
        }
        out
    }
}

impl From<AxisPlane> for Plane {
    fn from(ap: AxisPlane) -> Plane {
        Plane::axis_aligned(ap.axis, true, ap.dist)
    }
}

/// Convenience: the floor plane `z == dist`.
pub fn floor_plane(dist: f32) -> Plane {
    Plane::new(vec3(0.0, 0.0, 1.0), dist)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn axis_alternation() {
        assert_eq!(Axis::X.next_horizontal(), Axis::Y);
        assert_eq!(Axis::Y.next_horizontal(), Axis::X);
        assert_eq!(Axis::Z.next_horizontal(), Axis::X);
    }

    #[test]
    fn axis_plane_point_distance() {
        let p = AxisPlane::new(Axis::Y, 10.0);
        assert_eq!(p.point_dist(vec3(0.0, 15.0, 0.0)), 5.0);
        assert_eq!(p.point_dist(vec3(0.0, 5.0, 0.0)), -5.0);
    }

    #[test]
    fn axis_plane_box_side() {
        let p = AxisPlane::new(Axis::X, 0.0);
        let front = Aabb::new(vec3(1.0, 0.0, 0.0), vec3(2.0, 1.0, 1.0));
        let back = Aabb::new(vec3(-2.0, 0.0, 0.0), vec3(-1.0, 1.0, 1.0));
        let both = Aabb::new(vec3(-1.0, 0.0, 0.0), vec3(1.0, 1.0, 1.0));
        assert_eq!(p.box_side(&front), Side::Front);
        assert_eq!(p.box_side(&back), Side::Back);
        assert_eq!(p.box_side(&both), Side::Both);
    }

    #[test]
    fn general_plane_box_side_diagonal() {
        let n = vec3(1.0, 1.0, 0.0).normalized();
        let p = Plane::new(n, 0.0);
        let b = Aabb::centered(vec3(10.0, 10.0, 0.0), Vec3::splat(1.0));
        assert_eq!(p.box_side(&b), Side::Front);
        let b2 = Aabb::centered(vec3(-10.0, -10.0, 0.0), Vec3::splat(1.0));
        assert_eq!(p.box_side(&b2), Side::Back);
        let b3 = Aabb::centered(Vec3::ZERO, Vec3::splat(1.0));
        assert_eq!(p.box_side(&b3), Side::Both);
    }

    #[test]
    fn segment_crossing_fraction() {
        let p = floor_plane(0.0);
        let t = p
            .segment_crossing(vec3(0.0, 0.0, 10.0), vec3(0.0, 0.0, -10.0))
            .unwrap();
        assert!((t - 0.5).abs() < 1e-6);
        assert!(p
            .segment_crossing(vec3(0.0, 0.0, 10.0), vec3(0.0, 0.0, 5.0))
            .is_none());
    }

    #[test]
    fn clip_velocity_slide_removes_normal_component() {
        let p = floor_plane(0.0);
        let v = vec3(10.0, 0.0, -10.0);
        let clipped = p.clip_velocity(v, 1.0);
        assert_eq!(clipped, vec3(10.0, 0.0, 0.0));
    }

    #[test]
    fn clip_velocity_bounce_reverses_normal_component() {
        let p = floor_plane(0.0);
        let v = vec3(0.0, 0.0, -10.0);
        let bounced = p.clip_velocity(v, 2.0);
        assert_eq!(bounced, vec3(0.0, 0.0, 10.0));
    }

    #[test]
    fn through_point() {
        let p = Plane::through(vec3(0.0, 0.0, 5.0), Vec3::UP);
        assert_eq!(p.point_dist(vec3(3.0, 4.0, 5.0)), 0.0);
        assert_eq!(p.point_dist(vec3(0.0, 0.0, 8.0)), 3.0);
    }
}
