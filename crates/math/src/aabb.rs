//! Axis-aligned bounding boxes and swept-box intersection.
//!
//! The reproduced server is built almost entirely on AABB reasoning: the
//! *bounding box of a move* defines which region of the world a request
//! may touch (paper §2.3), the areanode tree stores per-node AABBs, and
//! object/object collision during motion is a swept-AABB test.

use crate::vec3::{vec3, Vec3};
use crate::DIST_EPSILON;

/// An axis-aligned box given by its minimum and maximum corners.
///
/// An `Aabb` is *valid* when `min[i] <= max[i]` on every axis. A
/// degenerate box (`min == max`) is a point and still participates in
/// intersection tests.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Aabb {
    pub min: Vec3,
    pub max: Vec3,
}

impl Aabb {
    /// Construct from corners; debug-asserts validity.
    #[inline]
    pub fn new(min: Vec3, max: Vec3) -> Self {
        debug_assert!(
            min.x <= max.x && min.y <= max.y && min.z <= max.z,
            "invalid Aabb: {min:?}..{max:?}"
        );
        Aabb { min, max }
    }

    /// The box covering a single point.
    #[inline]
    pub fn point(p: Vec3) -> Self {
        Aabb { min: p, max: p }
    }

    /// Box centred at `center` with half-extents `half`.
    #[inline]
    pub fn centered(center: Vec3, half: Vec3) -> Self {
        Aabb::new(center - half, center + half)
    }

    /// The smallest box containing both endpoints.
    #[inline]
    pub fn from_corners(a: Vec3, b: Vec3) -> Self {
        Aabb {
            min: a.min(b),
            max: a.max(b),
        }
    }

    #[inline]
    pub fn center(&self) -> Vec3 {
        (self.min + self.max) * 0.5
    }

    #[inline]
    pub fn size(&self) -> Vec3 {
        self.max - self.min
    }

    #[inline]
    pub fn half_extents(&self) -> Vec3 {
        self.size() * 0.5
    }

    /// Grow outward by `amount` on every axis (may be per-axis).
    #[inline]
    pub fn inflated(&self, amount: Vec3) -> Aabb {
        Aabb {
            min: self.min - amount,
            max: self.max + amount,
        }
    }

    /// Translate by `delta`.
    #[inline]
    pub fn translated(&self, delta: Vec3) -> Aabb {
        Aabb {
            min: self.min + delta,
            max: self.max + delta,
        }
    }

    /// Smallest box containing `self` and `other`.
    #[inline]
    pub fn union(&self, other: &Aabb) -> Aabb {
        Aabb {
            min: self.min.min(other.min),
            max: self.max.max(other.max),
        }
    }

    /// Smallest box containing `self` and the point `p`.
    #[inline]
    pub fn union_point(&self, p: Vec3) -> Aabb {
        Aabb {
            min: self.min.min(p),
            max: self.max.max(p),
        }
    }

    /// Closed-interval overlap test (touching boxes intersect).
    #[inline]
    pub fn intersects(&self, other: &Aabb) -> bool {
        self.min.x <= other.max.x
            && self.max.x >= other.min.x
            && self.min.y <= other.max.y
            && self.max.y >= other.min.y
            && self.min.z <= other.max.z
            && self.max.z >= other.min.z
    }

    /// True when `p` lies inside or on the boundary.
    #[inline]
    pub fn contains_point(&self, p: Vec3) -> bool {
        p.x >= self.min.x
            && p.x <= self.max.x
            && p.y >= self.min.y
            && p.y <= self.max.y
            && p.z >= self.min.z
            && p.z <= self.max.z
    }

    /// True when `other` lies entirely inside `self`.
    #[inline]
    pub fn contains(&self, other: &Aabb) -> bool {
        self.min.x <= other.min.x
            && self.min.y <= other.min.y
            && self.min.z <= other.min.z
            && self.max.x >= other.max.x
            && self.max.y >= other.max.y
            && self.max.z >= other.max.z
    }

    /// The bounding box of this box swept along `delta` — the "bounding
    /// box of a move" from paper §2.3.
    #[inline]
    pub fn swept(&self, delta: Vec3) -> Aabb {
        self.union(&self.translated(delta))
    }

    /// Volume of the box.
    #[inline]
    pub fn volume(&self) -> f32 {
        let s = self.size();
        s.x * s.y * s.z
    }

    /// Sweep a moving box (`self`, moving by `delta`) against a static
    /// box. Returns the entry fraction `t ∈ [0, 1]` at which they first
    /// touch, or `None` if they never touch during the motion.
    ///
    /// If the boxes already overlap the result is `Some(0.0)`.
    pub fn sweep_hit(&self, delta: Vec3, target: &Aabb) -> Option<f32> {
        if self.intersects(target) {
            return Some(0.0);
        }
        let mut t_enter = 0.0f32;
        let mut t_exit = 1.0f32;
        for axis in 0..3 {
            let v = delta[axis];
            let (self_min, self_max) = (self.min[axis], self.max[axis]);
            let (tgt_min, tgt_max) = (target.min[axis], target.max[axis]);
            if v.abs() < 1e-12 {
                // No motion on this axis: must already overlap on it.
                if self_max < tgt_min || self_min > tgt_max {
                    return None;
                }
            } else {
                let inv = 1.0 / v;
                let mut t0 = (tgt_min - self_max) * inv;
                let mut t1 = (tgt_max - self_min) * inv;
                if t0 > t1 {
                    std::mem::swap(&mut t0, &mut t1);
                }
                t_enter = t_enter.max(t0);
                t_exit = t_exit.min(t1);
                if t_enter > t_exit {
                    return None;
                }
            }
        }
        if t_enter > 1.0 {
            None
        } else {
            Some(t_enter.max(0.0))
        }
    }

    /// As [`Aabb::sweep_hit`], but also reports the outward unit normal
    /// of the face that was struck (the axis whose entry time dominated).
    pub fn sweep_hit_with_normal(&self, delta: Vec3, target: &Aabb) -> Option<(f32, Vec3)> {
        if self.intersects(target) {
            // Already overlapping: push back along the axis of least
            // penetration, against the motion.
            let mut best_axis = 0;
            let mut best_depth = f32::INFINITY;
            for axis in 0..3 {
                let depth = (self.max[axis].min(target.max[axis])
                    - self.min[axis].max(target.min[axis]))
                .abs();
                if depth < best_depth {
                    best_depth = depth;
                    best_axis = axis;
                }
            }
            let mut n = Vec3::ZERO;
            n[best_axis] = if delta[best_axis] > 0.0 { -1.0 } else { 1.0 };
            return Some((0.0, n));
        }
        let mut t_enter = 0.0f32;
        let mut t_exit = 1.0f32;
        let mut enter_axis = 0usize;
        for axis in 0..3 {
            let v = delta[axis];
            let (self_min, self_max) = (self.min[axis], self.max[axis]);
            let (tgt_min, tgt_max) = (target.min[axis], target.max[axis]);
            if v.abs() < 1e-12 {
                if self_max < tgt_min || self_min > tgt_max {
                    return None;
                }
            } else {
                let inv = 1.0 / v;
                let mut t0 = (tgt_min - self_max) * inv;
                let mut t1 = (tgt_max - self_min) * inv;
                if t0 > t1 {
                    std::mem::swap(&mut t0, &mut t1);
                }
                if t0 > t_enter {
                    t_enter = t0;
                    enter_axis = axis;
                }
                t_exit = t_exit.min(t1);
                if t_enter > t_exit {
                    return None;
                }
            }
        }
        if t_enter > 1.0 {
            return None;
        }
        let mut n = Vec3::ZERO;
        n[enter_axis] = if delta[enter_axis] > 0.0 { -1.0 } else { 1.0 };
        Some((t_enter.max(0.0), n))
    }

    /// Back a hit fraction off by the collision epsilon so the mover does
    /// not end up numerically inside the obstacle (Quake idiom).
    #[inline]
    pub fn backed_off(t: f32, delta_len: f32) -> f32 {
        if delta_len <= 1e-12 {
            return 0.0;
        }
        (t - DIST_EPSILON / delta_len).max(0.0)
    }
}

/// The standard player collision hull used by the simulation
/// (Quake's 32×32×56-unit "human" hull, feet at `-24`, eyes near the top).
pub fn player_hull() -> Aabb {
    Aabb::new(vec3(-16.0, -16.0, -24.0), vec3(16.0, 16.0, 32.0))
}

/// The pickup-item hull (Quake's 32×32×56 trigger volume, simplified).
pub fn item_hull() -> Aabb {
    Aabb::new(vec3(-16.0, -16.0, 0.0), vec3(16.0, 16.0, 56.0))
}

/// Small projectile hull.
pub fn projectile_hull() -> Aabb {
    Aabb::new(vec3(-4.0, -4.0, -4.0), vec3(4.0, 4.0, 4.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_at(p: Vec3) -> Aabb {
        Aabb::centered(p, Vec3::splat(0.5))
    }

    #[test]
    fn construction_and_accessors() {
        let b = Aabb::new(vec3(-1.0, -2.0, -3.0), vec3(1.0, 2.0, 3.0));
        assert_eq!(b.center(), Vec3::ZERO);
        assert_eq!(b.size(), vec3(2.0, 4.0, 6.0));
        assert_eq!(b.half_extents(), vec3(1.0, 2.0, 3.0));
        assert_eq!(b.volume(), 48.0);
    }

    #[test]
    fn from_corners_normalizes_order() {
        let b = Aabb::from_corners(vec3(1.0, -1.0, 5.0), vec3(-1.0, 1.0, 0.0));
        assert_eq!(b.min, vec3(-1.0, -1.0, 0.0));
        assert_eq!(b.max, vec3(1.0, 1.0, 5.0));
    }

    #[test]
    fn intersection_cases() {
        let a = unit_at(Vec3::ZERO);
        assert!(a.intersects(&unit_at(vec3(0.9, 0.0, 0.0))));
        // Touching faces count as intersecting (closed intervals).
        assert!(a.intersects(&unit_at(vec3(1.0, 0.0, 0.0))));
        assert!(!a.intersects(&unit_at(vec3(1.01, 0.0, 0.0))));
        assert!(!a.intersects(&unit_at(vec3(0.0, 0.0, 2.0))));
    }

    #[test]
    fn containment() {
        let big = Aabb::centered(Vec3::ZERO, Vec3::splat(2.0));
        let small = unit_at(vec3(0.5, 0.5, 0.5));
        assert!(big.contains(&small));
        assert!(!small.contains(&big));
        assert!(big.contains_point(vec3(2.0, 2.0, 2.0)));
        assert!(!big.contains_point(vec3(2.1, 0.0, 0.0)));
    }

    #[test]
    fn union_and_swept() {
        let a = unit_at(Vec3::ZERO);
        let sw = a.swept(vec3(10.0, 0.0, 0.0));
        assert_eq!(sw.min, vec3(-0.5, -0.5, -0.5));
        assert_eq!(sw.max, vec3(10.5, 0.5, 0.5));
        assert!(sw.contains(&a));
    }

    #[test]
    fn sweep_hit_head_on() {
        let mover = unit_at(Vec3::ZERO);
        let wall = unit_at(vec3(5.0, 0.0, 0.0));
        let t = mover.sweep_hit(vec3(10.0, 0.0, 0.0), &wall).unwrap();
        // Gap between faces is 4 units, motion is 10 units: t = 0.4.
        assert!((t - 0.4).abs() < 1e-6, "t = {t}");
    }

    #[test]
    fn sweep_hit_miss_parallel() {
        let mover = unit_at(Vec3::ZERO);
        let wall = unit_at(vec3(5.0, 3.0, 0.0)); // offset in y, no y motion
        assert!(mover.sweep_hit(vec3(10.0, 0.0, 0.0), &wall).is_none());
    }

    #[test]
    fn sweep_hit_already_overlapping() {
        let mover = unit_at(Vec3::ZERO);
        let other = unit_at(vec3(0.25, 0.0, 0.0));
        assert_eq!(mover.sweep_hit(vec3(1.0, 0.0, 0.0), &other), Some(0.0));
    }

    #[test]
    fn sweep_hit_short_motion_stops_before_target() {
        let mover = unit_at(Vec3::ZERO);
        let wall = unit_at(vec3(5.0, 0.0, 0.0));
        assert!(mover.sweep_hit(vec3(1.0, 0.0, 0.0), &wall).is_none());
    }

    #[test]
    fn sweep_hit_diagonal() {
        let mover = unit_at(Vec3::ZERO);
        let tgt = unit_at(vec3(4.0, 4.0, 0.0));
        let t = mover.sweep_hit(vec3(8.0, 8.0, 0.0), &tgt).unwrap();
        assert!((t - 3.0 / 8.0).abs() < 1e-6, "t = {t}");
    }

    #[test]
    fn sweep_hit_moving_away() {
        let mover = unit_at(Vec3::ZERO);
        let wall = unit_at(vec3(5.0, 0.0, 0.0));
        assert!(mover.sweep_hit(vec3(-10.0, 0.0, 0.0), &wall).is_none());
    }

    #[test]
    fn sweep_hit_with_normal_reports_face() {
        let mover = unit_at(Vec3::ZERO);
        let wall = unit_at(vec3(5.0, 0.0, 0.0));
        let (t, n) = mover
            .sweep_hit_with_normal(vec3(10.0, 0.0, 0.0), &wall)
            .unwrap();
        assert!((t - 0.4).abs() < 1e-6);
        assert_eq!(n, vec3(-1.0, 0.0, 0.0));
        // Falling onto a box from above: normal is up.
        let floor = Aabb::new(vec3(-10.0, -10.0, -2.0), vec3(10.0, 10.0, 0.0));
        let (_, n) = unit_at(vec3(0.0, 0.0, 5.0))
            .sweep_hit_with_normal(vec3(0.0, 0.0, -10.0), &floor)
            .unwrap();
        assert_eq!(n, vec3(0.0, 0.0, 1.0));
    }

    #[test]
    fn sweep_hit_with_normal_overlapping_pushes_back() {
        let mover = unit_at(Vec3::ZERO);
        let other = unit_at(vec3(0.25, 0.0, 0.0));
        let (t, n) = mover
            .sweep_hit_with_normal(vec3(1.0, 0.0, 0.0), &other)
            .unwrap();
        assert_eq!(t, 0.0);
        assert_eq!(n, vec3(-1.0, 0.0, 0.0));
    }

    #[test]
    fn standard_hulls_sane() {
        assert!(player_hull().contains_point(Vec3::ZERO));
        assert_eq!(player_hull().size(), vec3(32.0, 32.0, 56.0));
        assert!(projectile_hull().volume() < item_hull().volume());
    }

    #[test]
    fn backed_off_never_negative() {
        assert_eq!(Aabb::backed_off(0.0, 10.0), 0.0);
        assert!(Aabb::backed_off(0.5, 10.0) < 0.5);
        assert_eq!(Aabb::backed_off(0.5, 0.0), 0.0);
    }
}
