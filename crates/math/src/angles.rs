//! View-angle handling.
//!
//! Move commands carry the player's view angles (paper §2.3 item i).
//! Angles follow the Quake convention: degrees, `yaw` rotates about +Z
//! (0 = +X, counter-clockwise), `pitch` is positive *down*, `roll` is
//! unused by movement but carried for completeness.

use crate::vec3::{vec3, Vec3};

/// View angles in degrees.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Angles {
    /// Positive pitches the view down.
    pub pitch: f32,
    /// Heading about +Z; 0 looks along +X.
    pub yaw: f32,
    pub roll: f32,
}

impl Angles {
    pub const fn new(pitch: f32, yaw: f32, roll: f32) -> Self {
        Angles { pitch, yaw, roll }
    }

    /// Pure-yaw angles (level view).
    pub const fn yawed(yaw: f32) -> Self {
        Angles {
            pitch: 0.0,
            yaw,
            roll: 0.0,
        }
    }

    /// Forward, right and up unit vectors for these angles
    /// (Quake's `AngleVectors`).
    pub fn basis(&self) -> (Vec3, Vec3, Vec3) {
        let (sy, cy) = self.yaw.to_radians().sin_cos();
        let (sp, cp) = self.pitch.to_radians().sin_cos();
        let (sr, cr) = self.roll.to_radians().sin_cos();

        let forward = vec3(cp * cy, cp * sy, -sp);
        // Quake's AngleVectors: right already points to the player's
        // right (forward × up = −Y when facing +X in Z-up coordinates).
        let right = vec3(-sr * sp * cy + cr * sy, -sr * sp * sy - cr * cy, -sr * cp);
        let up = vec3(cr * sp * cy + sr * sy, cr * sp * sy - sr * cy, cr * cp);
        (forward, right, up)
    }

    /// Just the forward vector.
    pub fn forward(&self) -> Vec3 {
        self.basis().0
    }

    /// Normalize each angle into `[-180, 180)`.
    pub fn normalized(&self) -> Angles {
        Angles {
            pitch: wrap_degrees(self.pitch),
            yaw: wrap_degrees(self.yaw),
            roll: wrap_degrees(self.roll),
        }
    }

    /// Angles that look from `from` towards `to`.
    pub fn looking_at(from: Vec3, to: Vec3) -> Angles {
        let d = to - from;
        let yaw = d.y.atan2(d.x).to_degrees();
        let horiz = d.length_xy();
        let pitch = if horiz > 1e-6 || d.z.abs() > 1e-6 {
            (-d.z).atan2(horiz).to_degrees()
        } else {
            0.0
        };
        Angles::new(pitch, yaw, 0.0)
    }
}

/// Wrap an angle in degrees into `[-180, 180)`.
pub fn wrap_degrees(a: f32) -> f32 {
    let mut a = a % 360.0;
    if a >= 180.0 {
        a -= 360.0;
    } else if a < -180.0 {
        a += 360.0;
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: Vec3, b: Vec3) -> bool {
        (a - b).length() < 1e-5
    }

    #[test]
    fn yaw_zero_faces_plus_x() {
        let (f, r, u) = Angles::yawed(0.0).basis();
        assert!(close(f, vec3(1.0, 0.0, 0.0)), "f = {f:?}");
        assert!(close(r, vec3(0.0, -1.0, 0.0)), "r = {r:?}");
        assert!(close(u, vec3(0.0, 0.0, 1.0)), "u = {u:?}");
    }

    #[test]
    fn yaw_90_faces_plus_y() {
        let (f, _, _) = Angles::yawed(90.0).basis();
        assert!(close(f, vec3(0.0, 1.0, 0.0)), "f = {f:?}");
    }

    #[test]
    fn pitch_down_lowers_forward() {
        let (f, _, _) = Angles::new(45.0, 0.0, 0.0).basis();
        assert!(f.z < -0.5, "f = {f:?}");
        assert!((f.length() - 1.0).abs() < 1e-5);
    }

    #[test]
    fn basis_is_orthonormal() {
        let (f, r, u) = Angles::new(30.0, 120.0, 10.0).basis();
        assert!((f.length() - 1.0).abs() < 1e-5);
        assert!((r.length() - 1.0).abs() < 1e-5);
        assert!((u.length() - 1.0).abs() < 1e-5);
        assert!(f.dot(r).abs() < 1e-5);
        assert!(f.dot(u).abs() < 1e-5);
        assert!(r.dot(u).abs() < 1e-5);
    }

    #[test]
    fn wrap_degrees_range() {
        assert_eq!(wrap_degrees(0.0), 0.0);
        assert_eq!(wrap_degrees(350.0), -10.0);
        assert_eq!(wrap_degrees(-190.0), 170.0);
        assert_eq!(wrap_degrees(720.0), 0.0);
        assert_eq!(wrap_degrees(180.0), -180.0);
    }

    #[test]
    fn looking_at_recovers_direction() {
        let from = vec3(0.0, 0.0, 0.0);
        let to = vec3(10.0, 10.0, 0.0);
        let a = Angles::looking_at(from, to);
        assert!((a.yaw - 45.0).abs() < 1e-4);
        assert!(a.pitch.abs() < 1e-4);
        let f = a.forward();
        assert!(close(f, (to - from).normalized()));
    }

    #[test]
    fn looking_at_pitch_sign() {
        // Target below: positive pitch (down) in Quake convention.
        let a = Angles::looking_at(vec3(0.0, 0.0, 10.0), vec3(10.0, 0.0, 0.0));
        assert!(a.pitch > 0.0);
        let f = a.forward();
        assert!(f.z < 0.0);
    }
}
