//! Property-based tests for the procedural map generator: every
//! configuration in the supported space must produce a playable,
//! sealed, fully-connected world.

use parquake_bsp::mapgen::MapGenConfig;
use parquake_bsp::tree::Contents;
use parquake_bsp::Hull;
use parquake_math::vec3::vec3;
use proptest::prelude::*;

fn arb_config() -> impl Strategy<Value = MapGenConfig> {
    (
        any::<u64>(),
        1u16..5,
        1u16..5,
        192.0f32..512.0,
        0.0f32..1.0,
        0.0f32..1.0,
        0u8..4,
        0u8..4,
    )
        .prop_map(
            |(seed, gw, gh, room, extra, pillar, items, teles)| MapGenConfig {
                seed,
                grid_w: gw,
                grid_h: gh,
                room_size: room,
                extra_door_chance: extra,
                pillar_chance: pillar,
                items_per_room: items,
                teleporter_pairs: teles,
                ..MapGenConfig::large_arena(seed)
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn generated_worlds_are_playable(cfg in arb_config()) {
        let w = cfg.generate();

        // Spawns exist (one per room) and stand in open space.
        prop_assert_eq!(
            w.spawn_points.len(),
            cfg.grid_w as usize * cfg.grid_h as usize
        );
        for &s in &w.spawn_points {
            prop_assert!(w.player_fits(s), "blocked spawn at {s:?}");
            // Sealed downward: falling players land, never escape.
            let tr = w.trace(Hull::Player, s, s + vec3(0.0, 0.0, -100_000.0));
            prop_assert!(tr.hit(), "no floor under {s:?}");
            // Sealed upward too.
            let tr = w.trace(Hull::Player, s, s + vec3(0.0, 0.0, 100_000.0));
            prop_assert!(tr.hit(), "no ceiling over {s:?}");
        }

        // Maze connectivity: BFS over doors reaches every room.
        let n = w.rooms.room_count();
        let mut seen = vec![false; n];
        let mut queue = std::collections::VecDeque::from([0u16]);
        seen[0] = true;
        let mut count = 1;
        while let Some(r) = queue.pop_front() {
            for &nb in w.rooms.neighbors(r) {
                if !seen[nb as usize] {
                    seen[nb as usize] = true;
                    count += 1;
                    queue.push_back(nb);
                }
            }
        }
        prop_assert_eq!(count, n, "maze is disconnected");

        // Items sit in open space just above the floor.
        for it in &w.item_spawns {
            prop_assert_eq!(
                w.contents(it.pos + vec3(0.0, 0.0, 8.0)),
                Contents::Empty
            );
        }
        // Teleporter destinations admit a standing player.
        for &(_, dst) in &w.teleporters {
            prop_assert!(w.player_fits(dst));
        }
    }

    #[test]
    fn generation_is_pure(cfg in arb_config()) {
        let a = cfg.generate();
        let b = cfg.generate();
        prop_assert_eq!(a.brushes.len(), b.brushes.len());
        prop_assert_eq!(&a.spawn_points, &b.spawn_points);
        prop_assert_eq!(a.hull_player.node_count(), b.hull_player.node_count());
    }
}
