//! Property-based tests for BSP compilation and tracing.

use parquake_bsp::tree::Contents;
use parquake_bsp::{Brush, BspTree};
use parquake_math::vec3::vec3;
use parquake_math::{Aabb, Vec3};
use proptest::prelude::*;

const R: f32 = 100.0;

fn arb_brush() -> impl Strategy<Value = Brush> {
    (
        -R..R,
        -R..R,
        -R..R,
        4.0f32..60.0,
        4.0f32..60.0,
        4.0f32..60.0,
    )
        .prop_map(|(x, y, z, w, h, d)| {
            Brush::solid(Aabb::new(vec3(x, y, z), vec3(x + w, y + h, z + d)))
        })
}

fn arb_point() -> impl Strategy<Value = Vec3> {
    (-R..R, -R..R, -R..R).prop_map(|(x, y, z)| vec3(x, y, z))
}

fn compile(brushes: &[Brush]) -> BspTree {
    let bounds = Aabb::new(Vec3::splat(-R - 70.0), Vec3::splat(R + 70.0));
    BspTree::compile(brushes, bounds, Vec3::ZERO, Vec3::ZERO)
}

fn brute_solid(brushes: &[Brush], p: Vec3) -> Option<bool> {
    // None when the point is too close to any face for a decisive answer.
    let eps = 0.01;
    let mut solid = false;
    for b in brushes {
        let bb = &b.bounds;
        let near_face =
            (0..3).any(|i| (p[i] - bb.min[i]).abs() < eps || (p[i] - bb.max[i]).abs() < eps);
        if near_face && bb.inflated(Vec3::splat(eps)).contains_point(p) {
            return None;
        }
        if (0..3).all(|i| p[i] > bb.min[i] && p[i] < bb.max[i]) {
            solid = true;
        }
    }
    Some(solid)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn contents_matches_brute_force(
        brushes in prop::collection::vec(arb_brush(), 0..8),
        points in prop::collection::vec(arb_point(), 32),
    ) {
        let tree = compile(&brushes);
        for p in points {
            if let Some(expect) = brute_solid(&brushes, p) {
                let got = tree.contents(p) == Contents::Solid;
                prop_assert_eq!(got, expect, "at {:?}", p);
            }
        }
    }

    #[test]
    fn trace_fraction_is_in_unit_range(
        brushes in prop::collection::vec(arb_brush(), 0..8),
        a in arb_point(),
        b in arb_point(),
    ) {
        let tree = compile(&brushes);
        let tr = tree.trace(a, b);
        prop_assert!((0.0..=1.0).contains(&tr.fraction));
    }

    #[test]
    fn trace_end_is_not_inside_solid(
        brushes in prop::collection::vec(arb_brush(), 0..8),
        a in arb_point(),
        b in arb_point(),
    ) {
        let tree = compile(&brushes);
        let tr = tree.trace(a, b);
        if !tr.start_solid {
            prop_assert_ne!(tree.contents(tr.end), Contents::Solid,
                "end {:?} for {:?} -> {:?}", tr.end, a, b);
        }
    }

    #[test]
    fn clean_trace_path_is_clear(
        brushes in prop::collection::vec(arb_brush(), 0..8),
        a in arb_point(),
        b in arb_point(),
    ) {
        let tree = compile(&brushes);
        let tr = tree.trace(a, b);
        if tr.fraction == 1.0 && !tr.start_solid {
            // Sample interior points; none may be decisively solid.
            for k in 1..10 {
                let p = a.lerp(b, k as f32 / 10.0);
                if let Some(solid) = brute_solid(&brushes, p) {
                    prop_assert!(!solid, "sample {:?} solid on clean trace", p);
                }
            }
        }
    }

    #[test]
    fn trace_is_monotone_in_target_distance(
        brushes in prop::collection::vec(arb_brush(), 1..8),
        a in arb_point(),
        d in arb_point(),
    ) {
        // Tracing further in the same direction can only hit at the same
        // point or further along.
        let tree = compile(&brushes);
        let t1 = tree.trace(a, a + d * 0.5);
        let t2 = tree.trace(a, a + d);
        if !t1.start_solid && !t2.start_solid && t1.hit() {
            let d1 = (t1.end - a).length();
            let d2 = (t2.end - a).length();
            prop_assert!(d2 >= d1 - 0.1, "shorter trace went further: {d1} vs {d2}");
        }
    }
}
