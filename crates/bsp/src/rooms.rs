//! Room graph and potentially-visible-set (PVS).
//!
//! The original server determines which entities are *of interest* to
//! each client and only sends those (paper §2): entities in leaves
//! visible from the client's leaf. Our procedural maps are room/corridor
//! mazes, so the natural visibility unit is the room: two entities can
//! see each other when their rooms are within a small door-graph
//! distance. The visibility matrix is precomputed at map build time,
//! like a `.bsp` PVS lump.

use parquake_math::{Aabb, Vec3};

/// Index of a room in the grid (row-major).
pub type RoomId = u16;

/// Room connectivity and visibility for a grid-of-rooms map.
pub struct RoomGraph {
    grid_w: u16,
    grid_h: u16,
    /// Minimum corner of cell (0,0)'s interior.
    origin_x: f32,
    origin_y: f32,
    /// Distance between successive cell interiors (room + wall).
    pitch: f32,
    /// Room graph edges: `adj[room]` lists rooms joined by a door.
    adj: Vec<Vec<RoomId>>,
    /// Bit-matrix of room-to-room visibility.
    vis: Vec<u64>,
    words_per_row: usize,
    bounds: Aabb,
}

impl RoomGraph {
    /// Build from grid geometry and the door list. `vis_depth` is the
    /// maximum door-graph distance at which rooms see each other.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        grid_w: u16,
        grid_h: u16,
        origin_x: f32,
        origin_y: f32,
        pitch: f32,
        doors: &[(RoomId, RoomId)],
        vis_depth: u32,
        bounds: Aabb,
    ) -> RoomGraph {
        let n = grid_w as usize * grid_h as usize;
        let mut adj = vec![Vec::new(); n];
        for &(a, b) in doors {
            assert!(
                (a as usize) < n && (b as usize) < n && a != b,
                "bad door {a}-{b}"
            );
            adj[a as usize].push(b);
            adj[b as usize].push(a);
        }
        let words_per_row = n.div_ceil(64);
        let mut g = RoomGraph {
            grid_w,
            grid_h,
            origin_x,
            origin_y,
            pitch,
            adj,
            vis: vec![0; n * words_per_row],
            words_per_row,
            bounds,
        };
        g.compute_vis(vis_depth);
        g
    }

    /// A trivial graph with one room spanning `bounds` (for tests and
    /// single-arena maps): everything sees everything.
    pub fn single_room(bounds: Aabb) -> RoomGraph {
        let size = bounds.size();
        RoomGraph::new(
            1,
            1,
            bounds.min.x,
            bounds.min.y,
            size.x.max(size.y),
            &[],
            0,
            bounds,
        )
    }

    fn compute_vis(&mut self, depth: u32) {
        let n = self.room_count();
        let mut dist = vec![u32::MAX; n];
        let mut queue = std::collections::VecDeque::new();
        for start in 0..n {
            dist.iter_mut().for_each(|d| *d = u32::MAX);
            queue.clear();
            dist[start] = 0;
            queue.push_back(start as RoomId);
            self.set_vis(start as RoomId, start as RoomId);
            while let Some(r) = queue.pop_front() {
                let d = dist[r as usize];
                if d >= depth {
                    continue;
                }
                for i in 0..self.adj[r as usize].len() {
                    let nb = self.adj[r as usize][i];
                    if dist[nb as usize] == u32::MAX {
                        dist[nb as usize] = d + 1;
                        self.set_vis(start as RoomId, nb);
                        queue.push_back(nb);
                    }
                }
            }
        }
    }

    fn set_vis(&mut self, a: RoomId, b: RoomId) {
        let row = a as usize * self.words_per_row;
        self.vis[row + b as usize / 64] |= 1u64 << (b as usize % 64);
        let row = b as usize * self.words_per_row;
        self.vis[row + a as usize / 64] |= 1u64 << (a as usize % 64);
    }

    #[inline]
    pub fn room_count(&self) -> usize {
        self.grid_w as usize * self.grid_h as usize
    }

    #[inline]
    pub fn grid_dims(&self) -> (u16, u16) {
        (self.grid_w, self.grid_h)
    }

    /// World bounds the graph covers.
    #[inline]
    pub fn bounds(&self) -> Aabb {
        self.bounds
    }

    /// Room id at grid cell `(cx, cy)`.
    #[inline]
    pub fn room_at(&self, cx: u16, cy: u16) -> RoomId {
        debug_assert!(cx < self.grid_w && cy < self.grid_h);
        cy * self.grid_w + cx
    }

    /// Grid cell of a room id.
    #[inline]
    pub fn cell_of(&self, room: RoomId) -> (u16, u16) {
        (room % self.grid_w, room / self.grid_w)
    }

    /// The room containing (or nearest to) a world position. Positions
    /// inside walls are attributed to the nearest cell, which is what
    /// reply visibility wants (a player brushing a wall is still "in"
    /// that room).
    pub fn room_of(&self, p: Vec3) -> RoomId {
        let fx = (p.x - self.origin_x) / self.pitch;
        let fy = (p.y - self.origin_y) / self.pitch;
        let cx = (fx.floor() as i64).clamp(0, self.grid_w as i64 - 1) as u16;
        let cy = (fy.floor() as i64).clamp(0, self.grid_h as i64 - 1) as u16;
        self.room_at(cx, cy)
    }

    /// Are two rooms mutually visible?
    #[inline]
    pub fn rooms_visible(&self, a: RoomId, b: RoomId) -> bool {
        let row = a as usize * self.words_per_row;
        self.vis[row + b as usize / 64] & (1u64 << (b as usize % 64)) != 0
    }

    /// Are two world positions mutually visible?
    #[inline]
    pub fn positions_visible(&self, a: Vec3, b: Vec3) -> bool {
        self.rooms_visible(self.room_of(a), self.room_of(b))
    }

    /// Rooms adjacent through doors.
    pub fn neighbors(&self, room: RoomId) -> &[RoomId] {
        &self.adj[room as usize]
    }

    /// Number of rooms visible from `room` (including itself).
    pub fn visible_count(&self, room: RoomId) -> usize {
        let row = room as usize * self.words_per_row;
        self.vis[row..row + self.words_per_row]
            .iter()
            .map(|w| w.count_ones() as usize)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parquake_math::vec3::vec3;

    fn line_graph(n: u16) -> RoomGraph {
        // n rooms in a row, each joined to the next.
        let doors: Vec<(RoomId, RoomId)> = (0..n - 1).map(|i| (i, i + 1)).collect();
        let bounds = Aabb::new(vec3(0.0, 0.0, 0.0), vec3(n as f32 * 100.0, 100.0, 100.0));
        RoomGraph::new(n, 1, 0.0, 0.0, 100.0, &doors, 2, bounds)
    }

    #[test]
    fn self_visibility_always_holds() {
        let g = line_graph(5);
        for r in 0..5 {
            assert!(g.rooms_visible(r, r));
        }
    }

    #[test]
    fn visibility_respects_depth() {
        let g = line_graph(6);
        assert!(g.rooms_visible(0, 1));
        assert!(g.rooms_visible(0, 2));
        assert!(!g.rooms_visible(0, 3));
        assert!(!g.rooms_visible(0, 5));
    }

    #[test]
    fn visibility_is_symmetric() {
        let g = line_graph(6);
        for a in 0..6 {
            for b in 0..6 {
                assert_eq!(g.rooms_visible(a, b), g.rooms_visible(b, a));
            }
        }
    }

    #[test]
    fn room_of_maps_grid_positions() {
        let g = line_graph(4);
        assert_eq!(g.room_of(vec3(50.0, 50.0, 0.0)), 0);
        assert_eq!(g.room_of(vec3(150.0, 50.0, 0.0)), 1);
        assert_eq!(g.room_of(vec3(399.0, 50.0, 0.0)), 3);
        // Out-of-bounds clamps to the nearest cell.
        assert_eq!(g.room_of(vec3(-10.0, 0.0, 0.0)), 0);
        assert_eq!(g.room_of(vec3(1000.0, 0.0, 0.0)), 3);
    }

    #[test]
    fn single_room_sees_itself_everywhere() {
        let bounds = Aabb::new(vec3(-100.0, -100.0, 0.0), vec3(100.0, 100.0, 100.0));
        let g = RoomGraph::single_room(bounds);
        assert_eq!(g.room_count(), 1);
        assert!(g.positions_visible(vec3(-90.0, -90.0, 0.0), vec3(90.0, 90.0, 0.0)));
    }

    #[test]
    fn disconnected_rooms_are_invisible() {
        let bounds = Aabb::new(vec3(0.0, 0.0, 0.0), vec3(200.0, 100.0, 100.0));
        let g = RoomGraph::new(2, 1, 0.0, 0.0, 100.0, &[], 2, bounds);
        assert!(!g.rooms_visible(0, 1));
    }

    #[test]
    fn grid_room_ids_roundtrip() {
        let bounds = Aabb::new(vec3(0.0, 0.0, 0.0), vec3(300.0, 200.0, 100.0));
        let g = RoomGraph::new(3, 2, 0.0, 0.0, 100.0, &[], 1, bounds);
        for cy in 0..2 {
            for cx in 0..3 {
                let r = g.room_at(cx, cy);
                assert_eq!(g.cell_of(r), (cx, cy));
            }
        }
    }

    #[test]
    fn visible_count_matches_manual() {
        let g = line_graph(6);
        // Room 2 sees 0,1,2,3,4 (depth 2 both ways).
        assert_eq!(g.visible_count(2), 5);
        // Room 0 sees 0,1,2.
        assert_eq!(g.visible_count(0), 3);
    }
}
