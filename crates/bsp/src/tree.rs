//! BSP compilation and point-contents queries.
//!
//! The compiler recursively partitions the world volume with axis-aligned
//! planes chosen from brush faces until every leaf region is entirely
//! solid or entirely empty. Because brushes are axis-aligned boxes this
//! classification is exact: a region with no brush face strictly inside
//! it is either fully covered by some intersecting brush (solid) or
//! intersects no brush at all (empty).
//!
//! One tree is compiled per clip hull (point / player / projectile) from
//! brushes inflated by the hull's Minkowski extents, mirroring Quake's
//! hull scheme so swept-box traces reduce to point traces.

use crate::brush::Brush;
use parquake_math::{Aabb, Axis, AxisPlane, Vec3};

/// Leaf classification.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Contents {
    Empty,
    Solid,
    /// Swimmable liquid (separate water tree; never blocks traces).
    Water,
}

/// Reference to a child: an interior node index or a leaf.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum NodeRef {
    Node(u32),
    Leaf(Contents),
}

/// An interior BSP node: an axis plane and two children.
#[derive(Clone, Copy, Debug)]
pub struct Node {
    pub plane: AxisPlane,
    /// Child for points with `p[axis] >= dist`.
    pub front: NodeRef,
    /// Child for points with `p[axis] < dist`.
    pub back: NodeRef,
}

/// A compiled BSP tree over one clip hull.
pub struct BspTree {
    nodes: Vec<Node>,
    root: NodeRef,
    /// The region the tree was compiled over.
    pub bounds: Aabb,
}

/// Candidate planes closer than this to a region face are ignored, to
/// avoid degenerate slivers from floating-point face alignment.
const FACE_EPS: f32 = 1e-3;

impl BspTree {
    /// Compile a tree for a hull with box extents `[mins, maxs]` relative
    /// to the traced origin (zero for the point hull). Brushes are
    /// inflated by the hull before partitioning.
    pub fn compile(brushes: &[Brush], bounds: Aabb, mins: Vec3, maxs: Vec3) -> BspTree {
        Self::compile_filtered(
            brushes,
            bounds,
            mins,
            maxs,
            |b| b.is_collidable(),
            Contents::Solid,
        )
    }

    /// Compile a tree over the water volumes only: a point query that
    /// answers "is this position submerged?".
    pub fn compile_water(brushes: &[Brush], bounds: Aabb) -> BspTree {
        Self::compile_filtered(
            brushes,
            bounds,
            Vec3::ZERO,
            Vec3::ZERO,
            |b| b.is_water(),
            Contents::Water,
        )
    }

    fn compile_filtered(
        brushes: &[Brush],
        bounds: Aabb,
        mins: Vec3,
        maxs: Vec3,
        keep: impl Fn(&Brush) -> bool,
        fill: Contents,
    ) -> BspTree {
        let inflated: Vec<Aabb> = brushes
            .iter()
            .filter(|b| keep(b))
            .map(|b| b.inflated_for_hull(mins, maxs).bounds)
            .collect();
        // The compile region must cover the inflated brushes so that
        // geometry near the world boundary keeps its outer faces.
        let region = inflated
            .iter()
            .fold(bounds, |acc, b| acc.union(b))
            .inflated(Vec3::splat(1.0));
        let mut nodes = Vec::new();
        let refs: Vec<usize> = (0..inflated.len()).collect();
        let root = build(&mut nodes, &inflated, refs, region, fill);
        BspTree {
            nodes,
            root,
            bounds,
        }
    }

    /// Number of interior nodes (compiler output size).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    #[inline]
    pub(crate) fn root(&self) -> NodeRef {
        self.root
    }

    #[inline]
    pub(crate) fn node(&self, idx: u32) -> &Node {
        &self.nodes[idx as usize]
    }

    /// Contents of the tree at point `p`, starting from the root.
    #[inline]
    pub fn contents(&self, p: Vec3) -> Contents {
        self.contents_from(self.root, p)
    }

    /// Contents of the tree at point `p`, starting from `start`.
    pub(crate) fn contents_from(&self, start: NodeRef, p: Vec3) -> Contents {
        let mut cur = start;
        loop {
            match cur {
                NodeRef::Leaf(c) => return c,
                NodeRef::Node(idx) => {
                    let n = &self.nodes[idx as usize];
                    cur = if n.plane.point_dist(p) >= 0.0 {
                        n.front
                    } else {
                        n.back
                    };
                }
            }
        }
    }

    /// Maximum leaf depth (diagnostic).
    pub fn depth(&self) -> usize {
        fn rec(t: &BspTree, r: NodeRef) -> usize {
            match r {
                NodeRef::Leaf(_) => 0,
                NodeRef::Node(i) => {
                    let n = t.node(i);
                    1 + rec(t, n.front).max(rec(t, n.back))
                }
            }
        }
        rec(self, self.root)
    }
}

/// Recursively partition `region` over the brushes listed in `live`
/// (indices into `brushes`), appending interior nodes to `nodes`.
fn build(
    nodes: &mut Vec<Node>,
    brushes: &[Aabb],
    live: Vec<usize>,
    region: Aabb,
    fill: Contents,
) -> NodeRef {
    // Keep only brushes that strictly overlap the region; touching
    // (zero-volume) overlap cannot make any interior point solid.
    let live: Vec<usize> = live
        .into_iter()
        .filter(|&i| strictly_overlaps(&brushes[i], &region))
        .collect();
    if live.is_empty() {
        return NodeRef::Leaf(Contents::Empty);
    }

    // Candidate split planes: brush faces strictly inside the region.
    let mut best: Option<(AxisPlane, i64)> = None;
    for &i in &live {
        let b = &brushes[i];
        for axis in [Axis::X, Axis::Y, Axis::Z] {
            let ai = axis.index();
            for v in [b.min[ai], b.max[ai]] {
                if v > region.min[ai] + FACE_EPS && v < region.max[ai] - FACE_EPS {
                    let plane = AxisPlane::new(axis, v);
                    let score = score_plane(&plane, brushes, &live);
                    if best.map(|(_, s)| score < s).unwrap_or(true) {
                        best = Some((plane, score));
                    }
                }
            }
        }
    }

    let Some((plane, _)) = best else {
        // No face strictly inside: every live brush fully covers the
        // region (see module docs), so the whole region is filled.
        return NodeRef::Leaf(fill);
    };

    let ai = plane.axis.index();
    let mut front_region = region;
    front_region.min[ai] = plane.dist;
    let mut back_region = region;
    back_region.max[ai] = plane.dist;

    // Reserve our slot before recursing so parents precede children.
    let my_idx = nodes.len() as u32;
    nodes.push(Node {
        plane,
        front: NodeRef::Leaf(Contents::Empty),
        back: NodeRef::Leaf(Contents::Empty),
    });
    let front = build(nodes, brushes, live.clone(), front_region, fill);
    let back = build(nodes, brushes, live, back_region, fill);
    nodes[my_idx as usize].front = front;
    nodes[my_idx as usize].back = back;
    NodeRef::Node(my_idx)
}

#[inline]
fn strictly_overlaps(b: &Aabb, r: &Aabb) -> bool {
    (0..3).all(|i| b.min[i] < r.max[i] - FACE_EPS && b.max[i] > r.min[i] + FACE_EPS)
}

/// Lower is better: penalize brushes crossing the plane (they go to both
/// children) and imbalance between sides.
fn score_plane(plane: &AxisPlane, brushes: &[Aabb], live: &[usize]) -> i64 {
    let ai = plane.axis.index();
    let mut front = 0i64;
    let mut back = 0i64;
    let mut cross = 0i64;
    for &i in live {
        let b = &brushes[i];
        if b.min[ai] >= plane.dist {
            front += 1;
        } else if b.max[ai] <= plane.dist {
            back += 1;
        } else {
            cross += 1;
        }
    }
    cross * 3 + (front - back).abs()
}

#[cfg(test)]
mod tests {
    use super::*;
    use parquake_math::vec3::vec3;

    fn world(brushes: &[Brush]) -> BspTree {
        let bounds = Aabb::new(vec3(-100.0, -100.0, -100.0), vec3(100.0, 100.0, 100.0));
        BspTree::compile(brushes, bounds, Vec3::ZERO, Vec3::ZERO)
    }

    #[test]
    fn empty_world_is_all_empty() {
        let t = world(&[]);
        assert_eq!(t.contents(Vec3::ZERO), Contents::Empty);
        assert_eq!(t.node_count(), 0);
    }

    #[test]
    fn single_brush_classification() {
        let t = world(&[Brush::solid(Aabb::new(
            vec3(-10.0, -10.0, -10.0),
            vec3(10.0, 10.0, 10.0),
        ))]);
        assert_eq!(t.contents(Vec3::ZERO), Contents::Solid);
        assert_eq!(t.contents(vec3(50.0, 0.0, 0.0)), Contents::Empty);
        assert_eq!(t.contents(vec3(0.0, 0.0, 11.0)), Contents::Empty);
        assert_eq!(t.contents(vec3(9.9, 9.9, 9.9)), Contents::Solid);
    }

    #[test]
    fn overlapping_brushes_union() {
        let t = world(&[
            Brush::solid(Aabb::new(vec3(-10.0, -10.0, -10.0), vec3(5.0, 10.0, 10.0))),
            Brush::solid(Aabb::new(vec3(0.0, -10.0, -10.0), vec3(15.0, 10.0, 10.0))),
        ]);
        assert_eq!(t.contents(vec3(2.0, 0.0, 0.0)), Contents::Solid);
        assert_eq!(t.contents(vec3(12.0, 0.0, 0.0)), Contents::Solid);
        assert_eq!(t.contents(vec3(20.0, 0.0, 0.0)), Contents::Empty);
    }

    #[test]
    fn disjoint_brushes() {
        let t = world(&[
            Brush::solid(Aabb::new(
                vec3(-50.0, -50.0, -50.0),
                vec3(-40.0, 50.0, 50.0),
            )),
            Brush::solid(Aabb::new(vec3(40.0, -50.0, -50.0), vec3(50.0, 50.0, 50.0))),
        ]);
        assert_eq!(t.contents(vec3(-45.0, 0.0, 0.0)), Contents::Solid);
        assert_eq!(t.contents(vec3(45.0, 0.0, 0.0)), Contents::Solid);
        assert_eq!(t.contents(Vec3::ZERO), Contents::Empty);
    }

    #[test]
    fn hull_inflation_extends_solid_region() {
        let brush = Brush::solid(Aabb::new(vec3(-10.0, -10.0, -10.0), vec3(10.0, 10.0, 10.0)));
        let bounds = Aabb::new(vec3(-100.0, -100.0, -100.0), vec3(100.0, 100.0, 100.0));
        let t = BspTree::compile(
            &[brush],
            bounds,
            vec3(-16.0, -16.0, -24.0),
            vec3(16.0, 16.0, 32.0),
        );
        // A player origin 20 units to the side would overlap the brush.
        assert_eq!(t.contents(vec3(20.0, 0.0, 0.0)), Contents::Solid);
        assert_eq!(t.contents(vec3(27.0, 0.0, 0.0)), Contents::Empty);
        // Standing on top: feet extend 24 below the origin.
        assert_eq!(t.contents(vec3(0.0, 0.0, 30.0)), Contents::Solid);
        assert_eq!(t.contents(vec3(0.0, 0.0, 35.0)), Contents::Empty);
    }

    #[test]
    fn brute_force_agreement_on_grid() {
        let brushes = vec![
            Brush::solid(Aabb::new(
                vec3(-30.0, -30.0, -30.0),
                vec3(-10.0, 30.0, 30.0),
            )),
            Brush::solid(Aabb::new(vec3(10.0, -30.0, -5.0), vec3(30.0, 30.0, 30.0))),
            Brush::solid(Aabb::new(
                vec3(-30.0, -30.0, -30.0),
                vec3(30.0, -20.0, 30.0),
            )),
        ];
        let t = world(&brushes);
        let mut checked = 0;
        for xi in -6..=6 {
            for yi in -6..=6 {
                for zi in -6..=6 {
                    let p = vec3(xi as f32 * 7.3, yi as f32 * 7.3, zi as f32 * 7.3);
                    let brute = brushes
                        .iter()
                        .any(|b| b.bounds.contains_point(p) && interior(&b.bounds, p));
                    let got = t.contents(p) == Contents::Solid;
                    // Skip points exactly on faces where both answers are
                    // acceptable.
                    if on_any_face(&brushes, p) {
                        continue;
                    }
                    assert_eq!(got, brute, "at {p:?}");
                    checked += 1;
                }
            }
        }
        assert!(checked > 1000);
    }

    fn interior(b: &Aabb, p: Vec3) -> bool {
        (0..3).all(|i| p[i] > b.min[i] && p[i] < b.max[i])
    }

    fn on_any_face(brushes: &[Brush], p: Vec3) -> bool {
        brushes.iter().any(|b| {
            (0..3).any(|i| {
                (p[i] - b.bounds.min[i]).abs() < 1e-3 || (p[i] - b.bounds.max[i]).abs() < 1e-3
            })
        })
    }

    #[test]
    fn depth_is_reasonable() {
        let mut brushes = Vec::new();
        for i in 0..20 {
            let x = -90.0 + i as f32 * 9.0;
            brushes.push(Brush::solid(Aabb::new(
                vec3(x, -90.0, -90.0),
                vec3(x + 4.0, 90.0, 90.0),
            )));
        }
        let t = world(&brushes);
        assert!(t.depth() <= 24, "depth = {}", t.depth());
    }
}
