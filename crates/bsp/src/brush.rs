//! Solid brushes: the source geometry the BSP compiler consumes.
//!
//! World geometry is authored (by the map generator or by hand in tests)
//! as a set of axis-aligned solid boxes. Restricting brushes to AABBs
//! keeps the compiler simple while preserving everything the paper's
//! workload depends on: corridors, rooms, doorways, pillars and the
//! resulting collision/visibility structure.

use parquake_math::{Aabb, Vec3};

/// What a brush is made of. `Solid` and `Clip` block movement; `Water`
/// volumes are swimmable (non-blocking, reported by contents queries).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Material {
    Solid,
    Clip,
    /// Swimmable liquid: does not block traces, changes movement.
    Water,
}

/// An axis-aligned solid volume.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Brush {
    pub bounds: Aabb,
    pub material: Material,
}

impl Brush {
    /// A solid brush covering `bounds`.
    pub fn solid(bounds: Aabb) -> Brush {
        Brush {
            bounds,
            material: Material::Solid,
        }
    }

    /// Inflate for a clip hull: a box with extents `[mins, maxs]`
    /// (relative to its origin) collides with this brush exactly when
    /// the box *origin* is inside the inflated brush (Minkowski sum).
    /// For axis-aligned geometry this expansion is exact, which is why
    /// per-hull compilation gives exact swept-box traces.
    pub fn inflated_for_hull(&self, mins: Vec3, maxs: Vec3) -> Brush {
        Brush {
            bounds: Aabb::new(self.bounds.min - maxs, self.bounds.max - mins),
            material: self.material,
        }
    }

    /// A water brush covering `bounds`.
    pub fn water(bounds: Aabb) -> Brush {
        Brush {
            bounds,
            material: Material::Water,
        }
    }

    /// Does this brush block movement?
    #[inline]
    pub fn is_collidable(&self) -> bool {
        matches!(self.material, Material::Solid | Material::Clip)
    }

    /// Is this a liquid volume?
    #[inline]
    pub fn is_water(&self) -> bool {
        self.material == Material::Water
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parquake_math::vec3::vec3;

    #[test]
    fn inflation_grows_by_hull_extents() {
        let b = Brush::solid(Aabb::new(vec3(0.0, 0.0, 0.0), vec3(10.0, 10.0, 10.0)));
        // Player-like hull: mins (-16,-16,-24), maxs (16,16,32).
        let mins = vec3(-16.0, -16.0, -24.0);
        let maxs = vec3(16.0, 16.0, 32.0);
        let i = b.inflated_for_hull(mins, maxs);
        assert_eq!(i.bounds.min, vec3(-16.0, -16.0, -32.0));
        assert_eq!(i.bounds.max, vec3(26.0, 26.0, 34.0));
    }

    #[test]
    fn point_hull_inflation_is_identity() {
        let b = Brush::solid(Aabb::new(vec3(-5.0, -5.0, -5.0), vec3(5.0, 5.0, 5.0)));
        let i = b.inflated_for_hull(Vec3::ZERO, Vec3::ZERO);
        assert_eq!(i.bounds, b.bounds);
    }

    #[test]
    fn materials_collide() {
        let b = Brush {
            bounds: Aabb::point(Vec3::ZERO),
            material: Material::Clip,
        };
        assert!(b.is_collidable());
        assert!(Brush::solid(Aabb::point(Vec3::ZERO)).is_collidable());
    }
}
