//! Deterministic procedural deathmatch arenas.
//!
//! The paper evaluates on `gmdm10.bsp`, "one of the largest maps we
//! could find", designed for 16–32 players, so that 64–160 synthetic
//! players over-crowd it and interactions are extreme. We cannot ship
//! that copyrighted map, so this generator produces mazes with the same
//! load-bearing properties: many rooms and corridors (layout
//! complexity), pillars (intra-room occlusion), items to contend for,
//! and teleporters (far relocation during move execution — the paper's
//! motivating example for long-range effects).
//!
//! Maps are fully determined by [`MapGenConfig`], including the seed, so
//! every experiment is reproducible bit-for-bit.

use crate::brush::Brush;
use crate::rooms::{RoomGraph, RoomId};
use crate::{BspWorld, ItemSpawn};
use parquake_math::vec3::vec3;
use parquake_math::{Aabb, Pcg32, Vec3};

/// Parameters of the arena generator.
#[derive(Clone, Debug)]
pub struct MapGenConfig {
    pub seed: u64,
    /// Rooms along X.
    pub grid_w: u16,
    /// Rooms along Y.
    pub grid_h: u16,
    /// Interior side length of one room, in units.
    pub room_size: f32,
    /// Wall slab thickness.
    pub wall_thickness: f32,
    /// Playable height (floor to ceiling).
    pub ceiling_height: f32,
    /// Width of door gaps between connected rooms.
    pub door_width: f32,
    /// Probability of adding a door beyond the spanning tree (loops).
    pub extra_door_chance: f32,
    /// Probability a room gets a central pillar.
    pub pillar_chance: f32,
    /// Item markers placed per room.
    pub items_per_room: u8,
    /// Number of teleporter pads (each with a distinct destination room).
    pub teleporter_pairs: u8,
    /// Door-graph distance at which rooms remain mutually visible.
    pub vis_depth: u32,
    /// Probability a room floor is flooded with a waist-deep pool.
    pub water_chance: f32,
}

impl MapGenConfig {
    /// The default evaluation map: a large maze arena sized like a
    /// 16–32 player map (the paper's `gmdm10` stand-in).
    pub fn large_arena(seed: u64) -> MapGenConfig {
        MapGenConfig {
            seed,
            grid_w: 10,
            grid_h: 10,
            room_size: 384.0,
            wall_thickness: 32.0,
            ceiling_height: 192.0,
            door_width: 128.0,
            extra_door_chance: 0.35,
            pillar_chance: 0.30,
            items_per_room: 2,
            teleporter_pairs: 6,
            vis_depth: 2,
            water_chance: 0.0,
        }
    }

    /// The paper's evaluation regime: a map designed for 16-32 players
    /// hosting 64-160, so interactions are extreme (paper §4: "even
    /// with a large map, the observed level of interaction among
    /// players is very high").
    pub fn eval_arena(seed: u64) -> MapGenConfig {
        MapGenConfig {
            grid_w: 7,
            grid_h: 7,
            extra_door_chance: 0.45,
            teleporter_pairs: 6,
            ..MapGenConfig::large_arena(seed)
        }
    }

    /// A small, cramped map: interactions increase (paper §4 notes small
    /// maps induce more interaction).
    pub fn small_arena(seed: u64) -> MapGenConfig {
        MapGenConfig {
            grid_w: 5,
            grid_h: 5,
            teleporter_pairs: 3,
            ..MapGenConfig::large_arena(seed)
        }
    }

    /// A partially flooded maze: pools change movement (swimming) in
    /// about a third of the rooms.
    pub fn flooded_arena(seed: u64) -> MapGenConfig {
        MapGenConfig {
            water_chance: 0.35,
            ..MapGenConfig::small_arena(seed)
        }
    }

    /// One giant hall with pillars: maximal visibility and contention.
    pub fn open_hall(seed: u64) -> MapGenConfig {
        MapGenConfig {
            grid_w: 1,
            grid_h: 1,
            room_size: 2048.0,
            pillar_chance: 1.0,
            items_per_room: 12,
            teleporter_pairs: 2,
            vis_depth: 0,
            ..MapGenConfig::large_arena(seed)
        }
    }

    /// Distance between successive cell origins.
    #[inline]
    pub fn pitch(&self) -> f32 {
        self.room_size + self.wall_thickness
    }

    /// Total world footprint (including outer walls).
    pub fn footprint(&self) -> (f32, f32) {
        (
            self.wall_thickness + self.grid_w as f32 * self.pitch(),
            self.wall_thickness + self.grid_h as f32 * self.pitch(),
        )
    }

    /// Generate and compile the world.
    pub fn generate(&self) -> BspWorld {
        Generator::new(self.clone()).run()
    }
}

struct Generator {
    cfg: MapGenConfig,
    rng: Pcg32,
    brushes: Vec<Brush>,
    doors: Vec<(RoomId, RoomId)>,
}

impl Generator {
    fn new(cfg: MapGenConfig) -> Generator {
        let rng = Pcg32::new(cfg.seed, 0xA1EA);
        Generator {
            cfg,
            rng,
            brushes: Vec::new(),
            doors: Vec::new(),
        }
    }

    /// Interior AABB (XY) of cell (cx, cy) at floor level.
    fn cell_interior(&self, cx: u16, cy: u16) -> (f32, f32, f32, f32) {
        let c = &self.cfg;
        let x0 = c.wall_thickness + cx as f32 * c.pitch();
        let y0 = c.wall_thickness + cy as f32 * c.pitch();
        (x0, y0, x0 + c.room_size, y0 + c.room_size)
    }

    fn cell_center(&self, cx: u16, cy: u16) -> Vec3 {
        let (x0, y0, x1, y1) = self.cell_interior(cx, cy);
        vec3((x0 + x1) * 0.5, (y0 + y1) * 0.5, 0.0)
    }

    fn run(mut self) -> BspWorld {
        let c = self.cfg.clone();
        let (w, h) = c.footprint();
        let zlo = -c.wall_thickness;
        let zhi = c.ceiling_height + c.wall_thickness;
        let bounds = Aabb::new(vec3(0.0, 0.0, zlo), vec3(w, h, zhi));

        // Floor and ceiling slabs over the full footprint.
        self.solid(0.0, 0.0, zlo, w, h, 0.0);
        self.solid(0.0, 0.0, c.ceiling_height, w, h, zhi);
        // Outer walls (full height, sealing corners).
        let t = c.wall_thickness;
        self.solid(0.0, 0.0, zlo, t, h, zhi);
        self.solid(w - t, 0.0, zlo, w, h, zhi);
        self.solid(0.0, 0.0, zlo, w, t, zhi);
        self.solid(0.0, h - t, zlo, w, h, zhi);

        let connected = self.carve_connectivity();
        self.place_inner_walls(&connected);
        self.place_corner_posts();
        let pillar_rooms = self.place_pillars();
        self.place_water();

        // Rooms graph with PVS.
        let rooms = RoomGraph::new(
            c.grid_w,
            c.grid_h,
            c.wall_thickness,
            c.wall_thickness,
            c.pitch(),
            &self.doors,
            c.vis_depth,
            bounds,
        );

        // Spawn points: room centers (plus quarter offsets in big maps),
        // at standing height (player feet just above the floor).
        let spawn_z = 25.0;
        let mut spawns = Vec::new();
        for cy in 0..c.grid_h {
            for cx in 0..c.grid_w {
                let mut p = self.cell_center(cx, cy);
                p.z = spawn_z;
                if pillar_rooms.contains(&rooms.room_at(cx, cy)) {
                    // Keep spawns off the central pillar.
                    p.x += c.room_size * 0.25;
                }
                spawns.push(p);
            }
        }

        // Item markers near room corners, classes cycling.
        let mut items = Vec::new();
        let inset = c.room_size * 0.25;
        for cy in 0..c.grid_h {
            for cx in 0..c.grid_w {
                let center = self.cell_center(cx, cy);
                for k in 0..c.items_per_room {
                    let corner = k % 4;
                    let (sx, sy) = match corner {
                        0 => (-1.0, -1.0),
                        1 => (1.0, -1.0),
                        2 => (1.0, 1.0),
                        _ => (-1.0, 1.0),
                    };
                    items.push(ItemSpawn {
                        pos: vec3(center.x + sx * inset, center.y + sy * inset, 0.0),
                        class: self.rng.below(5) as u8,
                    });
                }
            }
        }

        // Teleporters: pad in one room, destination in a far room.
        let mut teleporters = Vec::new();
        let n_rooms = rooms.room_count() as u32;
        if n_rooms >= 2 {
            for _ in 0..c.teleporter_pairs {
                let a = self.rng.below(n_rooms) as RoomId;
                let mut b = self.rng.below(n_rooms) as RoomId;
                if b == a {
                    b = (b + 1) % n_rooms as RoomId;
                }
                let (ax, ay) = rooms.cell_of(a);
                let (bx, by) = rooms.cell_of(b);
                let mut pad = self.cell_center(ax, ay);
                pad.x -= c.room_size * 0.3;
                pad.y -= c.room_size * 0.3;
                let mut dst = self.cell_center(bx, by);
                dst.z = spawn_z;
                if pillar_rooms.contains(&b) {
                    // Keep destinations off the central pillar.
                    dst.x -= c.room_size * 0.25;
                }
                teleporters.push((pad, dst));
            }
        }

        BspWorld::compile(bounds, self.brushes, rooms, spawns, items, teleporters)
    }

    fn solid(&mut self, x0: f32, y0: f32, z0: f32, x1: f32, y1: f32, z1: f32) {
        self.brushes
            .push(Brush::solid(Aabb::new(vec3(x0, y0, z0), vec3(x1, y1, z1))));
    }

    /// Randomized-DFS spanning tree plus extra loop doors. Returns the
    /// set of connected (door-carrying) adjacent cell pairs.
    fn carve_connectivity(&mut self) -> Vec<(RoomId, RoomId)> {
        let (gw, gh) = (self.cfg.grid_w, self.cfg.grid_h);
        let n = gw as usize * gh as usize;
        let room = |cx: u16, cy: u16| -> RoomId { cy * gw + cx };
        let mut visited = vec![false; n];
        let mut stack = vec![0 as RoomId];
        visited[0] = true;
        let mut connected = Vec::new();
        while let Some(&cur) = stack.last() {
            let (cx, cy) = (cur % gw, cur / gw);
            let mut options = Vec::new();
            if cx > 0 && !visited[room(cx - 1, cy) as usize] {
                options.push(room(cx - 1, cy));
            }
            if cx + 1 < gw && !visited[room(cx + 1, cy) as usize] {
                options.push(room(cx + 1, cy));
            }
            if cy > 0 && !visited[room(cx, cy - 1) as usize] {
                options.push(room(cx, cy - 1));
            }
            if cy + 1 < gh && !visited[room(cx, cy + 1) as usize] {
                options.push(room(cx, cy + 1));
            }
            if options.is_empty() {
                stack.pop();
                continue;
            }
            let next = *self.rng.pick(&options);
            visited[next as usize] = true;
            connected.push((cur.min(next), cur.max(next)));
            stack.push(next);
        }
        // Extra loop doors.
        for cy in 0..gh {
            for cx in 0..gw {
                let a = room(cx, cy);
                if cx + 1 < gw {
                    let b = room(cx + 1, cy);
                    let pair = (a.min(b), a.max(b));
                    if !connected.contains(&pair) && self.rng.chance(self.cfg.extra_door_chance) {
                        connected.push(pair);
                    }
                }
                if cy + 1 < gh {
                    let b = room(cx, cy + 1);
                    let pair = (a.min(b), a.max(b));
                    if !connected.contains(&pair) && self.rng.chance(self.cfg.extra_door_chance) {
                        connected.push(pair);
                    }
                }
            }
        }
        self.doors = connected.clone();
        connected
    }

    /// Inner wall slabs between adjacent rooms; connected pairs get a
    /// centered door gap.
    fn place_inner_walls(&mut self, connected: &[(RoomId, RoomId)]) {
        let c = self.cfg.clone();
        let (gw, gh) = (c.grid_w, c.grid_h);
        let zhi = c.ceiling_height;
        let has_door = |a: RoomId, b: RoomId| connected.contains(&(a.min(b), a.max(b)));
        // Vertical walls (between horizontally adjacent cells).
        for cy in 0..gh {
            for cx in 0..gw.saturating_sub(1) {
                let (_, y0, x1, y1) = self.cell_interior(cx, cy);
                let wx0 = x1;
                let wx1 = x1 + c.wall_thickness;
                let a = cy * gw + cx;
                let b = cy * gw + cx + 1;
                if has_door(a, b) {
                    let yc = (y0 + y1) * 0.5;
                    let g0 = yc - c.door_width * 0.5;
                    let g1 = yc + c.door_width * 0.5;
                    if g0 > y0 {
                        self.solid(wx0, y0, 0.0, wx1, g0, zhi);
                    }
                    if g1 < y1 {
                        self.solid(wx0, g1, 0.0, wx1, y1, zhi);
                    }
                } else {
                    self.solid(wx0, y0, 0.0, wx1, y1, zhi);
                }
            }
        }
        // Horizontal walls (between vertically adjacent cells).
        for cy in 0..gh.saturating_sub(1) {
            for cx in 0..gw {
                let (x0, _, x1, y1) = self.cell_interior(cx, cy);
                let wy0 = y1;
                let wy1 = y1 + c.wall_thickness;
                let a = cy * gw + cx;
                let b = (cy + 1) * gw + cx;
                if has_door(a, b) {
                    let xc = (x0 + x1) * 0.5;
                    let g0 = xc - c.door_width * 0.5;
                    let g1 = xc + c.door_width * 0.5;
                    if g0 > x0 {
                        self.solid(x0, wy0, 0.0, g0, wy1, zhi);
                    }
                    if g1 < x1 {
                        self.solid(g1, wy0, 0.0, x1, wy1, zhi);
                    }
                } else {
                    self.solid(x0, wy0, 0.0, x1, wy1, zhi);
                }
            }
        }
    }

    /// Posts sealing the interior corners where four cells meet.
    fn place_corner_posts(&mut self) {
        let c = self.cfg.clone();
        let zhi = c.ceiling_height;
        for cy in 0..c.grid_h.saturating_sub(1) {
            for cx in 0..c.grid_w.saturating_sub(1) {
                let (_, _, x1, y1) = self.cell_interior(cx, cy);
                self.solid(
                    x1,
                    y1,
                    0.0,
                    x1 + c.wall_thickness,
                    y1 + c.wall_thickness,
                    zhi,
                );
            }
        }
    }

    /// Waist-deep pools covering flooded room floors.
    fn place_water(&mut self) {
        let c = self.cfg.clone();
        if c.water_chance <= 0.0 {
            return;
        }
        for cy in 0..c.grid_h {
            for cx in 0..c.grid_w {
                if self.rng.chance(c.water_chance) {
                    let (x0, y0, x1, y1) = self.cell_interior(cx, cy);
                    self.brushes.push(Brush::water(Aabb::new(
                        vec3(x0, y0, 0.0),
                        vec3(x1, y1, 40.0),
                    )));
                }
            }
        }
    }

    /// Optional central pillars; returns rooms that got one.
    fn place_pillars(&mut self) -> Vec<RoomId> {
        let c = self.cfg.clone();
        let mut out = Vec::new();
        let half = c.wall_thickness;
        for cy in 0..c.grid_h {
            for cx in 0..c.grid_w {
                if self.rng.chance(c.pillar_chance) {
                    let center = self.cell_center(cx, cy);
                    self.solid(
                        center.x - half,
                        center.y - half,
                        0.0,
                        center.x + half,
                        center.y + half,
                        c.ceiling_height,
                    );
                    out.push(cy * c.grid_w + cx);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::Contents;
    use crate::Hull;

    #[test]
    fn generation_is_deterministic() {
        let a = MapGenConfig::small_arena(7).generate();
        let b = MapGenConfig::small_arena(7).generate();
        assert_eq!(a.brushes.len(), b.brushes.len());
        for (x, y) in a.brushes.iter().zip(b.brushes.iter()) {
            assert_eq!(x, y);
        }
        assert_eq!(a.spawn_points, b.spawn_points);
        assert_eq!(a.item_spawns, b.item_spawns);
    }

    #[test]
    fn different_seeds_differ() {
        let a = MapGenConfig::small_arena(1).generate();
        let b = MapGenConfig::small_arena(2).generate();
        let same = a
            .brushes
            .iter()
            .zip(b.brushes.iter())
            .filter(|(x, y)| x == y)
            .count();
        assert!(same < a.brushes.len().min(b.brushes.len()));
    }

    #[test]
    fn spawn_points_are_in_open_space() {
        let w = MapGenConfig::small_arena(42).generate();
        assert_eq!(w.spawn_points.len(), 25);
        for (i, &s) in w.spawn_points.iter().enumerate() {
            assert!(w.player_fits(s), "spawn {i} at {s:?} blocked");
        }
    }

    #[test]
    fn item_spawns_are_reachable_points() {
        let w = MapGenConfig::small_arena(42).generate();
        assert_eq!(w.item_spawns.len(), 50);
        for it in &w.item_spawns {
            // Item origin sits at floor level; probe just above.
            let p = it.pos + vec3(0.0, 0.0, 8.0);
            assert_eq!(w.contents(p), Contents::Empty, "item at {:?}", it.pos);
        }
    }

    #[test]
    fn world_is_sealed_downwards() {
        let w = MapGenConfig::small_arena(3).generate();
        // Falling from any spawn must land on a floor, never escape.
        for &s in &w.spawn_points {
            let tr = w.trace(Hull::Player, s, s + vec3(0.0, 0.0, -10_000.0));
            assert!(tr.hit(), "fell through world at {s:?}");
            assert!(tr.end.z > -100.0);
        }
    }

    #[test]
    fn rooms_are_connected_by_spanning_tree() {
        let w = MapGenConfig::large_arena(5).generate();
        // BFS over door graph must reach every room.
        let n = w.rooms.room_count();
        let mut seen = vec![false; n];
        let mut queue = std::collections::VecDeque::from([0u16]);
        seen[0] = true;
        let mut count = 1;
        while let Some(r) = queue.pop_front() {
            for &nb in w.rooms.neighbors(r) {
                if !seen[nb as usize] {
                    seen[nb as usize] = true;
                    count += 1;
                    queue.push_back(nb);
                }
            }
        }
        assert_eq!(count, n, "maze is disconnected");
    }

    #[test]
    fn teleporters_have_valid_destinations() {
        let w = MapGenConfig::large_arena(11).generate();
        assert_eq!(w.teleporters.len(), 6);
        for &(pad, dst) in &w.teleporters {
            assert!(w.bounds.contains_point(pad));
            assert!(w.player_fits(dst), "teleporter dest {dst:?} blocked");
        }
    }

    #[test]
    fn doorways_are_passable() {
        let w = MapGenConfig::small_arena(9).generate();
        // For each door, trace from one room center to the other;
        // the trace must make it past the shared wall (doors are wide
        // enough for the player hull).
        let cfg = MapGenConfig::small_arena(9);
        let pitch = cfg.pitch();
        for r in 0..w.rooms.room_count() as u16 {
            let (cx, cy) = w.rooms.cell_of(r);
            for &nb in w.rooms.neighbors(r) {
                if nb < r {
                    continue;
                }
                let (nx, ny) = w.rooms.cell_of(nb);
                let center = |gx: u16, gy: u16| {
                    vec3(
                        cfg.wall_thickness + gx as f32 * pitch + cfg.room_size * 0.5,
                        cfg.wall_thickness + gy as f32 * pitch + cfg.room_size * 0.5,
                        40.0,
                    )
                };
                // Probe the doorway itself: points a quarter-room either
                // side of the shared wall, clear of any central pillars.
                let ca = center(cx, cy);
                let cb = center(nx, ny);
                let mid = ca.lerp(cb, 0.5);
                let a = mid.lerp(ca, 0.4);
                let b = mid.lerp(cb, 0.4);
                let tr = w.trace(Hull::Player, a, b);
                assert!(
                    !tr.hit(),
                    "door {r}->{nb} blocked at fraction {}",
                    tr.fraction
                );
            }
        }
    }

    #[test]
    fn open_hall_is_one_big_room() {
        let w = MapGenConfig::open_hall(13).generate();
        assert_eq!(w.rooms.room_count(), 1);
        assert!(w.player_fits(w.spawn_points[0]));
    }

    #[test]
    fn footprint_matches_layout() {
        let cfg = MapGenConfig::large_arena(0);
        let (fw, fh) = cfg.footprint();
        let w = cfg.generate();
        assert_eq!(w.bounds.max.x, fw);
        assert_eq!(w.bounds.max.y, fh);
    }
}
