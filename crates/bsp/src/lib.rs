//! BSP world representation for `parquake`.
//!
//! The reproduced server keeps the 3D game world as a binary space
//! partition (paper §2.2): a tree whose leaves are convex regions marked
//! *solid* or *empty*, used for all collision queries during move
//! execution. The original shipped pre-compiled `.bsp` files; we build
//! the equivalent from scratch:
//!
//! * [`brush`] — axis-aligned solid brushes, the source geometry,
//! * [`tree`] — a BSP compiler turning brush soup into a query tree,
//! * [`trace`] — point-contents and swept-box (hull) traces,
//! * [`rooms`] — the room graph and potentially-visible-set used to
//!   scope server replies to what each client can see,
//! * [`mapgen`] — a deterministic procedural deathmatch-arena generator
//!   standing in for the paper's `gmdm10.bsp` map.
//!
//! A [`BspWorld`] bundles the compiled hulls (point, player, projectile —
//! mirroring Quake's fixed clip-hull scheme) with the room graph.

pub mod brush;
pub mod mapgen;
pub mod rooms;
pub mod trace;
pub mod tree;

pub use brush::Brush;
pub use trace::Trace;
pub use tree::{BspTree, Contents};

use parquake_math::{Aabb, Vec3};
use rooms::RoomGraph;

/// Which pre-compiled clip hull a trace should use. Quake compiled one
/// hull per collision-box size; traces then work on points.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Hull {
    /// Zero-extent hull.
    Point,
    /// The 32×32×56 player hull.
    Player,
    /// Small 8×8×8 projectile hull.
    Projectile,
}

/// A fully compiled world: solid geometry plus visibility structure.
pub struct BspWorld {
    /// World bounds (the volume the areanode tree will subdivide).
    pub bounds: Aabb,
    /// Source brushes (kept for debugging and for re-deriving hulls).
    pub brushes: Vec<Brush>,
    /// Point-sized clip hull.
    pub hull_point: BspTree,
    /// Player-sized clip hull (brushes inflated by the player box).
    pub hull_player: BspTree,
    /// Projectile-sized clip hull.
    pub hull_projectile: BspTree,
    /// Water-volume tree (point queries; water never blocks traces).
    pub hull_water: BspTree,
    /// Room connectivity and visibility.
    pub rooms: RoomGraph,
    /// Player spawn points (guaranteed to be in open space).
    pub spawn_points: Vec<Vec3>,
    /// Item spawn markers: position plus a generator class byte that the
    /// simulation maps onto concrete item kinds.
    pub item_spawns: Vec<ItemSpawn>,
    /// Teleporter pads: entering the pad at `.0` relocates to `.1`.
    pub teleporters: Vec<(Vec3, Vec3)>,
}

/// A generator-placed item marker.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ItemSpawn {
    pub pos: Vec3,
    /// Generator class byte; the simulation maps this to an item kind.
    pub class: u8,
}

impl BspWorld {
    /// Compile a world from brush geometry. `bounds` must contain every
    /// brush; spawn/item metadata comes from the generator (or tests).
    pub fn compile(
        bounds: Aabb,
        brushes: Vec<Brush>,
        rooms: RoomGraph,
        spawn_points: Vec<Vec3>,
        item_spawns: Vec<ItemSpawn>,
        teleporters: Vec<(Vec3, Vec3)>,
    ) -> BspWorld {
        let hull_point = BspTree::compile(&brushes, bounds, Vec3::ZERO, Vec3::ZERO);
        let ph = parquake_math::aabb::player_hull();
        let hull_player = BspTree::compile(&brushes, bounds, ph.min, ph.max);
        let jh = parquake_math::aabb::projectile_hull();
        let hull_projectile = BspTree::compile(&brushes, bounds, jh.min, jh.max);
        let hull_water = BspTree::compile_water(&brushes, bounds);
        BspWorld {
            bounds,
            brushes,
            hull_point,
            hull_player,
            hull_projectile,
            hull_water,
            rooms,
            spawn_points,
            item_spawns,
            teleporters,
        }
    }

    /// Select a clip hull.
    #[inline]
    pub fn hull(&self, hull: Hull) -> &BspTree {
        match hull {
            Hull::Point => &self.hull_point,
            Hull::Player => &self.hull_player,
            Hull::Projectile => &self.hull_projectile,
        }
    }

    /// Trace a hull from `start` to `end` against world geometry.
    #[inline]
    pub fn trace(&self, hull: Hull, start: Vec3, end: Vec3) -> Trace {
        self.hull(hull).trace(start, end)
    }

    /// Contents of the world at a point: solid wins over water.
    #[inline]
    pub fn contents(&self, p: Vec3) -> Contents {
        match self.hull_point.contents(p) {
            Contents::Solid => Contents::Solid,
            _ => self.hull_water.contents(p),
        }
    }

    /// Is this point submerged (and not inside a wall)?
    #[inline]
    pub fn in_water(&self, p: Vec3) -> bool {
        self.contents(p) == Contents::Water
    }

    /// True when a player-sized box at `p` stands in open space.
    #[inline]
    pub fn player_fits(&self, p: Vec3) -> bool {
        self.hull_player.contents(p) == Contents::Empty
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parquake_math::vec3::vec3;

    /// A 1000³ box room with 64-unit-thick walls all around.
    fn box_room() -> BspWorld {
        let bounds = Aabb::new(vec3(-500.0, -500.0, -500.0), vec3(500.0, 500.0, 500.0));
        let t = 64.0;
        let brushes = vec![
            // floor / ceiling
            Brush::solid(Aabb::new(
                vec3(-500.0, -500.0, -500.0),
                vec3(500.0, 500.0, -500.0 + t),
            )),
            Brush::solid(Aabb::new(
                vec3(-500.0, -500.0, 500.0 - t),
                vec3(500.0, 500.0, 500.0),
            )),
            // four walls
            Brush::solid(Aabb::new(
                vec3(-500.0, -500.0, -500.0),
                vec3(-500.0 + t, 500.0, 500.0),
            )),
            Brush::solid(Aabb::new(
                vec3(500.0 - t, -500.0, -500.0),
                vec3(500.0, 500.0, 500.0),
            )),
            Brush::solid(Aabb::new(
                vec3(-500.0, -500.0, -500.0),
                vec3(500.0, -500.0 + t, 500.0),
            )),
            Brush::solid(Aabb::new(
                vec3(-500.0, 500.0 - t, -500.0),
                vec3(500.0, 500.0, 500.0),
            )),
        ];
        BspWorld::compile(
            bounds,
            brushes,
            RoomGraph::single_room(bounds),
            vec![Vec3::ZERO],
            vec![],
            vec![],
        )
    }

    #[test]
    fn center_is_empty_walls_are_solid() {
        let w = box_room();
        assert_eq!(w.contents(Vec3::ZERO), Contents::Empty);
        assert_eq!(w.contents(vec3(480.0, 0.0, 0.0)), Contents::Solid);
        assert_eq!(w.contents(vec3(0.0, 0.0, -480.0)), Contents::Solid);
    }

    #[test]
    fn point_trace_hits_wall() {
        let w = box_room();
        let tr = w.trace(Hull::Point, Vec3::ZERO, vec3(1000.0, 0.0, 0.0));
        assert!(tr.fraction < 1.0);
        // Wall face is at x = 436; allow the trace epsilon.
        assert!((tr.end.x - 436.0).abs() < 0.5, "end = {:?}", tr.end);
        assert!(!tr.start_solid);
    }

    #[test]
    fn player_trace_stops_earlier_than_point_trace() {
        let w = box_room();
        let pt = w.trace(Hull::Point, Vec3::ZERO, vec3(1000.0, 0.0, 0.0));
        let pl = w.trace(Hull::Player, Vec3::ZERO, vec3(1000.0, 0.0, 0.0));
        assert!(pl.fraction < pt.fraction);
        // Player half-width is 16: stops ~16 before the point hull.
        assert!((pt.end.x - pl.end.x - 16.0).abs() < 0.5);
    }

    #[test]
    fn trace_inside_open_space_completes() {
        let w = box_room();
        let tr = w.trace(Hull::Player, Vec3::ZERO, vec3(100.0, 50.0, 0.0));
        assert_eq!(tr.fraction, 1.0);
        assert_eq!(tr.end, vec3(100.0, 50.0, 0.0));
    }

    #[test]
    fn start_solid_is_reported() {
        let w = box_room();
        let tr = w.trace(Hull::Point, vec3(490.0, 0.0, 0.0), vec3(0.0, 0.0, 0.0));
        assert!(tr.start_solid);
    }

    #[test]
    fn player_fits_checks() {
        let w = box_room();
        assert!(w.player_fits(Vec3::ZERO));
        assert!(!w.player_fits(vec3(470.0, 0.0, 0.0)));
    }
}
