//! Swept traces through a compiled BSP tree.
//!
//! This is a faithful port of the original server's recursive hull check
//! (`SV_RecursiveHullCheck`): walk the segment through the tree near side
//! first, split it at crossed planes (backed off by `DIST_EPSILON`), and
//! record the first transition from empty into solid as the impact.
//! Because each clip hull was compiled from Minkowski-inflated brushes,
//! tracing a *point* through the hull is an exact swept-box query.

use crate::tree::{BspTree, Contents, NodeRef};
use parquake_math::{clampf, Plane, Vec3, DIST_EPSILON};

/// Result of a trace through the world.
#[derive(Clone, Copy, Debug)]
pub struct Trace {
    /// Fraction of the motion completed before impact (1.0 = no impact).
    pub fraction: f32,
    /// Final position of the trace origin.
    pub end: Vec3,
    /// Plane that stopped the trace. Only meaningful if `fraction < 1`.
    pub plane: Plane,
    /// The start point was inside solid.
    pub start_solid: bool,
    /// The entire segment was inside solid.
    pub all_solid: bool,
    /// Number of BSP nodes visited (work metric for the cost model).
    pub steps: u32,
}

impl Trace {
    fn fresh(end: Vec3) -> Trace {
        Trace {
            fraction: 1.0,
            end,
            plane: Plane::new(Vec3::UP, 0.0),
            start_solid: false,
            all_solid: true,
            steps: 0,
        }
    }

    /// Did the trace hit anything?
    #[inline]
    pub fn hit(&self) -> bool {
        self.fraction < 1.0
    }
}

impl BspTree {
    /// Trace from `start` to `end`; see [`Trace`].
    pub fn trace(&self, start: Vec3, end: Vec3) -> Trace {
        let mut tr = Trace::fresh(end);
        let root = self.root();
        if matches!(root, NodeRef::Leaf(Contents::Empty)) {
            tr.all_solid = false;
            return tr;
        }
        self.recursive_check(root, 0.0, 1.0, start, end, &mut tr);
        if tr.fraction == 1.0 {
            tr.end = end;
        }
        if tr.all_solid {
            // Entire segment in solid: no progress possible.
            tr.start_solid = true;
            tr.fraction = 0.0;
            tr.end = start;
        }
        tr
    }

    /// Returns `false` once the trace has been stopped by an impact.
    fn recursive_check(
        &self,
        num: NodeRef,
        p1f: f32,
        p2f: f32,
        p1: Vec3,
        p2: Vec3,
        tr: &mut Trace,
    ) -> bool {
        tr.steps += 1;
        let idx = match num {
            NodeRef::Leaf(Contents::Solid) => {
                tr.start_solid = true;
                return true; // keep scanning; caller detects transition
            }
            // Water volumes live in a separate tree and never appear in
            // clip hulls; treat them as open if they ever do.
            NodeRef::Leaf(Contents::Empty) | NodeRef::Leaf(Contents::Water) => {
                tr.all_solid = false;
                return true;
            }
            NodeRef::Node(i) => i,
        };
        let node = *self.node(idx);
        let t1 = node.plane.point_dist(p1);
        let t2 = node.plane.point_dist(p2);

        if t1 >= 0.0 && t2 >= 0.0 {
            return self.recursive_check(node.front, p1f, p2f, p1, p2, tr);
        }
        if t1 < 0.0 && t2 < 0.0 {
            return self.recursive_check(node.back, p1f, p2f, p1, p2, tr);
        }

        // The segment crosses the plane; split it, keeping DIST_EPSILON
        // on the near side so the mid point is clearly off the plane.
        let frac = if t1 < 0.0 {
            (t1 + DIST_EPSILON) / (t1 - t2)
        } else {
            (t1 - DIST_EPSILON) / (t1 - t2)
        };
        let frac = clampf(frac, 0.0, 1.0);
        let mut midf = p1f + (p2f - p1f) * frac;
        let mut mid = p1.lerp(p2, frac);
        let (near, far) = if t1 < 0.0 {
            (node.back, node.front)
        } else {
            (node.front, node.back)
        };

        // Move up to the plane.
        if !self.recursive_check(near, p1f, midf, p1, mid, tr) {
            return false;
        }

        // If the far side at the crossing point is not solid, continue.
        if self.contents_from(far, mid) != Contents::Solid {
            return self.recursive_check(far, midf, p2f, mid, p2, tr);
        }

        if tr.all_solid {
            return false; // never got out of the solid area
        }

        // The far side is solid: this is the impact point.
        tr.plane = if t1 >= 0.0 {
            Plane::from(node.plane)
        } else {
            let p = Plane::from(node.plane);
            Plane {
                normal: -p.normal,
                dist: -p.dist,
            }
        };

        // Occasionally the backed-off mid point is still inside solid
        // due to accumulated error; walk it back further.
        let mut f = frac;
        while self.contents(mid) == Contents::Solid {
            f -= 0.1;
            if f < 0.0 {
                tr.fraction = midf;
                tr.end = mid;
                return false;
            }
            midf = p1f + (p2f - p1f) * f;
            mid = p1.lerp(p2, f);
        }

        tr.fraction = midf;
        tr.end = mid;
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brush::Brush;
    use parquake_math::vec3::vec3;
    use parquake_math::Aabb;

    fn slab_world() -> BspTree {
        // A floor slab z ∈ [-10, 0] spanning x,y ∈ [-100, 100].
        let brushes = [Brush::solid(Aabb::new(
            vec3(-100.0, -100.0, -10.0),
            vec3(100.0, 100.0, 0.0),
        ))];
        BspTree::compile(
            &brushes,
            Aabb::new(vec3(-100.0, -100.0, -100.0), vec3(100.0, 100.0, 100.0)),
            Vec3::ZERO,
            Vec3::ZERO,
        )
    }

    #[test]
    fn falling_trace_lands_on_slab() {
        let t = slab_world();
        let tr = t.trace(vec3(0.0, 0.0, 50.0), vec3(0.0, 0.0, -50.0));
        assert!(tr.hit());
        assert!((tr.fraction - 0.5).abs() < 0.01, "fraction {}", tr.fraction);
        assert!(tr.end.z >= 0.0 && tr.end.z < 0.5, "end {:?}", tr.end);
        // Hit plane faces up.
        assert!((tr.plane.normal - Vec3::UP).length() < 1e-5);
    }

    #[test]
    fn rising_trace_hits_slab_from_below() {
        let t = slab_world();
        let tr = t.trace(vec3(0.0, 0.0, -50.0), vec3(0.0, 0.0, 30.0));
        assert!(tr.hit());
        assert!(tr.end.z <= -10.0 && tr.end.z > -10.5, "end {:?}", tr.end);
        // Hit plane faces down.
        assert!((tr.plane.normal + Vec3::UP).length() < 1e-5);
    }

    #[test]
    fn horizontal_trace_above_slab_is_clear() {
        let t = slab_world();
        let tr = t.trace(vec3(-50.0, 0.0, 10.0), vec3(50.0, 0.0, 10.0));
        assert!(!tr.hit());
        assert_eq!(tr.fraction, 1.0);
        assert!(!tr.start_solid);
    }

    #[test]
    fn trace_starting_in_solid_flags_start_solid() {
        let t = slab_world();
        let tr = t.trace(vec3(0.0, 0.0, -5.0), vec3(0.0, 0.0, 50.0));
        assert!(tr.start_solid);
    }

    #[test]
    fn all_solid_trace_makes_no_progress() {
        let t = slab_world();
        let tr = t.trace(vec3(0.0, 0.0, -5.0), vec3(10.0, 0.0, -5.0));
        assert!(tr.all_solid);
        assert_eq!(tr.fraction, 0.0);
        assert_eq!(tr.end, vec3(0.0, 0.0, -5.0));
    }

    #[test]
    fn grazing_trace_along_face_does_not_snag() {
        let t = slab_world();
        // Slide exactly DIST_EPSILON above the top face.
        let z = DIST_EPSILON * 2.0;
        let tr = t.trace(vec3(-50.0, 0.0, z), vec3(50.0, 0.0, z));
        assert!(!tr.hit(), "fraction {}", tr.fraction);
    }

    #[test]
    fn end_point_is_never_in_solid() {
        let t = slab_world();
        for i in 0..100 {
            let a = vec3((i as f32) * 1.7 - 80.0, (i as f32) * 0.9 - 40.0, 60.0);
            let b = vec3(-(i as f32) * 1.3 + 60.0, (i as f32) * 1.1 - 50.0, -60.0);
            let tr = t.trace(a, b);
            if !tr.start_solid {
                assert_ne!(
                    t.contents(tr.end),
                    Contents::Solid,
                    "i={i} end={:?}",
                    tr.end
                );
            }
        }
    }

    #[test]
    fn steps_counter_increments() {
        let t = slab_world();
        let tr = t.trace(vec3(0.0, 0.0, 50.0), vec3(0.0, 0.0, -50.0));
        assert!(tr.steps > 0);
    }
}
