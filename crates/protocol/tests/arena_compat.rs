//! Backward-compatibility properties of the arena-id extension.
//!
//! The extension must be invisible to arena-0 traffic: old-format
//! datagrams (no extension) decode to arena 0, arena-0 messages encode
//! to exactly the old bytes, and anything that is *not* a well-formed
//! extension keeps being rejected the way the pre-extension codec
//! rejected it.

use parquake_math::vec3::vec3;
use parquake_protocol::{
    ClientMessage, Decode, Encode, ServerMessage, ARENA_EXT_TAG, ARENA_EXT_WIRE_BYTES,
};
use proptest::prelude::*;

/// Hand-encode a pre-extension `Connect` (tag 1 + u32 LE client id).
fn old_connect_wire(client_id: u32) -> Vec<u8> {
    let mut b = vec![1u8];
    b.extend_from_slice(&client_id.to_le_bytes());
    b
}

/// Hand-encode a pre-extension `ConnectAck` (tag 100 + u32 + 3×f32).
fn old_ack_wire(client_id: u32, spawn: [f32; 3]) -> Vec<u8> {
    let mut b = vec![100u8];
    b.extend_from_slice(&client_id.to_le_bytes());
    for v in spawn {
        b.extend_from_slice(&v.to_le_bytes());
    }
    b
}

proptest! {
    #[test]
    fn old_format_connect_decodes_to_arena_zero(client_id in any::<u32>()) {
        let wire = old_connect_wire(client_id);
        prop_assert_eq!(
            ClientMessage::from_bytes(&wire).unwrap(),
            ClientMessage::Connect { client_id, arena: 0 }
        );
        // And arena 0 encodes back to exactly the old bytes: the
        // extension is absent, not a zero-valued trailer.
        prop_assert_eq!(
            ClientMessage::Connect { client_id, arena: 0 }.to_bytes(),
            wire
        );
    }

    #[test]
    fn old_format_ack_decodes_to_arena_zero(
        client_id in any::<u32>(),
        x in -4096.0f32..4096.0,
        y in -4096.0f32..4096.0,
        z in -4096.0f32..4096.0,
    ) {
        let wire = old_ack_wire(client_id, [x, y, z]);
        let msg = ServerMessage::ConnectAck { client_id, spawn: vec3(x, y, z), arena: 0 };
        prop_assert_eq!(ServerMessage::from_bytes(&wire).unwrap(), msg.clone());
        prop_assert_eq!(msg.to_bytes(), wire);
    }

    #[test]
    fn extended_connect_roundtrips(client_id in any::<u32>(), arena in any::<u16>()) {
        let msg = ClientMessage::Connect { client_id, arena };
        let wire = msg.to_bytes();
        prop_assert_eq!(ClientMessage::from_bytes(&wire).unwrap(), msg);
        // The extension costs exactly ARENA_EXT_WIRE_BYTES, and only
        // for a non-zero arena.
        let expected = old_connect_wire(client_id).len()
            + if arena == 0 { 0 } else { ARENA_EXT_WIRE_BYTES };
        prop_assert_eq!(wire.len(), expected);
    }

    #[test]
    fn non_extension_trailers_stay_rejected(
        client_id in any::<u32>(),
        trailer in prop::collection::vec(any::<u8>(), 1..16),
    ) {
        // Unknown trailing bytes must fail decode exactly as the
        // pre-extension codec failed them — the only trailer the codec
        // accepts is one complete, well-formed arena extension.
        if !(trailer.len() == ARENA_EXT_WIRE_BYTES && trailer[0] == ARENA_EXT_TAG) {
            let mut wire = old_connect_wire(client_id);
            wire.extend_from_slice(&trailer);
            prop_assert!(ClientMessage::from_bytes(&wire).is_err());
        }
    }

    #[test]
    fn truncated_extension_is_rejected(client_id in any::<u32>(), arena in 1u16..u16::MAX) {
        let wire = ClientMessage::Connect { client_id, arena }.to_bytes();
        for cut in old_connect_wire(client_id).len() + 1..wire.len() {
            prop_assert!(ClientMessage::from_bytes(&wire[..cut]).is_err());
        }
    }

    #[test]
    fn extension_never_touches_other_messages(client_id in any::<u32>()) {
        // Move/Disconnect/Reply/Bye have no extension: an
        // extension-shaped trailer on them is plain garbage.
        let mut wire = ClientMessage::Disconnect { client_id }.to_bytes();
        wire.extend_from_slice(&[ARENA_EXT_TAG, 1, 0]);
        prop_assert!(ClientMessage::from_bytes(&wire).is_err());
        let mut wire = ServerMessage::Bye { client_id }.to_bytes();
        wire.extend_from_slice(&[ARENA_EXT_TAG, 1, 0]);
        prop_assert!(ServerMessage::from_bytes(&wire).is_err());
    }
}
