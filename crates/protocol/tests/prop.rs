//! Property-based tests: codec round-trips and fuzz-style decoding.

use parquake_math::vec3::vec3;
use parquake_protocol::{
    Buttons, ClientMessage, Decode, Encode, EntityKind, EntityUpdate, GameEvent, GameEventKind,
    MoveCmd, ReplyPredict, ServerMessage, ARENA_EXT_TAG, ARENA_EXT_WIRE_BYTES,
    MOVE_PREDICT_EXT_WIRE_BYTES, PREDICT_EXT_TAG, REPLY_PREDICT_EXT_WIRE_BYTES,
};
use proptest::prelude::*;

/// Is this trailer exactly one well-formed arena extension? Appended to
/// an extension-less `Connect`/`ConnectAck` it forms a valid new-format
/// message rather than trailing garbage.
fn is_arena_ext(trailer: &[u8]) -> bool {
    trailer.len() == ARENA_EXT_WIRE_BYTES && trailer[0] == ARENA_EXT_TAG
}

/// Is this trailer exactly one well-formed `Move` prediction extension?
/// Appended to a legacy `Move` it forms a valid predicting-client
/// message rather than trailing garbage.
fn is_move_predict_ext(trailer: &[u8]) -> bool {
    trailer.len() == MOVE_PREDICT_EXT_WIRE_BYTES && trailer[0] == PREDICT_EXT_TAG
}

/// Is this trailer exactly one well-formed `Reply` prediction
/// extension? (Any payload bytes qualify — the fields are unvalidated
/// integers/floats/flag.)
fn is_reply_predict_ext(trailer: &[u8]) -> bool {
    trailer.len() == REPLY_PREDICT_EXT_WIRE_BYTES && trailer[0] == PREDICT_EXT_TAG
}

/// Prediction acks, with `None` (the canonical legacy encoding) always
/// in the mix.
fn arb_predict_ack() -> impl Strategy<Value = Option<u32>> {
    prop_oneof![Just(None), any::<u32>().prop_map(Some)]
}

fn arb_reply_predict() -> impl Strategy<Value = Option<ReplyPredict>> {
    prop_oneof![
        Just(None),
        (
            any::<u32>(),
            any::<u32>(),
            -1000.0f32..1000.0,
            -1000.0f32..1000.0,
            any::<bool>(),
        )
            .prop_map(
                |(input_ack, perturb, vx, vz, on_ground)| Some(ReplyPredict {
                    input_ack,
                    perturb,
                    vel: vec3(vx, 0.0, vz),
                    on_ground,
                })
            ),
    ]
}

fn arb_move() -> impl Strategy<Value = MoveCmd> {
    (
        any::<u32>(),
        any::<u64>(),
        -90.0f32..90.0,
        -180.0f32..180.0,
        -400.0f32..400.0,
        -400.0f32..400.0,
        -400.0f32..400.0,
        any::<u8>(),
        any::<u8>(),
        arb_predict_ack(),
    )
        .prop_map(
            |(seq, sent_at, pitch, yaw, forward, side, up, buttons, msec, predict_ack)| MoveCmd {
                seq,
                sent_at,
                pitch,
                yaw,
                forward,
                side,
                up,
                buttons: Buttons(buttons),
                msec,
                predict_ack,
            },
        )
}

/// Arena ids, with 0 (the canonical no-extension encoding) always in
/// the mix.
fn arb_arena() -> impl Strategy<Value = u16> {
    prop_oneof![Just(0u16), any::<u16>()]
}

fn arb_client_msg() -> impl Strategy<Value = ClientMessage> {
    prop_oneof![
        (any::<u32>(), arb_arena())
            .prop_map(|(client_id, arena)| ClientMessage::Connect { client_id, arena }),
        (any::<u32>(), arb_move())
            .prop_map(|(client_id, cmd)| ClientMessage::Move { client_id, cmd }),
        any::<u32>().prop_map(|client_id| ClientMessage::Disconnect { client_id }),
    ]
}

fn arb_entity() -> impl Strategy<Value = EntityUpdate> {
    (
        any::<u16>(),
        0u8..4,
        any::<u8>(),
        -4096.0f32..4096.0,
        -4096.0f32..4096.0,
        -4096.0f32..4096.0,
        -180.0f32..180.0,
    )
        .prop_map(|(id, kind, state, x, y, z, yaw)| EntityUpdate {
            id,
            kind: match kind {
                0 => EntityKind::Player,
                1 => EntityKind::Item,
                2 => EntityKind::Projectile,
                _ => EntityKind::Teleporter,
            },
            state,
            pos: vec3(x, y, z),
            yaw,
        })
}

fn arb_event() -> impl Strategy<Value = GameEvent> {
    (
        0u8..5,
        any::<u16>(),
        any::<u16>(),
        -4096.0f32..4096.0,
        -4096.0f32..4096.0,
    )
        .prop_map(|(k, a, b, x, y)| GameEvent {
            kind: match k {
                0 => GameEventKind::Pickup,
                1 => GameEventKind::Teleport,
                2 => GameEventKind::Hit,
                3 => GameEventKind::Spawn,
                _ => GameEventKind::Sound,
            },
            a,
            b,
            pos: vec3(x, y, 0.0),
        })
}

fn arb_server_msg() -> impl Strategy<Value = ServerMessage> {
    prop_oneof![
        (any::<u32>(), -100.0f32..100.0, arb_arena()).prop_map(|(client_id, x, arena)| {
            ServerMessage::ConnectAck {
                client_id,
                spawn: vec3(x, x, x),
                arena,
            }
        }),
        (
            any::<u32>(),
            any::<u32>(),
            any::<u64>(),
            any::<u32>(),
            any::<u8>(),
            any::<bool>(),
            prop::collection::vec(arb_entity(), 0..64),
            prop::collection::vec(any::<u16>(), 0..64),
            prop::collection::vec(arb_event(), 0..32),
            arb_reply_predict(),
        )
            .prop_map(
                |(
                    client_id,
                    seq,
                    sent_at_echo,
                    frame,
                    assigned_thread,
                    delta,
                    entities,
                    removed,
                    events,
                    predict,
                )| {
                    ServerMessage::Reply {
                        client_id,
                        seq,
                        sent_at_echo,
                        frame,
                        assigned_thread,
                        origin: vec3(1.0, 2.0, 3.0),
                        delta,
                        entities,
                        removed,
                        events,
                        predict,
                    }
                }
            ),
        any::<u32>().prop_map(|client_id| ServerMessage::Bye { client_id }),
    ]
}

proptest! {
    #[test]
    fn client_messages_roundtrip(msg in arb_client_msg()) {
        let bytes = msg.to_bytes();
        prop_assert_eq!(ClientMessage::from_bytes(&bytes).unwrap(), msg);
    }

    #[test]
    fn server_messages_roundtrip(msg in arb_server_msg()) {
        let bytes = msg.to_bytes();
        prop_assert_eq!(ServerMessage::from_bytes(&bytes).unwrap(), msg);
    }

    #[test]
    fn random_bytes_never_panic(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        // Decoding arbitrary garbage must return an error or a message,
        // never panic.
        let _ = ClientMessage::from_bytes(&bytes);
        let _ = ServerMessage::from_bytes(&bytes);
    }

    #[test]
    fn truncations_never_panic(msg in arb_server_msg(), frac in 0.0f64..1.0) {
        let bytes = msg.to_bytes();
        let cut = ((bytes.len() as f64) * frac) as usize;
        let _ = ServerMessage::from_bytes(&bytes[..cut]);
    }

    #[test]
    fn client_truncations_never_panic(msg in arb_client_msg(), frac in 0.0f64..1.0) {
        let bytes = msg.to_bytes();
        let cut = ((bytes.len() as f64) * frac) as usize;
        let decoded = ClientMessage::from_bytes(&bytes[..cut]);
        // A strict prefix can never decode as the whole message.
        if cut < bytes.len() {
            prop_assert!(decoded != Ok(msg));
        }
    }

    #[test]
    fn trailing_bytes_are_rejected(
        msg in arb_client_msg(),
        trailer in prop::collection::vec(any::<u8>(), 1..16),
    ) {
        // The wire format is length-exact: any trailing garbage after a
        // valid message must fail decode, never be silently ignored.
        // The exceptions are the optional extensions themselves: a
        // trailer that *is* a well-formed extension on an extension-less
        // message is by definition a valid new-format message.
        let mut bytes = msg.to_bytes();
        bytes.extend_from_slice(&trailer);
        let completes_ext = (matches!(msg, ClientMessage::Connect { arena: 0, .. })
            && is_arena_ext(&trailer))
            || (matches!(
                msg,
                ClientMessage::Move {
                    cmd: MoveCmd { predict_ack: None, .. },
                    ..
                }
            ) && is_move_predict_ext(&trailer));
        if completes_ext {
            prop_assert!(ClientMessage::from_bytes(&bytes).is_ok());
        } else {
            prop_assert!(ClientMessage::from_bytes(&bytes).is_err());
        }
    }

    #[test]
    fn server_trailing_bytes_are_rejected(
        msg in arb_server_msg(),
        // Long enough to sometimes form a whole 22-byte reply
        // prediction extension, so the exception path is exercised.
        trailer in prop::collection::vec(any::<u8>(), 1..24),
    ) {
        let mut bytes = msg.to_bytes();
        bytes.extend_from_slice(&trailer);
        let completes_ext = (matches!(msg, ServerMessage::ConnectAck { arena: 0, .. })
            && is_arena_ext(&trailer))
            || (matches!(msg, ServerMessage::Reply { predict: None, .. })
                && is_reply_predict_ext(&trailer));
        if completes_ext {
            prop_assert!(ServerMessage::from_bytes(&bytes).is_ok());
        } else {
            prop_assert!(ServerMessage::from_bytes(&bytes).is_err());
        }
    }

    #[test]
    fn decoded_garbage_reencodes_identically(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        // Anything that *does* decode — even from random bytes — must
        // re-encode to a decodable equal message (codec is a bijection
        // on its valid range).
        if let Ok(msg) = ClientMessage::from_bytes(&bytes) {
            let re = msg.to_bytes();
            prop_assert_eq!(ClientMessage::from_bytes(&re).unwrap(), msg);
        }
        if let Ok(msg) = ServerMessage::from_bytes(&bytes) {
            let re = msg.to_bytes();
            prop_assert_eq!(ServerMessage::from_bytes(&re).unwrap(), msg);
        }
    }
}
