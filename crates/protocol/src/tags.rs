//! The wire-tag registry: every tag byte on any parquake wire, in one
//! place.
//!
//! A tag byte is the first thing a decoder reads, and two messages
//! sharing a byte silently alias each other — the decode succeeds and
//! hands back a *plausible* wrong message, which is far worse than a
//! `BadTag` error. Scattered `const TAG_*` declarations made that
//! collision a cross-crate diff-review problem; this module makes it a
//! lint problem instead. `parquake-lockcheck`'s wire-tag-registry pass
//! rejects any `TAG`-named `u8` constant declared in
//! `protocol`/`server`/`arena` outside this file, and rejects value
//! collisions inside it (the unit test below double-checks at test
//! time).
//!
//! Layout of the byte space:
//!
//! * **1–3** — client → server game messages.
//! * **100–102** — server → client game messages.
//! * **200–204** — arena → directory lifecycle notices
//!   ([`crate::types::ClientMessage`] tags live far from these so a
//!   misdelivered datagram decodes to a clean `BadTag` instead of a
//!   plausible message).
//! * **0xA7** — the arena-id extension trailer, deliberately distinct
//!   from every message tag so a stray extension can never be mistaken
//!   for a message.

/// Client `Connect` (join the session).
pub const TAG_CONNECT: u8 = 1;
/// Client `Move` (one §2.3 move command).
pub const TAG_MOVE: u8 = 2;
/// Client `Disconnect` (leave the session).
pub const TAG_DISCONNECT: u8 = 3;

/// Server `ConnectAck` (join accepted, spawn position follows).
pub const TAG_ACK: u8 = 100;
/// Server `Reply` (per-client world update).
pub const TAG_REPLY: u8 = 101;
/// Server `Bye` (kick / shutdown notice).
pub const TAG_BYE: u8 = 102;

/// Lifecycle: a `Connect` claimed a fresh slot.
pub const TAG_CONNECTED: u8 = 200;
/// Lifecycle: a client's `Disconnect` was honoured.
pub const TAG_DISCONNECTED: u8 = 201;
/// Lifecycle: the inactivity timeout evicted a silent client.
pub const TAG_RECLAIMED: u8 = 202;
/// Lifecycle: a `Connect` found the home block full.
pub const TAG_REJECTED: u8 = 203;
/// Lifecycle: the director moved a live slot to another arena.
pub const TAG_MIGRATED: u8 = 204;

/// Tag byte opening the optional arena-id extension that may trail a
/// `Connect` or `ConnectAck`. The extension is `[ARENA_EXT_TAG, arena:
/// u16 LE]` and is emitted only for a non-zero arena, so default
/// (arena-0) traffic stays byte-identical to the pre-extension format
/// and an absent extension decodes as arena 0.
pub const ARENA_EXT_TAG: u8 = 0xA7;

/// Tag byte opening the optional prediction extension that may trail a
/// `Move` or `Reply`. On a `Move` it is `[PREDICT_EXT_TAG, ack: u32
/// LE]` (the highest reply input-ack the client has consumed) and marks
/// the client as predicting; on a `Reply` it is `[PREDICT_EXT_TAG,
/// input_ack: u32, perturb: u32, vel: 3×f32, flags: u8]` — the
/// last-applied input seq, the server's perturbation counter, and the
/// authoritative velocity/ground state the client rolls back to. Absent
/// ⇒ legacy traffic, byte-identical to the pre-extension format.
pub const PREDICT_EXT_TAG: u8 = 0xA8;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_tags_are_distinct() {
        let tags = [
            ("TAG_CONNECT", TAG_CONNECT),
            ("TAG_MOVE", TAG_MOVE),
            ("TAG_DISCONNECT", TAG_DISCONNECT),
            ("TAG_ACK", TAG_ACK),
            ("TAG_REPLY", TAG_REPLY),
            ("TAG_BYE", TAG_BYE),
            ("TAG_CONNECTED", TAG_CONNECTED),
            ("TAG_DISCONNECTED", TAG_DISCONNECTED),
            ("TAG_RECLAIMED", TAG_RECLAIMED),
            ("TAG_REJECTED", TAG_REJECTED),
            ("TAG_MIGRATED", TAG_MIGRATED),
            ("ARENA_EXT_TAG", ARENA_EXT_TAG),
            ("PREDICT_EXT_TAG", PREDICT_EXT_TAG),
        ];
        for (i, (na, a)) in tags.iter().enumerate() {
            for (nb, b) in &tags[i + 1..] {
                assert_ne!(a, b, "wire tags {na} and {nb} collide on {a:#04x}");
            }
        }
    }

    #[test]
    fn tag_families_keep_their_distance() {
        // Client, server and lifecycle families live in separated bands
        // so a misrouted datagram fails decoding instead of aliasing.
        for client in [TAG_CONNECT, TAG_MOVE, TAG_DISCONNECT] {
            assert!(client < 100);
        }
        for server in [TAG_ACK, TAG_REPLY, TAG_BYE] {
            assert!((100..200).contains(&server));
        }
        for lifecycle in [
            TAG_CONNECTED,
            TAG_DISCONNECTED,
            TAG_RECLAIMED,
            TAG_REJECTED,
            TAG_MIGRATED,
        ] {
            assert!(lifecycle >= 200);
        }
    }
}
