//! Client/server wire protocol.
//!
//! A compact, hand-rolled datagram codec in the spirit of the original
//! QuakeWorld protocol: clients send *connect / move / disconnect*
//! messages; the server answers explicit requests with per-client
//! replies carrying visible-entity updates plus broadcast game events
//! (the global state buffer of paper §3.3). The *move* command carries
//! exactly the fields the paper enumerates in §2.3: view angles, motion
//! impulses, action flags and the duration in milliseconds.
//!
//! All integers are little-endian; floats are IEEE-754 bits. Decoding
//! is total: malformed or truncated datagrams yield [`CodecError`],
//! never panics — the server drops bad packets like the original does.

pub mod codec;
pub mod tags;
pub mod types;

pub use codec::{CodecError, Decode, Encode};
pub use tags::{ARENA_EXT_TAG, PREDICT_EXT_TAG};
pub use types::{
    Buttons, ClientMessage, EntityKind, EntityUpdate, GameEvent, GameEventKind, MoveCmd,
    ReplyPredict, ServerMessage,
};

/// Protocol version byte; bumped on incompatible changes.
pub const PROTOCOL_VERSION: u8 = 1;

/// Wire size of the arena extension when present (see
/// [`tags::ARENA_EXT_TAG`] for the format).
pub const ARENA_EXT_WIRE_BYTES: usize = 1 + 2;

/// Wire size of the `Move` prediction extension when present:
/// tag + ack (see [`tags::PREDICT_EXT_TAG`]).
pub const MOVE_PREDICT_EXT_WIRE_BYTES: usize = 1 + 4;

/// Wire size of the `Reply` prediction extension when present:
/// tag + input_ack + perturb + vel + flags.
pub const REPLY_PREDICT_EXT_WIRE_BYTES: usize = 1 + 4 + 4 + 12 + 1;

/// Maximum duration a single move command may apply, in milliseconds
/// (Quake clamps client msec to 250).
pub const MAX_MOVE_MSEC: u8 = 250;

/// Maximum entity updates in one reply datagram (keeps replies within
/// a conventional MTU-ish budget; the server truncates by distance).
pub const MAX_ENTITIES_PER_REPLY: usize = 64;

/// Maximum broadcast events in one reply datagram.
pub const MAX_EVENTS_PER_REPLY: usize = 32;

/// Maximum removal notices in one delta-compressed reply.
pub const MAX_REMOVALS_PER_REPLY: usize = 64;

/// Maximum *newly appearing* entities in one delta-compressed reply.
/// Entities already in the client's baseline that changed are always
/// sent; a burst of fresh arrivals (connect, teleport, arena restore)
/// is windowed across consecutive replies instead, with the leftovers
/// carried over — the same smoothing removals get.
pub const MAX_ADDITIONS_PER_REPLY: usize = 32;

/// Upper bound on any encoded protocol datagram, in bytes. Every recv
/// buffer on the real-UDP path must be at least this large, and the
/// reply limits above are sized so that even a worst-case crowded-leaf
/// `Reply` fits (checked at compile time below).
pub const MAX_DATAGRAM: usize = 2048;

/// Encoded size of one [`EntityUpdate`]: id + kind + state + pos + yaw.
pub const ENTITY_UPDATE_WIRE_BYTES: usize = 2 + 1 + 1 + 12 + 4;
/// Encoded size of one [`GameEvent`]: kind + a + b + pos.
pub const GAME_EVENT_WIRE_BYTES: usize = 1 + 2 + 2 + 12;
/// Fixed part of a `Reply`: tag + client_id + seq + sent_at_echo +
/// frame + assigned_thread + origin + delta flag.
const REPLY_HEADER_WIRE_BYTES: usize = 1 + 4 + 4 + 8 + 4 + 1 + 12 + 1;

/// Worst-case encoded *legacy* `Reply`: header plus the three
/// length-prefixed lists at their caps (no prediction trailer).
pub const MAX_REPLY_WIRE_BYTES: usize = REPLY_HEADER_WIRE_BYTES
    + (1 + MAX_ENTITIES_PER_REPLY * ENTITY_UPDATE_WIRE_BYTES)
    + (1 + MAX_REMOVALS_PER_REPLY * 2)
    + (1 + MAX_EVENTS_PER_REPLY * GAME_EVENT_WIRE_BYTES);

/// Worst-case encoded `Reply` toward a predicting client: the legacy
/// worst case plus the reconciliation trailer.
pub const MAX_PREDICT_REPLY_WIRE_BYTES: usize = MAX_REPLY_WIRE_BYTES + REPLY_PREDICT_EXT_WIRE_BYTES;

// Compile-time sanity on protocol limits.
const _: () = assert!(MAX_MOVE_MSEC >= 100);
const _: () = assert!(MAX_ENTITIES_PER_REPLY >= 32);
// Addition windowing narrows the entity list, never widens it, so the
// wire-size bound above is unaffected.
const _: () = assert!(MAX_ADDITIONS_PER_REPLY <= MAX_ENTITIES_PER_REPLY);
const _: () = assert!(MAX_EVENTS_PER_REPLY >= 16);
// The reply caps must keep every datagram within MAX_DATAGRAM, or the
// fixed-size recv buffers on the UDP path would truncate replies —
// including toward predicting clients, whose replies carry the trailer.
const _: () = assert!(MAX_REPLY_WIRE_BYTES <= MAX_DATAGRAM);
const _: () = assert!(MAX_PREDICT_REPLY_WIRE_BYTES <= MAX_DATAGRAM);
