//! Little-endian byte codec primitives.

use bytes::{Buf, BufMut};

/// Decoding failure. The enclosing datagram should be dropped.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CodecError {
    /// Fewer bytes than the field needs.
    Truncated,
    /// Unknown discriminant byte for the given type.
    BadTag(&'static str, u8),
    /// A length prefix exceeds protocol limits.
    BadLength(&'static str, usize),
    /// Leftover bytes after a complete message.
    TrailingBytes(usize),
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "datagram truncated"),
            CodecError::BadTag(what, v) => write!(f, "bad {what} tag {v}"),
            CodecError::BadLength(what, v) => write!(f, "bad {what} length {v}"),
            CodecError::TrailingBytes(n) => write!(f, "{n} trailing bytes"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Types that serialize themselves onto a byte buffer.
pub trait Encode {
    fn encode(&self, out: &mut Vec<u8>);

    /// Convenience: encode into a fresh buffer.
    fn to_bytes(&self) -> Vec<u8> {
        let mut v = Vec::with_capacity(64);
        self.encode(&mut v);
        v
    }
}

/// Types that parse themselves from a byte slice.
pub trait Decode: Sized {
    fn decode(buf: &mut &[u8]) -> Result<Self, CodecError>;

    /// Parse a whole datagram, rejecting trailing bytes.
    fn from_bytes(mut buf: &[u8]) -> Result<Self, CodecError> {
        let v = Self::decode(&mut buf)?;
        if buf.is_empty() {
            Ok(v)
        } else {
            Err(CodecError::TrailingBytes(buf.len()))
        }
    }
}

#[inline]
pub fn need(buf: &&[u8], n: usize) -> Result<(), CodecError> {
    if buf.remaining() < n {
        Err(CodecError::Truncated)
    } else {
        Ok(())
    }
}

#[inline]
pub fn get_u8(buf: &mut &[u8]) -> Result<u8, CodecError> {
    need(buf, 1)?;
    Ok(buf.get_u8())
}

#[inline]
pub fn get_u16(buf: &mut &[u8]) -> Result<u16, CodecError> {
    need(buf, 2)?;
    Ok(buf.get_u16_le())
}

#[inline]
pub fn get_u32(buf: &mut &[u8]) -> Result<u32, CodecError> {
    need(buf, 4)?;
    Ok(buf.get_u32_le())
}

#[inline]
pub fn get_u64(buf: &mut &[u8]) -> Result<u64, CodecError> {
    need(buf, 8)?;
    Ok(buf.get_u64_le())
}

#[inline]
pub fn get_f32(buf: &mut &[u8]) -> Result<f32, CodecError> {
    need(buf, 4)?;
    Ok(buf.get_f32_le())
}

#[inline]
pub fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.put_u8(v);
}

#[inline]
pub fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.put_u16_le(v);
}

#[inline]
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.put_u32_le(v);
}

#[inline]
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.put_u64_le(v);
}

#[inline]
pub fn put_f32(out: &mut Vec<u8>, v: f32) {
    out.put_f32_le(v);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_roundtrip() {
        let mut out = Vec::new();
        put_u8(&mut out, 0xAB);
        put_u16(&mut out, 0x1234);
        put_u32(&mut out, 0xDEADBEEF);
        put_u64(&mut out, 42);
        put_f32(&mut out, -1.5);
        let mut buf = &out[..];
        assert_eq!(get_u8(&mut buf).unwrap(), 0xAB);
        assert_eq!(get_u16(&mut buf).unwrap(), 0x1234);
        assert_eq!(get_u32(&mut buf).unwrap(), 0xDEADBEEF);
        assert_eq!(get_u64(&mut buf).unwrap(), 42);
        assert_eq!(get_f32(&mut buf).unwrap(), -1.5);
        assert!(buf.is_empty());
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        let out = [1u8, 2];
        let mut buf = &out[..];
        assert_eq!(get_u32(&mut buf), Err(CodecError::Truncated));
    }

    #[test]
    fn error_display() {
        assert_eq!(CodecError::Truncated.to_string(), "datagram truncated");
        assert_eq!(
            CodecError::BadTag("message", 9).to_string(),
            "bad message tag 9"
        );
    }
}
