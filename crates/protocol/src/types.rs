//! Protocol message types.

use crate::codec::{
    get_f32, get_u16, get_u32, get_u64, get_u8, put_f32, put_u16, put_u32, put_u64, put_u8,
    CodecError, Decode, Encode,
};
use crate::{MAX_ENTITIES_PER_REPLY, MAX_EVENTS_PER_REPLY, MAX_MOVE_MSEC, MAX_REMOVALS_PER_REPLY};
use parquake_math::vec3::vec3;
use parquake_math::Vec3;

/// Action-flag bits carried by a move command (paper §2.3 item iii).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Buttons(pub u8);

impl Buttons {
    pub const NONE: Buttons = Buttons(0);
    /// Fire the current weapon (long-range interaction).
    pub const ATTACK: u8 = 1 << 0;
    /// Jump.
    pub const JUMP: u8 = 1 << 1;
    /// Use / activate (switch backpack items etc.).
    pub const USE: u8 = 1 << 2;
    /// Throw an item at a distant target (long-range interaction of the
    /// "fully simulated" kind).
    pub const THROW: u8 = 1 << 3;

    #[inline]
    pub fn has(self, bit: u8) -> bool {
        self.0 & bit != 0
    }

    #[inline]
    pub fn with(self, bit: u8) -> Buttons {
        Buttons(self.0 | bit)
    }

    /// Any long-range interaction requested?
    #[inline]
    pub fn long_range(self) -> bool {
        self.has(Buttons::ATTACK) || self.has(Buttons::THROW)
    }
}

/// The move command: the only request type that affects gameplay
/// (paper §2.3). One is sent per client frame (~30 ms).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MoveCmd {
    /// Client sequence number, echoed in the reply.
    pub seq: u32,
    /// Client clock when the command was sent (for response-time
    /// measurement; the original benchmarking harness did the same).
    pub sent_at: u64,
    /// View angles: pitch then yaw, degrees.
    pub pitch: f32,
    pub yaw: f32,
    /// Forward/side/up motion impulses in units/second (±320 walking).
    pub forward: f32,
    pub side: f32,
    pub up: f32,
    /// Action flags.
    pub buttons: Buttons,
    /// Milliseconds this command applies for (clamped to
    /// [`MAX_MOVE_MSEC`]).
    pub msec: u8,
    /// Client-side-prediction opt-in: the highest reply `input_ack`
    /// this client has consumed. `Some` rides in an optional trailing
    /// extension (see [`crate::PREDICT_EXT_TAG`]) and asks the server
    /// to echo per-slot input acks; `None` is a legacy client and
    /// encodes byte-identically to the pre-extension format.
    pub predict_ack: Option<u32>,
}

impl MoveCmd {
    /// A do-nothing move of `msec` milliseconds.
    pub fn idle(seq: u32, msec: u8) -> MoveCmd {
        MoveCmd {
            seq,
            sent_at: 0,
            pitch: 0.0,
            yaw: 0.0,
            forward: 0.0,
            side: 0.0,
            up: 0.0,
            buttons: Buttons::NONE,
            msec,
            predict_ack: None,
        }
    }

    /// Command duration in seconds, clamped like the original server.
    #[inline]
    pub fn duration_secs(&self) -> f32 {
        self.msec.min(MAX_MOVE_MSEC) as f32 / 1000.0
    }
}

/// Client → server messages.
#[derive(Clone, Debug, PartialEq)]
pub enum ClientMessage {
    /// Join the session. `arena` selects a world instance on multi-arena
    /// servers; it rides in an optional trailing extension (see
    /// [`crate::ARENA_EXT_TAG`]) so arena-0 traffic is byte-identical to
    /// the pre-extension wire format.
    Connect { client_id: u32, arena: u16 },
    /// A move command from `client_id`.
    Move { client_id: u32, cmd: MoveCmd },
    /// Leave the session.
    Disconnect { client_id: u32 },
}

use crate::tags::{TAG_CONNECT, TAG_DISCONNECT, TAG_MOVE};

/// Append the optional arena extension. Canonical form: arena 0 encodes
/// as *nothing*, so default traffic matches the pre-extension format
/// byte for byte and old decoders keep accepting it.
fn put_arena_ext(out: &mut Vec<u8>, arena: u16) {
    if arena != 0 {
        put_u8(out, crate::ARENA_EXT_TAG);
        put_u16(out, arena);
    }
}

/// Consume the optional arena extension if — and only if — the next
/// byte is [`crate::ARENA_EXT_TAG`]. An absent extension means arena 0
/// (backward compatibility); a present-but-truncated one is a
/// [`CodecError::Truncated`]; any other leftover is not consumed, so
/// `from_bytes` reports it as [`CodecError::TrailingBytes`] exactly as
/// before the extension existed.
fn get_arena_ext(buf: &mut &[u8]) -> Result<u16, CodecError> {
    if buf.first() == Some(&crate::ARENA_EXT_TAG) {
        let _ = get_u8(buf)?;
        get_u16(buf)
    } else {
        Ok(0)
    }
}

/// Authoritative reconciliation state a predicting client rolls back
/// to; rides the optional [`crate::PREDICT_EXT_TAG`] trailer of a
/// `Reply`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ReplyPredict {
    /// Sequence number of the last move the server actually applied
    /// for this slot (dedup'd and in arrival order).
    pub input_ack: u32,
    /// Perturbation epoch: bumped whenever the slot's state changed in
    /// a way pure input replay cannot reproduce (input gaps, external
    /// pushes, checkpoint restore). The client's divergence oracle only
    /// fires when its recorded epoch matches.
    pub perturb: u32,
    /// Authoritative velocity after the acked move.
    pub vel: Vec3,
    /// Authoritative ground-contact flag after the acked move.
    pub on_ground: bool,
}

/// Append the optional prediction trailer of a `Move`. Canonical form:
/// a legacy (non-predicting) client encodes *nothing*, so old traffic
/// stays byte-identical; a predicting client always emits the trailer,
/// even at ack 0.
fn put_move_predict_ext(out: &mut Vec<u8>, ack: Option<u32>) {
    if let Some(ack) = ack {
        put_u8(out, crate::PREDICT_EXT_TAG);
        put_u32(out, ack);
    }
}

/// Consume the optional `Move` prediction trailer iff the next byte is
/// [`crate::PREDICT_EXT_TAG`]. Same contract as [`get_arena_ext`]:
/// absent ⇒ legacy (`None`), truncated ⇒ error, other leftovers are
/// reported as trailing bytes by `from_bytes`.
fn get_move_predict_ext(buf: &mut &[u8]) -> Result<Option<u32>, CodecError> {
    if buf.first() == Some(&crate::PREDICT_EXT_TAG) {
        let _ = get_u8(buf)?;
        Ok(Some(get_u32(buf)?))
    } else {
        Ok(None)
    }
}

/// Append the optional prediction trailer of a `Reply` (emitted only
/// toward predicting clients).
fn put_reply_predict_ext(out: &mut Vec<u8>, p: &Option<ReplyPredict>) {
    if let Some(p) = p {
        put_u8(out, crate::PREDICT_EXT_TAG);
        put_u32(out, p.input_ack);
        put_u32(out, p.perturb);
        put_f32(out, p.vel.x);
        put_f32(out, p.vel.y);
        put_f32(out, p.vel.z);
        put_u8(out, u8::from(p.on_ground));
    }
}

/// Consume the optional `Reply` prediction trailer (see
/// [`get_move_predict_ext`] for the compat contract).
fn get_reply_predict_ext(buf: &mut &[u8]) -> Result<Option<ReplyPredict>, CodecError> {
    if buf.first() == Some(&crate::PREDICT_EXT_TAG) {
        let _ = get_u8(buf)?;
        Ok(Some(ReplyPredict {
            input_ack: get_u32(buf)?,
            perturb: get_u32(buf)?,
            vel: vec3(get_f32(buf)?, get_f32(buf)?, get_f32(buf)?),
            on_ground: get_u8(buf)? != 0,
        }))
    } else {
        Ok(None)
    }
}

impl Encode for ClientMessage {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            ClientMessage::Connect { client_id, arena } => {
                put_u8(out, TAG_CONNECT);
                put_u32(out, *client_id);
                put_arena_ext(out, *arena);
            }
            ClientMessage::Move { client_id, cmd } => {
                put_u8(out, TAG_MOVE);
                put_u32(out, *client_id);
                put_u32(out, cmd.seq);
                put_u64(out, cmd.sent_at);
                put_f32(out, cmd.pitch);
                put_f32(out, cmd.yaw);
                put_f32(out, cmd.forward);
                put_f32(out, cmd.side);
                put_f32(out, cmd.up);
                put_u8(out, cmd.buttons.0);
                put_u8(out, cmd.msec);
                put_move_predict_ext(out, cmd.predict_ack);
            }
            ClientMessage::Disconnect { client_id } => {
                put_u8(out, TAG_DISCONNECT);
                put_u32(out, *client_id);
            }
        }
    }
}

impl Decode for ClientMessage {
    fn decode(buf: &mut &[u8]) -> Result<Self, CodecError> {
        match get_u8(buf)? {
            TAG_CONNECT => Ok(ClientMessage::Connect {
                client_id: get_u32(buf)?,
                arena: get_arena_ext(buf)?,
            }),
            TAG_MOVE => Ok(ClientMessage::Move {
                client_id: get_u32(buf)?,
                cmd: MoveCmd {
                    seq: get_u32(buf)?,
                    sent_at: get_u64(buf)?,
                    pitch: get_f32(buf)?,
                    yaw: get_f32(buf)?,
                    forward: get_f32(buf)?,
                    side: get_f32(buf)?,
                    up: get_f32(buf)?,
                    buttons: Buttons(get_u8(buf)?),
                    msec: get_u8(buf)?,
                    predict_ack: get_move_predict_ext(buf)?,
                },
            }),
            TAG_DISCONNECT => Ok(ClientMessage::Disconnect {
                client_id: get_u32(buf)?,
            }),
            t => Err(CodecError::BadTag("client message", t)),
        }
    }
}

/// What kind of thing an entity update describes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EntityKind {
    Player,
    Item,
    Projectile,
    Teleporter,
}

impl EntityKind {
    fn to_u8(self) -> u8 {
        match self {
            EntityKind::Player => 0,
            EntityKind::Item => 1,
            EntityKind::Projectile => 2,
            EntityKind::Teleporter => 3,
        }
    }

    fn from_u8(v: u8) -> Result<EntityKind, CodecError> {
        Ok(match v {
            0 => EntityKind::Player,
            1 => EntityKind::Item,
            2 => EntityKind::Projectile,
            3 => EntityKind::Teleporter,
            t => return Err(CodecError::BadTag("entity kind", t)),
        })
    }
}

/// One visible entity's state in a reply.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EntityUpdate {
    pub id: u16,
    pub kind: EntityKind,
    /// Generic state byte (alive/taken/in-flight…; kind-specific).
    pub state: u8,
    pub pos: Vec3,
    pub yaw: f32,
}

impl Encode for EntityUpdate {
    fn encode(&self, out: &mut Vec<u8>) {
        put_u16(out, self.id);
        put_u8(out, self.kind.to_u8());
        put_u8(out, self.state);
        put_f32(out, self.pos.x);
        put_f32(out, self.pos.y);
        put_f32(out, self.pos.z);
        put_f32(out, self.yaw);
    }
}

impl Decode for EntityUpdate {
    fn decode(buf: &mut &[u8]) -> Result<Self, CodecError> {
        Ok(EntityUpdate {
            id: get_u16(buf)?,
            kind: EntityKind::from_u8(get_u8(buf)?)?,
            state: get_u8(buf)?,
            pos: vec3(get_f32(buf)?, get_f32(buf)?, get_f32(buf)?),
            yaw: get_f32(buf)?,
        })
    }
}

/// Broadcast event kinds (contents of the global state buffer).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GameEventKind {
    Pickup,
    Teleport,
    Hit,
    Spawn,
    Sound,
}

impl GameEventKind {
    fn to_u8(self) -> u8 {
        match self {
            GameEventKind::Pickup => 0,
            GameEventKind::Teleport => 1,
            GameEventKind::Hit => 2,
            GameEventKind::Spawn => 3,
            GameEventKind::Sound => 4,
        }
    }

    fn from_u8(v: u8) -> Result<GameEventKind, CodecError> {
        Ok(match v {
            0 => GameEventKind::Pickup,
            1 => GameEventKind::Teleport,
            2 => GameEventKind::Hit,
            3 => GameEventKind::Spawn,
            4 => GameEventKind::Sound,
            t => return Err(CodecError::BadTag("event kind", t)),
        })
    }
}

/// A broadcast game event.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GameEvent {
    pub kind: GameEventKind,
    /// Primary entity (e.g. the player who picked something up).
    pub a: u16,
    /// Secondary entity (e.g. the item).
    pub b: u16,
    pub pos: Vec3,
}

impl Encode for GameEvent {
    fn encode(&self, out: &mut Vec<u8>) {
        put_u8(out, self.kind.to_u8());
        put_u16(out, self.a);
        put_u16(out, self.b);
        put_f32(out, self.pos.x);
        put_f32(out, self.pos.y);
        put_f32(out, self.pos.z);
    }
}

impl Decode for GameEvent {
    fn decode(buf: &mut &[u8]) -> Result<Self, CodecError> {
        Ok(GameEvent {
            kind: GameEventKind::from_u8(get_u8(buf)?)?,
            a: get_u16(buf)?,
            b: get_u16(buf)?,
            pos: vec3(get_f32(buf)?, get_f32(buf)?, get_f32(buf)?),
        })
    }
}

/// Server → client messages.
#[derive(Clone, Debug, PartialEq)]
pub enum ServerMessage {
    /// Connection accepted; here is your spawn position. `arena` names
    /// the world instance the admission policy placed the client in
    /// (same optional-extension encoding as `Connect`; 0 when absent).
    ConnectAck {
        client_id: u32,
        spawn: Vec3,
        arena: u16,
    },
    /// Reply to the client's latest move (one per server frame).
    Reply {
        client_id: u32,
        /// Echo of the last processed move's sequence number.
        seq: u32,
        /// Echo of that move's `sent_at` (response-time measurement).
        sent_at_echo: u64,
        /// Server frame number.
        frame: u32,
        /// Server thread index the client should address next (used by
        /// the dynamic region-affine assignment extension; static
        /// servers echo the handling thread).
        assigned_thread: u8,
        /// The client's own position after the move (authoritative).
        origin: Vec3,
        /// Whether `entities` is a delta against the previous reply
        /// (QuakeWorld-style compression) or the full visible set.
        delta: bool,
        /// Visible entities (changed-only when `delta`).
        entities: Vec<EntityUpdate>,
        /// Entities no longer visible (delta mode only).
        removed: Vec<u16>,
        /// Broadcast events since the last reply.
        events: Vec<GameEvent>,
        /// Reconciliation trailer for predicting clients (same
        /// optional-extension encoding as `arena`; `None` for legacy
        /// clients keeps the wire byte-identical).
        predict: Option<ReplyPredict>,
    },
    /// The server is shutting down or kicked this client.
    Bye { client_id: u32 },
}

use crate::tags::{TAG_ACK, TAG_BYE, TAG_REPLY};

impl Encode for ServerMessage {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            ServerMessage::ConnectAck {
                client_id,
                spawn,
                arena,
            } => {
                put_u8(out, TAG_ACK);
                put_u32(out, *client_id);
                put_f32(out, spawn.x);
                put_f32(out, spawn.y);
                put_f32(out, spawn.z);
                put_arena_ext(out, *arena);
            }
            ServerMessage::Reply {
                client_id,
                seq,
                sent_at_echo,
                frame,
                assigned_thread,
                origin,
                delta,
                entities,
                removed,
                events,
                predict,
            } => {
                let start = out.len();
                put_u8(out, TAG_REPLY);
                put_u32(out, *client_id);
                put_u32(out, *seq);
                put_u64(out, *sent_at_echo);
                put_u32(out, *frame);
                put_u8(out, *assigned_thread);
                put_f32(out, origin.x);
                put_f32(out, origin.y);
                put_f32(out, origin.z);
                put_u8(out, u8::from(*delta));
                debug_assert!(entities.len() <= MAX_ENTITIES_PER_REPLY);
                put_u8(out, entities.len().min(MAX_ENTITIES_PER_REPLY) as u8);
                for e in entities.iter().take(MAX_ENTITIES_PER_REPLY) {
                    e.encode(out);
                }
                debug_assert!(removed.len() <= MAX_REMOVALS_PER_REPLY);
                put_u8(out, removed.len().min(MAX_REMOVALS_PER_REPLY) as u8);
                for r in removed.iter().take(MAX_REMOVALS_PER_REPLY) {
                    put_u16(out, *r);
                }
                debug_assert!(events.len() <= MAX_EVENTS_PER_REPLY);
                put_u8(out, events.len().min(MAX_EVENTS_PER_REPLY) as u8);
                for e in events.iter().take(MAX_EVENTS_PER_REPLY) {
                    e.encode(out);
                }
                put_reply_predict_ext(out, predict);
                debug_assert!(
                    out.len() - start <= crate::MAX_DATAGRAM,
                    "encoded Reply exceeds MAX_DATAGRAM ({} bytes)",
                    out.len() - start
                );
            }
            ServerMessage::Bye { client_id } => {
                put_u8(out, TAG_BYE);
                put_u32(out, *client_id);
            }
        }
    }
}

impl Decode for ServerMessage {
    fn decode(buf: &mut &[u8]) -> Result<Self, CodecError> {
        match get_u8(buf)? {
            TAG_ACK => Ok(ServerMessage::ConnectAck {
                client_id: get_u32(buf)?,
                spawn: vec3(get_f32(buf)?, get_f32(buf)?, get_f32(buf)?),
                arena: get_arena_ext(buf)?,
            }),
            TAG_REPLY => {
                let client_id = get_u32(buf)?;
                let seq = get_u32(buf)?;
                let sent_at_echo = get_u64(buf)?;
                let frame = get_u32(buf)?;
                let assigned_thread = get_u8(buf)?;
                let origin = vec3(get_f32(buf)?, get_f32(buf)?, get_f32(buf)?);
                let delta = get_u8(buf)? != 0;
                let n_ent = get_u8(buf)? as usize;
                if n_ent > MAX_ENTITIES_PER_REPLY {
                    return Err(CodecError::BadLength("entities", n_ent));
                }
                let mut entities = Vec::with_capacity(n_ent);
                for _ in 0..n_ent {
                    entities.push(EntityUpdate::decode(buf)?);
                }
                let n_rm = get_u8(buf)? as usize;
                if n_rm > MAX_REMOVALS_PER_REPLY {
                    return Err(CodecError::BadLength("removals", n_rm));
                }
                let mut removed = Vec::with_capacity(n_rm);
                for _ in 0..n_rm {
                    removed.push(get_u16(buf)?);
                }
                let n_ev = get_u8(buf)? as usize;
                if n_ev > MAX_EVENTS_PER_REPLY {
                    return Err(CodecError::BadLength("events", n_ev));
                }
                let mut events = Vec::with_capacity(n_ev);
                for _ in 0..n_ev {
                    events.push(GameEvent::decode(buf)?);
                }
                let predict = get_reply_predict_ext(buf)?;
                Ok(ServerMessage::Reply {
                    client_id,
                    seq,
                    sent_at_echo,
                    frame,
                    assigned_thread,
                    origin,
                    delta,
                    entities,
                    removed,
                    events,
                    predict,
                })
            }
            TAG_BYE => Ok(ServerMessage::Bye {
                client_id: get_u32(buf)?,
            }),
            t => Err(CodecError::BadTag("server message", t)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_move() -> ClientMessage {
        ClientMessage::Move {
            client_id: 7,
            cmd: MoveCmd {
                seq: 99,
                sent_at: 123_456_789,
                pitch: -10.0,
                yaw: 135.5,
                forward: 320.0,
                side: -320.0,
                up: 0.0,
                buttons: Buttons(Buttons::ATTACK | Buttons::JUMP),
                msec: 30,
                predict_ack: None,
            },
        }
    }

    #[test]
    fn client_message_roundtrips() {
        for msg in [
            ClientMessage::Connect {
                client_id: 1,
                arena: 0,
            },
            ClientMessage::Connect {
                client_id: 1,
                arena: 3,
            },
            sample_move(),
            ClientMessage::Disconnect { client_id: 2 },
        ] {
            let bytes = msg.to_bytes();
            assert_eq!(ClientMessage::from_bytes(&bytes).unwrap(), msg);
        }
    }

    #[test]
    fn server_message_roundtrips() {
        let reply = ServerMessage::Reply {
            client_id: 7,
            seq: 99,
            sent_at_echo: 123,
            frame: 42,
            assigned_thread: 3,
            origin: vec3(1.0, 2.0, 3.0),
            delta: true,
            removed: vec![9, 10],
            entities: vec![
                EntityUpdate {
                    id: 5,
                    kind: EntityKind::Player,
                    state: 1,
                    pos: vec3(10.0, 20.0, 30.0),
                    yaw: 90.0,
                },
                EntityUpdate {
                    id: 6,
                    kind: EntityKind::Item,
                    state: 0,
                    pos: vec3(-1.0, -2.0, -3.0),
                    yaw: 0.0,
                },
            ],
            events: vec![GameEvent {
                kind: GameEventKind::Pickup,
                a: 5,
                b: 6,
                pos: vec3(0.0, 0.0, 0.0),
            }],
            predict: None,
        };
        let bytes = reply.to_bytes();
        assert_eq!(ServerMessage::from_bytes(&bytes).unwrap(), reply);

        // With the reconciliation trailer attached.
        let predicted = match reply {
            ServerMessage::Reply { .. } => {
                let mut r = reply.clone();
                if let ServerMessage::Reply { predict, .. } = &mut r {
                    *predict = Some(ReplyPredict {
                        input_ack: 99,
                        perturb: 3,
                        vel: vec3(120.0, -40.0, -800.0),
                        on_ground: true,
                    });
                }
                r
            }
            _ => unreachable!(),
        };
        let bytes = predicted.to_bytes();
        assert_eq!(ServerMessage::from_bytes(&bytes).unwrap(), predicted);

        for msg in [
            ServerMessage::ConnectAck {
                client_id: 3,
                spawn: vec3(5.0, 6.0, 7.0),
                arena: 0,
            },
            ServerMessage::ConnectAck {
                client_id: 3,
                spawn: vec3(5.0, 6.0, 7.0),
                arena: 2,
            },
            ServerMessage::Bye { client_id: 4 },
        ] {
            let bytes = msg.to_bytes();
            assert_eq!(ServerMessage::from_bytes(&bytes).unwrap(), msg);
        }
    }

    #[test]
    fn bad_tag_is_rejected() {
        assert_eq!(
            ClientMessage::from_bytes(&[250, 0, 0, 0, 0]),
            Err(CodecError::BadTag("client message", 250))
        );
        assert_eq!(
            ServerMessage::from_bytes(&[7]),
            Err(CodecError::BadTag("server message", 7))
        );
    }

    #[test]
    fn truncated_message_is_rejected() {
        let bytes = sample_move().to_bytes();
        for cut in 1..bytes.len() {
            assert!(
                ClientMessage::from_bytes(&bytes[..cut]).is_err(),
                "cut at {cut} decoded"
            );
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = ClientMessage::Connect {
            client_id: 1,
            arena: 0,
        }
        .to_bytes();
        bytes.push(0);
        assert_eq!(
            ClientMessage::from_bytes(&bytes),
            Err(CodecError::TrailingBytes(1))
        );
    }

    #[test]
    fn arena_extension_is_canonical_and_backward_compatible() {
        // Arena 0 encodes to exactly the pre-extension bytes.
        let old_wire = vec![1u8, 9, 0, 0, 0]; // TAG_CONNECT, client 9 LE
        assert_eq!(
            ClientMessage::Connect {
                client_id: 9,
                arena: 0
            }
            .to_bytes(),
            old_wire
        );
        // The pre-extension format decodes to arena 0.
        assert_eq!(
            ClientMessage::from_bytes(&old_wire).unwrap(),
            ClientMessage::Connect {
                client_id: 9,
                arena: 0
            }
        );
        // A non-zero arena adds exactly tag + u16.
        let mut ext_wire = old_wire.clone();
        ext_wire.extend_from_slice(&[crate::ARENA_EXT_TAG, 5, 0]);
        assert_eq!(
            ClientMessage::from_bytes(&ext_wire).unwrap(),
            ClientMessage::Connect {
                client_id: 9,
                arena: 5
            }
        );
        // Truncated extension: rejected, not silently arena 0.
        assert!(ClientMessage::from_bytes(&ext_wire[..ext_wire.len() - 1]).is_err());
        // Bytes after a complete extension are still trailing garbage.
        let mut over = ext_wire.clone();
        over.push(7);
        assert_eq!(
            ClientMessage::from_bytes(&over),
            Err(CodecError::TrailingBytes(1))
        );
    }

    #[test]
    fn predict_extension_is_canonical_and_backward_compatible() {
        // A legacy (None) move encodes to exactly the pre-extension
        // bytes; round-trip of that wire stays None.
        let legacy = sample_move();
        let old_wire = legacy.to_bytes();
        assert_eq!(ClientMessage::from_bytes(&old_wire).unwrap(), legacy);
        // A predicting client appends exactly tag + u32 — ack 0 too,
        // because presence is the opt-in signal.
        for ack in [0u32, 98] {
            let predicting = match legacy.clone() {
                ClientMessage::Move { client_id, mut cmd } => {
                    cmd.predict_ack = Some(ack);
                    ClientMessage::Move { client_id, cmd }
                }
                _ => unreachable!(),
            };
            let wire = predicting.to_bytes();
            assert_eq!(
                wire.len(),
                old_wire.len() + crate::MOVE_PREDICT_EXT_WIRE_BYTES
            );
            assert_eq!(&wire[..old_wire.len()], &old_wire[..]);
            assert_eq!(wire[old_wire.len()], crate::PREDICT_EXT_TAG);
            assert_eq!(ClientMessage::from_bytes(&wire).unwrap(), predicting);
            // Truncated trailer: rejected, not silently legacy.
            for cut in old_wire.len() + 1..wire.len() {
                assert!(
                    ClientMessage::from_bytes(&wire[..cut]).is_err(),
                    "cut at {cut} decoded"
                );
            }
            // Bytes after a complete trailer are trailing garbage.
            let mut over = wire.clone();
            over.push(7);
            assert_eq!(
                ClientMessage::from_bytes(&over),
                Err(CodecError::TrailingBytes(1))
            );
        }
    }

    #[test]
    fn reply_predict_extension_roundtrips_and_rejects_truncation() {
        let bare = ServerMessage::Reply {
            client_id: 1,
            seq: 5,
            sent_at_echo: 0,
            frame: 2,
            assigned_thread: 0,
            origin: vec3(0.0, 0.0, 0.0),
            delta: false,
            entities: vec![],
            removed: vec![],
            events: vec![],
            predict: None,
        };
        let old_wire = bare.to_bytes();
        let mut trailered = bare.clone();
        if let ServerMessage::Reply { predict, .. } = &mut trailered {
            *predict = Some(ReplyPredict {
                input_ack: 5,
                perturb: 0,
                vel: vec3(0.0, 0.0, -800.0),
                on_ground: false,
            });
        }
        let wire = trailered.to_bytes();
        assert_eq!(
            wire.len(),
            old_wire.len() + crate::REPLY_PREDICT_EXT_WIRE_BYTES
        );
        assert_eq!(&wire[..old_wire.len()], &old_wire[..]);
        assert_eq!(ServerMessage::from_bytes(&wire).unwrap(), trailered);
        for cut in old_wire.len() + 1..wire.len() {
            assert!(
                ServerMessage::from_bytes(&wire[..cut]).is_err(),
                "cut at {cut} decoded"
            );
        }
    }

    #[test]
    fn oversized_entity_count_is_rejected() {
        // Hand-craft a reply header claiming 200 entities.
        let mut bytes = Vec::new();
        put_u8(&mut bytes, 101);
        put_u32(&mut bytes, 1); // client
        put_u32(&mut bytes, 1); // seq
        put_u64(&mut bytes, 0); // echo
        put_u32(&mut bytes, 0); // frame
        put_u8(&mut bytes, 0); // assigned thread
        put_f32(&mut bytes, 0.0);
        put_f32(&mut bytes, 0.0);
        put_f32(&mut bytes, 0.0);
        put_u8(&mut bytes, 0); // delta flag
        put_u8(&mut bytes, 200); // entity count over limit
        assert_eq!(
            ServerMessage::from_bytes(&bytes),
            Err(CodecError::BadLength("entities", 200))
        );
    }

    #[test]
    fn worst_case_reply_fits_max_datagram() {
        // A crowded-leaf reply with every list at its cap must stay
        // within MAX_DATAGRAM — the recv buffers on the UDP path are
        // sized from it.
        let reply = ServerMessage::Reply {
            client_id: u32::MAX,
            seq: u32::MAX,
            sent_at_echo: u64::MAX,
            frame: u32::MAX,
            assigned_thread: u8::MAX,
            origin: vec3(1.0e9, -1.0e9, 1.0e9),
            delta: true,
            entities: (0..MAX_ENTITIES_PER_REPLY)
                .map(|i| EntityUpdate {
                    id: i as u16,
                    kind: EntityKind::Projectile,
                    state: 255,
                    pos: vec3(1.0, 2.0, 3.0),
                    yaw: 180.0,
                })
                .collect(),
            removed: (0..MAX_REMOVALS_PER_REPLY).map(|i| i as u16).collect(),
            events: (0..MAX_EVENTS_PER_REPLY)
                .map(|i| GameEvent {
                    kind: GameEventKind::Hit,
                    a: i as u16,
                    b: i as u16,
                    pos: vec3(4.0, 5.0, 6.0),
                })
                .collect(),
            predict: None,
        };
        let bytes = reply.to_bytes();
        assert_eq!(bytes.len(), crate::MAX_REPLY_WIRE_BYTES);
        assert!(bytes.len() <= crate::MAX_DATAGRAM);
        assert_eq!(ServerMessage::from_bytes(&bytes).unwrap(), reply);

        // Toward a predicting client the same worst case gains exactly
        // the trailer and must still fit the recv buffers.
        let mut trailered = reply.clone();
        if let ServerMessage::Reply { predict, .. } = &mut trailered {
            *predict = Some(ReplyPredict {
                input_ack: u32::MAX,
                perturb: u32::MAX,
                vel: vec3(1.0e9, -1.0e9, 1.0e9),
                on_ground: true,
            });
        }
        let bytes = trailered.to_bytes();
        assert_eq!(bytes.len(), crate::MAX_PREDICT_REPLY_WIRE_BYTES);
        assert!(bytes.len() <= crate::MAX_DATAGRAM);
        assert_eq!(ServerMessage::from_bytes(&bytes).unwrap(), trailered);
    }

    #[test]
    fn buttons_flag_logic() {
        let b = Buttons::NONE.with(Buttons::ATTACK);
        assert!(b.has(Buttons::ATTACK));
        assert!(!b.has(Buttons::JUMP));
        assert!(b.long_range());
        assert!(Buttons(Buttons::THROW).long_range());
        assert!(!Buttons(Buttons::JUMP).long_range());
    }

    #[test]
    fn move_duration_clamps() {
        let mut cmd = MoveCmd::idle(0, 30);
        assert!((cmd.duration_secs() - 0.030).abs() < 1e-6);
        cmd.msec = 255;
        assert!((cmd.duration_secs() - 0.250).abs() < 1e-6);
    }
}
