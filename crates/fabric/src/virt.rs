//! The deterministic virtual-time SMP fabric.
//!
//! Tasks are OS threads, but **exactly one executes at a time**: every
//! fabric operation is a scheduling point at which the task may hand
//! the (single) CPU to whichever task has the globally smallest virtual
//! time. Blocked tasks with deadlines (sleeps, timed waits, select
//! timeouts) participate in that minimum, so the scheduler never lets a
//! task perform an operation at virtual time *t* while another task
//! could still act at a time earlier than *t* — the conservative
//! parallel-discrete-event invariant that makes the simulation causal
//! and deterministic.
//!
//! Virtual time only advances through [`Fabric::charge`] (modelled CPU
//! work), lock/condvar handoffs, message delivery latency, and
//! deadlines. The hyper-threading model charges work at reduced speed
//! when the sibling context of the same modelled core has runnable
//! work, reproducing the paper's 4-core × 2-way-HT testbed.
//!
//! Determinism: scheduling decisions depend only on `(virtual time,
//! task id)` and FIFO queues, never on host timing. The same program
//! yields the same interleaving, the same lock wait times, and the same
//! figures on every run and host.

use std::collections::VecDeque;
use std::sync::{Arc, Weak};

use parking_lot::{Condvar, Mutex, MutexGuard};

use crate::witness::LockWitness;
use crate::{
    CondId, Fabric, LockId, Message, Nanos, PortId, TaskBody, TaskCtx, TaskId, VirtualSmpConfig,
};

const INF: Nanos = Nanos::MAX;

#[derive(Debug, Clone, PartialEq, Eq)]
enum Status {
    NotStarted,
    /// Ready to execute at its clock.
    Runnable,
    /// Currently executing user code.
    Running,
    /// Blocked acquiring a lock (in that lock's FIFO queue).
    LockWait(LockId),
    /// Blocked on a condition variable.
    CondWait {
        cond: CondId,
        relock: LockId,
        deadline: Option<Nanos>,
    },
    /// Blocked until a port becomes readable.
    PortWait {
        port: PortId,
        deadline: Option<Nanos>,
    },
    Sleeping {
        until: Nanos,
    },
    Finished,
}

struct Task {
    name: String,
    clock: Nanos,
    status: Status,
    server_cpu: Option<u32>,
    cv: Arc<Condvar>,
    /// Set when a timed cond wait expired (read back by the waiter).
    timed_out: bool,
    /// Start of the task's current busy stretch (reset on every wake
    /// from a blocked state). The HT model treats a runnable sibling as
    /// occupying its core for the whole interval `[busy_from, ...]`.
    busy_from: Nanos,
}

#[derive(Default)]
struct LockState {
    holder: Option<TaskId>,
    waiters: VecDeque<TaskId>,
}

#[derive(Default)]
struct CondState {
    waiters: VecDeque<TaskId>,
}

struct Delivery {
    deliver_at: Nanos,
    msg: Message,
}

struct PortState {
    /// Pending deliveries, sorted by `deliver_at` (ties keep send
    /// order) — `wake_key` and `try_recv` only inspect the front.
    queue: VecDeque<Delivery>,
    /// Maximum queued messages (`usize::MAX` = unbounded).
    cap: usize,
    /// Messages discarded by the bounded-queue drop policy.
    dropped: u64,
    /// WAN-marked ([`Fabric::mark_wan_port`]) — a client-side endpoint
    /// of the modelled wide-area path, used to scope fault injection
    /// when [`VirtualSmpConfig::fault_wan_only`] is set.
    wan: bool,
}

impl PortState {
    fn with_cap(cap: usize) -> PortState {
        PortState {
            queue: VecDeque::new(),
            cap,
            dropped: 0,
            wan: false,
        }
    }
}

struct Shared {
    tasks: Vec<Task>,
    locks: Vec<LockState>,
    conds: Vec<CondState>,
    ports: Vec<PortState>,
    live: usize,
    started: bool,
    /// Set when the scheduler finds live tasks but nothing to run;
    /// `run()` panics with this diagnostic.
    deadlock: Option<String>,
    /// Deterministic decision counter for seeded schedule exploration
    /// (advances once per perturbable scheduling decision).
    nonce: u64,
    /// Datagram fault lottery; sends are serialized in virtual-time
    /// order by `sync_point`, so draws replay deterministically.
    fault: Option<crate::fault::FaultLottery>,
}

/// Deterministic virtual-time SMP implementation of [`Fabric`].
pub struct VirtualSmp {
    cfg: VirtualSmpConfig,
    state: Mutex<Shared>,
    done_cv: Condvar,
    pending: Mutex<Vec<(String, Option<u32>, TaskBody)>>,
    me: Mutex<Option<Weak<dyn Fabric>>>,
    witness: Mutex<Option<Arc<LockWitness>>>,
}

impl VirtualSmp {
    pub fn new(cfg: VirtualSmpConfig) -> VirtualSmp {
        let fault = cfg.fault.clone().map(crate::fault::FaultLottery::new);
        VirtualSmp {
            cfg,
            state: Mutex::new(Shared {
                tasks: Vec::new(),
                locks: Vec::new(),
                conds: Vec::new(),
                ports: Vec::new(),
                live: 0,
                started: false,
                deadlock: None,
                nonce: 0,
                fault,
            }),
            done_cv: Condvar::new(),
            pending: Mutex::new(Vec::new()),
            me: Mutex::new(None),
            witness: Mutex::new(None),
        }
    }

    /// Create behind an `Arc<dyn Fabric>` with the self-reference wired.
    pub fn new_arc(cfg: VirtualSmpConfig) -> Arc<dyn Fabric> {
        let arc: Arc<VirtualSmp> = Arc::new(VirtualSmp::new(cfg));
        let weak: Weak<dyn Fabric> = Arc::downgrade(&arc) as Weak<dyn Fabric>;
        *arc.me.lock() = Some(weak);
        arc
    }

    /// What the fault lottery did so far (`None` if no fault config).
    pub fn fault_stats(&self) -> Option<crate::fault::FaultStats> {
        self.state.lock().fault.as_ref().map(|l| l.stats())
    }

    /// The virtual time at which a blocked-with-deadline task would act
    /// if nothing else wakes it; `INF` for indefinitely blocked tasks.
    fn wake_key(g: &Shared, id: usize) -> Nanos {
        let t = &g.tasks[id];
        match &t.status {
            Status::Runnable => t.clock,
            Status::Sleeping { until } => *until,
            Status::CondWait { deadline, .. } => deadline.unwrap_or(INF),
            Status::PortWait { port, deadline } => {
                let dl = deadline.unwrap_or(INF);
                match g.ports[*port as usize].queue.front() {
                    Some(d) => dl.min(d.deliver_at.max(t.clock)),
                    None => dl,
                }
            }
            _ => INF,
        }
    }

    /// Smallest wake key over every task except `exclude`.
    fn min_other_key(g: &Shared, exclude: TaskId) -> Nanos {
        let mut best = INF;
        for id in 0..g.tasks.len() {
            if id as TaskId != exclude {
                best = best.min(Self::wake_key(g, id));
            }
        }
        best
    }

    /// splitmix64-style mix of the schedule seed with two decision
    /// inputs; the basis of seeded (but fully deterministic) schedule
    /// perturbation.
    fn mix(&self, a: u64, b: u64) -> u64 {
        let mut z = self
            .cfg
            .schedule_seed
            .wrapping_add(a.wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .wrapping_add(b.wrapping_mul(0xBF58_476D_1CE4_E5B9));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Hand the CPU to the task with the smallest wake key, applying
    /// timeout transitions along the way. Caller's task must already be
    /// in a non-Running state. Equal-time ties break by task id, or by
    /// a seeded hash when schedule exploration is on — either choice is
    /// legal under the conservative virtual-time invariant, which only
    /// constrains *strictly* earlier actions.
    fn dispatch(&self, g: &mut MutexGuard<'_, Shared>) {
        g.nonce = g.nonce.wrapping_add(1);
        let epoch = g.nonce;
        loop {
            if g.live == 0 {
                self.done_cv.notify_all();
                return;
            }
            let mut best: Option<(Nanos, u64, usize)> = None;
            for id in 0..g.tasks.len() {
                let key = Self::wake_key(g, id);
                if key == INF {
                    continue;
                }
                let tie = if self.cfg.schedule_seed == 0 {
                    id as u64
                } else {
                    self.mix(epoch, id as u64)
                };
                match best {
                    Some((bk, bt, bi)) if (bk, bt, bi) <= (key, tie, id) => {}
                    _ => best = Some((key, tie, id)),
                }
            }
            let Some((key, _, id)) = best else {
                let dump: Vec<String> = g
                    .tasks
                    .iter()
                    .enumerate()
                    .filter(|(_, t)| t.status != Status::Finished)
                    .map(|(i, t)| format!("  task {i} '{}' @{} {:?}", t.name, t.clock, t.status))
                    .collect();
                // Record and hand the failure to run(): panicking here
                // (inside a task thread, holding the state mutex) would
                // hang run() on done_cv instead of failing loudly.
                g.deadlock = Some(format!(
                    "virtual-smp deadlock: {} live tasks, none runnable\n{}",
                    g.live,
                    dump.join("\n")
                ));
                self.done_cv.notify_all();
                return;
            };
            match g.tasks[id].status.clone() {
                Status::Runnable => {
                    g.tasks[id].status = Status::Running;
                    g.tasks[id].cv.clone().notify_all();
                    return;
                }
                Status::Sleeping { until } => {
                    g.tasks[id].clock = g.tasks[id].clock.max(until);
                    g.tasks[id].busy_from = g.tasks[id].clock;
                    g.tasks[id].status = Status::Runnable;
                }
                Status::CondWait { cond, relock, .. } => {
                    // Deadline expiry: leave the cond queue and start
                    // reacquiring the lock at the deadline instant.
                    let q = &mut g.conds[cond as usize].waiters;
                    q.retain(|&w| w as usize != id);
                    g.tasks[id].clock = g.tasks[id].clock.max(key);
                    g.tasks[id].busy_from = g.tasks[id].clock;
                    g.tasks[id].timed_out = true;
                    Self::start_relock(g, id as TaskId, relock);
                }
                Status::PortWait { .. } => {
                    g.tasks[id].clock = g.tasks[id].clock.max(key);
                    g.tasks[id].busy_from = g.tasks[id].clock;
                    g.tasks[id].status = Status::Runnable;
                }
                s => unreachable!("dispatch picked {s:?}"),
            }
        }
    }

    /// Acquire `lock` for `task` if free, else queue it (handoff will
    /// resume it later). The task ends up `Runnable` (holding the lock)
    /// or `LockWait`.
    fn start_relock(g: &mut MutexGuard<'_, Shared>, task: TaskId, lock: LockId) {
        let l = &mut g.locks[lock as usize];
        if l.holder.is_none() {
            l.holder = Some(task);
            g.tasks[task as usize].status = Status::Runnable;
        } else {
            l.waiters.push_back(task);
            g.tasks[task as usize].status = Status::LockWait(lock);
        }
    }

    /// Block the calling thread until the scheduler marks it Running.
    fn wait_until_running(&self, g: &mut MutexGuard<'_, Shared>, me: TaskId) {
        while g.tasks[me as usize].status != Status::Running {
            let cv = g.tasks[me as usize].cv.clone();
            cv.wait(g);
        }
    }

    /// Yield if any other task could act at a strictly earlier virtual
    /// time. Every shared-state operation calls this first, which is
    /// what enforces global virtual-time ordering.
    fn sync_point(&self, me: TaskId) -> MutexGuard<'_, Shared> {
        let mut g = self.state.lock();
        debug_assert_eq!(g.tasks[me as usize].status, Status::Running);
        if Self::min_other_key(&g, me) < g.tasks[me as usize].clock {
            g.tasks[me as usize].status = Status::Runnable;
            self.dispatch(&mut g);
            self.wait_until_running(&mut g, me);
        }
        g
    }

    /// SMP model: how long `ns` of work takes on `task`'s context given
    /// sibling activity on the same modelled core (2-way HT) and
    /// concurrent activity on other cores (shared memory bus).
    fn adjusted_cost(&self, g: &Shared, me: TaskId, ns: Nanos) -> Nanos {
        let Some(cpu) = g.tasks[me as usize].server_cpu else {
            return ns; // off-server task (client machine)
        };
        let my_core = cpu % self.cfg.cores;
        let my_end = g.tasks[me as usize].clock.saturating_add(ns);
        let mut same_core_busy = 1u64;
        let mut busy_cores = 1u64 << my_core.min(63);
        for (id, t) in g.tasks.iter().enumerate() {
            if id as TaskId == me {
                continue;
            }
            let Some(c) = t.server_cpu else { continue };
            // A sibling occupies its core during my interval if its
            // current busy stretch started before my end time and it
            // still has runnable work.
            let overlapping =
                matches!(t.status, Status::Runnable | Status::Running) && t.busy_from < my_end;
            if !overlapping {
                continue;
            }
            let core = c % self.cfg.cores;
            busy_cores |= 1 << core.min(63);
            if core == my_core {
                same_core_busy += 1;
            }
        }
        let mut factor = 1.0f64;
        if self.cfg.hyperthreading && same_core_busy > 1 {
            // Two HT contexts each run at `ht_efficiency`; more than
            // two tasks per core time-slice on top of that.
            factor *= 2.0 * self.cfg.ht_efficiency / same_core_busy as f64;
        }
        let n_busy_cores = busy_cores.count_ones() as f64;
        if self.cfg.mem_penalty > 0.0 && n_busy_cores > 1.0 {
            factor /= 1.0 + self.cfg.mem_penalty * (n_busy_cores - 1.0);
        }
        if factor >= 1.0 {
            ns
        } else {
            (ns as f64 / factor).round() as Nanos
        }
    }

    /// Resume `w` with its clock pushed to at least `t`. The task was
    /// blocked, so a new busy stretch starts now.
    fn make_runnable_at(g: &mut MutexGuard<'_, Shared>, w: TaskId, t: Nanos) {
        let task = &mut g.tasks[w as usize];
        task.clock = task.clock.max(t);
        task.busy_from = task.clock;
        task.status = Status::Runnable;
    }

    /// Release `lock` at time `at`, handing it directly to one waiter if
    /// any are queued. FIFO by default; a nonzero schedule seed picks
    /// the successor pseudo-randomly (all waiters are blocked with no
    /// deadline, so any successor is a legal schedule).
    fn handoff(&self, g: &mut MutexGuard<'_, Shared>, lock: LockId, at: Nanos) {
        let n = g.locks[lock as usize].waiters.len();
        if n == 0 {
            g.locks[lock as usize].holder = None;
            return;
        }
        let idx = if self.cfg.schedule_seed == 0 || n == 1 {
            0
        } else {
            g.nonce = g.nonce.wrapping_add(1);
            (self.mix(g.nonce, lock as u64) % n as u64) as usize
        };
        let w = g.locks[lock as usize]
            .waiters
            .remove(idx)
            .expect("idx < len");
        g.locks[lock as usize].holder = Some(w);
        Self::make_runnable_at(g, w, at);
    }
}

impl Fabric for VirtualSmp {
    fn kind(&self) -> &'static str {
        "virtual-smp"
    }

    fn alloc_lock(&self) -> LockId {
        let mut g = self.state.lock();
        g.locks.push(LockState::default());
        (g.locks.len() - 1) as LockId
    }

    fn alloc_cond(&self) -> CondId {
        let mut g = self.state.lock();
        g.conds.push(CondState::default());
        (g.conds.len() - 1) as CondId
    }

    fn alloc_port(&self) -> PortId {
        let mut g = self.state.lock();
        g.ports.push(PortState::with_cap(usize::MAX));
        (g.ports.len() - 1) as PortId
    }

    fn alloc_bounded_port(&self, capacity: usize) -> PortId {
        assert!(capacity > 0, "bounded port needs capacity >= 1");
        let mut g = self.state.lock();
        g.ports.push(PortState::with_cap(capacity));
        (g.ports.len() - 1) as PortId
    }

    fn mark_wan_port(&self, port: PortId) {
        self.state.lock().ports[port as usize].wan = true;
    }

    fn port_dropped(&self, port: PortId) -> u64 {
        self.state.lock().ports[port as usize].dropped
    }

    fn port_pending(&self, port: PortId) -> usize {
        self.state.lock().ports[port as usize].queue.len()
    }

    fn port_next_delivery(&self, port: PortId) -> Option<Nanos> {
        // The queue is sorted by `deliver_at`, so the front is the
        // earliest in-flight or deliverable message.
        self.state.lock().ports[port as usize]
            .queue
            .front()
            .map(|d| d.deliver_at)
    }

    fn spawn(&self, name: &str, server_cpu: Option<u32>, body: TaskBody) -> TaskId {
        let mut g = self.state.lock();
        assert!(!g.started, "spawn after run()");
        let id = g.tasks.len() as TaskId;
        g.tasks.push(Task {
            name: name.to_string(),
            clock: 0,
            status: Status::NotStarted,
            server_cpu,
            cv: Arc::new(Condvar::new()),
            timed_out: false,
            busy_from: 0,
        });
        g.live += 1;
        self.pending
            .lock()
            .push((name.to_string(), server_cpu, body));
        id
    }

    fn run(&self) {
        let me = self
            .me
            .lock()
            .clone()
            .expect("VirtualSmp must be created via new_arc()/FabricKind::build");
        let bodies: Vec<(String, Option<u32>, TaskBody)> =
            std::mem::take(&mut *self.pending.lock());
        let mut handles = Vec::new();
        for (i, (name, _cpu, body)) in bodies.into_iter().enumerate() {
            let weak = me.clone();
            let sched: *const VirtualSmp = self;
            // SAFETY: run() blocks until every task thread has finished,
            // so `self` outlives the threads' use of `sched`.
            let sched_addr = sched as usize;
            let handle = std::thread::Builder::new()
                .name(name)
                .stack_size(512 << 10)
                .spawn(move || {
                    let fabric = weak.upgrade().expect("fabric dropped during run");
                    let sched = unsafe { &*(sched_addr as *const VirtualSmp) };
                    let id = i as TaskId;
                    {
                        let mut g = sched.state.lock();
                        sched.wait_until_running(&mut g, id);
                    }
                    let ctx = TaskCtx::new(id, fabric);
                    // A panicking task must not leave run() waiting on
                    // done_cv forever: record the panic, finish the
                    // task, and let run() re-raise it.
                    let result =
                        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(&ctx)));
                    if result.is_err() {
                        // The unwind discarded any locks the task held;
                        // tell the witness so the leak is a reported
                        // violation, not a silent wedge. (Before taking
                        // the scheduler lock: the witness has its own.)
                        if let Some(w) = sched.witness() {
                            w.on_unwind(id, sched.now(id));
                        }
                    }
                    let mut g = sched.state.lock();
                    if let Err(payload) = result {
                        let msg = payload
                            .downcast_ref::<String>()
                            .cloned()
                            .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
                            .unwrap_or_else(|| "<non-string panic>".to_string());
                        let name = g.tasks[id as usize].name.clone();
                        g.deadlock
                            .get_or_insert_with(|| format!("task '{name}' panicked: {msg}"));
                        sched.done_cv.notify_all();
                    }
                    g.tasks[id as usize].status = Status::Finished;
                    g.live -= 1;
                    sched.dispatch(&mut g);
                })
                .expect("thread spawn failed");
            handles.push(handle);
        }
        let deadlock_msg;
        {
            let mut g = self.state.lock();
            assert!(!g.started, "run() called twice");
            g.started = true;
            for t in g.tasks.iter_mut() {
                if t.status == Status::NotStarted {
                    t.status = Status::Runnable;
                }
            }
            if g.live > 0 {
                self.dispatch(&mut g);
                while g.live > 0 && g.deadlock.is_none() {
                    self.done_cv.wait(&mut g);
                }
            }
            deadlock_msg = g.deadlock.take();
        }
        if let Some(msg) = deadlock_msg {
            // The blocked task threads can never finish; detach them
            // and fail loudly with the scheduler's diagnostic.
            for h in handles {
                drop(h);
            }
            panic!("{msg}");
        }
        for h in handles {
            h.join().expect("task panicked");
        }
    }

    fn now(&self, task: TaskId) -> Nanos {
        self.state.lock().tasks[task as usize].clock
    }

    fn charge(&self, task: TaskId, ns: Nanos) {
        let mut g = self.sync_point(task);
        let adj = self.adjusted_cost(&g, task, ns);
        g.tasks[task as usize].clock += adj;
        // Yield after advancing too, so side effects a task performs
        // between fabric calls stay globally ordered by virtual time.
        if Self::min_other_key(&g, task) < g.tasks[task as usize].clock {
            g.tasks[task as usize].status = Status::Runnable;
            self.dispatch(&mut g);
            self.wait_until_running(&mut g, task);
        }
    }

    fn attach_witness(&self, w: Arc<LockWitness>) {
        *self.witness.lock() = Some(w);
    }

    fn witness(&self) -> Option<Arc<LockWitness>> {
        self.witness.lock().clone()
    }

    fn lock(&self, task: TaskId, lock: LockId) -> Nanos {
        let mut g = self.sync_point(task);
        let t0 = g.tasks[task as usize].clock;
        let l = &mut g.locks[lock as usize];
        assert_ne!(l.holder, Some(task), "recursive lock {lock} by task {task}");
        let blocked = if l.holder.is_none() {
            l.holder = Some(task);
            0
        } else {
            l.waiters.push_back(task);
            g.tasks[task as usize].status = Status::LockWait(lock);
            self.dispatch(&mut g);
            self.wait_until_running(&mut g, task);
            g.tasks[task as usize].clock - t0
        };
        if let Some(w) = self.witness() {
            w.on_acquire(task, lock, g.tasks[task as usize].clock);
        }
        blocked
    }

    fn unlock(&self, task: TaskId, lock: LockId) {
        let mut g = self.sync_point(task);
        if let Some(w) = self.witness() {
            w.on_release(task, lock);
        }
        let my_clock = g.tasks[task as usize].clock;
        assert_eq!(
            g.locks[lock as usize].holder,
            Some(task),
            "task {task} unlocked lock {lock} it does not hold"
        );
        // Direct handoff: the successor owns the lock from the moment
        // of release and resumes at the release time.
        self.handoff(&mut g, lock, my_clock);
    }

    fn cond_wait(&self, task: TaskId, cond: CondId, lock: LockId) -> Nanos {
        self.cond_wait_impl(task, cond, lock, None).0
    }

    fn cond_wait_until(
        &self,
        task: TaskId,
        cond: CondId,
        lock: LockId,
        deadline: Nanos,
    ) -> (Nanos, bool) {
        self.cond_wait_impl(task, cond, lock, Some(deadline))
    }

    fn cond_signal(&self, task: TaskId, cond: CondId) {
        let mut g = self.sync_point(task);
        let my_clock = g.tasks[task as usize].clock;
        if let Some(w) = g.conds[cond as usize].waiters.pop_front() {
            let relock = match g.tasks[w as usize].status.clone() {
                Status::CondWait { relock, .. } => relock,
                s => unreachable!("cond waiter in state {s:?}"),
            };
            g.tasks[w as usize].clock = g.tasks[w as usize].clock.max(my_clock);
            Self::start_relock(&mut g, w, relock);
        }
    }

    fn cond_broadcast(&self, task: TaskId, cond: CondId) {
        let mut g = self.sync_point(task);
        let my_clock = g.tasks[task as usize].clock;
        while let Some(w) = g.conds[cond as usize].waiters.pop_front() {
            let relock = match g.tasks[w as usize].status.clone() {
                Status::CondWait { relock, .. } => relock,
                s => unreachable!("cond waiter in state {s:?}"),
            };
            g.tasks[w as usize].clock = g.tasks[w as usize].clock.max(my_clock);
            Self::start_relock(&mut g, w, relock);
        }
    }

    fn send(&self, task: TaskId, from: PortId, to: PortId, mut payload: Vec<u8>) {
        let mut g = self.sync_point(task);
        let sent_at = g.tasks[task as usize].clock;
        // Fault lottery: each fate is one copy to deliver with its
        // extra delay; an empty draw drops the datagram. Drawn under
        // the state lock in virtual-time order, hence replayable. With
        // `fault_wan_only`, only sends crossing the WAN edge (exactly
        // one marked endpoint) are faulted — and crucially they draw
        // nothing otherwise, so the lottery's clock advances one draw
        // per WAN datagram regardless of interleaved internal traffic.
        let from_wan = g.ports[from as usize].wan;
        let to_wan = g.ports[to as usize].wan;
        let fates = match g.fault.as_mut() {
            Some(_) if self.cfg.fault_wan_only && from_wan == to_wan => vec![0],
            Some(l) if self.cfg.fault_wan_only => {
                // Marked sender ⇒ the client is talking to the server.
                l.draw_dir(if from_wan {
                    crate::fault::FaultDir::ClientToServer
                } else {
                    crate::fault::FaultDir::ServerToClient
                })
            }
            Some(l) => l.draw(),
            None => vec![0],
        };
        let copies = fates.len();
        for (i, extra) in fates.into_iter().enumerate() {
            let deliver_at = sent_at + self.cfg.link_latency_ns + extra;
            let bytes = if i + 1 == copies {
                std::mem::take(&mut payload)
            } else {
                payload.clone()
            };
            let port = &mut g.ports[to as usize];
            if port.queue.len() >= port.cap {
                port.queue.pop_front();
                port.dropped += 1;
            }
            // Keep the queue sorted by delivery time: injected delays
            // can land a copy anywhere, including *behind* messages
            // sent later (that is the reordering). Ties keep send
            // order (stable insert after the last <= entry).
            let pos = port
                .queue
                .iter()
                .rposition(|d| d.deliver_at <= deliver_at)
                .map_or(0, |p| p + 1);
            port.queue.insert(
                pos,
                Delivery {
                    deliver_at,
                    msg: Message {
                        from,
                        sent_at,
                        payload: bytes,
                    },
                },
            );
        }
        // A task blocked on this port will be picked up by the wake-key
        // computation; no explicit wakeup needed.
    }

    fn try_recv(&self, task: TaskId, port: PortId) -> Option<Message> {
        let mut g = self.sync_point(task);
        let now = g.tasks[task as usize].clock;
        let q = &mut g.ports[port as usize].queue;
        if q.front().map(|d| d.deliver_at <= now).unwrap_or(false) {
            Some(q.pop_front().unwrap().msg)
        } else {
            None
        }
    }

    fn wait_readable(&self, task: TaskId, port: PortId, deadline: Option<Nanos>) -> bool {
        let mut g = self.sync_point(task);
        loop {
            let now = g.tasks[task as usize].clock;
            let readable = g.ports[port as usize]
                .queue
                .front()
                .map(|d| d.deliver_at <= now)
                .unwrap_or(false);
            if readable {
                return true;
            }
            if let Some(d) = deadline {
                if now >= d {
                    return false;
                }
            }
            g.tasks[task as usize].status = Status::PortWait { port, deadline };
            self.dispatch(&mut g);
            self.wait_until_running(&mut g, task);
        }
    }

    fn sleep_until(&self, task: TaskId, t: Nanos) {
        let mut g = self.sync_point(task);
        if g.tasks[task as usize].clock >= t {
            return;
        }
        g.tasks[task as usize].status = Status::Sleeping { until: t };
        self.dispatch(&mut g);
        self.wait_until_running(&mut g, task);
    }
}

impl VirtualSmp {
    fn cond_wait_impl(
        &self,
        task: TaskId,
        cond: CondId,
        lock: LockId,
        deadline: Option<Nanos>,
    ) -> (Nanos, bool) {
        let mut g = self.sync_point(task);
        let t0 = g.tasks[task as usize].clock;
        if let Some(w) = self.witness() {
            w.on_wait(task, lock, t0);
            w.on_release(task, lock);
        }
        // Release the lock with handoff semantics.
        assert_eq!(
            g.locks[lock as usize].holder,
            Some(task),
            "cond_wait on lock {lock} not held by task {task}"
        );
        self.handoff(&mut g, lock, t0);
        g.tasks[task as usize].timed_out = false;
        g.tasks[task as usize].status = Status::CondWait {
            cond,
            relock: lock,
            deadline,
        };
        g.conds[cond as usize].waiters.push_back(task);
        self.dispatch(&mut g);
        self.wait_until_running(&mut g, task);
        // We resume holding the lock (signal/timeout routed us through
        // start_relock and the handoff chain).
        debug_assert_eq!(g.locks[lock as usize].holder, Some(task));
        if let Some(w) = self.witness() {
            w.on_acquire(task, lock, g.tasks[task as usize].clock);
        }
        let waited = g.tasks[task as usize].clock - t0;
        (waited, g.tasks[task as usize].timed_out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FabricKind;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Mutex as StdMutex;

    fn fabric() -> Arc<dyn Fabric> {
        FabricKind::VirtualSmp(VirtualSmpConfig {
            hyperthreading: false,
            link_latency_ns: 1000,
            ..VirtualSmpConfig::default()
        })
        .build()
    }

    #[test]
    fn charge_advances_virtual_time_exactly() {
        let f = fabric();
        let out = Arc::new(AtomicU64::new(0));
        let o = out.clone();
        f.spawn(
            "t",
            None,
            Box::new(move |ctx| {
                assert_eq!(ctx.now(), 0);
                ctx.charge(12345);
                o.store(ctx.now(), Ordering::Relaxed);
            }),
        );
        f.run();
        assert_eq!(out.load(Ordering::Relaxed), 12345);
    }

    #[test]
    fn tasks_interleave_by_virtual_time() {
        // Two tasks alternately charging; the event order must follow
        // virtual clocks, not spawn order.
        let f = fabric();
        let log = Arc::new(StdMutex::new(Vec::new()));
        for (id, step) in [(0u64, 30u64), (1, 20)] {
            let log = log.clone();
            f.spawn(
                &format!("t{id}"),
                None,
                Box::new(move |ctx| {
                    for _ in 0..3 {
                        ctx.charge(step);
                        log.lock().unwrap().push((id, ctx.now()));
                    }
                }),
            );
        }
        f.run();
        let events = log.lock().unwrap().clone();
        // Expected completion times: t0: 30,60,90; t1: 20,40,60.
        // Sorted merge: (1,20),(0,30),(1,40),(0,60)|(1,60),(0,90)
        let times: Vec<u64> = events.iter().map(|&(_, t)| t).collect();
        let mut sorted = times.clone();
        sorted.sort_unstable();
        assert_eq!(
            times, sorted,
            "events out of virtual-time order: {events:?}"
        );
        assert_eq!(events.len(), 6);
    }

    #[test]
    fn lock_contention_is_serialized_with_wait_accounting() {
        let f = fabric();
        let l = f.alloc_lock();
        let waits = Arc::new(StdMutex::new(Vec::new()));
        for id in 0..2u64 {
            let waits = waits.clone();
            f.spawn(
                &format!("t{id}"),
                None,
                Box::new(move |ctx| {
                    // Task 1 arrives at the lock slightly later.
                    ctx.charge(10 + id * 5);
                    let w = ctx.lock(0);
                    ctx.charge(100); // critical section
                    ctx.unlock(l);
                    waits.lock().unwrap().push((id, w, ctx.now()));
                }),
            );
        }
        f.run();
        let w = waits.lock().unwrap().clone();
        // Task 0 locks at t=10 free; holds until 110. Task 1 requests at
        // 15, resumes at 110: waited 95, finishes its section at 210.
        assert_eq!(w[0], (0, 0, 110));
        assert_eq!(w[1], (1, 95, 210));
    }

    #[test]
    fn cond_signal_wakes_in_fifo_order() {
        let f = fabric();
        let l = f.alloc_lock();
        let c = f.alloc_cond();
        let order = Arc::new(StdMutex::new(Vec::new()));
        for id in 0..2u64 {
            let order = order.clone();
            f.spawn(
                &format!("w{id}"),
                None,
                Box::new(move |ctx| {
                    ctx.charge(id + 1); // deterministic arrival order
                    ctx.lock(l);
                    ctx.cond_wait(c, l);
                    order.lock().unwrap().push(id);
                    ctx.unlock(l);
                }),
            );
        }
        let order2 = order.clone();
        f.spawn(
            "signaler",
            None,
            Box::new(move |ctx| {
                ctx.charge(1000);
                ctx.lock(l);
                ctx.cond_signal(c);
                ctx.cond_signal(c);
                ctx.unlock(l);
                let _ = &order2;
            }),
        );
        f.run();
        assert_eq!(*order.lock().unwrap(), vec![0, 1]);
    }

    #[test]
    fn cond_timed_wait_times_out_at_deadline() {
        let f = fabric();
        let l = f.alloc_lock();
        let c = f.alloc_cond();
        let out = Arc::new(AtomicU64::new(0));
        let o = out.clone();
        f.spawn(
            "w",
            None,
            Box::new(move |ctx| {
                ctx.lock(l);
                let (waited, timed_out) = ctx.cond_wait_until(c, l, 5000);
                assert!(timed_out);
                assert_eq!(waited, 5000);
                assert_eq!(ctx.now(), 5000);
                ctx.unlock(l);
                o.store(1, Ordering::Relaxed);
            }),
        );
        f.run();
        assert_eq!(out.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn message_latency_is_modelled() {
        let f = fabric();
        let a = f.alloc_port();
        let b = f.alloc_port();
        f.spawn(
            "sender",
            None,
            Box::new(move |ctx| {
                ctx.charge(500);
                ctx.send(a, b, vec![7]);
            }),
        );
        f.spawn(
            "receiver",
            None,
            Box::new(move |ctx| {
                assert!(ctx.wait_readable(b, None));
                // Sent at 500 + 1000 latency.
                assert_eq!(ctx.now(), 1500);
                let m = ctx.try_recv(b).unwrap();
                assert_eq!(m.sent_at, 500);
            }),
        );
        f.run();
    }

    #[test]
    fn select_timeout_fires_without_traffic() {
        let f = fabric();
        let p = f.alloc_port();
        f.spawn(
            "lonely",
            None,
            Box::new(move |ctx| {
                assert!(!ctx.wait_readable(p, Some(2000)));
                assert_eq!(ctx.now(), 2000);
            }),
        );
        f.run();
    }

    #[test]
    fn sleep_until_is_exact_and_ordered() {
        let f = fabric();
        let log = Arc::new(StdMutex::new(Vec::new()));
        for (id, t) in [(0u64, 300u64), (1, 100), (2, 200)] {
            let log = log.clone();
            f.spawn(
                &format!("s{id}"),
                None,
                Box::new(move |ctx| {
                    ctx.sleep_until(t);
                    log.lock().unwrap().push(id);
                }),
            );
        }
        f.run();
        assert_eq!(*log.lock().unwrap(), vec![1, 2, 0]);
    }

    #[test]
    #[should_panic(expected = "deadlock")]
    fn deadlock_is_detected() {
        let f = fabric();
        let l1 = f.alloc_lock();
        let l2 = f.alloc_lock();
        // Classic ABBA deadlock.
        f.spawn(
            "a",
            None,
            Box::new(move |ctx| {
                ctx.lock(l1);
                ctx.charge(10);
                ctx.lock(l2);
                ctx.unlock(l2);
                ctx.unlock(l1);
            }),
        );
        f.spawn(
            "b",
            None,
            Box::new(move |ctx| {
                ctx.lock(l2);
                ctx.charge(10);
                ctx.lock(l1);
                ctx.unlock(l1);
                ctx.unlock(l2);
            }),
        );
        f.run();
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || {
            let f = fabric();
            let l = f.alloc_lock();
            let log = Arc::new(StdMutex::new(Vec::new()));
            for id in 0..4u64 {
                let log = log.clone();
                f.spawn(
                    &format!("t{id}"),
                    None,
                    Box::new(move |ctx| {
                        for i in 0..5 {
                            ctx.charge(7 + id * 3 + i);
                            let w = ctx.lock(l);
                            ctx.charge(11);
                            ctx.unlock(0);
                            log.lock().unwrap().push((id, ctx.now(), w));
                        }
                    }),
                );
            }
            f.run();
            let v = log.lock().unwrap().clone();
            v
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn seeded_schedules_differ_but_replay_identically() {
        // Four tasks contend on one lock from equal start times; the
        // acquisition order is pure scheduling policy. Seeds must (a)
        // replay identically and (b) produce more than one distinct
        // order across a small seed sweep, while seed 0 keeps the
        // canonical id-ordered schedule.
        let run = |seed: u64| {
            let f = FabricKind::VirtualSmp(VirtualSmpConfig {
                hyperthreading: false,
                link_latency_ns: 0,
                schedule_seed: seed,
                ..VirtualSmpConfig::default()
            })
            .build();
            let l = f.alloc_lock();
            let log = Arc::new(StdMutex::new(Vec::new()));
            for id in 0..4u64 {
                let log = log.clone();
                f.spawn(
                    &format!("t{id}"),
                    None,
                    Box::new(move |ctx| {
                        for _ in 0..3 {
                            ctx.lock(l);
                            ctx.charge(10);
                            ctx.unlock(l);
                            log.lock().unwrap().push(id);
                        }
                    }),
                );
            }
            f.run();
            let v = log.lock().unwrap().clone();
            v
        };
        assert_eq!(run(0), run(0));
        let mut distinct = std::collections::HashSet::new();
        for seed in 0..8 {
            assert_eq!(run(seed), run(seed), "seed {seed} must replay");
            distinct.insert(run(seed));
        }
        assert!(distinct.len() > 1, "seed sweep never changed the schedule");
    }

    #[test]
    fn ht_model_slows_paired_contexts() {
        let run = |cpus: [Option<u32>; 2]| {
            let f = FabricKind::VirtualSmp(VirtualSmpConfig {
                cores: 1,
                hyperthreading: true,
                ht_efficiency: 0.5,
                link_latency_ns: 0,
                mem_penalty: 0.0,
                schedule_seed: 0,
                fault: None,
                fault_wan_only: false,
            })
            .build();
            let out = Arc::new(StdMutex::new(Vec::new()));
            for (i, cpu) in cpus.into_iter().enumerate() {
                let out = out.clone();
                f.spawn(
                    &format!("t{i}"),
                    cpu,
                    Box::new(move |ctx| {
                        for _ in 0..10 {
                            ctx.charge(100);
                        }
                        out.lock().unwrap().push(ctx.now());
                    }),
                );
            }
            f.run();
            let v = out.lock().unwrap().clone();
            v
        };
        // Unpaired (client tasks): full speed.
        let solo = run([None, None]);
        assert_eq!(solo, vec![1000, 1000]);
        // Paired on one core at efficiency 0.5: each charge takes
        // 100 / (2*0.5/2) = 200ns while the sibling is busy.
        let paired = run([Some(0), Some(0)]);
        assert!(paired.iter().all(|&t| t > 1500), "paired = {paired:?}");
    }

    #[test]
    fn bounded_port_drops_oldest() {
        let f = fabric();
        let src = f.alloc_port();
        let p = f.alloc_bounded_port(4);
        let seen = Arc::new(StdMutex::new(Vec::new()));
        let s = seen.clone();
        f.spawn(
            "sender",
            None,
            Box::new(move |ctx| {
                for i in 0u8..10 {
                    ctx.send(src, p, vec![i]);
                }
            }),
        );
        f.spawn(
            "receiver",
            None,
            Box::new(move |ctx| {
                ctx.sleep_until(1_000_000); // after all sends delivered
                while let Some(m) = ctx.try_recv(p) {
                    s.lock().unwrap().push(m.payload[0]);
                }
            }),
        );
        f.run();
        // Capacity 4, drop-oldest: only the last four survive.
        assert_eq!(*seen.lock().unwrap(), vec![6, 7, 8, 9]);
        assert_eq!(f.port_dropped(p), 6);
        assert_eq!(f.port_pending(p), 0);
    }

    fn lossy_fabric(fault: crate::fault::FaultConfig) -> Arc<dyn Fabric> {
        FabricKind::VirtualSmp(VirtualSmpConfig {
            hyperthreading: false,
            link_latency_ns: 1000,
            fault: Some(fault),
            ..VirtualSmpConfig::default()
        })
        .build()
    }

    #[test]
    fn fault_loss_is_deterministic() {
        let run = || {
            let f = lossy_fabric(crate::fault::FaultConfig::loss(0.5, 0xD06));
            let src = f.alloc_port();
            let dst = f.alloc_port();
            f.spawn(
                "sender",
                None,
                Box::new(move |ctx| {
                    for i in 0u8..100 {
                        ctx.send(src, dst, vec![i]);
                        ctx.charge(100);
                    }
                }),
            );
            let got = Arc::new(StdMutex::new(Vec::new()));
            let g = got.clone();
            f.spawn(
                "receiver",
                None,
                Box::new(move |ctx| {
                    ctx.sleep_until(10_000_000);
                    while let Some(m) = ctx.try_recv(dst) {
                        g.lock().unwrap().push(m.payload[0]);
                    }
                }),
            );
            f.run();
            let v = got.lock().unwrap().clone();
            v
        };
        let a = run();
        assert_eq!(a, run(), "lossy run must replay from its seed");
        assert!(!a.is_empty() && a.len() < 100, "loss ~50%: got {}", a.len());
    }

    #[test]
    fn fault_delay_reorders_but_delivery_stays_sorted() {
        let cfg = crate::fault::FaultConfig {
            drop: 0.0,
            duplicate: 0.0,
            delay: 0.7,
            max_delay_ns: 500_000,
            seed: 21,
            ..crate::fault::FaultConfig::none()
        };
        let f = lossy_fabric(cfg);
        let src = f.alloc_port();
        let dst = f.alloc_port();
        f.spawn(
            "sender",
            None,
            Box::new(move |ctx| {
                for i in 0u8..30 {
                    ctx.send(src, dst, vec![i]);
                    ctx.charge(1_000);
                }
            }),
        );
        let got = Arc::new(StdMutex::new(Vec::new()));
        let g = got.clone();
        f.spawn(
            "receiver",
            None,
            Box::new(move |ctx| {
                let mut at = Vec::new();
                for _ in 0..30 {
                    assert!(ctx.wait_readable(dst, Some(10_000_000)));
                    let m = ctx.try_recv(dst).unwrap();
                    at.push((ctx.now(), m.payload[0]));
                }
                *g.lock().unwrap() = at;
            }),
        );
        f.run();
        let at = got.lock().unwrap().clone();
        assert_eq!(at.len(), 30, "no message may be lost by delay");
        // Arrival times never regress (the queue stays sorted) ...
        assert!(at.windows(2).all(|w| w[0].0 <= w[1].0), "{at:?}");
        // ... while payload order differs from send order (reordering).
        let ids: Vec<u8> = at.iter().map(|&(_, i)| i).collect();
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..30).collect::<Vec<u8>>());
        assert_ne!(ids, sorted, "delay injection never reordered anything");
    }

    #[test]
    fn fault_duplicates_are_delivered_twice() {
        let cfg = crate::fault::FaultConfig {
            drop: 0.0,
            duplicate: 1.0,
            delay: 0.0,
            max_delay_ns: 0,
            seed: 5,
            ..crate::fault::FaultConfig::none()
        };
        let f = lossy_fabric(cfg);
        let src = f.alloc_port();
        let dst = f.alloc_port();
        f.spawn(
            "sender",
            None,
            Box::new(move |ctx| {
                ctx.send(src, dst, vec![42]);
            }),
        );
        let n = Arc::new(AtomicU64::new(0));
        let nn = n.clone();
        f.spawn(
            "receiver",
            None,
            Box::new(move |ctx| {
                ctx.sleep_until(1_000_000);
                while let Some(m) = ctx.try_recv(dst) {
                    assert_eq!(m.payload, vec![42]);
                    nn.fetch_add(1, Ordering::Relaxed);
                }
            }),
        );
        f.run();
        assert_eq!(n.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn off_server_tasks_do_not_interfere() {
        let f = FabricKind::VirtualSmp(VirtualSmpConfig {
            cores: 1,
            hyperthreading: true,
            ht_efficiency: 0.5,
            link_latency_ns: 0,
            mem_penalty: 0.0,
            schedule_seed: 0,
            fault: None,
            fault_wan_only: false,
        })
        .build();
        let out = Arc::new(AtomicU64::new(0));
        let o = out.clone();
        f.spawn(
            "server",
            Some(0),
            Box::new(move |ctx| {
                ctx.charge(1000);
                o.store(ctx.now(), Ordering::Relaxed);
            }),
        );
        f.spawn(
            "bot",
            None,
            Box::new(move |ctx| {
                ctx.charge(1000);
            }),
        );
        f.run();
        // The bot shares no core with the server: no HT penalty.
        assert_eq!(out.load(Ordering::Relaxed), 1000);
    }
}
