//! The real-thread fabric: OS threads, parking_lot primitives,
//! wall-clock time.
//!
//! Semantics mirror the pthreads environment of the original server.
//! `charge()` spins for the requested duration — modelled work consumes
//! real CPU — so workload shapes carry over between fabrics. Condition
//! variables may wake spuriously (as pthreads allows); all callers must
//! re-check predicates in a loop.

use std::collections::VecDeque;
use std::sync::{Arc, Weak};
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex, RawMutex, RwLock};

use crate::witness::LockWitness;
use crate::{CondId, Fabric, LockId, Message, Nanos, PortId, TaskBody, TaskCtx, TaskId};

struct CondImpl {
    m: Mutex<()>,
    cv: Condvar,
}

struct PortQueue {
    q: VecDeque<Message>,
    /// Maximum queued messages (`usize::MAX` = unbounded).
    cap: usize,
    /// Messages discarded by the bounded-queue drop policy.
    dropped: u64,
}

impl PortQueue {
    /// Enqueue with the drop-oldest overflow policy.
    fn push(&mut self, msg: Message) {
        if self.q.len() >= self.cap {
            self.q.pop_front();
            self.dropped += 1;
        }
        self.q.push_back(msg);
    }
}

struct PortImpl {
    q: Mutex<PortQueue>,
    cv: Condvar,
}

/// OS-thread implementation of [`Fabric`].
pub struct RealFabric {
    epoch: Instant,
    locks: RwLock<Vec<Arc<RawMutex>>>,
    conds: RwLock<Vec<Arc<CondImpl>>>,
    ports: RwLock<Vec<Arc<PortImpl>>>,
    pending: Mutex<Vec<(String, TaskBody)>>,
    me: Mutex<Option<Weak<dyn Fabric>>>,
    started: Mutex<bool>,
    witness: Mutex<Option<Arc<LockWitness>>>,
}

impl RealFabric {
    pub fn new() -> RealFabric {
        RealFabric {
            epoch: Instant::now(),
            locks: RwLock::new(Vec::new()),
            conds: RwLock::new(Vec::new()),
            ports: RwLock::new(Vec::new()),
            pending: Mutex::new(Vec::new()),
            me: Mutex::new(None),
            started: Mutex::new(false),
            witness: Mutex::new(None),
        }
    }

    /// Create behind an `Arc<dyn Fabric>` with the self-reference wired
    /// up (needed to hand `TaskCtx`s to spawned threads).
    pub fn new_arc() -> Arc<dyn Fabric> {
        Self::new_arc_pair().1
    }

    /// As [`RealFabric::new_arc`], but also return the concrete handle —
    /// needed by gateways that inject external traffic (e.g. the real
    /// UDP bridge) via [`RealFabric::send_external`].
    pub fn new_arc_pair() -> (Arc<RealFabric>, Arc<dyn Fabric>) {
        let arc: Arc<RealFabric> = Arc::new(RealFabric::new());
        let dyn_arc: Arc<dyn Fabric> = arc.clone();
        let weak: Weak<dyn Fabric> = Arc::downgrade(&dyn_arc);
        *arc.me.lock() = Some(weak);
        (arc, dyn_arc)
    }

    /// Inject a datagram from *outside* the fabric (a plain OS thread,
    /// e.g. a socket pump). Real fabric only: ports are plain queues,
    /// so external producers are safe.
    pub fn send_external(&self, from: PortId, to: PortId, payload: Vec<u8>) {
        let p = self.port_ref(to);
        let mut q = p.q.lock();
        q.push(Message {
            from,
            sent_at: self.epoch.elapsed().as_nanos() as Nanos,
            payload,
        });
        p.cv.notify_one();
    }

    /// As [`RealFabric::send_external`], but enqueue a whole batch of
    /// datagrams for one destination port under a single queue lock
    /// with a single wakeup. Gateway pumps use this after a batched
    /// `recvmmsg` so N datagrams cost one lock hand-off instead of N;
    /// consumers drain in `try_recv` loops, so one notify suffices.
    pub fn send_external_batch(
        &self,
        from: PortId,
        to: PortId,
        payloads: impl IntoIterator<Item = Vec<u8>>,
    ) {
        let p = self.port_ref(to);
        let sent_at = self.epoch.elapsed().as_nanos() as Nanos;
        let mut q = p.q.lock();
        let mut any = false;
        for payload in payloads {
            q.push(Message {
                from,
                sent_at,
                payload,
            });
            any = true;
        }
        drop(q);
        if any {
            p.cv.notify_one();
        }
    }

    fn lock_ref(&self, l: LockId) -> Arc<RawMutex> {
        self.locks.read()[l as usize].clone()
    }

    fn cond_ref(&self, c: CondId) -> Arc<CondImpl> {
        self.conds.read()[c as usize].clone()
    }

    fn port_ref(&self, p: PortId) -> Arc<PortImpl> {
        self.ports.read()[p as usize].clone()
    }

    fn abs_instant(&self, t: Nanos) -> Instant {
        self.epoch + Duration::from_nanos(t)
    }
}

impl Default for RealFabric {
    fn default() -> Self {
        RealFabric::new()
    }
}

impl Fabric for RealFabric {
    fn kind(&self) -> &'static str {
        "real"
    }

    fn alloc_lock(&self) -> LockId {
        let mut v = self.locks.write();
        v.push(Arc::new(RawMutex::INIT));
        (v.len() - 1) as LockId
    }

    fn alloc_cond(&self) -> CondId {
        let mut v = self.conds.write();
        v.push(Arc::new(CondImpl {
            m: Mutex::new(()),
            cv: Condvar::new(),
        }));
        (v.len() - 1) as CondId
    }

    fn alloc_port(&self) -> PortId {
        self.alloc_bounded_port(usize::MAX)
    }

    fn alloc_bounded_port(&self, capacity: usize) -> PortId {
        assert!(capacity > 0, "bounded port needs capacity >= 1");
        let mut v = self.ports.write();
        v.push(Arc::new(PortImpl {
            q: Mutex::new(PortQueue {
                q: VecDeque::new(),
                cap: capacity,
                dropped: 0,
            }),
            cv: Condvar::new(),
        }));
        (v.len() - 1) as PortId
    }

    fn port_dropped(&self, port: PortId) -> u64 {
        self.port_ref(port).q.lock().dropped
    }

    fn port_pending(&self, port: PortId) -> usize {
        self.port_ref(port).q.lock().q.len()
    }

    fn port_next_delivery(&self, port: PortId) -> Option<Nanos> {
        // Real-fabric sends deliver immediately: anything queued is
        // already receivable.
        if self.port_ref(port).q.lock().q.is_empty() {
            None
        } else {
            Some(0)
        }
    }

    fn spawn(&self, name: &str, _server_cpu: Option<u32>, body: TaskBody) -> TaskId {
        let mut pending = self.pending.lock();
        assert!(!*self.started.lock(), "spawn after run()");
        pending.push((name.to_string(), body));
        (pending.len() - 1) as TaskId
    }

    fn run(&self) {
        {
            let mut started = self.started.lock();
            assert!(!*started, "run() called twice");
            *started = true;
        }
        let tasks: Vec<(String, TaskBody)> = std::mem::take(&mut *self.pending.lock());
        let me = self.me.lock().clone().expect(
            "RealFabric must be created via new_arc()/FabricKind::build so tasks can \
             reference it",
        );
        let mut handles = Vec::new();
        for (i, (name, body)) in tasks.into_iter().enumerate() {
            let weak = me.clone();
            let handle = std::thread::Builder::new()
                .name(name)
                .stack_size(1 << 20)
                .spawn(move || {
                    let fabric = weak.upgrade().expect("fabric dropped during run");
                    let ctx = TaskCtx::new(i as TaskId, fabric);
                    // A panicking task would leave peers blocked on
                    // fabric primitives forever; fail the whole process
                    // loudly instead of hanging.
                    let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(&ctx)));
                    if let Err(payload) = r {
                        let msg = payload
                            .downcast_ref::<String>()
                            .cloned()
                            .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
                            .unwrap_or_else(|| "<non-string panic>".to_string());
                        eprintln!("fatal: real-fabric task panicked: {msg}");
                        // Name any locks the unwind leaked before dying:
                        // the wedge they would cause is the bug to debug.
                        if let Some(w) = ctx.fabric().witness() {
                            let task = i as TaskId;
                            w.on_unwind(task, ctx.fabric().now(task));
                            for v in &w.report().violations {
                                eprintln!("fatal: {v}");
                            }
                        }
                        std::process::abort();
                    }
                })
                .expect("thread spawn failed");
            handles.push(handle);
        }
        for h in handles {
            h.join().expect("task panicked");
        }
    }

    fn now(&self, _task: TaskId) -> Nanos {
        self.epoch.elapsed().as_nanos() as Nanos
    }

    fn charge(&self, _task: TaskId, ns: Nanos) {
        // Modelled work burns real CPU so contention shapes are
        // preserved under real threads.
        let target = Instant::now() + Duration::from_nanos(ns);
        while Instant::now() < target {
            std::hint::spin_loop();
        }
    }

    fn attach_witness(&self, w: Arc<LockWitness>) {
        *self.witness.lock() = Some(w);
    }

    fn witness(&self) -> Option<Arc<LockWitness>> {
        self.witness.lock().clone()
    }

    fn lock(&self, task: TaskId, lock: LockId) -> Nanos {
        let l = self.lock_ref(lock);
        let blocked = if l.try_lock() {
            0
        } else {
            let t0 = self.now(task);
            l.lock();
            self.now(task) - t0
        };
        if let Some(w) = self.witness() {
            w.on_acquire(task, lock, self.now(task));
        }
        blocked
    }

    fn unlock(&self, task: TaskId, lock: LockId) {
        if let Some(w) = self.witness() {
            w.on_release(task, lock);
        }
        // SAFETY: protocol — the calling task holds the lock (verified
        // in debug runs by the LinkTable owner checks layered above).
        unsafe { self.lock_ref(lock).unlock() };
    }

    fn cond_wait(&self, task: TaskId, cond: CondId, lock: LockId) -> Nanos {
        let c = self.cond_ref(cond);
        let t0 = self.now(task);
        if let Some(w) = self.witness() {
            w.on_wait(task, lock, t0);
        }
        {
            let mut guard = c.m.lock();
            // Release the user lock only after taking the condvar's
            // internal mutex: signalers hold the user lock, so no
            // wakeup can be lost in between.
            self.unlock(task, lock);
            c.cv.wait(&mut guard);
        }
        self.lock(task, lock);
        self.now(task) - t0
    }

    fn cond_wait_until(
        &self,
        task: TaskId,
        cond: CondId,
        lock: LockId,
        deadline: Nanos,
    ) -> (Nanos, bool) {
        let c = self.cond_ref(cond);
        let t0 = self.now(task);
        if let Some(w) = self.witness() {
            w.on_wait(task, lock, t0);
        }
        let timed_out;
        {
            let mut guard = c.m.lock();
            self.unlock(task, lock);
            let r = c.cv.wait_until(&mut guard, self.abs_instant(deadline));
            timed_out = r.timed_out();
        }
        self.lock(task, lock);
        (self.now(task) - t0, timed_out)
    }

    fn cond_signal(&self, _task: TaskId, cond: CondId) {
        let c = self.cond_ref(cond);
        let _guard = c.m.lock();
        c.cv.notify_one();
    }

    fn cond_broadcast(&self, _task: TaskId, cond: CondId) {
        let c = self.cond_ref(cond);
        let _guard = c.m.lock();
        c.cv.notify_all();
    }

    fn send(&self, task: TaskId, from: PortId, to: PortId, payload: Vec<u8>) {
        let p = self.port_ref(to);
        let mut q = p.q.lock();
        q.push(Message {
            from,
            sent_at: self.now(task),
            payload,
        });
        p.cv.notify_one();
    }

    fn try_recv(&self, _task: TaskId, port: PortId) -> Option<Message> {
        self.port_ref(port).q.lock().q.pop_front()
    }

    fn wait_readable(&self, _task: TaskId, port: PortId, deadline: Option<Nanos>) -> bool {
        let p = self.port_ref(port);
        let mut q = p.q.lock();
        loop {
            if !q.q.is_empty() {
                return true;
            }
            match deadline {
                Some(d) => {
                    if p.cv.wait_until(&mut q, self.abs_instant(d)).timed_out() {
                        return !q.q.is_empty();
                    }
                }
                None => p.cv.wait(&mut q),
            }
        }
    }

    fn sleep_until(&self, task: TaskId, t: Nanos) {
        let now = self.now(task);
        if t > now {
            std::thread::sleep(Duration::from_nanos(t - now));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FabricKind;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn lock_provides_mutual_exclusion() {
        let fabric = FabricKind::Real.build();
        let lock = fabric.alloc_lock();
        let shared = Arc::new(AtomicU64::new(0));
        for _ in 0..4 {
            let s = shared.clone();
            fabric.spawn(
                "worker",
                None,
                Box::new(move |ctx| {
                    for _ in 0..500 {
                        ctx.lock(lock);
                        // Non-atomic read-modify-write protected by the
                        // fabric lock.
                        let v = s.load(Ordering::Relaxed);
                        std::hint::spin_loop();
                        s.store(v + 1, Ordering::Relaxed);
                        ctx.unlock(lock);
                    }
                }),
            );
        }
        fabric.run();
        assert_eq!(shared.load(Ordering::Relaxed), 2000);
    }

    #[test]
    fn message_roundtrip_and_timeout() {
        let fabric = FabricKind::Real.build();
        let a = fabric.alloc_port();
        let b = fabric.alloc_port();
        fabric.spawn(
            "pinger",
            None,
            Box::new(move |ctx| {
                ctx.send(a, b, vec![1, 2, 3]);
                assert!(ctx.wait_readable(a, None));
                let m = ctx.try_recv(a).unwrap();
                assert_eq!(m.payload, vec![9]);
                assert_eq!(m.from, b);
            }),
        );
        fabric.spawn(
            "ponger",
            None,
            Box::new(move |ctx| {
                assert!(ctx.wait_readable(b, None));
                let m = ctx.try_recv(b).unwrap();
                assert_eq!(m.payload, vec![1, 2, 3]);
                ctx.send(b, a, vec![9]);
                // Timeout path: no more messages are coming.
                let deadline = ctx.now() + 2_000_000; // 2ms
                assert!(!ctx.wait_readable(b, Some(deadline)));
            }),
        );
        fabric.run();
    }

    #[test]
    fn external_batch_delivers_in_order_under_one_wakeup() {
        let (real, fabric) = RealFabric::new_arc_pair();
        let gw = fabric.alloc_port();
        let dest = fabric.alloc_port();
        let seen = Arc::new(std::sync::Mutex::new(Vec::new()));
        let s = seen.clone();
        fabric.spawn(
            "drain",
            None,
            Box::new(move |ctx| {
                let mut got = 0usize;
                while got < 5 {
                    assert!(ctx.wait_readable(dest, None));
                    while let Some(m) = ctx.try_recv(dest) {
                        assert_eq!(m.from, gw);
                        s.lock().unwrap().push(m.payload);
                        got += 1;
                    }
                }
            }),
        );
        // Empty batches must not wake (or wedge) the consumer.
        real.send_external_batch(gw, dest, std::iter::empty());
        real.send_external_batch(gw, dest, (0u8..5).map(|i| vec![i]));
        fabric.run();
        let seen = seen.lock().unwrap();
        assert_eq!(seen.len(), 5);
        for (i, payload) in seen.iter().enumerate() {
            assert_eq!(payload, &vec![i as u8], "batch order not preserved");
        }
    }

    #[test]
    fn bounded_port_drops_oldest() {
        let fabric = FabricKind::Real.build();
        let src = fabric.alloc_port();
        let p = fabric.alloc_bounded_port(2);
        let seen = Arc::new(std::sync::Mutex::new(Vec::new()));
        let s = seen.clone();
        fabric.spawn(
            "pump",
            None,
            Box::new(move |ctx| {
                for i in 0u8..6 {
                    ctx.send(src, p, vec![i]);
                }
                while let Some(m) = ctx.try_recv(p) {
                    s.lock().unwrap().push(m.payload[0]);
                }
            }),
        );
        fabric.run();
        assert_eq!(*seen.lock().unwrap(), vec![4, 5]);
        assert_eq!(fabric.port_dropped(p), 4);
        assert_eq!(fabric.port_pending(p), 0);
    }

    #[test]
    fn cond_timed_wait_times_out() {
        let fabric = FabricKind::Real.build();
        let lock = fabric.alloc_lock();
        let cond = fabric.alloc_cond();
        fabric.spawn(
            "waiter",
            None,
            Box::new(move |ctx| {
                ctx.lock(lock);
                let (_w, timed_out) = ctx.cond_wait_until(cond, lock, ctx.now() + 1_000_000);
                assert!(timed_out);
                ctx.unlock(lock);
            }),
        );
        fabric.run();
    }

    #[test]
    fn charge_advances_wall_clock() {
        let fabric = FabricKind::Real.build();
        let took = Arc::new(AtomicU64::new(0));
        let t = took.clone();
        fabric.spawn(
            "burner",
            None,
            Box::new(move |ctx| {
                let t0 = ctx.now();
                ctx.charge(3_000_000); // 3 ms
                t.store(ctx.now() - t0, Ordering::Relaxed);
            }),
        );
        fabric.run();
        assert!(took.load(Ordering::Relaxed) >= 3_000_000);
    }

    #[test]
    fn sleep_until_reaches_target() {
        let fabric = FabricKind::Real.build();
        fabric.spawn(
            "sleeper",
            None,
            Box::new(move |ctx| {
                let target = ctx.now() + 2_000_000;
                ctx.sleep_until(target);
                assert!(ctx.now() >= target);
            }),
        );
        fabric.run();
    }
}
