//! Execution platforms ("fabrics") for `parquake`.
//!
//! The paper measured a pthreads server on a 4-way Xeon with 2-way
//! hyper-threading. This reproduction must run on arbitrary hosts —
//! including single-core CI boxes — so every server and bot is written
//! against the [`Fabric`] trait, which provides the pthreads-shaped
//! primitive set the original used (mutexes, condition variables,
//! select-style blocking receive) plus a virtual clock and a way to
//! charge modelled CPU cost. Two implementations exist:
//!
//! * [`real::RealFabric`] — plain OS threads, `parking_lot` locks and
//!   condvars, in-memory message ports, wall-clock time. Runs the same
//!   protocol under true preemption; on a multicore host it measures
//!   real scaling.
//! * [`virt::VirtualSmp`] — a **deterministic virtual-time SMP
//!   simulator**: tasks are cooperative OS threads serialized by a
//!   scheduler that always advances the globally minimal virtual time
//!   point. Locks, condvars, timed waits and message delivery have
//!   exact virtual-time semantics, and `charge()` advances the calling
//!   task's clock by modelled work (with an optional hyper-threading
//!   efficiency model pairing tasks onto cores). Lock queueing, barrier
//!   imbalance and saturation *emerge* from the server algorithm run on
//!   this fabric, reproducing the paper's testbed on one core.
//!
//! Synchronization the experiment wants to *measure* must go through
//! the fabric; anything that bypasses it (e.g. a raw `std::sync::Mutex`
//! inside a task) is invisible to the virtual clock and can deadlock
//! the cooperative scheduler.

pub mod fault;
pub mod real;
pub mod virt;
pub mod witness;

use std::sync::Arc;

pub use witness::LockWitness;

/// Virtual or wall-clock nanoseconds since the fabric run started.
pub type Nanos = u64;
/// Task identifier (dense, assigned at spawn).
pub type TaskId = u32;
/// Mutex identifier.
pub type LockId = u32;
/// Condition-variable identifier.
pub type CondId = u32;
/// Message-port identifier (one receive queue per port).
pub type PortId = u32;

/// A datagram-style message delivered to a port.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Message {
    /// Port the sender used as its source address (reply-to).
    pub from: PortId,
    /// Fabric time at which the message was sent.
    pub sent_at: Nanos,
    pub payload: Vec<u8>,
}

/// Entry point of a spawned task.
pub type TaskBody = Box<dyn FnOnce(&TaskCtx) + Send + 'static>;

/// The primitive set both fabrics implement. Methods taking a `TaskId`
/// must be called from within that task's body.
pub trait Fabric: Send + Sync {
    /// Short name for reports ("real" / "virtual-smp").
    fn kind(&self) -> &'static str;

    /// Allocate a mutex. Must be called before `run`.
    fn alloc_lock(&self) -> LockId;
    /// Allocate a condition variable. Must be called before `run`.
    fn alloc_cond(&self) -> CondId;
    /// Allocate a message port. Must be called before `run`.
    fn alloc_port(&self) -> PortId;
    /// Allocate a message port whose queue holds at most `capacity`
    /// messages. When a send would overflow it, the *oldest* queued
    /// message is discarded (newest-data-wins, the natural policy for
    /// game traffic) and the port's drop counter is incremented. Must
    /// be called before `run`; `capacity` must be nonzero.
    fn alloc_bounded_port(&self, capacity: usize) -> PortId;
    /// Messages discarded from `port` by the bounded-queue drop policy.
    fn port_dropped(&self, port: PortId) -> u64;
    /// Messages currently queued on `port` (delivered or in flight).
    fn port_pending(&self, port: PortId) -> usize;
    /// Earliest delivery time of any message queued on `port`, or
    /// `None` when the queue is empty. A value at or before the
    /// caller's clock means a `try_recv` would succeed now; a future
    /// value means the message is still in flight (virtual link
    /// latency or fault delay). Real fabrics deliver immediately, so
    /// any queued message reports time 0. Pool schedulers use this to
    /// tell "work is ready" apart from "work is on the wire" without
    /// claiming the port.
    fn port_next_delivery(&self, port: PortId) -> Option<Nanos>;

    /// Register a task. `server_cpu` pins the task onto the modelled
    /// server's CPU topology (used by the virtual HT model); `None`
    /// marks an off-server task (bots — the paper's client machines).
    /// Tasks do not start executing until [`Fabric::run`].
    fn spawn(&self, name: &str, server_cpu: Option<u32>, body: TaskBody) -> TaskId;

    /// Start every spawned task and block until all of them finish.
    fn run(&self);

    /// Current time for `task`.
    fn now(&self, task: TaskId) -> Nanos;
    /// Account `ns` of modelled CPU work to `task`.
    fn charge(&self, task: TaskId, ns: Nanos);
    /// Acquire a mutex; returns the time spent blocked.
    fn lock(&self, task: TaskId, lock: LockId) -> Nanos;
    /// Release a mutex (must be held by `task`).
    fn unlock(&self, task: TaskId, lock: LockId);
    /// Atomically release `lock`, wait for a signal, reacquire `lock`.
    /// Returns the time spent blocked.
    fn cond_wait(&self, task: TaskId, cond: CondId, lock: LockId) -> Nanos;
    /// As `cond_wait` but wakes at `deadline` if unsignalled. Returns
    /// `(blocked_ns, timed_out)`.
    fn cond_wait_until(
        &self,
        task: TaskId,
        cond: CondId,
        lock: LockId,
        deadline: Nanos,
    ) -> (Nanos, bool);
    /// Wake one waiter.
    fn cond_signal(&self, task: TaskId, cond: CondId);
    /// Wake all waiters.
    fn cond_broadcast(&self, task: TaskId, cond: CondId);

    /// Attach a lock-discipline witness: from now on every lock
    /// acquisition, release and condition wait is reported to it (see
    /// [`witness::LockWitness`]). Attach before `run`; verification
    /// runs only — the witness serializes lock bookkeeping.
    fn attach_witness(&self, w: Arc<LockWitness>);
    /// The witness attached to this fabric, if any.
    fn witness(&self) -> Option<Arc<LockWitness>>;

    /// Mark `port` as a WAN endpoint (a client-side socket reached over
    /// the modelled wide-area path). Only meaningful to fabrics that
    /// scope fault injection ([`VirtualSmpConfig::fault_wan_only`]):
    /// there, a send is faulted only when exactly one endpoint is
    /// WAN-marked, and its direction is client→server when the *sender*
    /// is the marked side. Default: no-op (the real fabric injects at
    /// its socket pumps instead).
    fn mark_wan_port(&self, port: PortId) {
        let _ = port;
    }

    /// Send a datagram from `from` to `to`.
    fn send(&self, task: TaskId, from: PortId, to: PortId, payload: Vec<u8>);
    /// Non-blocking receive.
    fn try_recv(&self, task: TaskId, port: PortId) -> Option<Message>;
    /// Block until `port` has a deliverable message or `deadline`
    /// passes (`None` = wait forever). Returns whether the port is
    /// readable. Only the port's owning task may call this.
    fn wait_readable(&self, task: TaskId, port: PortId, deadline: Option<Nanos>) -> bool;
    /// Sleep until the given absolute time.
    fn sleep_until(&self, task: TaskId, t: Nanos);
}

/// Per-task handle passed to task bodies; wraps the fabric with the
/// task's identity for ergonomic call sites.
pub struct TaskCtx {
    id: TaskId,
    fabric: Arc<dyn Fabric>,
}

impl TaskCtx {
    /// Construct (used by fabric implementations only).
    pub fn new(id: TaskId, fabric: Arc<dyn Fabric>) -> TaskCtx {
        TaskCtx { id, fabric }
    }

    #[inline]
    pub fn id(&self) -> TaskId {
        self.id
    }

    #[inline]
    pub fn fabric(&self) -> &Arc<dyn Fabric> {
        &self.fabric
    }

    #[inline]
    pub fn now(&self) -> Nanos {
        self.fabric.now(self.id)
    }

    #[inline]
    pub fn charge(&self, ns: Nanos) {
        self.fabric.charge(self.id, ns);
    }

    #[inline]
    pub fn lock(&self, l: LockId) -> Nanos {
        self.fabric.lock(self.id, l)
    }

    #[inline]
    pub fn unlock(&self, l: LockId) {
        self.fabric.unlock(self.id, l);
    }

    #[inline]
    pub fn cond_wait(&self, c: CondId, l: LockId) -> Nanos {
        self.fabric.cond_wait(self.id, c, l)
    }

    #[inline]
    pub fn cond_wait_until(&self, c: CondId, l: LockId, deadline: Nanos) -> (Nanos, bool) {
        self.fabric.cond_wait_until(self.id, c, l, deadline)
    }

    #[inline]
    pub fn cond_signal(&self, c: CondId) {
        self.fabric.cond_signal(self.id, c);
    }

    #[inline]
    pub fn cond_broadcast(&self, c: CondId) {
        self.fabric.cond_broadcast(self.id, c);
    }

    #[inline]
    pub fn send(&self, from: PortId, to: PortId, payload: Vec<u8>) {
        self.fabric.send(self.id, from, to, payload);
    }

    #[inline]
    pub fn try_recv(&self, port: PortId) -> Option<Message> {
        self.fabric.try_recv(self.id, port)
    }

    #[inline]
    pub fn wait_readable(&self, port: PortId, deadline: Option<Nanos>) -> bool {
        self.fabric.wait_readable(self.id, port, deadline)
    }

    #[inline]
    pub fn sleep_until(&self, t: Nanos) {
        self.fabric.sleep_until(self.id, t);
    }
}

/// Configuration of the virtual SMP model (the paper's Table 1 machine
/// by default: 4 cores × 2-way HT).
#[derive(Clone, Debug, PartialEq)]
pub struct VirtualSmpConfig {
    /// Physical cores on the modelled server.
    pub cores: u32,
    /// Whether two tasks mapped to one core share it HT-style.
    pub hyperthreading: bool,
    /// Per-context efficiency when both HT contexts of a core compute
    /// simultaneously (two contexts at 0.62 ≈ 1.24× one context — the
    /// usual HT yield; explains the paper's flat 4→8 scaling).
    pub ht_efficiency: f64,
    /// One-way client↔server datagram latency.
    pub link_latency_ns: Nanos,
    /// Shared memory-bus contention: work slows by
    /// `1 + mem_penalty × (busy_cores − 1)` when multiple cores compute
    /// simultaneously (the 400 MHz-FSB quad Xeon of Table 1 was
    /// notoriously bandwidth-bound on pointer-chasing workloads).
    pub mem_penalty: f64,
    /// Schedule-exploration seed. `0` (the default) keeps the canonical
    /// deterministic schedule: equal-time ties dispatch by task id and
    /// contended locks hand off FIFO. Any other value deterministically
    /// perturbs those two decisions (tie-breaks and which waiter
    /// receives a released lock), producing a different — but still
    /// fully reproducible — legal interleaving per seed. Used by the
    /// lock-discipline verification suite to explore many schedules.
    pub schedule_seed: u64,
    /// Datagram fault injection on every port send (`None` = the
    /// paper's lossless LAN). Faults are drawn in virtual-time order
    /// from the config's own seed, so lossy runs replay exactly.
    pub fault: Option<fault::FaultConfig>,
    /// Restrict fault injection to the WAN edge: only sends where
    /// exactly one endpoint was [`Fabric::mark_wan_port`]-marked (bot
    /// client sockets) are faulted; server-internal traffic — arena
    /// directory control, migration capsules, supervision — stays
    /// lossless, mirroring where real-gateway injection happens. Off by
    /// default, which is the historical fault-everything behaviour.
    pub fault_wan_only: bool,
}

impl Default for VirtualSmpConfig {
    fn default() -> Self {
        VirtualSmpConfig {
            cores: 4,
            hyperthreading: true,
            ht_efficiency: 0.62,
            link_latency_ns: 150_000, // 0.15 ms switched 100 Mbit LAN
            mem_penalty: 0.17,
            schedule_seed: 0,
            fault: None,
            fault_wan_only: false,
        }
    }
}

/// Which fabric an experiment runs on.
#[derive(Clone, Debug, PartialEq)]
pub enum FabricKind {
    /// Real OS threads and wall-clock time.
    Real,
    /// Deterministic virtual-time SMP simulation.
    VirtualSmp(VirtualSmpConfig),
}

impl FabricKind {
    /// Instantiate the fabric.
    pub fn build(&self) -> Arc<dyn Fabric> {
        match self {
            FabricKind::Real => real::RealFabric::new_arc(),
            FabricKind::VirtualSmp(cfg) => virt::VirtualSmp::new_arc(cfg.clone()),
        }
    }
}

#[cfg(test)]
mod shared_tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    /// Both fabrics must satisfy this behavioural contract.
    fn contract(fabric: Arc<dyn Fabric>) {
        let lock = fabric.alloc_lock();
        let port_a = fabric.alloc_port();
        let port_b = fabric.alloc_port();
        let counter = Arc::new(AtomicU64::new(0));

        // Task A: increments under lock, sends a message to B.
        let c1 = counter.clone();
        fabric.spawn(
            "a",
            Some(0),
            Box::new(move |ctx| {
                ctx.lock(lock);
                let v = c1.load(Ordering::Relaxed);
                ctx.charge(10_000);
                c1.store(v + 1, Ordering::Relaxed);
                ctx.unlock(lock);
                ctx.send(port_a, port_b, vec![42]);
            }),
        );

        // Task B: waits for the message.
        let c2 = counter.clone();
        fabric.spawn(
            "b",
            Some(1),
            Box::new(move |ctx| {
                assert!(ctx.wait_readable(port_b, None));
                let msg = ctx.try_recv(port_b).expect("readable port must yield");
                assert_eq!(msg.payload, vec![42]);
                ctx.lock(lock);
                let v = c2.load(Ordering::Relaxed);
                c2.store(v + 1, Ordering::Relaxed);
                ctx.unlock(lock);
            }),
        );

        fabric.run();
        assert_eq!(counter.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn real_fabric_contract() {
        contract(FabricKind::Real.build());
    }

    #[test]
    fn virtual_fabric_contract() {
        contract(FabricKind::VirtualSmp(VirtualSmpConfig::default()).build());
    }
}
