//! Runtime lock-order witness (lockdep-style).
//!
//! Attached to a fabric via [`crate::Fabric::attach_witness`], the
//! witness observes every successful lock acquisition, release and
//! condition wait on **either** fabric and checks the region-locking
//! protocol's discipline as interleavings actually happen:
//!
//! * **ascending leaves** — a task never acquires a leaf lock of rank
//!   ≤ any leaf it already holds;
//! * **acyclic layer order** — the graph of "held layer → acquired
//!   layer" edges over [`LockLayer`]s stays acyclic, so no two tasks
//!   can be taking protocol layers in opposite orders (the condition
//!   from which deadlocks form, caught even when the deadlock itself
//!   doesn't strike on this run);
//! * **no guard across a barrier** — a task parking on a condition
//!   variable (the frame/phase barriers) must hold nothing but the
//!   mutex the wait releases.
//!
//! Violations are recorded — not panicked — and surface through a
//! [`WitnessReport`] (`parquake-metrics`) so harness runs and tests can
//! assert "zero violations" at the end; `LockWitness::strict()` panics
//! at the violation site instead, which gives a stack trace pointing at
//! the offending acquire.
//!
//! The witness serializes its own state with a host mutex. On the
//! virtual fabric tasks are already serialized; on the real fabric this
//! adds cross-thread ordering around lock operations, which is why
//! witnessing is opt-in per run (attach only when verifying, not when
//! measuring).

use std::collections::HashMap;
use std::sync::Mutex;

use parquake_metrics::witness::{
    LockClass, LockLayer, LockViolation, LockViolationKind, WitnessReport,
};

use crate::{LockId, Nanos, TaskId};

#[derive(Default)]
struct WitnessState {
    classes: HashMap<LockId, LockClass>,
    /// Per-task stack of held locks, oldest first.
    held: HashMap<TaskId, Vec<(LockId, LockClass)>>,
    /// Observed order edges: held layer -> acquired layer.
    edges: HashMap<LockLayer, Vec<LockLayer>>,
    acquisitions: u64,
    max_held_depth: usize,
    violations: Vec<LockViolation>,
}

impl WitnessState {
    fn class_of(&self, lock: LockId) -> LockClass {
        *self
            .classes
            .get(&lock)
            .unwrap_or(&LockClass::Other { id: lock })
    }

    /// Is `to` reachable from `from` in the observed order graph?
    fn reaches(&self, from: LockLayer, to: LockLayer) -> bool {
        let mut stack = vec![from];
        let mut seen = vec![from];
        while let Some(n) = stack.pop() {
            if n == to {
                return true;
            }
            for &next in self.edges.get(&n).into_iter().flatten() {
                if !seen.contains(&next) {
                    seen.push(next);
                    stack.push(next);
                }
            }
        }
        false
    }
}

/// The witness. One instance observes one fabric run.
pub struct LockWitness {
    state: Mutex<WitnessState>,
    strict: bool,
}

impl LockWitness {
    /// Record violations for later reporting.
    pub fn new() -> LockWitness {
        LockWitness {
            state: Mutex::new(WitnessState::default()),
            strict: false,
        }
    }

    /// Panic at the first violation (stack trace points at the
    /// offending operation).
    pub fn strict() -> LockWitness {
        LockWitness {
            state: Mutex::new(WitnessState::default()),
            strict: true,
        }
    }

    /// Declare `lock`'s role in the protocol. Unclassified locks get
    /// their own private layer and only the cycle check applies to
    /// them.
    pub fn classify(&self, lock: LockId, class: LockClass) {
        let mut s = self.state.lock().unwrap_or_else(|e| e.into_inner());
        s.classes.insert(lock, class);
    }

    /// Hook: `task` successfully acquired `lock` at fabric time `at`.
    pub fn on_acquire(&self, task: TaskId, lock: LockId, at: Nanos) {
        let mut s = self.state.lock().unwrap_or_else(|e| e.into_inner());
        let class = s.class_of(lock);
        let layer = class.layer();
        let held = s.held.get(&task).cloned().unwrap_or_default();

        let mut new_violations: Vec<LockViolation> = Vec::new();

        // Ascending-leaf rule.
        if let LockClass::Leaf { rank } = class {
            if let Some(held_rank) = held
                .iter()
                .filter_map(|(_, c)| match c {
                    LockClass::Leaf { rank: r } if *r >= rank => Some(*r),
                    _ => None,
                })
                .max()
            {
                new_violations.push(LockViolation {
                    kind: LockViolationKind::LeafOrder {
                        held_rank,
                        acquired_rank: rank,
                    },
                    task,
                    lock,
                    class,
                    held: held.clone(),
                    at,
                });
            }
        }

        // Layer-order graph: add held->acquired edges, flag inversions.
        for (_, held_class) in &held {
            let held_layer = held_class.layer();
            if held_layer == layer {
                continue; // same-layer order is the rank check's job
            }
            if s.reaches(layer, held_layer) {
                new_violations.push(LockViolation {
                    kind: LockViolationKind::LayerCycle {
                        holding: held_layer,
                        acquiring: layer,
                    },
                    task,
                    lock,
                    class,
                    held: held.clone(),
                    at,
                });
            }
            let out = s.edges.entry(held_layer).or_default();
            if !out.contains(&layer) {
                out.push(layer);
            }
        }

        s.acquisitions += 1;
        let stack = s.held.entry(task).or_default();
        stack.push((lock, class));
        let depth = stack.len();
        s.max_held_depth = s.max_held_depth.max(depth);
        self.flag(s, new_violations);
    }

    /// Hook: `task` released `lock`.
    pub fn on_release(&self, task: TaskId, lock: LockId) {
        let mut s = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(stack) = s.held.get_mut(&task) {
            if let Some(pos) = stack.iter().rposition(|(l, _)| *l == lock) {
                stack.remove(pos);
            }
        }
    }

    /// Hook: `task` is about to park on a condition variable, releasing
    /// `releasing`. Anything else still held is a guard living across a
    /// barrier. (The caller pops `releasing` via `on_release` and
    /// re-pushes it via `on_acquire` around the wait.)
    pub fn on_wait(&self, task: TaskId, releasing: LockId, at: Nanos) {
        let s = self.state.lock().unwrap_or_else(|e| e.into_inner());
        let held = s.held.get(&task).cloned().unwrap_or_default();
        let leaked: Vec<(LockId, LockClass)> = held
            .iter()
            .filter(|(l, _)| *l != releasing)
            .cloned()
            .collect();
        if !leaked.is_empty() {
            let class = s.class_of(releasing);
            let v = vec![LockViolation {
                kind: LockViolationKind::HeldAcrossWait,
                task,
                lock: releasing,
                class,
                held: leaked,
                at,
            }];
            self.flag(s, v);
        }
    }

    /// Hook: a panic unwound out of `task` (the fabric's task-boundary
    /// `catch_unwind`, or a supervised fate boundary) at fabric time
    /// `at`. Anything the task still holds will never be released —
    /// record one violation per leaked lock, then clear the task's
    /// stack so a restarted/recycled task id starts clean.
    ///
    /// Violations are recorded directly rather than routed through the
    /// strict-mode panic path: this hook runs *inside* panic handling
    /// (a catch arm or an unwind boundary), where a second panic would
    /// escalate to an abort and destroy the report we are trying to
    /// produce.
    pub fn on_unwind(&self, task: TaskId, at: Nanos) {
        let mut s = self.state.lock().unwrap_or_else(|e| e.into_inner());
        let leaked = s.held.remove(&task).unwrap_or_default();
        if leaked.is_empty() {
            return;
        }
        let new_violations: Vec<LockViolation> = leaked
            .iter()
            .map(|&(lock, class)| LockViolation {
                kind: LockViolationKind::HeldAtUnwind,
                task,
                lock,
                class,
                held: leaked.clone(),
                at,
            })
            .collect();
        s.violations.extend(new_violations);
    }

    /// Snapshot everything observed so far.
    pub fn report(&self) -> WitnessReport {
        let s = self.state.lock().unwrap_or_else(|e| e.into_inner());
        let mut order_edges: Vec<(LockLayer, LockLayer)> = s
            .edges
            .iter()
            .flat_map(|(from, tos)| tos.iter().map(move |to| (*from, *to)))
            .collect();
        order_edges.sort();
        WitnessReport {
            acquisitions: s.acquisitions,
            classified: s.classes.len(),
            max_held_depth: s.max_held_depth,
            order_edges,
            violations: s.violations.clone(),
        }
    }

    fn flag(
        &self,
        mut s: std::sync::MutexGuard<'_, WitnessState>,
        new_violations: Vec<LockViolation>,
    ) {
        if new_violations.is_empty() {
            return;
        }
        if self.strict {
            let v = &new_violations[0];
            panic!("lock witness (strict): {v}");
        }
        s.violations.extend(new_violations);
    }
}

impl Default for LockWitness {
    fn default() -> Self {
        LockWitness::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ascending_leaves_are_clean() {
        let w = LockWitness::new();
        for (id, rank) in [(3u32, 0u32), (5, 1), (9, 4)] {
            w.classify(id, LockClass::Leaf { rank });
        }
        w.on_acquire(0, 3, 10);
        w.on_acquire(0, 5, 20);
        w.on_acquire(0, 9, 30);
        w.on_release(0, 9);
        w.on_release(0, 5);
        w.on_release(0, 3);
        let r = w.report();
        assert!(r.clean(), "{:?}", r.violations);
        assert_eq!(r.acquisitions, 3);
        assert_eq!(r.max_held_depth, 3);
    }

    #[test]
    fn descending_leaves_are_flagged() {
        let w = LockWitness::new();
        w.classify(1, LockClass::Leaf { rank: 2 });
        w.classify(2, LockClass::Leaf { rank: 7 });
        w.on_acquire(0, 2, 0);
        w.on_acquire(0, 1, 5);
        let r = w.report();
        assert_eq!(r.violations.len(), 1);
        assert_eq!(
            r.violations[0].kind,
            LockViolationKind::LeafOrder {
                held_rank: 7,
                acquired_rank: 2
            }
        );
    }

    #[test]
    fn opposite_layer_orders_cycle() {
        let w = LockWitness::new();
        w.classify(1, LockClass::Global);
        w.classify(2, LockClass::Client { slot: 0 });
        // Task 0: global then client. Task 1: client then global.
        w.on_acquire(0, 1, 0);
        w.on_acquire(0, 2, 1);
        w.on_release(0, 2);
        w.on_release(0, 1);
        w.on_acquire(1, 2, 2);
        w.on_acquire(1, 1, 3);
        let r = w.report();
        assert_eq!(r.violations.len(), 1);
        assert!(matches!(
            r.violations[0].kind,
            LockViolationKind::LayerCycle { .. }
        ));
    }

    #[test]
    fn wait_with_extra_guard_is_flagged() {
        let w = LockWitness::new();
        w.classify(0, LockClass::Ctrl);
        w.classify(4, LockClass::Leaf { rank: 1 });
        w.on_acquire(0, 4, 0);
        w.on_acquire(0, 0, 1);
        w.on_wait(0, 0, 2); // parks on a barrier still holding leaf 4
        let r = w.report();
        assert_eq!(r.violations.len(), 1);
        assert_eq!(r.violations[0].kind, LockViolationKind::HeldAcrossWait);
        assert_eq!(r.violations[0].held, vec![(4, LockClass::Leaf { rank: 1 })]);
    }

    #[test]
    fn wait_holding_only_the_released_lock_is_clean() {
        let w = LockWitness::new();
        w.classify(0, LockClass::Ctrl);
        w.on_acquire(0, 0, 1);
        w.on_wait(0, 0, 2);
        assert!(w.report().clean());
    }

    #[test]
    fn unwind_with_held_lock_is_flagged() {
        let w = LockWitness::new();
        w.classify(4, LockClass::Leaf { rank: 1 });
        w.on_acquire(0, 4, 0);
        w.on_unwind(0, 7);
        let r = w.report();
        assert_eq!(r.violations.len(), 1);
        assert_eq!(r.violations[0].kind, LockViolationKind::HeldAtUnwind);
        assert_eq!(r.violations[0].lock, 4);
        assert_eq!(r.violations[0].at, 7);
        // The leaked stack is cleared: a recycled task id starts clean.
        w.on_acquire(0, 4, 10);
        w.on_release(0, 4);
        assert_eq!(w.report().violations.len(), 1);
    }

    #[test]
    fn unwind_even_in_strict_mode_records_instead_of_panicking() {
        // on_unwind runs inside panic handling; a strict-mode panic
        // there would double-panic and abort.
        let w = LockWitness::strict();
        w.on_acquire(0, 4, 0);
        w.on_unwind(0, 5);
        assert_eq!(w.report().violations.len(), 1);
    }

    #[test]
    fn unwind_holding_nothing_is_clean() {
        let w = LockWitness::new();
        w.on_acquire(0, 4, 0);
        w.on_release(0, 4);
        w.on_unwind(0, 5);
        assert!(w.report().clean());
    }

    #[test]
    #[should_panic(expected = "lock witness (strict)")]
    fn strict_mode_panics_at_the_site() {
        let w = LockWitness::strict();
        w.classify(1, LockClass::Leaf { rank: 2 });
        w.classify(2, LockClass::Leaf { rank: 7 });
        w.on_acquire(0, 2, 0);
        w.on_acquire(0, 1, 5);
    }
}
