//! Deterministic datagram fault injection.
//!
//! Real game UDP traffic is lossy — QuakeWorld's netchan exists because
//! of it — but the paper's evaluation assumed a lossless LAN. This
//! module provides a seeded lottery that decides, per datagram, whether
//! it is dropped, duplicated, delayed (and therefore possibly
//! reordered), or passed through untouched. The same lottery drives
//! both fabrics:
//!
//! * the virtual-SMP simulator applies it inside [`Fabric::send`], so
//!   whole lossy-network experiments replay bit-identically from a
//!   seed ([`crate::VirtualSmpConfig::fault`]);
//! * the real UDP gateway wraps it in a [`FaultInjector`] and applies
//!   it at the socket pumps.
//!
//! [`Fabric::send`]: crate::Fabric::send

use parquake_math::Pcg32;

use crate::Nanos;

/// Which way a datagram is travelling, for the asymmetric one-way
/// knobs. The virtual fabric classifies a send by its WAN-marked
/// endpoints; the real gateway's inbound pumps are client→server by
/// construction.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum FaultDir {
    /// Requests: client → server (gateway inbound).
    #[default]
    ClientToServer,
    /// Replies: server → client (gateway outbound).
    ServerToClient,
}

/// Fault probabilities and the seed that makes them reproducible.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultConfig {
    /// Probability a datagram is dropped outright.
    pub drop: f32,
    /// Probability a delivered datagram is duplicated (one extra copy).
    pub duplicate: f32,
    /// Probability a delivered copy is delayed by a uniform extra
    /// latency in `(min_delay_ns, max_delay_ns]` — delayed copies
    /// overtake or are overtaken by later traffic, so this is also a
    /// reorder knob.
    pub delay: f32,
    /// Lower bound (floor) of the injected extra delay. Must be
    /// `<= max_delay_ns`; 0 reproduces the historical `(0, max]` draw
    /// byte-identically.
    pub min_delay_ns: Nanos,
    /// Upper bound of the injected extra delay.
    pub max_delay_ns: Nanos,
    /// Average datagram loss contributed by the two-state
    /// Gilbert–Elliott burst process (0 = off). Unlike `drop`, losses
    /// cluster: the lottery walks a Good/Bad Markov chain and the Bad
    /// state swallows every datagram it sees.
    pub burst_loss: f32,
    /// Mean burst length in datagrams (the expected Bad-state dwell
    /// time). Must be `>= 1` when `burst_loss > 0`.
    pub burst_len: f32,
    /// Bounded per-copy jitter: every delivered copy gains a uniform
    /// extra delay in `[0, jitter_ns]`. Independent draws per copy make
    /// adjacent datagrams overtake each other — sustained reordering,
    /// where `delay` models occasional spikes.
    pub jitter_ns: Nanos,
    /// Fixed one-way extra delay applied to every copy travelling in
    /// [`Self::oneway_dir`] — the asymmetric-path WAN case. Consumes no
    /// lottery draws, so enabling it never perturbs the fate stream.
    pub oneway_delay_ns: Nanos,
    /// Direction the one-way delay applies to.
    pub oneway_dir: FaultDir,
    /// Probability an *arena frame* panics mid-execution (drawn by the
    /// per-arena [`FrameLottery`], not the datagram path). Exercises
    /// the supervisor's catch/restore machinery.
    pub panic_per_frame: f32,
    /// Probability an arena frame wedges for [`Self::stuck_ns`] of
    /// modelled time instead of finishing promptly — exercises the
    /// watchdog's deadline-overrun detection.
    pub stuck_per_frame: f32,
    /// How long a stuck frame stalls.
    pub stuck_ns: Nanos,
    /// Lottery seed; equal seeds draw identical fates.
    pub seed: u64,
}

impl FaultConfig {
    /// No faults at all (every datagram passes untouched).
    pub fn none() -> FaultConfig {
        FaultConfig {
            drop: 0.0,
            duplicate: 0.0,
            delay: 0.0,
            min_delay_ns: 0,
            max_delay_ns: 0,
            burst_loss: 0.0,
            burst_len: 0.0,
            jitter_ns: 0,
            oneway_delay_ns: 0,
            oneway_dir: FaultDir::ClientToServer,
            panic_per_frame: 0.0,
            stuck_per_frame: 0.0,
            stuck_ns: 0,
            seed: 0,
        }
    }

    /// Pure seeded loss at probability `p`, no duplication or delay.
    pub fn loss(p: f32, seed: u64) -> FaultConfig {
        FaultConfig {
            drop: p,
            seed,
            ..FaultConfig::none()
        }
    }

    /// Clustered loss: average rate `p`, mean burst length `burst_len`
    /// datagrams (Gilbert–Elliott), no other faults.
    pub fn bursty(p: f32, burst_len: f32, seed: u64) -> FaultConfig {
        FaultConfig {
            burst_loss: p,
            burst_len,
            seed,
            ..FaultConfig::none()
        }
    }

    /// Does this config never alter a datagram? (Deliberately ignores
    /// the frame faults: those fire inside arena frames, not on the
    /// datagram path, and are gated by [`Self::frame_faults_enabled`].)
    pub fn is_noop(&self) -> bool {
        self.drop <= 0.0
            && self.duplicate <= 0.0
            && (self.delay <= 0.0 || self.max_delay_ns == 0)
            && self.burst_loss <= 0.0
            && self.jitter_ns == 0
            && self.oneway_delay_ns == 0
    }

    /// Can the frame lottery ever injure a frame?
    pub fn frame_faults_enabled(&self) -> bool {
        self.panic_per_frame > 0.0 || (self.stuck_per_frame > 0.0 && self.stuck_ns > 0)
    }

    /// Reject configs whose knobs contradict each other. Called by
    /// [`FaultLottery::new`] (and therefore by both fabrics) so a bad
    /// profile fails loudly at build time instead of silently skewing a
    /// sweep.
    pub fn validate(&self) -> Result<(), String> {
        if self.min_delay_ns > self.max_delay_ns {
            return Err(format!(
                "fault config: min_delay_ns ({}) > max_delay_ns ({})",
                self.min_delay_ns, self.max_delay_ns
            ));
        }
        if self.burst_loss > 0.0 {
            if self.burst_loss >= 1.0 {
                return Err(format!(
                    "fault config: burst_loss ({}) must be < 1.0",
                    self.burst_loss
                ));
            }
            if self.burst_len < 1.0 {
                return Err(format!(
                    "fault config: burst_len ({}) must be >= 1 when burst_loss > 0",
                    self.burst_len
                ));
            }
        }
        Ok(())
    }
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig::none()
    }
}

/// What the lottery did, cumulatively.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Datagrams delivered (at least one copy).
    pub passed: u64,
    /// Datagrams dropped (no copy delivered).
    pub dropped: u64,
    /// Extra copies injected.
    pub duplicated: u64,
    /// Copies delivered late.
    pub delayed: u64,
    /// Datagrams swallowed by the Gilbert–Elliott Bad state (counted
    /// separately from `dropped` so a sweep can attribute loss to the
    /// burst process vs the independent knob).
    pub burst_dropped: u64,
    /// Copies that gained nonzero jitter.
    pub jittered: u64,
}

/// The seeded per-datagram lottery. Single-owner; wrap in a
/// [`FaultInjector`] when several threads share one (the real gateway's
/// socket pumps).
#[derive(Clone, Debug)]
pub struct FaultLottery {
    cfg: FaultConfig,
    rng: Pcg32,
    stats: FaultStats,
    /// Gilbert–Elliott chain state (true = Bad, swallowing traffic).
    ge_bad: bool,
    /// Precomputed transition probabilities so `draw` stays branch-light.
    ge_good_to_bad: f32,
    ge_bad_to_good: f32,
}

impl FaultLottery {
    /// Panics on a contradictory config ([`FaultConfig::validate`]) —
    /// fault profiles are experiment inputs, so a bad one is a bug at
    /// the call site, not a runtime condition to limp through.
    pub fn new(cfg: FaultConfig) -> FaultLottery {
        if let Err(e) = cfg.validate() {
            panic!("{e}");
        }
        // Choose GE transitions so the stationary Bad probability is
        // exactly `burst_loss` and the mean Bad dwell is `burst_len`
        // datagrams: r = 1/B, p = r·L/(1−L) gives π_bad = p/(p+r) = L.
        let (ge_good_to_bad, ge_bad_to_good) = if cfg.burst_loss > 0.0 {
            let r = 1.0 / cfg.burst_len;
            (r * cfg.burst_loss / (1.0 - cfg.burst_loss), r)
        } else {
            (0.0, 0.0)
        };
        FaultLottery {
            rng: Pcg32::seeded(cfg.seed),
            cfg,
            stats: FaultStats::default(),
            ge_bad: false,
            ge_good_to_bad,
            ge_bad_to_good,
        }
    }

    /// Decide the fate of one datagram. Each element of the returned
    /// vector is one copy to deliver, valued with its extra delay in
    /// nanoseconds (0 = on time); an empty vector means the datagram is
    /// dropped. A duplicated datagram yields two entries.
    ///
    /// Direction-blind shorthand for [`Self::draw_dir`] with
    /// [`FaultDir::ClientToServer`] — the right call for gateway inbound
    /// pumps and for callers that never enable the one-way knob.
    pub fn draw(&mut self) -> Vec<Nanos> {
        self.draw_dir(FaultDir::ClientToServer)
    }

    /// [`Self::draw`], but telling the lottery which way the datagram
    /// travels so the asymmetric one-way delay can apply. Every knob
    /// that is disabled consumes zero RNG draws, so enabling a new knob
    /// never perturbs the fate stream of the old ones — legacy seeds
    /// replay byte-identically.
    pub fn draw_dir(&mut self, dir: FaultDir) -> Vec<Nanos> {
        if self.cfg.is_noop() {
            self.stats.passed += 1;
            return vec![0];
        }
        // Gilbert–Elliott first: one transition draw per datagram keeps
        // the chain's clock tied to traffic, not to the other knobs.
        if self.cfg.burst_loss > 0.0 {
            let flip = if self.ge_bad {
                self.ge_bad_to_good
            } else {
                self.ge_good_to_bad
            };
            if self.rng.chance(flip) {
                self.ge_bad = !self.ge_bad;
            }
            if self.ge_bad {
                self.stats.burst_dropped += 1;
                return Vec::new();
            }
        }
        if self.rng.chance(self.cfg.drop) {
            self.stats.dropped += 1;
            return Vec::new();
        }
        self.stats.passed += 1;
        let copies = if self.rng.chance(self.cfg.duplicate) {
            self.stats.duplicated += 1;
            2
        } else {
            1
        };
        let oneway = if self.cfg.oneway_delay_ns > 0 && dir == self.cfg.oneway_dir {
            self.cfg.oneway_delay_ns
        } else {
            0
        };
        let mut fates = Vec::with_capacity(copies);
        for _ in 0..copies {
            let mut extra = if self.cfg.max_delay_ns > 0 && self.rng.chance(self.cfg.delay) {
                self.stats.delayed += 1;
                let span = self.cfg.max_delay_ns - self.cfg.min_delay_ns;
                if span > 0 {
                    // min = 0 reproduces the historical `1 + u % max`
                    // draw bit-for-bit.
                    self.cfg.min_delay_ns + 1 + self.rng.next_u64() % span
                } else {
                    self.cfg.min_delay_ns
                }
            } else {
                0
            };
            if self.cfg.jitter_ns > 0 {
                let j = self.rng.next_u64() % (self.cfg.jitter_ns + 1);
                if j > 0 {
                    self.stats.jittered += 1;
                }
                extra += j;
            }
            fates.push(extra + oneway);
        }
        fates
    }

    pub fn stats(&self) -> FaultStats {
        self.stats
    }
}

/// The fate the frame lottery deals one arena frame.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FrameFault {
    /// Frame runs normally.
    None,
    /// Frame panics (the supervisor must catch and recover).
    Panic,
    /// Frame stalls for the given extra modelled time before running
    /// (long stalls trip the directory watchdog).
    Stuck(Nanos),
}

/// Seeded per-arena-frame fault lottery. One per arena, salted with the
/// arena id, so an arena's fate sequence is independent of how pool
/// workers interleave frames across arenas — crash runs replay
/// bit-identically on the virtual fabric.
#[derive(Clone, Debug)]
pub struct FrameLottery {
    panic_per_frame: f32,
    stuck_per_frame: f32,
    stuck_ns: Nanos,
    rng: Pcg32,
}

impl FrameLottery {
    /// Build from a config, salted (usually with the arena id).
    pub fn new(cfg: &FaultConfig, salt: u64) -> FrameLottery {
        FrameLottery {
            panic_per_frame: cfg.panic_per_frame,
            stuck_per_frame: cfg.stuck_per_frame,
            stuck_ns: cfg.stuck_ns,
            rng: Pcg32::seeded(cfg.seed ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        }
    }

    /// Decide the fate of one frame.
    pub fn draw(&mut self) -> FrameFault {
        if self.panic_per_frame > 0.0 && self.rng.chance(self.panic_per_frame) {
            return FrameFault::Panic;
        }
        if self.stuck_per_frame > 0.0 && self.stuck_ns > 0 && self.rng.chance(self.stuck_per_frame)
        {
            return FrameFault::Stuck(self.stuck_ns);
        }
        FrameFault::None
    }
}

/// Thread-safe wrapper around a [`FaultLottery`] for use outside the
/// virtual fabric (several OS-thread socket pumps sharing one lottery).
/// Draw order then depends on pump interleaving, so cross-run
/// determinism is only guaranteed on the virtual fabric.
pub struct FaultInjector {
    inner: parking_lot::Mutex<FaultLottery>,
}

impl FaultInjector {
    pub fn new(cfg: FaultConfig) -> FaultInjector {
        FaultInjector {
            inner: parking_lot::Mutex::new(FaultLottery::new(cfg)),
        }
    }

    /// See [`FaultLottery::draw`].
    pub fn draw(&self) -> Vec<Nanos> {
        self.inner.lock().draw()
    }

    /// See [`FaultLottery::draw_dir`].
    pub fn draw_dir(&self, dir: FaultDir) -> Vec<Nanos> {
        self.inner.lock().draw_dir(dir)
    }

    pub fn stats(&self) -> FaultStats {
        self.inner.lock().stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fates(cfg: FaultConfig, n: usize) -> Vec<Vec<Nanos>> {
        let mut l = FaultLottery::new(cfg);
        (0..n).map(|_| l.draw()).collect()
    }

    #[test]
    fn noop_config_passes_everything() {
        let all = fates(FaultConfig::none(), 1000);
        assert!(all.iter().all(|f| f == &vec![0]));
    }

    #[test]
    fn loss_rate_is_roughly_honoured() {
        let all = fates(FaultConfig::loss(0.25, 42), 10_000);
        let dropped = all.iter().filter(|f| f.is_empty()).count();
        // Binomial(10000, 0.25): ±5σ ≈ ±217.
        assert!(
            (2_250..=2_750).contains(&dropped),
            "dropped = {dropped} of 10000 at p=0.25"
        );
    }

    #[test]
    fn duplicates_and_delays_appear() {
        let cfg = FaultConfig {
            drop: 0.1,
            duplicate: 0.2,
            delay: 0.3,
            max_delay_ns: 5_000_000,
            seed: 7,
            ..FaultConfig::none()
        };
        let all = fates(cfg.clone(), 5_000);
        let dup = all.iter().filter(|f| f.len() == 2).count();
        let delayed = all.iter().flatten().filter(|&&d| d > 0).count();
        assert!(dup > 500, "dup = {dup}");
        assert!(delayed > 500, "delayed = {delayed}");
        assert!(all.iter().flatten().all(|&d| d <= cfg.max_delay_ns));
    }

    #[test]
    fn same_seed_replays_identically() {
        let cfg = FaultConfig {
            drop: 0.15,
            duplicate: 0.05,
            delay: 0.1,
            max_delay_ns: 1_000_000,
            seed: 99,
            ..FaultConfig::none()
        };
        assert_eq!(fates(cfg.clone(), 2_000), fates(cfg, 2_000));
    }

    #[test]
    fn stats_account_for_every_draw() {
        let cfg = FaultConfig {
            drop: 0.2,
            duplicate: 0.1,
            delay: 0.2,
            max_delay_ns: 1_000,
            seed: 3,
            ..FaultConfig::none()
        };
        let mut l = FaultLottery::new(cfg);
        let n = 3_000u64;
        for _ in 0..n {
            l.draw();
        }
        let s = l.stats();
        assert_eq!(s.passed + s.dropped, n);
        assert!(s.duplicated > 0 && s.delayed > 0);
    }

    #[test]
    fn injector_is_shareable() {
        let inj = std::sync::Arc::new(FaultInjector::new(FaultConfig::loss(0.5, 1)));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let inj = inj.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..250 {
                    inj.draw();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let s = inj.stats();
        assert_eq!(s.passed + s.dropped, 1000);
    }

    #[test]
    fn legacy_profiles_replay_byte_identically_with_new_knobs_present() {
        // The WAN knobs default to off and must consume zero RNG draws,
        // so a config written before they existed deals the exact same
        // fate stream today. Golden check: replay a legacy profile and
        // confirm disabling-by-default equals an explicit all-off build.
        let legacy = FaultConfig {
            drop: 0.15,
            duplicate: 0.05,
            delay: 0.1,
            max_delay_ns: 1_000_000,
            seed: 99,
            ..FaultConfig::none()
        };
        let explicit = FaultConfig {
            min_delay_ns: 0,
            burst_loss: 0.0,
            burst_len: 0.0,
            jitter_ns: 0,
            oneway_delay_ns: 0,
            ..legacy.clone()
        };
        assert_eq!(fates(legacy, 4_000), fates(explicit, 4_000));
    }

    #[test]
    fn delay_floor_bounds_are_honoured() {
        let cfg = FaultConfig {
            delay: 1.0,
            min_delay_ns: 2_000,
            max_delay_ns: 5_000,
            seed: 21,
            ..FaultConfig::none()
        };
        let all = fates(cfg, 3_000);
        assert!(all.iter().flatten().all(|&d| (2_001..=5_000).contains(&d)));
        // Degenerate span pins the delay exactly.
        let cfg = FaultConfig {
            delay: 1.0,
            min_delay_ns: 7_000,
            max_delay_ns: 7_000,
            seed: 21,
            ..FaultConfig::none()
        };
        assert!(fates(cfg, 500).iter().flatten().all(|&d| d == 7_000));
    }

    #[test]
    fn invalid_configs_are_rejected_at_build_time() {
        let floor_above_ceiling = FaultConfig {
            delay: 0.5,
            min_delay_ns: 10,
            max_delay_ns: 5,
            ..FaultConfig::none()
        };
        assert!(floor_above_ceiling.validate().is_err());
        let sub_datagram_burst = FaultConfig {
            burst_loss: 0.1,
            burst_len: 0.5,
            ..FaultConfig::none()
        };
        assert!(sub_datagram_burst.validate().is_err());
        let total_burst = FaultConfig {
            burst_loss: 1.0,
            burst_len: 4.0,
            ..FaultConfig::none()
        };
        assert!(total_burst.validate().is_err());
        assert!(FaultConfig::none().validate().is_ok());
    }

    #[test]
    #[should_panic(expected = "min_delay_ns")]
    fn lottery_panics_on_invalid_config() {
        FaultLottery::new(FaultConfig {
            delay: 0.5,
            min_delay_ns: 10,
            max_delay_ns: 5,
            ..FaultConfig::none()
        });
    }

    #[test]
    fn burst_loss_rate_is_roughly_honoured_and_clusters() {
        let all = fates(FaultConfig::bursty(0.25, 8.0, 1234), 40_000);
        let lost = all.iter().filter(|f| f.is_empty()).count();
        // Bursty losses are correlated, so the variance is far above
        // binomial — allow a generous ±40% band around the mean.
        assert!(
            (6_000..=14_000).contains(&lost),
            "burst-lost = {lost} of 40000 at L=0.25"
        );
        // Clustering: mean run length of consecutive losses should be
        // well above the ≈1.33 an independent 25% drop would produce.
        let mut runs = 0usize;
        let mut in_run = false;
        for f in &all {
            if f.is_empty() {
                if !in_run {
                    runs += 1;
                    in_run = true;
                }
            } else {
                in_run = false;
            }
        }
        let mean_run = lost as f64 / runs.max(1) as f64;
        assert!(mean_run > 3.0, "mean loss-run length = {mean_run:.2}");
    }

    #[test]
    fn combined_wan_profile_replays_identically() {
        let cfg = FaultConfig {
            drop: 0.05,
            duplicate: 0.02,
            delay: 0.1,
            min_delay_ns: 1_000_000,
            max_delay_ns: 8_000_000,
            burst_loss: 0.1,
            burst_len: 4.0,
            jitter_ns: 2_000_000,
            oneway_delay_ns: 15_000_000,
            oneway_dir: FaultDir::ServerToClient,
            seed: 77,
            ..FaultConfig::none()
        };
        let run = |cfg: FaultConfig| {
            let mut l = FaultLottery::new(cfg);
            let fates: Vec<Vec<Nanos>> = (0..5_000)
                .map(|i| {
                    l.draw_dir(if i % 3 == 0 {
                        FaultDir::ServerToClient
                    } else {
                        FaultDir::ClientToServer
                    })
                })
                .collect();
            (fates, l.stats())
        };
        assert_eq!(run(cfg.clone()), run(cfg));
    }

    #[test]
    fn jitter_applies_per_copy_and_is_bounded() {
        let cfg = FaultConfig {
            duplicate: 1.0,
            jitter_ns: 3_000,
            seed: 5,
            ..FaultConfig::none()
        };
        let all = fates(cfg, 2_000);
        assert!(all.iter().all(|f| f.len() == 2));
        assert!(all.iter().flatten().all(|&d| d <= 3_000));
        // Independent per-copy draws: the two copies of one datagram
        // must sometimes disagree (that is the reorder mechanism).
        assert!(all.iter().any(|f| f[0] != f[1]));
    }

    #[test]
    fn oneway_delay_is_asymmetric_and_draw_free() {
        let cfg = FaultConfig {
            oneway_delay_ns: 40_000_000,
            oneway_dir: FaultDir::ServerToClient,
            seed: 11,
            ..FaultConfig::none()
        };
        let mut l = FaultLottery::new(cfg.clone());
        for _ in 0..100 {
            assert_eq!(l.draw_dir(FaultDir::ClientToServer), vec![0]);
            assert_eq!(l.draw_dir(FaultDir::ServerToClient), vec![40_000_000]);
        }
        // Draw-free: interleaving directions differently cannot change
        // any other knob's fates, because the one-way path never touches
        // the RNG. Pair it with loss and check the drop pattern is
        // independent of direction labels.
        let lossy = FaultConfig { drop: 0.3, ..cfg };
        let pattern = |dirs: &[FaultDir]| {
            let mut l = FaultLottery::new(lossy.clone());
            dirs.iter()
                .map(|&d| l.draw_dir(d).is_empty())
                .collect::<Vec<_>>()
        };
        let c2s = pattern(&[FaultDir::ClientToServer; 64]);
        let s2c = pattern(&[FaultDir::ServerToClient; 64]);
        assert_eq!(c2s, s2c);
    }

    #[test]
    fn stats_account_for_burst_and_jitter() {
        let cfg = FaultConfig {
            drop: 0.1,
            burst_loss: 0.1,
            burst_len: 4.0,
            jitter_ns: 1_000,
            seed: 8,
            ..FaultConfig::none()
        };
        let mut l = FaultLottery::new(cfg);
        let n = 5_000u64;
        for _ in 0..n {
            l.draw();
        }
        let s = l.stats();
        assert_eq!(s.passed + s.dropped + s.burst_dropped, n);
        assert!(s.burst_dropped > 0 && s.dropped > 0 && s.jittered > 0);
    }

    #[test]
    fn frame_lottery_is_quiet_when_disabled() {
        assert!(!FaultConfig::none().frame_faults_enabled());
        let mut l = FrameLottery::new(&FaultConfig::none(), 3);
        assert!((0..1000).all(|_| l.draw() == FrameFault::None));
        // stuck_per_frame without a stall length is inert too.
        let cfg = FaultConfig {
            stuck_per_frame: 1.0,
            ..FaultConfig::none()
        };
        assert!(!cfg.frame_faults_enabled());
        let mut l = FrameLottery::new(&cfg, 3);
        assert_eq!(l.draw(), FrameFault::None);
    }

    #[test]
    fn frame_lottery_rates_are_roughly_honoured() {
        let cfg = FaultConfig {
            panic_per_frame: 0.1,
            stuck_per_frame: 0.2,
            stuck_ns: 5_000_000,
            seed: 17,
            ..FaultConfig::none()
        };
        assert!(cfg.frame_faults_enabled());
        let mut l = FrameLottery::new(&cfg, 0);
        let fates: Vec<FrameFault> = (0..10_000).map(|_| l.draw()).collect();
        let panics = fates.iter().filter(|f| **f == FrameFault::Panic).count();
        let stuck = fates
            .iter()
            .filter(|f| matches!(f, FrameFault::Stuck(_)))
            .count();
        assert!((700..=1_300).contains(&panics), "panics = {panics}");
        // Stuck draws only on non-panicking frames: ≈ 0.9 * 0.2.
        assert!((1_400..=2_200).contains(&stuck), "stuck = {stuck}");
        assert!(fates
            .iter()
            .all(|f| !matches!(f, FrameFault::Stuck(ns) if *ns != cfg.stuck_ns)));
    }

    #[test]
    fn frame_lottery_salt_decorrelates_arenas_but_replays() {
        let cfg = FaultConfig {
            panic_per_frame: 0.3,
            seed: 9,
            ..FaultConfig::none()
        };
        let draw = |salt: u64| {
            let mut l = FrameLottery::new(&cfg, salt);
            (0..256).map(|_| l.draw()).collect::<Vec<_>>()
        };
        // Same salt replays identically; different salts disagree.
        assert_eq!(draw(0), draw(0));
        assert_eq!(draw(1), draw(1));
        assert_ne!(draw(0), draw(1));
    }
}
