//! Deterministic datagram fault injection.
//!
//! Real game UDP traffic is lossy — QuakeWorld's netchan exists because
//! of it — but the paper's evaluation assumed a lossless LAN. This
//! module provides a seeded lottery that decides, per datagram, whether
//! it is dropped, duplicated, delayed (and therefore possibly
//! reordered), or passed through untouched. The same lottery drives
//! both fabrics:
//!
//! * the virtual-SMP simulator applies it inside [`Fabric::send`], so
//!   whole lossy-network experiments replay bit-identically from a
//!   seed ([`crate::VirtualSmpConfig::fault`]);
//! * the real UDP gateway wraps it in a [`FaultInjector`] and applies
//!   it at the socket pumps.
//!
//! [`Fabric::send`]: crate::Fabric::send

use parquake_math::Pcg32;

use crate::Nanos;

/// Fault probabilities and the seed that makes them reproducible.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultConfig {
    /// Probability a datagram is dropped outright.
    pub drop: f32,
    /// Probability a delivered datagram is duplicated (one extra copy).
    pub duplicate: f32,
    /// Probability a delivered copy is delayed by a uniform extra
    /// latency in `(0, max_delay_ns]` — delayed copies overtake or are
    /// overtaken by later traffic, so this is also the reorder knob.
    pub delay: f32,
    /// Upper bound of the injected extra delay.
    pub max_delay_ns: Nanos,
    /// Lottery seed; equal seeds draw identical fates.
    pub seed: u64,
}

impl FaultConfig {
    /// No faults at all (every datagram passes untouched).
    pub fn none() -> FaultConfig {
        FaultConfig {
            drop: 0.0,
            duplicate: 0.0,
            delay: 0.0,
            max_delay_ns: 0,
            seed: 0,
        }
    }

    /// Pure seeded loss at probability `p`, no duplication or delay.
    pub fn loss(p: f32, seed: u64) -> FaultConfig {
        FaultConfig {
            drop: p,
            seed,
            ..FaultConfig::none()
        }
    }

    /// Does this config never alter a datagram?
    pub fn is_noop(&self) -> bool {
        self.drop <= 0.0 && self.duplicate <= 0.0 && (self.delay <= 0.0 || self.max_delay_ns == 0)
    }
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig::none()
    }
}

/// What the lottery did, cumulatively.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Datagrams delivered (at least one copy).
    pub passed: u64,
    /// Datagrams dropped (no copy delivered).
    pub dropped: u64,
    /// Extra copies injected.
    pub duplicated: u64,
    /// Copies delivered late.
    pub delayed: u64,
}

/// The seeded per-datagram lottery. Single-owner; wrap in a
/// [`FaultInjector`] when several threads share one (the real gateway's
/// socket pumps).
#[derive(Clone, Debug)]
pub struct FaultLottery {
    cfg: FaultConfig,
    rng: Pcg32,
    stats: FaultStats,
}

impl FaultLottery {
    pub fn new(cfg: FaultConfig) -> FaultLottery {
        FaultLottery {
            rng: Pcg32::seeded(cfg.seed),
            cfg,
            stats: FaultStats::default(),
        }
    }

    /// Decide the fate of one datagram. Each element of the returned
    /// vector is one copy to deliver, valued with its extra delay in
    /// nanoseconds (0 = on time); an empty vector means the datagram is
    /// dropped. A duplicated datagram yields two entries.
    pub fn draw(&mut self) -> Vec<Nanos> {
        if self.cfg.is_noop() {
            self.stats.passed += 1;
            return vec![0];
        }
        if self.rng.chance(self.cfg.drop) {
            self.stats.dropped += 1;
            return Vec::new();
        }
        self.stats.passed += 1;
        let copies = if self.rng.chance(self.cfg.duplicate) {
            self.stats.duplicated += 1;
            2
        } else {
            1
        };
        let mut fates = Vec::with_capacity(copies);
        for _ in 0..copies {
            let extra = if self.cfg.max_delay_ns > 0 && self.rng.chance(self.cfg.delay) {
                self.stats.delayed += 1;
                1 + self.rng.next_u64() % self.cfg.max_delay_ns
            } else {
                0
            };
            fates.push(extra);
        }
        fates
    }

    pub fn stats(&self) -> FaultStats {
        self.stats
    }
}

/// Thread-safe wrapper around a [`FaultLottery`] for use outside the
/// virtual fabric (several OS-thread socket pumps sharing one lottery).
/// Draw order then depends on pump interleaving, so cross-run
/// determinism is only guaranteed on the virtual fabric.
pub struct FaultInjector {
    inner: parking_lot::Mutex<FaultLottery>,
}

impl FaultInjector {
    pub fn new(cfg: FaultConfig) -> FaultInjector {
        FaultInjector {
            inner: parking_lot::Mutex::new(FaultLottery::new(cfg)),
        }
    }

    /// See [`FaultLottery::draw`].
    pub fn draw(&self) -> Vec<Nanos> {
        self.inner.lock().draw()
    }

    pub fn stats(&self) -> FaultStats {
        self.inner.lock().stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fates(cfg: FaultConfig, n: usize) -> Vec<Vec<Nanos>> {
        let mut l = FaultLottery::new(cfg);
        (0..n).map(|_| l.draw()).collect()
    }

    #[test]
    fn noop_config_passes_everything() {
        let all = fates(FaultConfig::none(), 1000);
        assert!(all.iter().all(|f| f == &vec![0]));
    }

    #[test]
    fn loss_rate_is_roughly_honoured() {
        let all = fates(FaultConfig::loss(0.25, 42), 10_000);
        let dropped = all.iter().filter(|f| f.is_empty()).count();
        // Binomial(10000, 0.25): ±5σ ≈ ±217.
        assert!(
            (2_250..=2_750).contains(&dropped),
            "dropped = {dropped} of 10000 at p=0.25"
        );
    }

    #[test]
    fn duplicates_and_delays_appear() {
        let cfg = FaultConfig {
            drop: 0.1,
            duplicate: 0.2,
            delay: 0.3,
            max_delay_ns: 5_000_000,
            seed: 7,
        };
        let all = fates(cfg.clone(), 5_000);
        let dup = all.iter().filter(|f| f.len() == 2).count();
        let delayed = all.iter().flatten().filter(|&&d| d > 0).count();
        assert!(dup > 500, "dup = {dup}");
        assert!(delayed > 500, "delayed = {delayed}");
        assert!(all.iter().flatten().all(|&d| d <= cfg.max_delay_ns));
    }

    #[test]
    fn same_seed_replays_identically() {
        let cfg = FaultConfig {
            drop: 0.15,
            duplicate: 0.05,
            delay: 0.1,
            max_delay_ns: 1_000_000,
            seed: 99,
        };
        assert_eq!(fates(cfg.clone(), 2_000), fates(cfg, 2_000));
    }

    #[test]
    fn stats_account_for_every_draw() {
        let cfg = FaultConfig {
            drop: 0.2,
            duplicate: 0.1,
            delay: 0.2,
            max_delay_ns: 1_000,
            seed: 3,
        };
        let mut l = FaultLottery::new(cfg);
        let n = 3_000u64;
        for _ in 0..n {
            l.draw();
        }
        let s = l.stats();
        assert_eq!(s.passed + s.dropped, n);
        assert!(s.duplicated > 0 && s.delayed > 0);
    }

    #[test]
    fn injector_is_shareable() {
        let inj = std::sync::Arc::new(FaultInjector::new(FaultConfig::loss(0.5, 1)));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let inj = inj.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..250 {
                    inj.draw();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let s = inj.stats();
        assert_eq!(s.passed + s.dropped, 1000);
    }
}
