//! Deterministic datagram fault injection.
//!
//! Real game UDP traffic is lossy — QuakeWorld's netchan exists because
//! of it — but the paper's evaluation assumed a lossless LAN. This
//! module provides a seeded lottery that decides, per datagram, whether
//! it is dropped, duplicated, delayed (and therefore possibly
//! reordered), or passed through untouched. The same lottery drives
//! both fabrics:
//!
//! * the virtual-SMP simulator applies it inside [`Fabric::send`], so
//!   whole lossy-network experiments replay bit-identically from a
//!   seed ([`crate::VirtualSmpConfig::fault`]);
//! * the real UDP gateway wraps it in a [`FaultInjector`] and applies
//!   it at the socket pumps.
//!
//! [`Fabric::send`]: crate::Fabric::send

use parquake_math::Pcg32;

use crate::Nanos;

/// Fault probabilities and the seed that makes them reproducible.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultConfig {
    /// Probability a datagram is dropped outright.
    pub drop: f32,
    /// Probability a delivered datagram is duplicated (one extra copy).
    pub duplicate: f32,
    /// Probability a delivered copy is delayed by a uniform extra
    /// latency in `(0, max_delay_ns]` — delayed copies overtake or are
    /// overtaken by later traffic, so this is also the reorder knob.
    pub delay: f32,
    /// Upper bound of the injected extra delay.
    pub max_delay_ns: Nanos,
    /// Probability an *arena frame* panics mid-execution (drawn by the
    /// per-arena [`FrameLottery`], not the datagram path). Exercises
    /// the supervisor's catch/restore machinery.
    pub panic_per_frame: f32,
    /// Probability an arena frame wedges for [`Self::stuck_ns`] of
    /// modelled time instead of finishing promptly — exercises the
    /// watchdog's deadline-overrun detection.
    pub stuck_per_frame: f32,
    /// How long a stuck frame stalls.
    pub stuck_ns: Nanos,
    /// Lottery seed; equal seeds draw identical fates.
    pub seed: u64,
}

impl FaultConfig {
    /// No faults at all (every datagram passes untouched).
    pub fn none() -> FaultConfig {
        FaultConfig {
            drop: 0.0,
            duplicate: 0.0,
            delay: 0.0,
            max_delay_ns: 0,
            panic_per_frame: 0.0,
            stuck_per_frame: 0.0,
            stuck_ns: 0,
            seed: 0,
        }
    }

    /// Pure seeded loss at probability `p`, no duplication or delay.
    pub fn loss(p: f32, seed: u64) -> FaultConfig {
        FaultConfig {
            drop: p,
            seed,
            ..FaultConfig::none()
        }
    }

    /// Does this config never alter a datagram? (Deliberately ignores
    /// the frame faults: those fire inside arena frames, not on the
    /// datagram path, and are gated by [`Self::frame_faults_enabled`].)
    pub fn is_noop(&self) -> bool {
        self.drop <= 0.0 && self.duplicate <= 0.0 && (self.delay <= 0.0 || self.max_delay_ns == 0)
    }

    /// Can the frame lottery ever injure a frame?
    pub fn frame_faults_enabled(&self) -> bool {
        self.panic_per_frame > 0.0 || (self.stuck_per_frame > 0.0 && self.stuck_ns > 0)
    }
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig::none()
    }
}

/// What the lottery did, cumulatively.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Datagrams delivered (at least one copy).
    pub passed: u64,
    /// Datagrams dropped (no copy delivered).
    pub dropped: u64,
    /// Extra copies injected.
    pub duplicated: u64,
    /// Copies delivered late.
    pub delayed: u64,
}

/// The seeded per-datagram lottery. Single-owner; wrap in a
/// [`FaultInjector`] when several threads share one (the real gateway's
/// socket pumps).
#[derive(Clone, Debug)]
pub struct FaultLottery {
    cfg: FaultConfig,
    rng: Pcg32,
    stats: FaultStats,
}

impl FaultLottery {
    pub fn new(cfg: FaultConfig) -> FaultLottery {
        FaultLottery {
            rng: Pcg32::seeded(cfg.seed),
            cfg,
            stats: FaultStats::default(),
        }
    }

    /// Decide the fate of one datagram. Each element of the returned
    /// vector is one copy to deliver, valued with its extra delay in
    /// nanoseconds (0 = on time); an empty vector means the datagram is
    /// dropped. A duplicated datagram yields two entries.
    pub fn draw(&mut self) -> Vec<Nanos> {
        if self.cfg.is_noop() {
            self.stats.passed += 1;
            return vec![0];
        }
        if self.rng.chance(self.cfg.drop) {
            self.stats.dropped += 1;
            return Vec::new();
        }
        self.stats.passed += 1;
        let copies = if self.rng.chance(self.cfg.duplicate) {
            self.stats.duplicated += 1;
            2
        } else {
            1
        };
        let mut fates = Vec::with_capacity(copies);
        for _ in 0..copies {
            let extra = if self.cfg.max_delay_ns > 0 && self.rng.chance(self.cfg.delay) {
                self.stats.delayed += 1;
                1 + self.rng.next_u64() % self.cfg.max_delay_ns
            } else {
                0
            };
            fates.push(extra);
        }
        fates
    }

    pub fn stats(&self) -> FaultStats {
        self.stats
    }
}

/// The fate the frame lottery deals one arena frame.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FrameFault {
    /// Frame runs normally.
    None,
    /// Frame panics (the supervisor must catch and recover).
    Panic,
    /// Frame stalls for the given extra modelled time before running
    /// (long stalls trip the directory watchdog).
    Stuck(Nanos),
}

/// Seeded per-arena-frame fault lottery. One per arena, salted with the
/// arena id, so an arena's fate sequence is independent of how pool
/// workers interleave frames across arenas — crash runs replay
/// bit-identically on the virtual fabric.
#[derive(Clone, Debug)]
pub struct FrameLottery {
    panic_per_frame: f32,
    stuck_per_frame: f32,
    stuck_ns: Nanos,
    rng: Pcg32,
}

impl FrameLottery {
    /// Build from a config, salted (usually with the arena id).
    pub fn new(cfg: &FaultConfig, salt: u64) -> FrameLottery {
        FrameLottery {
            panic_per_frame: cfg.panic_per_frame,
            stuck_per_frame: cfg.stuck_per_frame,
            stuck_ns: cfg.stuck_ns,
            rng: Pcg32::seeded(cfg.seed ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        }
    }

    /// Decide the fate of one frame.
    pub fn draw(&mut self) -> FrameFault {
        if self.panic_per_frame > 0.0 && self.rng.chance(self.panic_per_frame) {
            return FrameFault::Panic;
        }
        if self.stuck_per_frame > 0.0 && self.stuck_ns > 0 && self.rng.chance(self.stuck_per_frame)
        {
            return FrameFault::Stuck(self.stuck_ns);
        }
        FrameFault::None
    }
}

/// Thread-safe wrapper around a [`FaultLottery`] for use outside the
/// virtual fabric (several OS-thread socket pumps sharing one lottery).
/// Draw order then depends on pump interleaving, so cross-run
/// determinism is only guaranteed on the virtual fabric.
pub struct FaultInjector {
    inner: parking_lot::Mutex<FaultLottery>,
}

impl FaultInjector {
    pub fn new(cfg: FaultConfig) -> FaultInjector {
        FaultInjector {
            inner: parking_lot::Mutex::new(FaultLottery::new(cfg)),
        }
    }

    /// See [`FaultLottery::draw`].
    pub fn draw(&self) -> Vec<Nanos> {
        self.inner.lock().draw()
    }

    pub fn stats(&self) -> FaultStats {
        self.inner.lock().stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fates(cfg: FaultConfig, n: usize) -> Vec<Vec<Nanos>> {
        let mut l = FaultLottery::new(cfg);
        (0..n).map(|_| l.draw()).collect()
    }

    #[test]
    fn noop_config_passes_everything() {
        let all = fates(FaultConfig::none(), 1000);
        assert!(all.iter().all(|f| f == &vec![0]));
    }

    #[test]
    fn loss_rate_is_roughly_honoured() {
        let all = fates(FaultConfig::loss(0.25, 42), 10_000);
        let dropped = all.iter().filter(|f| f.is_empty()).count();
        // Binomial(10000, 0.25): ±5σ ≈ ±217.
        assert!(
            (2_250..=2_750).contains(&dropped),
            "dropped = {dropped} of 10000 at p=0.25"
        );
    }

    #[test]
    fn duplicates_and_delays_appear() {
        let cfg = FaultConfig {
            drop: 0.1,
            duplicate: 0.2,
            delay: 0.3,
            max_delay_ns: 5_000_000,
            seed: 7,
            ..FaultConfig::none()
        };
        let all = fates(cfg.clone(), 5_000);
        let dup = all.iter().filter(|f| f.len() == 2).count();
        let delayed = all.iter().flatten().filter(|&&d| d > 0).count();
        assert!(dup > 500, "dup = {dup}");
        assert!(delayed > 500, "delayed = {delayed}");
        assert!(all.iter().flatten().all(|&d| d <= cfg.max_delay_ns));
    }

    #[test]
    fn same_seed_replays_identically() {
        let cfg = FaultConfig {
            drop: 0.15,
            duplicate: 0.05,
            delay: 0.1,
            max_delay_ns: 1_000_000,
            seed: 99,
            ..FaultConfig::none()
        };
        assert_eq!(fates(cfg.clone(), 2_000), fates(cfg, 2_000));
    }

    #[test]
    fn stats_account_for_every_draw() {
        let cfg = FaultConfig {
            drop: 0.2,
            duplicate: 0.1,
            delay: 0.2,
            max_delay_ns: 1_000,
            seed: 3,
            ..FaultConfig::none()
        };
        let mut l = FaultLottery::new(cfg);
        let n = 3_000u64;
        for _ in 0..n {
            l.draw();
        }
        let s = l.stats();
        assert_eq!(s.passed + s.dropped, n);
        assert!(s.duplicated > 0 && s.delayed > 0);
    }

    #[test]
    fn injector_is_shareable() {
        let inj = std::sync::Arc::new(FaultInjector::new(FaultConfig::loss(0.5, 1)));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let inj = inj.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..250 {
                    inj.draw();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let s = inj.stats();
        assert_eq!(s.passed + s.dropped, 1000);
    }

    #[test]
    fn frame_lottery_is_quiet_when_disabled() {
        assert!(!FaultConfig::none().frame_faults_enabled());
        let mut l = FrameLottery::new(&FaultConfig::none(), 3);
        assert!((0..1000).all(|_| l.draw() == FrameFault::None));
        // stuck_per_frame without a stall length is inert too.
        let cfg = FaultConfig {
            stuck_per_frame: 1.0,
            ..FaultConfig::none()
        };
        assert!(!cfg.frame_faults_enabled());
        let mut l = FrameLottery::new(&cfg, 3);
        assert_eq!(l.draw(), FrameFault::None);
    }

    #[test]
    fn frame_lottery_rates_are_roughly_honoured() {
        let cfg = FaultConfig {
            panic_per_frame: 0.1,
            stuck_per_frame: 0.2,
            stuck_ns: 5_000_000,
            seed: 17,
            ..FaultConfig::none()
        };
        assert!(cfg.frame_faults_enabled());
        let mut l = FrameLottery::new(&cfg, 0);
        let fates: Vec<FrameFault> = (0..10_000).map(|_| l.draw()).collect();
        let panics = fates.iter().filter(|f| **f == FrameFault::Panic).count();
        let stuck = fates
            .iter()
            .filter(|f| matches!(f, FrameFault::Stuck(_)))
            .count();
        assert!((700..=1_300).contains(&panics), "panics = {panics}");
        // Stuck draws only on non-panicking frames: ≈ 0.9 * 0.2.
        assert!((1_400..=2_200).contains(&stuck), "stuck = {stuck}");
        assert!(fates
            .iter()
            .all(|f| !matches!(f, FrameFault::Stuck(ns) if *ns != cfg.stuck_ns)));
    }

    #[test]
    fn frame_lottery_salt_decorrelates_arenas_but_replays() {
        let cfg = FaultConfig {
            panic_per_frame: 0.3,
            seed: 9,
            ..FaultConfig::none()
        };
        let draw = |salt: u64| {
            let mut l = FrameLottery::new(&cfg, salt);
            (0..256).map(|_| l.draw()).collect::<Vec<_>>()
        };
        // Same salt replays identically; different salts disagree.
        assert_eq!(draw(0), draw(0));
        assert_eq!(draw(1), draw(1));
        assert_ne!(draw(0), draw(1));
    }
}
