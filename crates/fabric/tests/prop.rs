//! Property-based tests for the virtual-time scheduler: determinism,
//! mutual exclusion and clock monotonicity under randomized programs.

use std::sync::{Arc, Mutex};

use parquake_fabric::{Fabric, FabricKind, VirtualSmpConfig};
use proptest::prelude::*;

/// A small random program step executed by a task.
#[derive(Clone, Debug)]
enum Step {
    Charge(u32),
    Lock(u8),
    Sleep(u32),
}

fn arb_steps() -> impl Strategy<Value = Vec<Step>> {
    prop::collection::vec(
        prop_oneof![
            (1u32..5000).prop_map(Step::Charge),
            (0u8..3).prop_map(Step::Lock),
            (1u32..20_000).prop_map(Step::Sleep),
        ],
        1..12,
    )
}

fn fabric() -> Arc<dyn Fabric> {
    FabricKind::VirtualSmp(VirtualSmpConfig {
        hyperthreading: false,
        mem_penalty: 0.0,
        link_latency_ns: 100,
        ..VirtualSmpConfig::default()
    })
    .build()
}

/// Execute a program of tasks; return a per-event trace and verify
/// lock-based mutual exclusion as we go.
fn execute(programs: &[Vec<Step>]) -> Vec<(u32, u64)> {
    let f = fabric();
    let locks: Vec<_> = (0..3).map(|_| f.alloc_lock()).collect();
    let trace = Arc::new(Mutex::new(Vec::new()));
    let in_cs = Arc::new(Mutex::new([false; 3]));
    for (id, prog) in programs.iter().enumerate() {
        let prog = prog.clone();
        let locks = locks.clone();
        let trace = trace.clone();
        let in_cs = in_cs.clone();
        f.spawn(
            &format!("t{id}"),
            None,
            Box::new(move |ctx| {
                for step in &prog {
                    match step {
                        Step::Charge(ns) => ctx.charge(*ns as u64),
                        Step::Sleep(ns) => {
                            let t = ctx.now() + *ns as u64;
                            ctx.sleep_until(t);
                        }
                        Step::Lock(l) => {
                            ctx.lock(locks[*l as usize]);
                            {
                                let mut cs = in_cs.lock().unwrap();
                                assert!(!cs[*l as usize], "two tasks inside CS {l}");
                                cs[*l as usize] = true;
                            }
                            ctx.charge(100);
                            {
                                let mut cs = in_cs.lock().unwrap();
                                cs[*l as usize] = false;
                            }
                            ctx.unlock(locks[*l as usize]);
                        }
                    }
                    trace.lock().unwrap().push((id as u32, ctx.now()));
                }
            }),
        );
    }
    f.run();
    let t = trace.lock().unwrap().clone();
    t
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn scheduler_is_deterministic(programs in prop::collection::vec(arb_steps(), 1..5)) {
        let a = execute(&programs);
        let b = execute(&programs);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn per_task_clocks_are_monotone(programs in prop::collection::vec(arb_steps(), 1..5)) {
        let trace = execute(&programs);
        let mut last = vec![0u64; programs.len()];
        for (id, t) in trace {
            prop_assert!(t >= last[id as usize], "task {id} clock went backwards");
            last[id as usize] = t;
        }
    }

    #[test]
    fn charges_accumulate_exactly_without_contention(steps in prop::collection::vec(1u64..10_000, 1..20)) {
        // A single task with no contention: final clock == Σ charges.
        let f = fabric();
        let total: u64 = steps.iter().sum();
        let out = Arc::new(Mutex::new(0u64));
        let o = out.clone();
        f.spawn(
            "solo",
            Some(0),
            Box::new(move |ctx| {
                for s in &steps {
                    ctx.charge(*s);
                }
                *o.lock().unwrap() = ctx.now();
            }),
        );
        f.run();
        prop_assert_eq!(*out.lock().unwrap(), total);
    }
}
