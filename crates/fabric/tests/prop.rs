//! Property-based tests for the virtual-time scheduler: determinism,
//! mutual exclusion and clock monotonicity under randomized programs —
//! and for the WAN fault lottery: combined profiles replay exactly and
//! delivery-order permutations conserve datagrams.

use std::sync::{Arc, Mutex};

use parquake_fabric::fault::{FaultConfig, FaultDir, FaultLottery};
use parquake_fabric::{Fabric, FabricKind, VirtualSmpConfig};
use proptest::prelude::*;

/// A small random program step executed by a task.
#[derive(Clone, Debug)]
enum Step {
    Charge(u32),
    Lock(u8),
    Sleep(u32),
}

fn arb_steps() -> impl Strategy<Value = Vec<Step>> {
    prop::collection::vec(
        prop_oneof![
            (1u32..5000).prop_map(Step::Charge),
            (0u8..3).prop_map(Step::Lock),
            (1u32..20_000).prop_map(Step::Sleep),
        ],
        1..12,
    )
}

fn fabric() -> Arc<dyn Fabric> {
    FabricKind::VirtualSmp(VirtualSmpConfig {
        hyperthreading: false,
        mem_penalty: 0.0,
        link_latency_ns: 100,
        ..VirtualSmpConfig::default()
    })
    .build()
}

/// Execute a program of tasks; return a per-event trace and verify
/// lock-based mutual exclusion as we go.
fn execute(programs: &[Vec<Step>]) -> Vec<(u32, u64)> {
    let f = fabric();
    let locks: Vec<_> = (0..3).map(|_| f.alloc_lock()).collect();
    let trace = Arc::new(Mutex::new(Vec::new()));
    let in_cs = Arc::new(Mutex::new([false; 3]));
    for (id, prog) in programs.iter().enumerate() {
        let prog = prog.clone();
        let locks = locks.clone();
        let trace = trace.clone();
        let in_cs = in_cs.clone();
        f.spawn(
            &format!("t{id}"),
            None,
            Box::new(move |ctx| {
                for step in &prog {
                    match step {
                        Step::Charge(ns) => ctx.charge(*ns as u64),
                        Step::Sleep(ns) => {
                            let t = ctx.now() + *ns as u64;
                            ctx.sleep_until(t);
                        }
                        Step::Lock(l) => {
                            ctx.lock(locks[*l as usize]);
                            {
                                let mut cs = in_cs.lock().unwrap();
                                assert!(!cs[*l as usize], "two tasks inside CS {l}");
                                cs[*l as usize] = true;
                            }
                            ctx.charge(100);
                            {
                                let mut cs = in_cs.lock().unwrap();
                                cs[*l as usize] = false;
                            }
                            ctx.unlock(locks[*l as usize]);
                        }
                    }
                    trace.lock().unwrap().push((id as u32, ctx.now()));
                }
            }),
        );
    }
    f.run();
    let t = trace.lock().unwrap().clone();
    t
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn scheduler_is_deterministic(programs in prop::collection::vec(arb_steps(), 1..5)) {
        let a = execute(&programs);
        let b = execute(&programs);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn per_task_clocks_are_monotone(programs in prop::collection::vec(arb_steps(), 1..5)) {
        let trace = execute(&programs);
        let mut last = vec![0u64; programs.len()];
        for (id, t) in trace {
            prop_assert!(t >= last[id as usize], "task {id} clock went backwards");
            last[id as usize] = t;
        }
    }

    #[test]
    fn charges_accumulate_exactly_without_contention(steps in prop::collection::vec(1u64..10_000, 1..20)) {
        // A single task with no contention: final clock == Σ charges.
        let f = fabric();
        let total: u64 = steps.iter().sum();
        let out = Arc::new(Mutex::new(0u64));
        let o = out.clone();
        f.spawn(
            "solo",
            Some(0),
            Box::new(move |ctx| {
                for s in &steps {
                    ctx.charge(*s);
                }
                *o.lock().unwrap() = ctx.now();
            }),
        );
        f.run();
        prop_assert_eq!(*out.lock().unwrap(), total);
    }
}

/// An arbitrary *combined* WAN profile: independent drop, duplication,
/// floored delay, Gilbert–Elliott bursty loss, per-copy jitter and
/// one-way lag, all at once. Always satisfies
/// [`FaultConfig::validate`] by construction.
fn arb_wan_config() -> impl Strategy<Value = FaultConfig> {
    (
        0.0f32..0.4,                                // drop
        0.0f32..0.4,                                // duplicate
        0.0f32..1.0,                                // delay probability
        (0u64..20_000_000u64, 0u64..40_000_000u64), // delay floor + span
        0.0f32..0.8,                                // burst_loss
        1.0f32..8.0,                                // burst_len
        0u64..30_000_000u64,                        // jitter_ns
        0u64..30_000_000u64,                        // oneway_delay_ns
        any::<bool>(),                              // oneway direction
        any::<u64>(),                               // seed
    )
        .prop_map(
            |(
                drop,
                duplicate,
                delay,
                (dmin, dspan),
                burst_loss,
                burst_len,
                jitter_ns,
                oneway_delay_ns,
                sc,
                seed,
            )| {
                FaultConfig {
                    drop,
                    duplicate,
                    delay,
                    min_delay_ns: dmin,
                    max_delay_ns: dmin + dspan,
                    burst_loss,
                    burst_len,
                    jitter_ns,
                    oneway_delay_ns,
                    oneway_dir: if sc {
                        FaultDir::ServerToClient
                    } else {
                        FaultDir::ClientToServer
                    },
                    seed,
                    ..FaultConfig::none()
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Satellite: a combined drop+dup+delay+jitter+burst+one-way
    /// lottery under one seed is replay-deterministic — the entire
    /// fate stream *and* the accounting replay bit-for-bit, including
    /// direction-dependent one-way lag.
    #[test]
    fn combined_wan_lotteries_replay_deterministically(
        cfg in arb_wan_config(),
        dirs in prop::collection::vec(any::<bool>(), 1..200),
    ) {
        let run = || {
            let mut l = FaultLottery::new(cfg.clone());
            let fates: Vec<Vec<u64>> = dirs
                .iter()
                .map(|&sc| {
                    l.draw_dir(if sc {
                        FaultDir::ServerToClient
                    } else {
                        FaultDir::ClientToServer
                    })
                })
                .collect();
            (fates, l.stats())
        };
        prop_assert_eq!(run(), run());
    }

    /// Satellite: no delivery-order permutation loses or invents a
    /// datagram. The lottery's accounting identity closes (every
    /// datagram drawn has exactly one fate, every surviving copy is
    /// accounted), and replaying the delivery schedule through a
    /// due-time queue under an arbitrary tie-break permutation hands
    /// the receiver exactly the same multiset of copies.
    #[test]
    fn delivery_permutations_conserve_datagrams(
        cfg in arb_wan_config(),
        n in 1usize..200,
        perm_seed in any::<u64>(),
    ) {
        let mut l = FaultLottery::new(cfg.clone());
        let fates: Vec<Vec<u64>> = (0..n).map(|_| l.draw()).collect();
        let stats = l.stats();

        // Accounting identity: one fate per datagram, every copy
        // accounted.
        prop_assert_eq!(
            stats.passed + stats.dropped + stats.burst_dropped,
            n as u64,
            "fates: {:?}",
            stats
        );
        let copies: u64 = fates.iter().map(|f| f.len() as u64).sum();
        prop_assert_eq!(copies, stats.passed + stats.duplicated, "copies: {:?}", stats);

        // The delivery schedule: copy of datagram `id`, sent at a
        // 30 ms cadence, arrives at send time + drawn extra delay.
        let sched: Vec<(u64, usize)> = fates
            .iter()
            .enumerate()
            .flat_map(|(id, f)| f.iter().map(move |&extra| (id as u64 * 30_000_000 + extra, id)))
            .collect();

        // Jitter and delay reorder arrivals; equal due times are a
        // scheduler tie. Deliver under an arbitrary permutation of
        // the tie-break (seeded Fisher–Yates, then a stable sort by
        // due time) and require the received multiset unchanged.
        let mut permuted = sched.clone();
        let mut s = perm_seed | 1;
        for i in (1..permuted.len()).rev() {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let j = ((s >> 33) as usize) % (i + 1);
            permuted.swap(i, j);
        }
        permuted.sort_by_key(|&(at, _)| at);

        let mut expect: Vec<usize> = sched.iter().map(|&(_, id)| id).collect();
        let mut got: Vec<usize> = permuted.iter().map(|&(_, id)| id).collect();
        expect.sort_unstable();
        got.sort_unstable();
        prop_assert_eq!(expect, got, "a delivery permutation lost or invented a copy");
    }
}
