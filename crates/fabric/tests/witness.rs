//! Witness regression tests against *real fabric runs*: tasks acquire
//! fabric locks through `TaskCtx`, and the attached witness must catch
//! (or pass) the discipline from the hook wiring alone — no direct
//! `on_acquire`/`on_wait` calls here.

use std::sync::Arc;

use parquake_fabric::{FabricKind, LockWitness, TaskCtx, VirtualSmpConfig};
use parquake_metrics::witness::{LockClass, LockViolationKind};

fn fabric_with_witness() -> (Arc<dyn parquake_fabric::Fabric>, Arc<LockWitness>) {
    let fabric = FabricKind::VirtualSmp(VirtualSmpConfig::default()).build();
    let witness = Arc::new(LockWitness::new());
    fabric.attach_witness(witness.clone());
    (fabric, witness)
}

#[test]
fn compliant_contended_run_is_clean() {
    let (fabric, witness) = fabric_with_witness();
    let locks: Vec<_> = (0..4).map(|_| fabric.alloc_lock()).collect();
    for (rank, &l) in locks.iter().enumerate() {
        witness.classify(l, LockClass::Leaf { rank: rank as u32 });
    }
    for t in 0..3u32 {
        let locks = locks.clone();
        fabric.spawn(
            &format!("worker-{t}"),
            Some(t),
            Box::new(move |ctx: &TaskCtx| {
                for _ in 0..5 {
                    // Ascending acquisition, full release between rounds.
                    for &l in &locks {
                        ctx.lock(l);
                    }
                    ctx.charge(1_000);
                    for &l in locks.iter().rev() {
                        ctx.unlock(l);
                    }
                }
            }),
        );
    }
    fabric.run();
    let r = witness.report();
    assert_eq!(r.acquisitions, 3 * 5 * 4);
    assert!(r.max_held_depth >= 4);
    r.assert_clean("compliant contended run");
}

#[test]
fn out_of_order_leaf_acquisition_is_detected() {
    let (fabric, witness) = fabric_with_witness();
    let lo = fabric.alloc_lock();
    let hi = fabric.alloc_lock();
    witness.classify(lo, LockClass::Leaf { rank: 1 });
    witness.classify(hi, LockClass::Leaf { rank: 8 });
    fabric.spawn(
        "descender",
        Some(0),
        Box::new(move |ctx: &TaskCtx| {
            ctx.lock(hi);
            ctx.lock(lo); // rank 1 while holding rank 8
            ctx.unlock(lo);
            ctx.unlock(hi);
        }),
    );
    fabric.run();
    let r = witness.report();
    assert_eq!(r.violations.len(), 1, "{:?}", r.violations);
    assert_eq!(
        r.violations[0].kind,
        LockViolationKind::LeafOrder {
            held_rank: 8,
            acquired_rank: 1
        }
    );
}

#[test]
fn opposite_layer_orders_across_tasks_are_detected() {
    let (fabric, witness) = fabric_with_witness();
    let global = fabric.alloc_lock();
    let client = fabric.alloc_lock();
    witness.classify(global, LockClass::Global);
    witness.classify(client, LockClass::Client { slot: 0 });
    fabric.spawn(
        "global-then-client",
        Some(0),
        Box::new(move |ctx: &TaskCtx| {
            ctx.lock(global);
            ctx.charge(10_000);
            ctx.lock(client);
            ctx.unlock(client);
            ctx.unlock(global);
        }),
    );
    fabric.spawn(
        "client-then-global",
        Some(1),
        Box::new(move |ctx: &TaskCtx| {
            ctx.charge(50_000); // run after the first task's edge exists
            ctx.lock(client);
            ctx.lock(global);
            ctx.unlock(global);
            ctx.unlock(client);
        }),
    );
    fabric.run();
    let r = witness.report();
    assert!(
        r.violations
            .iter()
            .any(|v| matches!(v.kind, LockViolationKind::LayerCycle { .. })),
        "no layer cycle flagged: {:?}",
        r.violations
    );
}

#[test]
fn guard_held_across_cond_wait_is_detected() {
    let (fabric, witness) = fabric_with_witness();
    let leaf = fabric.alloc_lock();
    let barrier_lock = fabric.alloc_lock();
    let cond = fabric.alloc_cond();
    witness.classify(leaf, LockClass::Leaf { rank: 0 });
    witness.classify(barrier_lock, LockClass::Ctrl);
    fabric.spawn(
        "leaker",
        Some(0),
        Box::new(move |ctx: &TaskCtx| {
            ctx.lock(leaf); // never released before parking
            ctx.lock(barrier_lock);
            ctx.cond_wait_until(cond, barrier_lock, 1_000_000);
            ctx.unlock(barrier_lock);
            ctx.unlock(leaf);
        }),
    );
    fabric.run();
    let r = witness.report();
    assert_eq!(r.violations.len(), 1, "{:?}", r.violations);
    assert_eq!(r.violations[0].kind, LockViolationKind::HeldAcrossWait);
    assert_eq!(
        r.violations[0].held,
        vec![(leaf, LockClass::Leaf { rank: 0 })]
    );
}

#[test]
fn panic_with_lock_held_is_detected_at_unwind() {
    let (fabric, witness) = fabric_with_witness();
    let leaf = fabric.alloc_lock();
    witness.classify(leaf, LockClass::Leaf { rank: 3 });
    fabric.spawn(
        "crasher",
        Some(0),
        Box::new(move |ctx: &TaskCtx| {
            ctx.lock(leaf);
            panic!("frame blew up mid-section");
        }),
    );
    // run() re-raises the task panic after unwinding it; the witness
    // must still have been told about the leaked lock.
    let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| fabric.run()));
    assert!(run.is_err(), "run() must re-raise the task panic");
    let r = witness.report();
    let leaks: Vec<_> = r
        .violations
        .iter()
        .filter(|v| v.kind == LockViolationKind::HeldAtUnwind)
        .collect();
    assert_eq!(leaks.len(), 1, "{:?}", r.violations);
    assert_eq!(leaks[0].lock, leaf);
    assert_eq!(leaks[0].class, LockClass::Leaf { rank: 3 });
}

#[test]
fn panic_after_clean_release_reports_no_leak() {
    let (fabric, witness) = fabric_with_witness();
    let leaf = fabric.alloc_lock();
    witness.classify(leaf, LockClass::Leaf { rank: 3 });
    fabric.spawn(
        "tidy-crasher",
        Some(0),
        Box::new(move |ctx: &TaskCtx| {
            ctx.lock(leaf);
            ctx.unlock(leaf);
            panic!("crash with nothing held");
        }),
    );
    let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| fabric.run()));
    assert!(run.is_err());
    assert!(
        witness.report().clean(),
        "{:?}",
        witness.report().violations
    );
}

#[test]
fn wait_holding_only_the_barrier_mutex_is_clean() {
    let (fabric, witness) = fabric_with_witness();
    let barrier_lock = fabric.alloc_lock();
    let cond = fabric.alloc_cond();
    witness.classify(barrier_lock, LockClass::Ctrl);
    fabric.spawn(
        "waiter",
        Some(0),
        Box::new(move |ctx: &TaskCtx| {
            ctx.lock(barrier_lock);
            ctx.cond_wait_until(cond, barrier_lock, 1_000_000);
            ctx.unlock(barrier_lock);
        }),
    );
    fabric.spawn(
        "signaller",
        Some(1),
        Box::new(move |ctx: &TaskCtx| {
            ctx.charge(100_000);
            ctx.cond_broadcast(cond);
        }),
    );
    fabric.run();
    witness.report().assert_clean("barrier wait");
}
