//! End-to-end loopback checks for the sharded arena gateway:
//! a 1-shard gateway must report exactly what the classic
//! single-pump gateway reported (one lane that *is* the totals), and
//! a multi-shard gateway must keep every book closed at every width.

use std::net::{SocketAddr, UdpSocket};
use std::time::Duration;

use parquake_fabric::fault::FaultConfig;
use parquake_harness::udp_arena::{
    run_udp_arena_clients_sharded, run_udp_arena_server, UdpArenaOpts, UdpArenaReport,
};

/// Probe-bind the port first so a sandbox without loopback UDP skips
/// instead of failing.
fn loopback_available(port: u16) -> bool {
    match UdpSocket::bind(("127.0.0.1", port)) {
        Ok(_) => true,
        Err(e) => {
            eprintln!("skipping: cannot bind 127.0.0.1:{port}: {e}");
            false
        }
    }
}

fn drive(port: u16, shards: u32, client_sockets: u32, fault: FaultConfig) -> UdpArenaReport {
    let opts = UdpArenaOpts {
        port,
        gateway_shards: shards,
        arenas: 2,
        workers: 2,
        slots_per_arena: 16,
        duration: Duration::from_millis(1200),
        fault,
        ..UdpArenaOpts::default()
    };
    let server = std::thread::spawn(move || run_udp_arena_server(&opts).expect("server run"));
    std::thread::sleep(Duration::from_millis(120));
    let addr: SocketAddr = format!("127.0.0.1:{port}").parse().unwrap();
    let (sent, received, _avg, _per_arena, _restarts, _rehomed) = run_udp_arena_clients_sharded(
        addr,
        2,
        12,
        Duration::from_millis(900),
        None,
        client_sockets,
    )
    .expect("client run");
    let report = server.join().expect("server thread");
    assert!(sent > 0, "clients sent nothing");
    assert!(
        received > 0,
        "clients heard nothing back (sent {sent}): {report:?}"
    );
    report
}

#[test]
fn one_shard_gateway_reports_one_lane_that_is_the_totals() {
    let port = 28150;
    if !loopback_available(port) {
        return;
    }
    let fault = FaultConfig {
        drop: 0.05,
        duplicate: 0.05,
        seed: 0x5EED_0001,
        ..FaultConfig::none()
    };
    let report = drive(port, 1, 1, fault);
    assert!(report.accounting_closed(), "books open: {report:?}");
    assert!(report.datagrams_in > 0);
    // One shard: the shard lane IS the report — every top-level
    // gateway field must equal the lone lane's field exactly, which
    // pins the sharded code path to the classic single-pump numbers.
    assert_eq!(report.shards.len(), 1);
    let lane = &report.shards[0];
    assert_eq!(lane.shard, 0);
    assert_eq!(lane.datagrams_in, report.datagrams_in);
    assert_eq!(lane.decode_rejected, report.decode_rejected);
    assert_eq!(lane.spoof_rejected, report.spoof_rejected);
    assert_eq!(lane.arena_unknown, report.arena_unknown);
    assert_eq!(lane.fault_dropped, report.fault_dropped);
    assert_eq!(lane.fault_duplicated, report.fault_duplicated);
    assert_eq!(lane.forwarded, report.forwarded);
    assert_eq!(lane.to_front, report.to_front);
    assert_eq!(lane.datagrams_out, report.datagrams_out);
    assert_eq!(lane.replies_unroutable, report.replies_unroutable);
    // The faults actually fired (seeded, so deterministic per lottery).
    assert!(
        report.fault_dropped + report.fault_duplicated > 0,
        "fault lottery never fired: {report:?}"
    );
}

#[test]
fn two_shard_gateway_closes_every_book() {
    let port = 28160;
    if !loopback_available(port) {
        return;
    }
    let report = drive(port, 2, 4, FaultConfig::none());
    assert!(report.accounting_closed(), "books open: {report:?}");
    assert_eq!(report.shards.len(), 2);
    assert!(report.datagrams_in > 0);
    assert!(report.datagrams_out > 0);
    // Whether both shards saw traffic depends on the kernel's 4-tuple
    // spread (and is moot on the shared-socket fallback), so assert
    // only what must hold: the shard lanes close individually and sum
    // to the totals — that is accounting_closed() above — and every
    // datagram the clients were answered with left through some shard.
    let busy = report.shards.iter().filter(|l| l.datagrams_in > 0).count();
    assert!(busy >= 1);
    eprintln!(
        "two-shard spread: {:?}",
        report
            .shards
            .iter()
            .map(|l| (l.shard, l.datagrams_in, l.datagrams_out))
            .collect::<Vec<_>>()
    );
}
