//! Satellite regression: the real-UDP client's reply-seq
//! duplicate-suppression window must restart on a watchdog re-Connect.
//!
//! A supervised restart restores an arena from its last checkpoint, so
//! the server's per-slot reply sequence counter *rewinds*: replies of
//! the revived session carry sequence numbers far below what the client
//! saw before the crash. Pre-fix, `run_udp_clients` kept its highest
//! reply seq across the watchdog re-handshake, so every post-restart
//! reply was swallowed as a stale duplicate and the session starved
//! forever even though the server had fully recovered.
//!
//! This test stands in a deterministic fake server that produces
//! exactly that observable: eight replies at high sequence numbers,
//! a silent window long enough to trip the client's 1 s starvation
//! watchdog, then a revived session whose reply seqs restart at 1.

use std::net::UdpSocket;
use std::time::{Duration, Instant};

use parquake_harness::udp::run_udp_clients;
use parquake_math::Vec3;
use parquake_protocol::{ClientMessage, Decode, Encode, ServerMessage, MAX_DATAGRAM};

const CLIENT_RUN: Duration = Duration::from_secs(4);
const SERVER_RUN: Duration = Duration::from_millis(4300);
/// Replies sent before the "crash".
const PRE_CRASH_REPLIES: u64 = 8;
/// Longer than the client's 1 s starvation watchdog.
const SILENCE: Duration = Duration::from_millis(1300);

#[test]
fn post_restart_replies_survive_the_dedup_window() {
    let Ok(server_sock) = UdpSocket::bind("127.0.0.1:0") else {
        eprintln!("skipping: loopback UDP not permitted");
        return;
    };
    server_sock
        .set_read_timeout(Some(Duration::from_millis(20)))
        .unwrap();
    let addr = server_sock.local_addr().unwrap();

    let server = std::thread::spawn(move || {
        let start = Instant::now();
        let mut pre_crash = 0u64;
        let mut post_crash = 0u64;
        let mut crashed_at: Option<Instant> = None;
        let mut buf = [0u8; MAX_DATAGRAM];
        while start.elapsed() < SERVER_RUN {
            let Ok((len, from)) = server_sock.recv_from(&mut buf) else {
                continue;
            };
            let Ok(msg) = ClientMessage::from_bytes(&buf[..len]) else {
                continue;
            };
            // The "crash": total silence until the restore completes.
            if let Some(t) = crashed_at {
                if t.elapsed() < SILENCE {
                    continue;
                }
            }
            match msg {
                ClientMessage::Connect { client_id, .. } => {
                    let ack = ServerMessage::ConnectAck {
                        client_id,
                        spawn: Vec3::ZERO,
                        arena: 0,
                    };
                    let _ = server_sock.send_to(&ack.to_bytes(), from);
                }
                ClientMessage::Move { client_id, cmd } => {
                    // Pre-crash replies run high; the restored session
                    // rewinds to 1 — the checkpoint's counter.
                    let seq = match crashed_at {
                        None => 1000 + pre_crash + 1,
                        Some(_) => post_crash + 1,
                    };
                    let reply = ServerMessage::Reply {
                        client_id,
                        seq: seq as u32,
                        sent_at_echo: cmd.sent_at,
                        frame: seq as u32,
                        assigned_thread: 0,
                        origin: Vec3::ZERO,
                        delta: false,
                        entities: Vec::new(),
                        removed: Vec::new(),
                        events: Vec::new(),
                        predict: None,
                    };
                    if server_sock.send_to(&reply.to_bytes(), from).is_ok() {
                        match crashed_at {
                            None => {
                                pre_crash += 1;
                                if pre_crash == PRE_CRASH_REPLIES {
                                    crashed_at = Some(Instant::now());
                                }
                            }
                            Some(_) => post_crash += 1,
                        }
                    }
                }
                _ => {}
            }
        }
        (pre_crash, post_crash)
    });

    let (sent, received, _avg) =
        run_udp_clients(addr, 1, 1, CLIENT_RUN).expect("client loop failed");
    let (pre_crash, post_crash) = server.join().unwrap();

    assert_eq!(pre_crash, PRE_CRASH_REPLIES, "pre-crash phase never ran");
    assert!(
        post_crash > 5,
        "restored session never served replies (watchdog re-Connect failed?): \
         post_crash {post_crash}, sent {sent}"
    );
    // The regression: pre-fix, every post-restart reply was deduped
    // against the pre-crash window and `received` stalled at exactly
    // `pre_crash`.
    assert!(
        received > pre_crash,
        "post-restart replies swallowed as duplicates: received {received}, \
         pre-crash {pre_crash}, post-crash served {post_crash}"
    );
    assert!(
        received <= pre_crash + post_crash,
        "counted more replies than the server ever sent: {received} > {} + {}",
        pre_crash,
        post_crash
    );
}
