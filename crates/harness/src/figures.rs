//! One module per table/figure of the paper's evaluation.

pub mod arenasweep;
pub mod batching;
pub mod chaossweep;
pub mod common;
pub mod crashsweep;
pub mod delta;
pub mod dynassign;
pub mod elasticity;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod gatewaysweep;
pub mod interestsweep;
pub mod losssweep;
pub mod migratesweep;
pub mod onepass;
pub mod table1;
pub mod waitstats;

pub use common::SweepOpts;
