//! Run one measured server configuration.

use std::sync::atomic::Ordering;
use std::sync::Arc;

use parquake_bots::{spawn_swarm, BotBehavior, BotSwarmConfig};
use parquake_bsp::mapgen::MapGenConfig;
use parquake_fabric::{FabricKind, LockWitness, Nanos};
use parquake_metrics::{Breakdown, ResponseStats, WitnessReport};
use parquake_server::{
    spawn_server, Assignment, CostModel, InterestMode, ServerConfig, ServerKind, ServerResults,
};
use parquake_sim::GameWorld;

/// One experiment configuration (a single bar/point in a figure).
#[derive(Clone, Debug)]
pub struct ExperimentConfig {
    /// Number of automatic players.
    pub players: u32,
    /// Server under test.
    pub server: ServerKind,
    /// Map generator settings.
    pub map: MapGenConfig,
    /// Areanode tree depth (4 ⇒ the paper's default 31 nodes).
    pub areanode_depth: u32,
    /// Measured run length in fabric time.
    pub duration_ns: Nanos,
    /// Execution platform.
    pub fabric: FabricKind,
    /// Modelled CPU costs.
    pub cost: CostModel,
    /// Bot behaviour mix.
    pub behavior: BotBehavior,
    /// Workload seed (bots) — map seed lives in `map`.
    pub seed: u64,
    /// Client frame length in ms (one move per bot per frame).
    pub client_frame_ms: u32,
    /// Bot driver tasks (client machines).
    pub bot_drivers: u32,
    /// Run the dynamic locking-protocol checkers.
    pub checking: bool,
    /// Request batching window for the parallel server (paper §5.2
    /// future work; 0 reproduces the measured paper behaviour).
    pub frame_batch_ns: Nanos,
    /// Player-to-thread assignment (static = the paper's scheme).
    pub assignment: Assignment,
    /// QuakeWorld-style delta-compressed replies (extension).
    pub delta_compression: bool,
    /// Server-side inactivity timeout (0 = never reclaim slots).
    pub client_timeout_ns: Nanos,
    /// How visible-entity sets are computed (per-client scan vs the
    /// batch DDM sweep, optionally oracle-checked).
    pub interest: InterestMode,
    /// Override the world's maximum view distance (`None` keeps the
    /// world default) — interest figures shrink it so view extents
    /// cover only part of a big map.
    pub view_dist: Option<f32>,
}

impl Default for ExperimentConfig {
    fn default() -> ExperimentConfig {
        ExperimentConfig {
            players: 64,
            server: ServerKind::Sequential,
            map: MapGenConfig::large_arena(0x6D_6D_31),
            areanode_depth: 4,
            duration_ns: 10_000_000_000, // 10 virtual seconds
            fabric: FabricKind::VirtualSmp(Default::default()),
            cost: CostModel::default(),
            behavior: BotBehavior::deathmatch(),
            seed: 0xB07_5EED,
            client_frame_ms: 30,
            bot_drivers: 8,
            checking: cfg!(debug_assertions),
            frame_batch_ns: 0,
            assignment: Assignment::Static,
            delta_compression: false,
            client_timeout_ns: 0,
            interest: InterestMode::Scan,
            view_dist: None,
        }
    }
}

/// Result of one experiment.
pub struct Outcome {
    pub server: ServerResults,
    pub response: ResponseStats,
    /// Bots that completed the connection handshake.
    pub connected: u32,
    /// The measured window (bots' send window).
    pub duration_ns: Nanos,
    /// Hash of the final world state (determinism checks).
    pub world_hash: u64,
    /// The final world state (scoreboards, item states, positions).
    pub world: Arc<GameWorld>,
    /// Lock-discipline witness report (present when `checking` was on).
    pub witness: Option<WitnessReport>,
}

impl Outcome {
    /// Total server response rate, replies/second (Fig 4b/5b/6b).
    pub fn response_rate(&self) -> f64 {
        self.response.response_rate(self.duration_ns)
    }

    /// Average response time in ms (Fig 4c/5c/6c).
    pub fn avg_response_ms(&self) -> f64 {
        self.response.avg_latency_ms()
    }

    /// Average per-thread execution breakdown (Fig 4a/5a/6a).
    pub fn breakdown(&self) -> Breakdown {
        self.server.average_breakdown()
    }
}

/// A configured, runnable experiment.
pub struct Experiment {
    pub cfg: ExperimentConfig,
}

impl Experiment {
    pub fn new(cfg: ExperimentConfig) -> Experiment {
        Experiment { cfg }
    }

    /// Build the world, spawn server and swarm, run the fabric to
    /// completion and collect every metric.
    pub fn run(&self) -> Outcome {
        let cfg = &self.cfg;
        let map = Arc::new(cfg.map.generate());
        let mut world = GameWorld::new(map, cfg.areanode_depth, cfg.players.max(1) as u16);
        if let Some(d) = cfg.view_dist {
            world.max_view_dist = d;
        }
        let world = Arc::new(world);
        let fabric = cfg.fabric.build();

        // Checking runs also carry the lock-order witness: every fabric
        // lock operation is checked against the region-locking
        // discipline and the report lands in the outcome.
        let witness = if cfg.checking {
            let w = Arc::new(LockWitness::new());
            fabric.attach_witness(w.clone());
            Some(w)
        } else {
            None
        };

        // The server runs a little longer than the bots send, so the
        // final requests drain.
        let server_cfg = ServerConfig {
            kind: cfg.server,
            end_time: cfg.duration_ns + 500_000_000,
            cost: cfg.cost.clone(),
            checking: cfg.checking,
            frame_batch_ns: cfg.frame_batch_ns,
            assignment: cfg.assignment,
            delta_compression: cfg.delta_compression,
            interest: cfg.interest,
            arena_id: 0,
            client_timeout_ns: cfg.client_timeout_ns,
            lifecycle_port: None,
            catch_panics: false,
        };
        let server = spawn_server(&fabric, server_cfg, world.clone());

        let swarm_cfg = BotSwarmConfig {
            players: cfg.players,
            drivers: cfg.bot_drivers,
            client_frame_ms: cfg.client_frame_ms,
            seed: cfg.seed,
            send_until: cfg.duration_ns,
            behavior: cfg.behavior.clone(),
            think_cost_ns: 15_000,
            jitter_ns: 8_000_000,
            ramp: None,
            predict: None,
        };
        let spt = server.slots_per_thread;
        let swarm = spawn_swarm(&fabric, &swarm_cfg, &server.ports, move |client| {
            (client / spt) as usize
        });

        fabric.run();

        let results = server.results.lock().unwrap().clone(); // lockcheck: allow(raw-sync: host-side read after fabric.run() returned, no tasks alive)
        let response = swarm.stats.lock().unwrap().clone(); // lockcheck: allow(raw-sync: host-side read after fabric.run() returned, no tasks alive)
        let connected = swarm.connected.load(Ordering::Relaxed);
        Outcome {
            server: results,
            response,
            connected,
            duration_ns: cfg.duration_ns,
            world_hash: world.world_hash(),
            world,
            witness: witness.map(|w| w.report()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parquake_metrics::Bucket;
    use parquake_server::LockPolicy;

    fn quick(players: u32, server: ServerKind) -> ExperimentConfig {
        ExperimentConfig {
            players,
            server,
            map: MapGenConfig::small_arena(7),
            duration_ns: 2_000_000_000,
            bot_drivers: 4,
            ..ExperimentConfig::default()
        }
    }

    #[test]
    fn sequential_smoke() {
        let out = Experiment::new(quick(8, ServerKind::Sequential)).run();
        assert_eq!(out.connected, 8, "all bots must connect");
        assert!(
            out.response.received > 100,
            "replies: {}",
            out.response.received
        );
        assert!(out.server.frame_count > 10);
        let bd = out.breakdown();
        assert!(bd.get(Bucket::Reply) > 0);
        assert!(bd.get(Bucket::Exec) > 0);
        // The sequential server takes no locks at all.
        assert_eq!(bd.get(Bucket::Lock), 0);
    }

    #[test]
    fn parallel_smoke() {
        let out = Experiment::new(quick(
            8,
            ServerKind::Parallel {
                threads: 2,
                locking: LockPolicy::Baseline,
            },
        ))
        .run();
        assert_eq!(out.connected, 8);
        assert!(out.response.received > 100);
        assert_eq!(out.server.threads.len(), 2);
        let report = out.witness.expect("checking runs carry a witness report");
        assert!(report.acquisitions > 0);
        report.assert_clean("parallel_smoke");
    }

    #[test]
    fn determinism_on_virtual_fabric() {
        let run = || {
            let out = Experiment::new(quick(6, ServerKind::Sequential)).run();
            (out.response.received, out.world_hash)
        };
        assert_eq!(run(), run());
    }
}
