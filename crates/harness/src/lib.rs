//! Experiment harness: everything needed to regenerate the paper's
//! evaluation (Figures 4–7, Table 1, and the §4.2/§5.2 statistics).
//!
//! [`experiment`] assembles a world, a server, and a bot swarm on a
//! fabric and runs one measured configuration; [`figures`] sweeps
//! configurations and prints the tables corresponding to each figure;
//! the `repro` binary exposes one subcommand per figure.

pub mod arena_experiment;
pub mod experiment;
pub mod figures;
pub mod mmsg;
pub mod udp;
pub mod udp_arena;

pub use arena_experiment::{ArenaExperiment, ArenaExperimentConfig, ArenaOutcome};
pub use experiment::{Experiment, ExperimentConfig, Outcome};
