//! Real-network UDP gateway: runs the parallel server on the
//! real-thread fabric and bridges its fabric ports to actual
//! `std::net::UdpSocket`s — one socket per server thread, like the
//! original's one-UDP-port-per-thread scheme (paper §3.1).
//!
//! Architecture:
//!
//! ```text
//!   UDP 0.0.0.0:base+t  ──(pump-in OS thread)──►  fabric port[t]
//!   fabric gateway port ──(pump-out fabric task)─►  UdpSocket.send_to
//! ```
//!
//! Inbound pumps are plain OS threads injecting datagrams with
//! [`parquake_fabric::real::RealFabric::send_external`]; outbound pumps
//! are fabric tasks owning one gateway port per server thread, so the
//! server's ordinary `ctx.send(reply_port, …)` path works unchanged.
//!
//! Client addresses are learned from inbound traffic (client id →
//! `SocketAddr`) under a strict admission policy: only a validated
//! `Connect` may bind or rebind an address, mid-session address changes
//! are rejected until the old endpoint has been silent for a grace
//! period, and `Move`/`Disconnect` datagrams must come from the bound
//! address. This closes the obvious loopback spoof where any datagram
//! carrying a client id could redirect that player's reply stream.
//!
//! The inbound pumps can additionally run a seeded
//! [`parquake_fabric::fault::FaultInjector`] stage — drop, duplicate,
//! delay — so loss-resilience behaviour can be exercised over real
//! sockets with the same lottery the virtual fabric uses. Faults are
//! injected on the client→server path only; replies travel untouched
//! (the virtual fabric, which faults inside `send`, covers both
//! directions).
//!
//! Every inbound datagram is accounted for:
//! `datagrams_in = decode_rejected + spoof_rejected + fault_dropped +
//! (forwarded - fault_duplicated)`, and every forwarded datagram is
//! either processed by the server, dropped by the bounded-queue policy,
//! or still pending at shutdown — see
//! [`UdpServerReport::accounting_closed`].

use std::collections::HashMap;
use std::net::{SocketAddr, UdpSocket};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use parquake_bsp::mapgen::MapGenConfig;
use parquake_fabric::fault::{FaultConfig, FaultInjector};
use parquake_fabric::real::RealFabric;
use parquake_fabric::{Nanos, PortId};
use parquake_interest::InterestStats;
use parquake_protocol::{ClientMessage, Decode, ServerMessage, MAX_DATAGRAM};
use parquake_server::{spawn_server, InterestMode, LockPolicy, ServerConfig, ServerKind};
use parquake_sim::GameWorld;

/// The UDP port thread `t` uses relative to `base`, with checked
/// arithmetic: `base + t` can overflow `u16` for high base ports, which
/// the old unchecked version turned into a debug-build panic (and a
/// silent wrap in release). Shared by the gateway's bind loop and the
/// client's target computation so both fail the same way.
pub fn thread_port(base: u16, t: u32) -> std::io::Result<u16> {
    u16::try_from(t)
        .ok()
        .and_then(|t| base.checked_add(t))
        .ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                format!("UDP port overflow: base {base} + thread {t} exceeds 65535"),
            )
        })
}

/// Gateway options.
#[derive(Clone, Debug)]
pub struct UdpServerOpts {
    /// First UDP port; thread `t` listens on `base_port + t`.
    pub base_port: u16,
    pub threads: u32,
    pub max_players: u16,
    pub map: MapGenConfig,
    /// Wall-clock run time.
    pub duration: Duration,
    pub locking: LockPolicy,
    /// Inbound fault injection (drop/duplicate/delay); default none.
    pub fault: FaultConfig,
    /// Server-side inactivity timeout: slots silent this long are
    /// reclaimed (a `Bye` is sent). Zero disables reclaim; the
    /// gateway's address-rebind grace then falls back to one second.
    pub client_timeout: Duration,
    /// How visible-entity sets are computed (per-client scan, the batch
    /// DDM sweep, or the sweep with the scan as a shadow oracle).
    pub interest: InterestMode,
}

impl Default for UdpServerOpts {
    fn default() -> Self {
        UdpServerOpts {
            base_port: 27500, // the classic QuakeWorld port
            threads: 2,
            max_players: 32,
            map: MapGenConfig::small_arena(1),
            duration: Duration::from_secs(5),
            locking: LockPolicy::Optimized,
            fault: FaultConfig::none(),
            client_timeout: Duration::from_secs(2),
            interest: InterestMode::Scan,
        }
    }
}

/// Summary returned when the gateway shuts down.
// lockcheck: identity(datagrams_in == decode_rejected + spoof_rejected + fault_dropped + delivered, forwarded == processed + queue_dropped + pending)
#[derive(Debug, Default, Clone)]
pub struct UdpServerReport {
    /// Datagrams read off the sockets.
    pub datagrams_in: u64,
    /// Inbound datagrams that failed protocol decode.
    pub decode_rejected: u64,
    /// Inbound datagrams refused by the address admission policy.
    pub spoof_rejected: u64,
    /// Inbound datagrams eaten by the fault-injection stage.
    pub fault_dropped: u64,
    /// Extra copies created by the fault-injection stage.
    pub fault_duplicated: u64,
    /// Datagram copies handed to the server's fabric ports.
    pub forwarded: u64,
    /// Datagrams the server drained from its request queues.
    pub server_processed: u64,
    /// Datagrams discarded by the bounded-queue drop policy.
    pub queue_dropped: u64,
    /// Datagrams still queued when the run ended.
    pub pending_at_shutdown: u64,
    /// Datagrams written to the sockets.
    pub datagrams_out: u64,
    /// Server replies that never matched a learned client address
    /// (counted, not silently discarded).
    pub replies_unroutable: u64,
    /// Replies the server generated.
    pub replies: u64,
    /// Slots reclaimed by the server's inactivity timeout.
    pub timeouts: u64,
    /// Server frames executed.
    pub frames: u64,
    /// Interest-matching accounting (all zero under
    /// [`InterestMode::Scan`]).
    pub interest: InterestStats,
}

impl UdpServerReport {
    /// Does every inbound datagram have exactly one fate? The first
    /// identity covers the gateway stage (decode → admission → fault
    /// lottery), the second the server stage (processed, dropped by the
    /// bounded queue, or still pending at shutdown).
    pub fn accounting_closed(&self) -> bool {
        let delivered = self.forwarded - self.fault_duplicated;
        self.datagrams_in
            == self.decode_rejected + self.spoof_rejected + self.fault_dropped + delivered
            && self.forwarded
                == self.server_processed + self.queue_dropped + self.pending_at_shutdown
    }
}

/// A learned client endpoint.
#[derive(Clone, Copy, Debug)]
pub(crate) struct AddrEntry {
    pub(crate) addr: SocketAddr,
    pub(crate) last_seen: Instant,
}

/// How long an inbound pump sleeps in `recv_from` when nothing is
/// pending — the poll cadence for the shutdown deadline.
pub(crate) const PUMP_IDLE_TIMEOUT: Duration = Duration::from_millis(10);

/// How an inbound pump should wait for its next wakeup, given the
/// earliest due time of its held (fault-delayed) datagrams.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum PumpWait {
    /// Blocking `recv_from` with this read timeout.
    Block(Duration),
    /// Switch the socket nonblocking, try one `recv_from`, and sleep
    /// this long if it comes up empty.
    PollSleep(Duration),
}

/// Plan the pump's next wait so a held datagram is injected *at* its
/// due time, not up to [`PUMP_IDLE_TIMEOUT`] after it.
///
/// `SO_RCVTIMEO` rounds up to scheduler ticks (observed ~5 ms worst
/// case at HZ=250), so capping the read timeout alone still delivers
/// milliseconds late. Instead: block only while the due time is
/// comfortably far (stopping a tick-slack early), then close the final
/// stretch with nonblocking reads paced by hrtimer sleeps, which hold
/// sub-millisecond precision.
pub(crate) fn pump_wait_plan(earliest_due: Option<Instant>, now: Instant) -> PumpWait {
    /// Worst observed `SO_RCVTIMEO` overshoot plus margin.
    const TICK_SLACK: Duration = Duration::from_millis(6);
    /// Inside this window, poll: a blocking read could overshoot past
    /// the due time.
    const NEAR: Duration = Duration::from_millis(10);
    /// Poll pace — short enough for ~ms delivery error, long enough
    /// not to spin.
    const STEP: Duration = Duration::from_micros(500);
    /// `set_read_timeout(Some(ZERO))` is an error.
    const FLOOR: Duration = Duration::from_millis(1);
    match earliest_due {
        None => PumpWait::Block(PUMP_IDLE_TIMEOUT),
        Some(due) => {
            let gap = due.saturating_duration_since(now);
            if gap <= NEAR {
                PumpWait::PollSleep(gap.min(STEP))
            } else {
                PumpWait::Block((gap - TICK_SLACK).clamp(FLOOR, PUMP_IDLE_TIMEOUT))
            }
        }
    }
}

/// How often an outbound pump retries held (not-yet-routable) replies
/// when no new gateway traffic wakes it — without this bound a reply
/// whose address-book entry lands just after it would sit the whole
/// retention window on a quiet port.
pub(crate) const HELD_RETRY_TICK: Nanos = 25_000_000;

/// Gateway-side counters merged from the pump threads/tasks.
#[derive(Default)]
struct PumpCounters {
    datagrams_in: u64,
    decode_rejected: u64,
    spoof_rejected: u64,
    fault_dropped: u64,
    fault_duplicated: u64,
    forwarded: u64,
    datagrams_out: u64,
    replies_unroutable: u64,
}

/// The admission policy: may a decoded datagram from `from` reach the
/// server, and how does it affect the address book?
///
/// * `Connect` from an unknown id binds the address; from the bound
///   address it refreshes it (handshake retry); from a *different*
///   address it rebinds only once the bound endpoint has been silent
///   for `rebind_grace` (NAT rebinding), else it is rejected — a live
///   session cannot be hijacked by guessing its client id.
/// * `Move`/`Disconnect` must come from the bound address.
pub(crate) fn admit(
    book: &mut HashMap<u32, AddrEntry>,
    msg: &ClientMessage,
    from: SocketAddr,
    now: Instant,
    rebind_grace: Duration,
) -> bool {
    match msg {
        ClientMessage::Connect { client_id, .. } => match book.get_mut(client_id) {
            None => {
                book.insert(
                    *client_id,
                    AddrEntry {
                        addr: from,
                        last_seen: now,
                    },
                );
                true
            }
            Some(e) if e.addr == from => {
                e.last_seen = now;
                true
            }
            Some(e) if now.duration_since(e.last_seen) >= rebind_grace => {
                e.addr = from;
                e.last_seen = now;
                true
            }
            Some(_) => false,
        },
        ClientMessage::Move { client_id, .. } | ClientMessage::Disconnect { client_id } => {
            match book.get_mut(client_id) {
                Some(e) if e.addr == from => {
                    e.last_seen = now;
                    true
                }
                _ => false,
            }
        }
    }
}

/// Run the server with real UDP sockets until `opts.duration` elapses.
/// Binds `threads` sockets on `127.0.0.1:base_port..`; returns a traffic
/// report. Fails with `std::io::Error` if binding is not permitted.
pub fn run_udp_server(opts: &UdpServerOpts) -> std::io::Result<UdpServerReport> {
    /// How long an unroutable reply is retried before being counted as
    /// lost; covers the window where a reply races address learning.
    const REPLY_RETAIN: Duration = Duration::from_millis(250);

    let (real, fabric) = RealFabric::new_arc_pair();
    let world = Arc::new(GameWorld::new(
        Arc::new(opts.map.generate()),
        4,
        opts.max_players,
    ));
    let end_time: Nanos = opts.duration.as_nanos() as Nanos;
    let server_cfg = ServerConfig {
        client_timeout_ns: opts.client_timeout.as_nanos() as Nanos,
        interest: opts.interest,
        ..ServerConfig::new(
            ServerKind::Parallel {
                threads: opts.threads,
                locking: opts.locking,
            },
            end_time,
        )
    };
    let handle = spawn_server(&fabric, server_cfg, world);

    // One socket per server thread, plus a gateway fabric port per
    // thread for the outbound direction.
    let mut sockets = Vec::new();
    let mut gateways: Vec<PortId> = Vec::new();
    for t in 0..opts.threads {
        let sock = UdpSocket::bind(("127.0.0.1", thread_port(opts.base_port, t)?))?;
        sock.set_read_timeout(Some(Duration::from_millis(10)))?;
        sockets.push(sock);
        gateways.push(fabric.alloc_port());
    }

    // Client address book and counters, shared between pumps.
    let addrs: Arc<Mutex<HashMap<u32, AddrEntry>>> = Arc::new(Mutex::new(HashMap::new()));
    let counters = Arc::new(Mutex::new(PumpCounters::default()));
    let injector = Arc::new(FaultInjector::new(opts.fault.clone()));
    let rebind_grace = if opts.client_timeout.is_zero() {
        Duration::from_secs(1)
    } else {
        opts.client_timeout / 2
    };

    // Outbound pumps: fabric tasks draining each gateway port. Replies
    // whose client address is not learned yet (the reply raced the
    // inbound pump's book update) are retained briefly and retried;
    // only after REPLY_RETAIN are they counted as unroutable.
    for t in 0..opts.threads as usize {
        let sock = sockets[t].try_clone()?;
        let gw = gateways[t];
        let addrs = addrs.clone();
        let counters = counters.clone();
        fabric.spawn(
            &format!("udp-out-{t}"),
            None,
            Box::new(move |ctx| {
                let mut sent = 0u64;
                let mut unroutable = 0u64;
                let mut held: Vec<(Instant, u32, Vec<u8>)> = Vec::new();
                loop {
                    // While replies are held for address learning, bound
                    // the wait with a retry tick: a book entry arriving
                    // with no follow-on gateway traffic must still get
                    // its reply within one tick, not after REPLY_RETAIN.
                    let deadline = if held.is_empty() {
                        end_time
                    } else {
                        (ctx.now() + HELD_RETRY_TICK).min(end_time)
                    };
                    let readable = ctx.wait_readable(gw, Some(deadline));
                    let now = Instant::now();
                    held.retain(|(since, cid, payload)| {
                        let addr = addrs.lock().unwrap().get(cid).map(|e| e.addr); // lockcheck: allow(raw-sync: OS-thread UDP bridge shares the address book outside the fabric)
                        if let Some(addr) = addr {
                            if sock.send_to(payload, addr).is_ok() {
                                sent += 1;
                            }
                            false
                        } else if now.duration_since(*since) >= REPLY_RETAIN {
                            unroutable += 1;
                            false
                        } else {
                            true
                        }
                    });
                    if !readable {
                        if ctx.now() >= end_time {
                            break;
                        }
                        // Retry tick fired: held replies were retried
                        // above; go back to waiting.
                        continue;
                    }
                    while let Some(msg) = ctx.try_recv(gw) {
                        let client = match ServerMessage::from_bytes(&msg.payload) {
                            Ok(ServerMessage::ConnectAck { client_id, .. })
                            | Ok(ServerMessage::Reply { client_id, .. })
                            | Ok(ServerMessage::Bye { client_id }) => Some(client_id),
                            Err(_) => None,
                        };
                        let Some(cid) = client else { continue };
                        let addr = addrs.lock().unwrap().get(&cid).map(|e| e.addr); // lockcheck: allow(raw-sync: OS-thread UDP bridge shares the address book outside the fabric)
                        match addr {
                            Some(addr) => {
                                if sock.send_to(&msg.payload, addr).is_ok() {
                                    sent += 1;
                                }
                            }
                            None => held.push((Instant::now(), cid, msg.payload)),
                        }
                    }
                }
                unroutable += held.len() as u64;
                let mut c = counters.lock().unwrap(); // lockcheck: allow(raw-sync: OS-thread UDP bridge counters, aggregated after join)
                c.datagrams_out += sent;
                c.replies_unroutable += unroutable;
            }),
        );
    }

    // Inbound pumps: plain OS threads feeding the server's ports
    // through decode → admission → fault lottery.
    let mut pump_handles = Vec::new();
    for t in 0..opts.threads as usize {
        let sock = sockets[t].try_clone()?;
        let real = real.clone();
        let server_port = handle.ports[t];
        let gw = gateways[t];
        let addrs = addrs.clone();
        let counters = counters.clone();
        let injector = injector.clone();
        let deadline = Instant::now() + opts.duration;
        pump_handles.push(std::thread::spawn(move || {
            let mut buf = [0u8; MAX_DATAGRAM];
            let mut c = PumpCounters::default();
            // Copies the fault stage delayed, waiting to come due.
            let mut held: Vec<(Instant, Vec<u8>)> = Vec::new();
            let mut cur_timeout = PUMP_IDLE_TIMEOUT;
            let mut nonblocking = false;
            loop {
                let now = Instant::now();
                let mut i = 0;
                while i < held.len() {
                    if held[i].0 <= now {
                        let (_, payload) = held.swap_remove(i);
                        real.send_external(gw, server_port, payload);
                    } else {
                        i += 1;
                    }
                }
                if now >= deadline {
                    break;
                }
                // Wait so the earliest held due time is hit on the dot
                // (block far out, poll the final stretch) instead of up
                // to the idle timeout late.
                let res = match pump_wait_plan(held.iter().map(|h| h.0).min(), now) {
                    PumpWait::Block(want) => {
                        if nonblocking {
                            let _ = sock.set_nonblocking(false);
                            nonblocking = false;
                        }
                        if want != cur_timeout {
                            let _ = sock.set_read_timeout(Some(want));
                            cur_timeout = want;
                        }
                        sock.recv_from(&mut buf)
                    }
                    PumpWait::PollSleep(nap) => {
                        if !nonblocking {
                            let _ = sock.set_nonblocking(true);
                            nonblocking = true;
                        }
                        let r = sock.recv_from(&mut buf);
                        if r.is_err() && !nap.is_zero() {
                            std::thread::sleep(nap);
                        }
                        r
                    }
                };
                match res {
                    Ok((n, from)) => {
                        c.datagrams_in += 1;
                        let Ok(msg) = ClientMessage::from_bytes(&buf[..n]) else {
                            c.decode_rejected += 1;
                            continue;
                        };
                        let admitted = {
                            let mut book = addrs.lock().unwrap(); // lockcheck: allow(raw-sync: OS-thread UDP bridge shares the address book outside the fabric)
                            admit(&mut book, &msg, from, now, rebind_grace)
                        };
                        if !admitted {
                            c.spoof_rejected += 1;
                            continue;
                        }
                        let fates = injector.draw();
                        if fates.is_empty() {
                            c.fault_dropped += 1;
                            continue;
                        }
                        c.fault_duplicated += fates.len() as u64 - 1;
                        for extra in fates {
                            c.forwarded += 1;
                            if extra == 0 {
                                real.send_external(gw, server_port, buf[..n].to_vec());
                            } else {
                                held.push((now + Duration::from_nanos(extra), buf[..n].to_vec()));
                            }
                        }
                    }
                    Err(ref e)
                        if e.kind() == std::io::ErrorKind::WouldBlock
                            || e.kind() == std::io::ErrorKind::TimedOut =>
                    {
                        continue;
                    }
                    Err(_) => break,
                }
            }
            // Late delivery is legal UDP: flush everything still held
            // so the accounting identity closes exactly.
            for (_, payload) in held.drain(..) {
                real.send_external(gw, server_port, payload);
            }
            let mut shared = counters.lock().unwrap(); // lockcheck: allow(raw-sync: OS-thread UDP bridge counters, aggregated after join)
            shared.datagrams_in += c.datagrams_in;
            shared.decode_rejected += c.decode_rejected;
            shared.spoof_rejected += c.spoof_rejected;
            shared.fault_dropped += c.fault_dropped;
            shared.fault_duplicated += c.fault_duplicated;
            shared.forwarded += c.forwarded;
        }));
    }

    fabric.run();
    for h in pump_handles {
        let _ = h.join();
    }

    let results = handle.results.lock().unwrap(); // lockcheck: allow(raw-sync: host-side read after the run joined, no tasks alive)
    let merged = results.merged();
    let c = counters.lock().unwrap(); // lockcheck: allow(raw-sync: host-side read after the run joined, no tasks alive)
                                      // Query the ports directly (not the per-thread stats snapshots):
                                      // the pumps may drop or enqueue after the server tasks exit.
    let queue_dropped: u64 = handle.ports.iter().map(|&p| fabric.port_dropped(p)).sum();
    let pending_at_shutdown: u64 = handle
        .ports
        .iter()
        .map(|&p| fabric.port_pending(p) as u64)
        .sum();
    Ok(UdpServerReport {
        datagrams_in: c.datagrams_in,
        decode_rejected: c.decode_rejected,
        spoof_rejected: c.spoof_rejected,
        fault_dropped: c.fault_dropped,
        fault_duplicated: c.fault_duplicated,
        forwarded: c.forwarded,
        server_processed: merged.datagrams,
        queue_dropped,
        pending_at_shutdown,
        datagrams_out: c.datagrams_out,
        replies_unroutable: c.replies_unroutable,
        replies: merged.replies,
        timeouts: merged.timeouts,
        frames: results.frame_count,
        interest: results.interest.clone(),
    })
}

/// What [`run_udp_clients_predicting`] measured.
#[derive(Debug, Clone)]
pub struct UdpClientOutcome {
    pub sent: u64,
    pub received: u64,
    pub avg_ms: f64,
    /// Client-side prediction accounting (all zero without a map).
    pub prediction: parquake_metrics::PredictionStats,
    /// Ring entries still unacked when the run ended (closes the
    /// prediction ledger).
    pub predict_in_flight: u64,
}

/// A minimal real-UDP client: drives `players` bots against a gateway
/// for `duration`, returns (sent, received, avg latency ms).
///
/// Resilient to loss: unanswered `Connect`s are retried with
/// exponential backoff, an acked session that stops hearing replies
/// falls back to the handshake instead of wedging, and duplicated
/// replies are deduplicated by sequence number before being counted.
pub fn run_udp_clients(
    server: SocketAddr,
    threads: u32,
    players: u32,
    duration: Duration,
) -> std::io::Result<(u64, u64, f64)> {
    let out = run_udp_clients_predicting(server, threads, players, duration, None)?;
    Ok((out.sent, out.received, out.avg_ms))
}

/// As [`run_udp_clients`], with optional client-side prediction: given
/// a compiled map (which must be bit-identical to the server's — both
/// sides default to [`UdpServerOpts::default`]'s generator), every bot
/// runs the movement kernel locally, opts into the Move/Reply
/// prediction trailer, and reconciles against each authoritative
/// reply. The outcome carries the full prediction ledger, including
/// the divergence oracle.
pub fn run_udp_clients_predicting(
    server: SocketAddr,
    threads: u32,
    players: u32,
    duration: Duration,
    predict: Option<std::sync::Arc<parquake_bsp::BspWorld>>,
) -> std::io::Result<UdpClientOutcome> {
    use parquake_protocol::Encode;

    const RETRY_MIN: Duration = Duration::from_millis(100);
    const RETRY_MAX: Duration = Duration::from_millis(1600);
    const STARVATION: Duration = Duration::from_secs(1);

    let sock = UdpSocket::bind("127.0.0.1:0")?;
    sock.set_read_timeout(Some(Duration::from_millis(5)))?;
    // Precompute each thread's target with checked port arithmetic.
    let targets: Vec<SocketAddr> = (0..threads.max(1))
        .map(|t| thread_port(server.port(), t).map(|p| SocketAddr::new(server.ip(), p)))
        .collect::<std::io::Result<_>>()?;
    let start = Instant::now();
    let n = players as usize;
    let mut acked = vec![false; n];
    let mut seq = vec![0u32; n];
    // Highest reply seq seen per player (duplicate suppression).
    let mut last_rx_seq = vec![-1i64; n];
    // Spread initial connects across the server threads.
    let mut cur_thread: Vec<usize> = (0..n).map(|i| i % targets.len()).collect();
    let mut next_at = vec![Duration::ZERO; n];
    let mut backoff = vec![RETRY_MIN; n];
    let mut last_heard = vec![Duration::ZERO; n];
    let mut predictors: Vec<Option<parquake_bots::Predictor>> = (0..n)
        .map(|_| {
            predict
                .as_ref()
                .map(|m| parquake_bots::Predictor::new(m.clone(), parquake_math::Vec3::ZERO))
        })
        .collect();
    let mut sent = 0u64;
    let mut received = 0u64;
    let mut latency_sum = 0f64;
    let mut buf = [0u8; MAX_DATAGRAM];

    while start.elapsed() < duration {
        let now = start.elapsed();
        let now_ns = now.as_nanos() as u64;
        for i in 0..n {
            if now < next_at[i] {
                continue;
            }
            // A session that has gone quiet (lost replies, server-side
            // slot reclaim) re-runs the handshake instead of wedging.
            if acked[i] && now.saturating_sub(last_heard[i]) > STARVATION {
                acked[i] = false;
                backoff[i] = RETRY_MIN;
            }
            let msg = if !acked[i] {
                next_at[i] = now + backoff[i];
                backoff[i] = (backoff[i] * 2).min(RETRY_MAX);
                ClientMessage::Connect {
                    client_id: i as u32,
                    arena: 0,
                }
            } else {
                seq[i] += 1;
                next_at[i] = now + Duration::from_millis(30);
                let mut cmd = parquake_protocol::MoveCmd {
                    seq: seq[i],
                    sent_at: now_ns,
                    pitch: 0.0,
                    yaw: (i as f32 * 37.0) % 360.0 - 180.0,
                    forward: 320.0,
                    side: 0.0,
                    up: 0.0,
                    buttons: parquake_protocol::Buttons::NONE,
                    msec: 30,
                    predict_ack: None,
                };
                if let Some(p) = predictors[i].as_mut() {
                    cmd.predict_ack = Some(p.trailer_ack());
                    p.predict(&cmd);
                }
                ClientMessage::Move {
                    client_id: i as u32,
                    cmd,
                }
            };
            if sock
                .send_to(&msg.to_bytes(), targets[cur_thread[i]])
                .is_ok()
            {
                sent += 1;
            }
        }
        // Drain replies briefly.
        while let Ok((len, _)) = sock.recv_from(&mut buf) {
            match ServerMessage::from_bytes(&buf[..len]) {
                Ok(ServerMessage::ConnectAck {
                    client_id, spawn, ..
                }) => {
                    let i = client_id as usize;
                    if i < n {
                        if !acked[i] {
                            acked[i] = true;
                            next_at[i] = start.elapsed();
                            // A fresh ack opens a new server-side
                            // session whose reply sequence restarts
                            // low (slot reclaim, supervised restart).
                            // The duplicate-suppression window must
                            // restart with it, or every reply of the
                            // new session is swallowed as a stale
                            // duplicate and the session starves again.
                            last_rx_seq[i] = -1;
                            if let Some(p) = predictors[i].as_mut() {
                                p.reset(spawn);
                            }
                        }
                        backoff[i] = RETRY_MIN;
                        last_heard[i] = start.elapsed();
                    }
                }
                Ok(ServerMessage::Reply {
                    client_id,
                    seq: rx_seq,
                    sent_at_echo,
                    assigned_thread,
                    origin,
                    predict: reply_predict,
                    ..
                }) => {
                    let i = client_id as usize;
                    if i < n {
                        last_heard[i] = start.elapsed();
                        if rx_seq as i64 > last_rx_seq[i] {
                            last_rx_seq[i] = rx_seq as i64;
                            received += 1;
                            let rx_ns = start.elapsed().as_nanos() as u64;
                            if sent_at_echo > 0 && rx_ns > sent_at_echo {
                                latency_sum += (rx_ns - sent_at_echo) as f64 / 1e6;
                            }
                            if let (Some(p), Some(rp)) =
                                (predictors[i].as_mut(), reply_predict.as_ref())
                            {
                                p.reconcile(origin, rp);
                            }
                        }
                        let t = assigned_thread as usize;
                        if t < targets.len() {
                            cur_thread[i] = t;
                        }
                    }
                }
                Ok(ServerMessage::Bye { client_id }) => {
                    let i = client_id as usize;
                    if i < n {
                        acked[i] = false;
                        backoff[i] = RETRY_MIN;
                        next_at[i] = start.elapsed();
                    }
                }
                Err(_) => {}
            }
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    let avg = if received > 0 {
        latency_sum / received as f64
    } else {
        0.0
    };
    let mut prediction = parquake_metrics::PredictionStats::new();
    let mut predict_in_flight = 0u64;
    for p in predictors.iter().flatten() {
        prediction.merge(&p.stats);
        predict_in_flight += p.in_flight();
    }
    Ok(UdpClientOutcome {
        sent,
        received,
        avg_ms: avg,
        prediction,
        predict_in_flight,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_port_uses_checked_math() {
        assert_eq!(thread_port(27500, 0).unwrap(), 27500);
        assert_eq!(thread_port(27500, 3).unwrap(), 27503);
        assert!(thread_port(65535, 1).is_err());
        assert!(thread_port(65000, 1000).is_err());
        assert!(thread_port(0, 70_000).is_err());
    }

    fn addr(port: u16) -> SocketAddr {
        SocketAddr::from(([127, 0, 0, 1], port))
    }

    const GRACE: Duration = Duration::from_secs(1);

    #[test]
    fn connect_learns_and_refreshes_address() {
        let mut book = HashMap::new();
        let t0 = Instant::now();
        let connect = ClientMessage::Connect {
            client_id: 7,
            arena: 0,
        };
        assert!(admit(&mut book, &connect, addr(4000), t0, GRACE));
        assert_eq!(book[&7].addr, addr(4000));
        // Handshake retry from the same endpoint refreshes.
        assert!(admit(
            &mut book,
            &connect,
            addr(4000),
            t0 + GRACE / 4,
            GRACE
        ));
        assert_eq!(book[&7].last_seen, t0 + GRACE / 4);
    }

    #[test]
    fn connect_from_new_addr_is_rejected_within_grace() {
        let mut book = HashMap::new();
        let t0 = Instant::now();
        let connect = ClientMessage::Connect {
            client_id: 7,
            arena: 0,
        };
        assert!(admit(&mut book, &connect, addr(4000), t0, GRACE));
        // Hijack attempt while the session is live: rejected, address
        // book untouched.
        assert!(!admit(
            &mut book,
            &connect,
            addr(5000),
            t0 + GRACE / 2,
            GRACE
        ));
        assert_eq!(book[&7].addr, addr(4000));
    }

    #[test]
    fn connect_rebinds_after_silence_grace() {
        let mut book = HashMap::new();
        let t0 = Instant::now();
        let connect = ClientMessage::Connect {
            client_id: 7,
            arena: 0,
        };
        assert!(admit(&mut book, &connect, addr(4000), t0, GRACE));
        assert!(admit(&mut book, &connect, addr(5000), t0 + GRACE, GRACE));
        assert_eq!(book[&7].addr, addr(5000));
    }

    #[test]
    fn moves_require_the_bound_address() {
        let mut book = HashMap::new();
        let t0 = Instant::now();
        let connect = ClientMessage::Connect {
            client_id: 7,
            arena: 0,
        };
        let mv = ClientMessage::Move {
            client_id: 7,
            cmd: parquake_protocol::MoveCmd::idle(1, 30),
        };
        // Unknown client: no Move may pass (no implicit binding).
        assert!(!admit(&mut book, &mv, addr(4000), t0, GRACE));
        assert!(book.is_empty());
        assert!(admit(&mut book, &connect, addr(4000), t0, GRACE));
        assert!(admit(&mut book, &mv, addr(4000), t0, GRACE));
        // From anywhere else: rejected, even past the grace period
        // (only a validated Connect may rebind).
        assert!(!admit(&mut book, &mv, addr(5000), t0 + GRACE * 2, GRACE));
        assert_eq!(book[&7].addr, addr(4000));
    }

    #[test]
    fn wait_plan_tracks_the_earliest_due_time() {
        let now = Instant::now();
        // Nothing held: blocking read at the idle cadence.
        assert_eq!(
            pump_wait_plan(None, now),
            PumpWait::Block(PUMP_IDLE_TIMEOUT)
        );
        // Due soon: poll, never risking a tick-rounded oversleep.
        assert_eq!(
            pump_wait_plan(Some(now + Duration::from_millis(3)), now),
            PumpWait::PollSleep(Duration::from_micros(500))
        );
        // Due in under a poll step: nap only to the due time.
        assert_eq!(
            pump_wait_plan(Some(now + Duration::from_micros(80)), now),
            PumpWait::PollSleep(Duration::from_micros(80))
        );
        // Already due: zero nap, the caller flushes immediately.
        assert_eq!(
            pump_wait_plan(Some(now), now),
            PumpWait::PollSleep(Duration::ZERO)
        );
        // Due just past the poll window: block, but stop a tick-slack
        // short of the due time.
        assert_eq!(
            pump_wait_plan(Some(now + Duration::from_millis(12)), now),
            PumpWait::Block(Duration::from_millis(6))
        );
        // Far-off due time: never block longer than the idle cadence,
        // and never ask for a zero timeout (that's an io error).
        assert_eq!(
            pump_wait_plan(Some(now + Duration::from_secs(1)), now),
            PumpWait::Block(PUMP_IDLE_TIMEOUT)
        );
        match pump_wait_plan(
            Some(now + Duration::from_millis(10) + Duration::from_micros(1)),
            now,
        ) {
            PumpWait::Block(t) => assert!(t >= Duration::from_millis(1), "{t:?}"),
            other => panic!("expected Block, got {other:?}"),
        }
    }

    /// Satellite regression: a fault-delayed datagram must be delivered
    /// within 2 ms of its due time. The pre-fix pump slept a fixed
    /// 10 ms in `recv_from` regardless of due times (and `SO_RCVTIMEO`
    /// rounds up to scheduler ticks on top), so a delayed copy could
    /// arrive ~10 ms late — this loop, the pump's exact wait structure
    /// sharing `pump_wait_plan`, would fail.
    #[test]
    fn delayed_fault_delivery_error_under_two_ms() {
        let Ok(sock) = UdpSocket::bind("127.0.0.1:0") else {
            eprintln!("skipping: loopback UDP not permitted");
            return;
        };
        let mut worst = Duration::ZERO;
        // Best-of-3: absorb scheduler hiccups on loaded machines.
        for _ in 0..3 {
            // 15 ms out exercises both phases: block, then poll.
            let due = Instant::now() + Duration::from_millis(15);
            let mut cur = PUMP_IDLE_TIMEOUT;
            let mut nonblocking = false;
            sock.set_read_timeout(Some(cur)).unwrap();
            let mut buf = [0u8; 16];
            let delivered = loop {
                let now = Instant::now();
                if due <= now {
                    break now; // the pump would inject the copy here
                }
                match pump_wait_plan(Some(due), now) {
                    PumpWait::Block(want) => {
                        if nonblocking {
                            sock.set_nonblocking(false).unwrap();
                            nonblocking = false;
                        }
                        if want != cur {
                            sock.set_read_timeout(Some(want)).unwrap();
                            cur = want;
                        }
                        let _ = sock.recv_from(&mut buf); // quiet: timeout
                    }
                    PumpWait::PollSleep(nap) => {
                        if !nonblocking {
                            sock.set_nonblocking(true).unwrap();
                            nonblocking = true;
                        }
                        if sock.recv_from(&mut buf).is_err() && !nap.is_zero() {
                            std::thread::sleep(nap);
                        }
                    }
                }
            };
            sock.set_nonblocking(false).unwrap();
            let err = delivered.duration_since(due);
            worst = worst.max(err);
            if err < Duration::from_millis(2) {
                return;
            }
        }
        panic!("delayed delivery error {worst:?} ≥ 2ms on every attempt");
    }

    #[test]
    fn report_accounting_closes_on_balanced_books() {
        let mut r = UdpServerReport {
            datagrams_in: 100,
            decode_rejected: 3,
            spoof_rejected: 2,
            fault_dropped: 5,
            fault_duplicated: 4,
            forwarded: 94, // 90 delivered + 4 duplicates
            server_processed: 80,
            queue_dropped: 10,
            pending_at_shutdown: 4,
            ..UdpServerReport::default()
        };
        assert!(r.accounting_closed(), "{r:?}");
        // Lose one forwarded datagram without a counted fate: open.
        r.forwarded -= 1;
        assert!(!r.accounting_closed(), "{r:?}");
    }
}
