//! Real-network UDP gateway: runs the parallel server on the
//! real-thread fabric and bridges its fabric ports to actual
//! `std::net::UdpSocket`s — one socket per server thread, like the
//! original's one-UDP-port-per-thread scheme (paper §3.1).
//!
//! Architecture:
//!
//! ```text
//!   UDP 0.0.0.0:base+t  ──(pump-in OS thread)──►  fabric port[t]
//!   fabric gateway port ──(pump-out fabric task)─►  UdpSocket.send_to
//! ```
//!
//! Inbound pumps are plain OS threads injecting datagrams with
//! [`parquake_fabric::real::RealFabric::send_external`]; outbound pumps
//! are fabric tasks owning one gateway port per server thread, so the
//! server's ordinary `ctx.send(reply_port, …)` path works unchanged.
//! Client addresses are learned from inbound traffic (client id →
//! `SocketAddr`).

use std::collections::HashMap;
use std::net::{SocketAddr, UdpSocket};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use parquake_bsp::mapgen::MapGenConfig;
use parquake_fabric::real::RealFabric;
use parquake_fabric::{Nanos, PortId};
use parquake_protocol::{ClientMessage, Decode, ServerMessage};
use parquake_server::{spawn_server, LockPolicy, ServerConfig, ServerKind};
use parquake_sim::GameWorld;

/// Gateway options.
#[derive(Clone, Debug)]
pub struct UdpServerOpts {
    /// First UDP port; thread `t` listens on `base_port + t`.
    pub base_port: u16,
    pub threads: u32,
    pub max_players: u16,
    pub map: MapGenConfig,
    /// Wall-clock run time.
    pub duration: Duration,
    pub locking: LockPolicy,
}

impl Default for UdpServerOpts {
    fn default() -> Self {
        UdpServerOpts {
            base_port: 27500, // the classic QuakeWorld port
            threads: 2,
            max_players: 32,
            map: MapGenConfig::small_arena(1),
            duration: Duration::from_secs(5),
            locking: LockPolicy::Optimized,
        }
    }
}

/// Summary returned when the gateway shuts down.
#[derive(Debug, Default, Clone)]
pub struct UdpServerReport {
    pub datagrams_in: u64,
    pub datagrams_out: u64,
    pub replies: u64,
    pub frames: u64,
}

/// Run the server with real UDP sockets until `opts.duration` elapses.
/// Binds `threads` sockets on `127.0.0.1:base_port..`; returns a traffic
/// report. Fails with `std::io::Error` if binding is not permitted.
pub fn run_udp_server(opts: &UdpServerOpts) -> std::io::Result<UdpServerReport> {
    let (real, fabric) = RealFabric::new_arc_pair();
    let world = Arc::new(GameWorld::new(
        Arc::new(opts.map.generate()),
        4,
        opts.max_players,
    ));
    let end_time: Nanos = opts.duration.as_nanos() as Nanos;
    let server_cfg = ServerConfig {
        kind: ServerKind::Parallel {
            threads: opts.threads,
            locking: opts.locking,
        },
        ..ServerConfig::new(
            ServerKind::Parallel {
                threads: opts.threads,
                locking: opts.locking,
            },
            end_time,
        )
    };
    let handle = spawn_server(&fabric, server_cfg, world);

    // One socket per server thread, plus a gateway fabric port per
    // thread for the outbound direction.
    let mut sockets = Vec::new();
    let mut gateways: Vec<PortId> = Vec::new();
    for t in 0..opts.threads {
        let sock = UdpSocket::bind(("127.0.0.1", opts.base_port + t as u16))?;
        sock.set_read_timeout(Some(Duration::from_millis(50)))?;
        sockets.push(sock);
        gateways.push(fabric.alloc_port());
    }

    // Client address book, shared between pumps.
    let addrs: Arc<Mutex<HashMap<u32, SocketAddr>>> = Arc::new(Mutex::new(HashMap::new()));
    let stats_in = Arc::new(Mutex::new(0u64));
    let stats_out = Arc::new(Mutex::new(0u64));

    // Outbound pumps: fabric tasks draining each gateway port.
    for t in 0..opts.threads as usize {
        let sock = sockets[t].try_clone()?;
        let gw = gateways[t];
        let addrs = addrs.clone();
        let stats_out = stats_out.clone();
        fabric.spawn(
            &format!("udp-out-{t}"),
            None,
            Box::new(move |ctx| {
                let mut sent = 0u64;
                while ctx.wait_readable(gw, Some(end_time)) {
                    while let Some(msg) = ctx.try_recv(gw) {
                        let client = match ServerMessage::from_bytes(&msg.payload) {
                            Ok(ServerMessage::ConnectAck { client_id, .. }) => Some(client_id),
                            Ok(ServerMessage::Reply { client_id, .. }) => Some(client_id),
                            Ok(ServerMessage::Bye { client_id }) => Some(client_id),
                            Err(_) => None,
                        };
                        if let Some(cid) = client {
                            // lockcheck: allow(raw-sync)
                            if let Some(addr) = addrs.lock().unwrap().get(&cid).copied() {
                                if sock.send_to(&msg.payload, addr).is_ok() {
                                    sent += 1;
                                }
                            }
                        }
                    }
                }
                *stats_out.lock().unwrap() += sent; // lockcheck: allow(raw-sync)
            }),
        );
    }

    // Inbound pumps: plain OS threads feeding the server's ports.
    let mut pump_handles = Vec::new();
    for t in 0..opts.threads as usize {
        let sock = sockets[t].try_clone()?;
        let real = real.clone();
        let server_port = handle.ports[t];
        let gw = gateways[t];
        let addrs = addrs.clone();
        let stats_in = stats_in.clone();
        let deadline = std::time::Instant::now() + opts.duration;
        pump_handles.push(std::thread::spawn(move || {
            let mut buf = [0u8; 2048];
            let mut received = 0u64;
            while std::time::Instant::now() < deadline {
                match sock.recv_from(&mut buf) {
                    Ok((n, from)) => {
                        received += 1;
                        // Learn/refresh the sender's address.
                        if let Ok(msg) = ClientMessage::from_bytes(&buf[..n]) {
                            let cid = match msg {
                                ClientMessage::Connect { client_id }
                                | ClientMessage::Move { client_id, .. }
                                | ClientMessage::Disconnect { client_id } => client_id,
                            };
                            addrs.lock().unwrap().insert(cid, from); // lockcheck: allow(raw-sync)
                        }
                        // Forward verbatim; the server validates again.
                        real.send_external(gw, server_port, buf[..n].to_vec());
                    }
                    Err(ref e)
                        if e.kind() == std::io::ErrorKind::WouldBlock
                            || e.kind() == std::io::ErrorKind::TimedOut =>
                    {
                        continue;
                    }
                    Err(_) => break,
                }
            }
            *stats_in.lock().unwrap() += received; // lockcheck: allow(raw-sync)
        }));
    }

    fabric.run();
    for h in pump_handles {
        let _ = h.join();
    }

    let results = handle.results.lock().unwrap(); // lockcheck: allow(raw-sync)
    let datagrams_in = *stats_in.lock().unwrap(); // lockcheck: allow(raw-sync)
    let datagrams_out = *stats_out.lock().unwrap(); // lockcheck: allow(raw-sync)
    Ok(UdpServerReport {
        datagrams_in,
        datagrams_out,
        replies: results.merged().replies,
        frames: results.frame_count,
    })
}

/// A minimal real-UDP client: drives `players` bots against a gateway
/// for `duration`, returns (sent, received, avg latency ms).
pub fn run_udp_clients(
    server: SocketAddr,
    threads: u32,
    players: u32,
    duration: Duration,
) -> std::io::Result<(u64, u64, f64)> {
    use parquake_protocol::Encode;

    let sock = UdpSocket::bind("127.0.0.1:0")?;
    sock.set_read_timeout(Some(Duration::from_millis(5)))?;
    let start = std::time::Instant::now();
    let mut acked = vec![false; players as usize];
    let mut seq = vec![0u32; players as usize];
    let mut cur_thread = vec![0u32; players as usize];
    let mut next_at = vec![Duration::ZERO; players as usize];
    let mut sent = 0u64;
    let mut received = 0u64;
    let mut latency_sum = 0f64;
    let mut buf = [0u8; 4096];

    let port_of = |t: u32, base: SocketAddr| {
        let mut a = base;
        a.set_port(base.port() + (t as u16 % threads as u16));
        a
    };

    while start.elapsed() < duration {
        let now_ns = start.elapsed().as_nanos() as u64;
        for i in 0..players as usize {
            if start.elapsed() < next_at[i] {
                continue;
            }
            let msg = if !acked[i] {
                next_at[i] = start.elapsed() + Duration::from_millis(100);
                ClientMessage::Connect {
                    client_id: i as u32,
                }
            } else {
                seq[i] += 1;
                next_at[i] = start.elapsed() + Duration::from_millis(30);
                ClientMessage::Move {
                    client_id: i as u32,
                    cmd: parquake_protocol::MoveCmd {
                        seq: seq[i],
                        sent_at: now_ns,
                        pitch: 0.0,
                        yaw: (i as f32 * 37.0) % 360.0 - 180.0,
                        forward: 320.0,
                        side: 0.0,
                        up: 0.0,
                        buttons: parquake_protocol::Buttons::NONE,
                        msec: 30,
                    },
                }
            };
            let target = port_of(cur_thread[i], server);
            if sock.send_to(&msg.to_bytes(), target).is_ok() {
                sent += 1;
            }
        }
        // Drain replies briefly.
        while let Ok((n, _)) = sock.recv_from(&mut buf) {
            match ServerMessage::from_bytes(&buf[..n]) {
                Ok(ServerMessage::ConnectAck { client_id, .. }) => {
                    if let Some(a) = acked.get_mut(client_id as usize) {
                        *a = true;
                    }
                }
                Ok(ServerMessage::Reply {
                    client_id,
                    sent_at_echo,
                    assigned_thread,
                    ..
                }) => {
                    received += 1;
                    let now = start.elapsed().as_nanos() as u64;
                    if sent_at_echo > 0 && now > sent_at_echo {
                        latency_sum += (now - sent_at_echo) as f64 / 1e6;
                    }
                    if let Some(t) = cur_thread.get_mut(client_id as usize) {
                        *t = assigned_thread as u32;
                    }
                }
                _ => {}
            }
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    let avg = if received > 0 {
        latency_sum / received as f64
    } else {
        0.0
    };
    Ok((sent, received, avg))
}
